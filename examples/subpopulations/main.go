// Subpopulations demonstrates the §4.2 methodology in isolation: the
// byte-weighted spherical midpoint of a device's destinations, the CDN
// exclusion, and the United-States containment test that splits the
// population into domestic and international students.
package main

import (
	"fmt"
	"log"

	"repro/internal/geo"
	"repro/internal/universe"
)

func main() {
	reg, err := universe.New()
	if err != nil {
		log.Fatal(err)
	}
	db := geo.FromRegistry(reg)
	fmt.Printf("geolocation database: %d prefixes\n\n", db.Size())

	// Three hand-built traffic profiles.
	profiles := []struct {
		name  string
		flows map[string]int64 // domain -> bytes
	}{
		{"domestic student", map[string]int64{
			"nflxvideo.net":   3 << 30,
			"googlevideo.com": 2 << 30,
			"hulustream.com":  1 << 30,
			"instagram.com":   300 << 20,
			"zoom.us":         500 << 20,
		}},
		{"international student (home-heavy)", map[string]int64{
			"hdslb.com":     4 << 30, // bilibili video
			"weixin.qq.com": 500 << 20,
			"iqiyi.com":     2 << 30,
			"nflxvideo.net": 800 << 20,
			"zoom.us":       500 << 20,
		}},
		{"international student (US-centric)", map[string]int64{
			"nflxvideo.net":   3 << 30,
			"googlevideo.com": 2 << 30,
			"weixin.qq.com":   400 << 20, // keeps WeChat for family
			"zoom.us":         500 << 20,
		}},
	}

	for _, prof := range profiles {
		cls := geo.NewClassifier(db)
		for domain, bytes := range prof.flows {
			ip, ok := reg.ResolveIP(domain, 1)
			if !ok {
				log.Fatalf("domain %s not in universe", domain)
			}
			cls.AddFlow(1, ip, bytes)
		}
		mid, ok := cls.MidpointOf(1)
		verdict := cls.Classify(1)
		fmt.Printf("%-36s → ", prof.name)
		if ok {
			fmt.Printf("midpoint (%.1f, %.1f), inUS=%v → %s\n", mid.Lat, mid.Lon, geo.InUS(mid), verdict)
		} else {
			fmt.Printf("no geolocatable traffic → %s\n", verdict)
		}
	}

	fmt.Println("\nNote the third profile: a real international student whose traffic")
	fmt.Println("is mostly US services classifies as domestic — the method is")
	fmt.Println("conservative, exactly as §4.2 acknowledges.")

	// The CDN exclusion ablation: why Akamai/AWS/Cloudfront/Optimizely
	// must be excluded from the midpoint.
	fmt.Println("\nCDN exclusion ablation (device fetching cnn.com via Akamai):")
	for _, include := range []bool{false, true} {
		cls := geo.NewClassifier(db)
		cls.IncludeCDNs = include
		ip, _ := reg.ResolveIP("cnn.com", 1)
		cls.AddFlow(1, ip, 1<<30)
		fmt.Printf("  IncludeCDNs=%-5v → %s\n", include, cls.Classify(1))
	}
}
