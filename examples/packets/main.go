// Packets demonstrates the lowest layer of the stack: crafting wire-format
// frames, decoding them with the gopacket-style layer model, and assembling
// them into the bidirectional flow records everything downstream consumes.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"repro/internal/flow"
	"repro/internal/packet"
)

func main() {
	client := netip.MustParseAddr("10.1.2.3")
	server := netip.MustParseAddr("23.0.4.2")
	base := time.Date(2020, time.February, 5, 20, 15, 0, 0, time.UTC)

	// Craft a three-packet exchange: request out, two response segments.
	type send struct {
		at      time.Duration
		src     netip.Addr
		dst     netip.Addr
		sport   uint16
		dport   uint16
		flags   uint8
		payload []byte
	}
	exchange := []send{
		{0, client, server, 50000, 443, packet.FlagSYN, nil},
		{5 * time.Millisecond, server, client, 443, 50000, packet.FlagSYN | packet.FlagACK, nil},
		{10 * time.Millisecond, client, server, 50000, 443, packet.FlagACK | packet.FlagPSH, []byte("GET /index.html")},
		{25 * time.Millisecond, server, client, 443, 50000, packet.FlagACK | packet.FlagPSH, make([]byte, 4096)},
		{30 * time.Millisecond, server, client, 443, 50000, packet.FlagACK | packet.FlagPSH, make([]byte, 4096)},
		{40 * time.Millisecond, client, server, 50000, 443, packet.FlagFIN | packet.FlagACK, nil},
		{45 * time.Millisecond, server, client, 443, 50000, packet.FlagFIN | packet.FlagACK, nil},
	}

	var flows []flow.Record
	asm := flow.NewAssembler(flow.Config{
		LocalNets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}, func(r flow.Record) { flows = append(flows, r) })

	for i, s := range exchange {
		// Serialize: checksums and length fields are computed for us.
		frame, err := packet.Serialize(s.payload,
			&packet.Ethernet{
				Src:       packet.MustParseMAC("00:1b:21:01:02:03"),
				Dst:       packet.MustParseMAC("00:00:5e:00:01:01"),
				EtherType: packet.EtherTypeIPv4,
			},
			&packet.IPv4{Src: s.src, Dst: s.dst, Protocol: packet.ProtoTCP, TTL: 64},
			&packet.TCP{SrcPort: s.sport, DstPort: s.dport, Flags: s.flags, Window: 65535,
				Seq: uint32(1000 * (i + 1))},
		)
		if err != nil {
			log.Fatal(err)
		}
		// Decode with checksum verification — the capture side.
		p, err := packet.Decode(frame, true)
		if err != nil {
			log.Fatal(err)
		}
		tcp := p.Layer(packet.LayerTypeTCP).(*packet.TCP)
		ip := p.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
		fmt.Printf("pkt %d: %v:%d → %v:%d flags=%06b payload=%dB (%d bytes on wire)\n",
			i, ip.Src, tcp.SrcPort, ip.Dst, tcp.DstPort, tcp.Flags, len(p.Payload), len(frame))

		info, ok := flow.InfoFromPacket(base.Add(s.at), p)
		if !ok {
			log.Fatal("no transport info")
		}
		if err := asm.Add(info); err != nil {
			log.Fatal(err)
		}
	}
	asm.Flush()

	fmt.Printf("\nassembled %d flow(s):\n", len(flows))
	for _, f := range flows {
		fmt.Printf("  %v\n", f)
		fmt.Printf("  originator is the campus device (%v) regardless of packet order,\n", f.OrigAddr)
		fmt.Printf("  orig %dB / resp %dB over %v\n", f.OrigBytes, f.RespBytes, f.Duration)
	}
}
