// Gaming reproduces the §5.3 analyses: Steam usage distributions by month
// and population (Figure 7) and the Nintendo Switch gameplay time series
// with device-count changes (Figure 8).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/universe"
	"repro/internal/viz"
)

func main() {
	reg, err := universe.New()
	if err != nil {
		log.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.05
	gen, err := trace.New(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "generating four months of traffic (5% scale)...")
	if err := gen.Run(pipe); err != nil {
		log.Fatal(err)
	}
	ds := pipe.Finalize()

	fig7 := experiments.Fig7(ds)
	fmt.Println("— Steam (Figure 7) —")
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		b := fig7.Bytes[pop]
		c := fig7.Connections[pop]
		fmt.Printf("%s:\n", pop)
		for m := campus.February; m < campus.NumMonths; m++ {
			fmt.Printf("  %-9s n=%-4d median bytes %9s  median connections %4.0f\n",
				m, b[m].N, viz.SIBytes(b[m].Median), c[m].Median)
		}
	}
	fmt.Println("\nPaper trends: domestic bytes rise in March then fall; international")
	fmt.Println("rises harder in March/April then falls in May; n grows all window.")

	fig8 := experiments.Fig8(ds)
	fmt.Printf("\n— Nintendo Switch (Figure 8) —\n")
	fmt.Printf("switches pre-shutdown: %d (paper: 1,097 at full scale)\n", fig8.PreShutdown)
	fmt.Printf("switches post-shutdown: %d (paper: 267 + 40 new)\n", fig8.PostShutdown)
	fmt.Printf("new switches in Apr/May: %d (paper: 40)\n", fig8.NewSwitches)

	labels := make([]string, campus.NumDays)
	for d := campus.Day(0); d < campus.NumDays; d++ {
		labels[d] = d.String()
	}
	chart := viz.Chart{Title: "\nSwitch gameplay traffic, 3-day moving average:", Height: 10, Width: 60}
	if err := chart.Render(os.Stdout, labels,
		map[string][]float64{"gameplay": fig8.GameplayAvg}, []string{"gameplay"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExpected shape: spike during break (Animal Crossing released 3/20),")
	fmt.Println("lull in late April as classes resume, rise again in May.")
}
