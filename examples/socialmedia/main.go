// Socialmedia reproduces the §5.2 analysis: stitch per-domain flows into
// user sessions, apply the Facebook/Instagram shared-domain heuristic, and
// print Figure 6-style monthly box plots of mobile session hours for
// domestic vs international students.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/appsig"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/universe"
	"repro/internal/viz"
)

func main() {
	reg, err := universe.New()
	if err != nil {
		log.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.03
	gen, err := trace.New(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "generating four months of traffic...")
	if err := gen.Run(pipe); err != nil {
		log.Fatal(err)
	}
	ds := pipe.Finalize()
	fig6 := experiments.Fig6(ds)

	// Log-scale box rows from 0.01h to 100h, matching the figure's axes.
	const lo, hi = 0.01, 100.0
	fmt.Println("monthly session duration per mobile device (hours, log scale 0.01 → 100)")
	fmt.Println("  | = 1st/95th percentile whiskers, === interquartile box, M median")
	for _, app := range appsig.SocialMediaApps {
		fmt.Printf("\n%s\n", app)
		for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
			sums := fig6.Summary[app][pop]
			for m := campus.February; m < campus.NumMonths; m++ {
				s := sums[m]
				if s.N == 0 {
					fmt.Printf("  %-9s %-13s (no users)\n", m, pop)
					continue
				}
				label := fmt.Sprintf("  %-9s %-13s n=%-4d", m, pop, s.N)
				fmt.Println(viz.BoxRow(label, s.P1, s.Q1, s.Median, s.Q3, s.P95, lo, hi, 52))
			}
		}
	}

	// The §5.2 narrative, extracted programmatically.
	fb := fig6.Summary[appsig.AppFacebook]
	fmt.Printf("\nFacebook: domestic May/Feb median ratio %.2f (paper: declines); "+
		"international May/Feb %.2f (paper: rises)\n",
		fb[experiments.PopDomestic][campus.May].Median/fb[experiments.PopDomestic][campus.February].Median,
		fb[experiments.PopInternational][campus.May].Median/fb[experiments.PopInternational][campus.February].Median)
}
