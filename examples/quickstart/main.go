// Quickstart: generate a small synthetic campus dataset, run it through the
// measurement pipeline, and print the headline results of the paper —
// twenty lines of code from nothing to §4.1.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/universe"
)

func main() {
	// The universe is the synthetic Internet: services, domains, IPs.
	reg, err := universe.New()
	if err != nil {
		log.Fatal(err)
	}

	// A 1% scale campus: ~150 students, ~350 devices, four months.
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.01
	gen, err := trace.New(cfg, reg)
	if err != nil {
		log.Fatal(err)
	}

	// The pipeline implements trace.Sink, so the generator streams
	// directly into it — no intermediate files needed.
	pipe, err := core.NewPipeline(reg, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.Run(pipe); err != nil {
		log.Fatal(err)
	}
	ds := pipe.Finalize()

	head := experiments.Headline(ds)
	pop := experiments.Population(ds)
	fmt.Printf("devices observed:        %d\n", len(ds.Devices))
	fmt.Printf("post-shutdown users:     %d (paper: 6,522 at full scale)\n", head.PostShutdownUsers)
	fmt.Printf("traffic growth Feb→Apr/May: %+.0f%% (paper: +58%%)\n", head.TrafficGrowth*100)
	fmt.Printf("distinct-site growth:    %+.0f%% (paper: +34%%)\n", head.DistinctSiteGrowth*100)
	fmt.Printf("international devices:   %d (%.0f%% of identified; paper: 18%%)\n",
		pop.International, pop.IntlShare*100)
}
