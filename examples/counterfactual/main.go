// Counterfactual compares the pandemic world against a simulated
// no-pandemic baseline year — the reproduction's stand-in for the paper's
// "traffic in April and May 2020 was 53% higher than in 2019" (§4.1).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/universe"
)

func buildWorld(reg *universe.Registry, noPandemic bool) (*core.Dataset, error) {
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.02
	cfg.NoPandemic = noPandemic
	gen, err := trace.New(cfg, reg)
	if err != nil {
		return nil, err
	}
	pipe, err := core.NewPipeline(reg, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := gen.Run(pipe); err != nil {
		return nil, err
	}
	return pipe.Finalize(), nil
}

func main() {
	reg, err := universe.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "simulating the pandemic world...")
	pandemic, err := buildWorld(reg, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "simulating the counterfactual (no-pandemic) world...")
	baseline, err := buildWorld(reg, true)
	if err != nil {
		log.Fatal(err)
	}

	// Population: the counterfactual campus never empties.
	f1p, f1b := experiments.Fig1(pandemic), experiments.Fig1(baseline)
	mayDay := campus.FirstDay(campus.May) + 5
	fmt.Printf("active devices on May 6:   pandemic %5d   counterfactual %5d\n",
		f1p.Total[mayDay], f1b.Total[mayDay])

	// Zoom: no online instruction in the counterfactual.
	f5p, f5b := experiments.Fig5(pandemic), experiments.Fig5(baseline)
	fmt.Printf("peak daily Zoom traffic:   pandemic %6.1f GB counterfactual %6.1f GB\n",
		f5p.Peak/(1<<30), f5b.Peak/(1<<30))

	// The year-over-year headline.
	yoy := experiments.YearOverYear(pandemic, baseline)
	fmt.Printf("\nApr+May bytes per active device-day: pandemic %.0f MB, baseline %.0f MB\n",
		yoy.PandemicPerDevice/(1<<20), yoy.BaselinePerDevice/(1<<20))
	fmt.Printf("year-over-year growth: %+.0f%%   (paper reports +53%% over 2019)\n", yoy.Growth*100)
	fmt.Println("\nThe overshoot is compositional: the students who stayed skew toward")
	fmt.Println("heavier users (international students who couldn't fly home, gamers).")
}
