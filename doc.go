// Package lockdownrepro is a from-scratch Go reproduction of "Locked-In
// during Lock-Down: Undergraduate Life on the Internet in a Pandemic"
// (Ukani, Mirian, Snoeren — ACM IMC 2021): the campus passive-measurement
// pipeline the study ran on, every analysis in its evaluation, and a
// calibrated synthetic campus workload standing in for the unreleasable
// residential-network capture.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The benchmarks in bench_test.go regenerate every
// figure.
package lockdownrepro
