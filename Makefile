# Standard targets for the lockdown reproduction.

GO ?= go

.PHONY: all build vet test test-short bench cover figures figures-full examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./internal/...

# Regenerate every figure at 5% scale into results/.
figures:
	$(GO) run ./cmd/lockdown -scale 0.05 -out results

# Paper-scale run (minutes; ~2 GB RAM).
figures-full:
	$(GO) run ./cmd/lockdown -scale 1.0 -out results_full

examples:
	$(GO) run ./examples/packets
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/subpopulations
	$(GO) run ./examples/socialmedia
	$(GO) run ./examples/gaming
	$(GO) run ./examples/counterfactual

clean:
	rm -rf results results_full
