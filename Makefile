# Standard targets for the lockdown reproduction.

GO ?= go

.PHONY: all build vet test test-short race lint lint-golangci lint-custom fuzz-smoke fault-smoke daemon-smoke cache-smoke append-smoke ci bench cover figures figures-full examples clean

BENCH_JSON ?= BENCH_$(shell date +%F).json
BENCH_SHARDED_JSON ?= BENCH_shards4_$(shell date +%F).json
BENCH_SHARDED_P2_JSON ?= BENCH_shards4_p2_$(shell date +%F).json
BENCH_P4_JSON ?= BENCH_p4_$(shell date +%F).json

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race pass at four scheduler procs so the lock-free ring, the
# route/figure worker pools, and the epoch-snapshot stores see real
# interleavings. -short keeps the generator-bound packages inside the
# time budget; the concurrency-heavy packages then rerun un-short so
# nothing the -short matrix narrows escapes the detector.
race:
	GOMAXPROCS=4 $(GO) test -race -short ./...
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		./internal/core ./internal/obs ./internal/dhcp ./internal/dnssim ./internal/logsink

# Standard linters plus the repository's custom invariant analyzers.
lint: lint-golangci lint-custom

# Prefer golangci-lint (same config CI uses); fall back to go vet when the
# binary isn't installed so the target still catches the worst offenders.
lint-golangci:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# cmd/lintlock enforces the privacy-boundary, determinism, obs-nil-guard,
# and hot-path-error invariants plus the concurrency protocols
# (atomiconly, poolsafe, goroutineowner, seqpin); the second pass audits
# every //lintlock:ignore directive for bare or stale suppressions (see
# README "Static analysis").
lint-custom:
	$(GO) run ./cmd/lintlock ./...
	$(GO) run ./cmd/lintlock -suppressions ./...

# Short negative-input fuzz pass over the external-format parsers;
# CI runs this on every push (see the fuzz-smoke job).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 30s ./internal/dnswire
	$(GO) test -run '^$$' -fuzz FuzzConnReader -fuzztime 30s ./internal/zeeklog
	$(GO) test -run '^$$' -fuzz FuzzLeaseLine -fuzztime 30s ./internal/dhcp
	$(GO) test -run '^$$' -fuzz FuzzHTTPEntry -fuzztime 30s ./internal/httplog

# Corruption-replay smoke: generate a 5%-scale dataset, replay it with 0.1%
# seeded corruption under the skip policy — once through the single
# pipeline and once through the 4-shard epoch-snapshot path, whose outputs
# must be byte-identical. CI additionally diffs the figure-CSV shapes
# against a clean replay and audits the sharded guard's accounting (see
# the fault-smoke job); the exhaustive differential harness is
# `go test ./internal/faultline -run TestDifferential`.
fault-smoke:
	$(GO) run ./cmd/tracegen -scale 0.05 -out faultlogs
	$(GO) run ./cmd/lockdown -logs faultlogs -quiet -out fault-skip \
		-key 6c6f636b646f776e2d6661756c742d736d6f6b65 \
		-fault-inject 0.001 -fault-seed 7 -fault-policy skip
	$(GO) run ./cmd/lockdown -logs faultlogs -quiet -out fault-skip-sharded \
		-key 6c6f636b646f776e2d6661756c742d736d6f6b65 \
		-shards 4 -fault-inject 0.001 -fault-seed 7 -fault-policy skip
	diff -r fault-skip fault-skip-sharded

# Service-mode smoke: generate a 5%-scale rotated dataset (two weeks
# around the shutdown), mark it complete, run the batch CLI over it, then
# start lockdownd on the same dataset and key, poll /v1/epoch until the
# final epoch is published, diff the queried figure CSVs and report
# against the batch files (must be byte-identical), and check that
# SIGTERM shuts the daemon down with exit code 0.
daemon-smoke:
	$(GO) run ./cmd/tracegen -scale 0.05 -rotate -days 36:50 -out daemonlogs
	touch daemonlogs/COMPLETE
	$(GO) run ./cmd/lockdown -logs daemonlogs -quiet -out daemon-batch \
		-key 6c6f636b646f776e642d736d6f6b652d6b6579
	$(GO) build -o bin/lockdownd ./cmd/lockdownd
	sh scripts/daemon_smoke.sh bin/lockdownd daemonlogs daemon-batch \
		6c6f636b646f776e642d736d6f6b652d6b6579 0.05

# Stage-cache smoke: a cold 5%-scale run populates the content-addressed
# cache, a warm rerun must hit every stage, emit byte-identical outputs,
# and clear a 3x wall-clock gate, and a figure-only knob change
# (-fig-workers) must reuse the cached stats while recomputing only
# figures (see scripts/cache_smoke.sh and the ci cache-smoke job; the go
# test variant is cmd/lockdown/cache_test.go).
cache-smoke:
	$(GO) build -o bin/lockdown ./cmd/lockdown
	sh scripts/cache_smoke.sh bin/lockdown cache-smoke-work \
		6c6f636b646f776e2d6661756c742d736d6f6b65 0.05

# One-day-append smoke: seed per-day checkpoints with a cached run over a
# 15-day dataset's 14-day prefix, append the final day, and require the
# rerun to replay exactly one day (statsday: replayed=1 misses=1 hits=1),
# emit outputs byte-identical to a cache-free full run, and land within a
# fixed multiple of the full run's single-day cost (see
# scripts/append_smoke.sh and the ci append-smoke job; the go test variant
# is cmd/lockdown/statsday_test.go).
append-smoke:
	$(GO) build -o bin/lockdown ./cmd/lockdown
	$(GO) build -o bin/tracegen ./cmd/tracegen
	sh scripts/append_smoke.sh bin/lockdown bin/tracegen append-smoke-work \
		6c6f636b646f776e2d6661756c742d736d6f6b65 0.05

ci: build vet test race lint

# Go micro-benchmarks plus machine-readable end-to-end bench reports
# (single and 4-shard batched ingest) that cmd/benchdiff can gate on. The
# GOMAXPROCS=2 sharded report mirrors CI's smoke-bench-parallel gate: the
# epoch-snapshot join must keep 4-shard ingest ahead of the single
# pipeline even at two cores. The GOMAXPROCS=4 -measure-scaling report
# mirrors the smoke-bench-parallel-4 scaling-efficiency gate; benchdiff
# applies the 0.4 floor only when the report's maxprocs AND hardware CPU
# count cover the shard count, so regenerating it on fewer cores records
# honest (time-sliced) numbers without tripping the gate.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/lockdown -scale 0.05 -quiet -out results-bench \
		-bench-json $(BENCH_JSON)
	$(GO) run ./cmd/lockdown -scale 0.05 -shards 4 -quiet -out results-bench-sharded \
		-bench-json $(BENCH_SHARDED_JSON)
	GOMAXPROCS=2 $(GO) run ./cmd/lockdown -scale 0.05 -shards 4 -quiet \
		-out results-bench-sharded-p2 -bench-json $(BENCH_SHARDED_P2_JSON)
	GOMAXPROCS=4 $(GO) run ./cmd/lockdown -scale 0.05 -shards 4 -quiet \
		-measure-scaling -out results-bench-p4 -bench-json $(BENCH_P4_JSON)
	@echo "wrote $(BENCH_JSON), $(BENCH_SHARDED_JSON), $(BENCH_SHARDED_P2_JSON) and $(BENCH_P4_JSON)"

cover:
	$(GO) test -cover ./internal/...

# Regenerate every figure at 5% scale into results/.
figures:
	$(GO) run ./cmd/lockdown -scale 0.05 -out results

# Paper-scale run (minutes; ~2 GB RAM).
figures-full:
	$(GO) run ./cmd/lockdown -scale 1.0 -out results_full

examples:
	$(GO) run ./examples/packets
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/subpopulations
	$(GO) run ./examples/socialmedia
	$(GO) run ./examples/gaming
	$(GO) run ./examples/counterfactual

clean:
	rm -rf results results_full results-bench results-bench-sharded \
		results-bench-sharded-p2 results-bench-p4 faultlogs fault-skip \
		fault-skip-sharded daemonlogs daemon-batch cache-smoke-work \
		append-smoke-work bin
