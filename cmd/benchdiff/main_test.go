package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func writeReport(t *testing.T, dir, name string, fps, fig1 float64) string {
	t.Helper()
	r := &obs.BenchReport{
		Date: "2026-08-05", Scale: 0.05, Shards: 1, Seed: 1, WallSeconds: 20,
		Ingest:    obs.IngestBench{Flows: 1000000, FlowsPerSec: fps, BytesPerSec: 5e8, Seconds: 18, Bytes: 9e9},
		FiguresMS: map[string]float64{"fig1": fig1},
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeScalingReport writes a report carrying the scaling-reference fields
// (a -measure-scaling run at the given shard count and maxprocs, on a
// machine with that many hardware CPUs).
func writeScalingReport(t *testing.T, dir, name string, shards, maxprocs int, eff float64) string {
	t.Helper()
	r := &obs.BenchReport{
		Date: "2026-08-09", Scale: 0.05, Shards: shards, MaxProcs: maxprocs,
		CPUs: maxprocs,
		Seed: 1, WallSeconds: 20,
		Ingest: obs.IngestBench{
			Flows: 1000000, FlowsPerSec: 100000, BytesPerSec: 5e8, Seconds: 18, Bytes: 9e9,
			SingleRefEventsPerSec:  200000,
			ShardedRefEventsPerSec: eff * 200000 * float64(shards),
			ScalingEfficiency:      eff,
		},
		FiguresMS: map[string]float64{"fig1": 10},
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiff(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", 100000, 10)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	okP := writeReport(t, dir, "ok.json", 97000, 10.4)
	if code, err := run(devnull, oldP, okP, 0.10, 0, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("within-tolerance diff: code %d, err %v", code, err)
	}

	badP := writeReport(t, dir, "bad.json", 70000, 10)
	if code, err := run(devnull, oldP, badP, 0.10, 0, 0, 0, ""); err != nil || code != 1 {
		t.Errorf("regressed diff: code %d, err %v; want 1, nil", code, err)
	}

	if _, err := run(devnull, oldP, filepath.Join(dir, "missing.json"), 0.10, 0, 0, 0, ""); err == nil {
		t.Error("missing report should error")
	}
}

func TestBenchdiffEfficiencyFloor(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	oldP := writeScalingReport(t, dir, "old.json", 4, 4, 0.55)

	// Meets the floor on a 4-core runner: pass.
	goodP := writeScalingReport(t, dir, "good.json", 4, 4, 0.52)
	if code, err := run(devnull, oldP, goodP, 0.30, 0.4, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("efficiency above floor: code %d, err %v; want 0", code, err)
	}

	// Below the floor with enough cores: fail.
	lowP := writeScalingReport(t, dir, "low.json", 4, 4, 0.25)
	if code, err := run(devnull, oldP, lowP, 0.99, 0.4, 0, 0, ""); err != nil || code != 1 {
		t.Errorf("efficiency below floor: code %d, err %v; want 1", code, err)
	}

	// Below the floor but maxprocs < shards: the floor is advisory-skipped
	// (shards time-slice one core; the quotient is not a scaling measure).
	slicedP := writeScalingReport(t, dir, "sliced.json", 4, 1, 0.25)
	if code, err := run(devnull, oldP, slicedP, 0.99, 0.4, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("floor under maxprocs<shards: code %d, err %v; want 0 (skipped)", code, err)
	}

	// GOMAXPROCS=4 forced on a single-CPU machine (the committed baseline's
	// configuration): maxprocs covers the shards but the hardware doesn't —
	// still time-slicing, still skipped.
	starved := &obs.BenchReport{
		Date: "2026-08-09", Scale: 0.05, Shards: 4, MaxProcs: 4, CPUs: 1,
		Seed: 1, WallSeconds: 20,
		Ingest: obs.IngestBench{
			Flows: 1000000, FlowsPerSec: 100000, BytesPerSec: 5e8, Seconds: 18, Bytes: 9e9,
			SingleRefEventsPerSec:  200000,
			ShardedRefEventsPerSec: 0.25 * 200000 * 4,
			ScalingEfficiency:      0.25,
		},
		FiguresMS: map[string]float64{"fig1": 10},
	}
	starvedP := filepath.Join(dir, "starved.json")
	if err := starved.WriteFile(starvedP); err != nil {
		t.Fatal(err)
	}
	if code, err := run(devnull, oldP, starvedP, 0.99, 0.4, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("floor under cpus<shards: code %d, err %v; want 0 (skipped)", code, err)
	}

	// Candidate without scaling fields at all (old-format report): floor
	// not applied, comparison still runs.
	plainP := writeReport(t, dir, "plain.json", 100000, 10)
	if code, err := run(devnull, oldP, plainP, 0.99, 0.4, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("floor with no scaling fields: code %d, err %v; want 0", code, err)
	}
}

// TestBenchdiffEffRegressGate: -max-eff-regress applies a tighter relative
// tolerance to scaling_efficiency than the blanket -max-regress.
func TestBenchdiffEffRegressGate(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	oldP := writeScalingReport(t, dir, "old.json", 4, 4, 0.60)

	// A 20% efficiency drop passes the blanket 30% tolerance...
	dropP := writeScalingReport(t, dir, "drop.json", 4, 4, 0.48)
	if code, err := run(devnull, oldP, dropP, 0.30, 0, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("20%% drop under blanket 30%%: code %d, err %v; want 0", code, err)
	}
	// ...but fails the dedicated 10% efficiency gate.
	if code, err := run(devnull, oldP, dropP, 0.30, 0, 0.10, 0, ""); err != nil || code != 1 {
		t.Errorf("20%% drop under -max-eff-regress 0.10: code %d, err %v; want 1", code, err)
	}
	// A 5% drop clears both.
	okP := writeScalingReport(t, dir, "ok.json", 4, 4, 0.57)
	if code, err := run(devnull, oldP, okP, 0.30, 0, 0.10, 0, ""); err != nil || code != 0 {
		t.Errorf("5%% drop under -max-eff-regress 0.10: code %d, err %v; want 0", code, err)
	}
}

// TestBenchdiffOldBaselineCompat: a baseline written before the scaling
// fields existed must diff cleanly against a candidate that has them — the
// new metrics are skipped, not treated as regressions (the same pattern the
// epoch counters established).
func TestBenchdiffOldBaselineCompat(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	oldP := writeReport(t, dir, "old.json", 100000, 10)
	newP := writeScalingReport(t, dir, "new.json", 4, 4, 0.5)
	if code, err := run(devnull, oldP, newP, 0.30, 0, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("old baseline vs scaling candidate: code %d, err %v; want 0", code, err)
	}
	// Reversed: scaling baseline against a plain candidate also skips.
	if code, err := run(devnull, newP, oldP, 0.99, 0, 0, 0, ""); err != nil || code != 0 {
		t.Errorf("scaling baseline vs plain candidate: code %d, err %v; want 0", code, err)
	}
}

// TestBenchdiffFiguresWallCeiling: -max-figures-wall-ms is an absolute
// ceiling on the candidate's figure phase, independent of the baseline;
// candidates without the metric (figures replayed from cache) skip it with
// a note instead of failing.
func TestBenchdiffFiguresWallCeiling(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	write := func(name string, wallMS float64) string {
		r := &obs.BenchReport{
			Date: "2026-08-09", Scale: 0.05, Shards: 1, Seed: 1, WallSeconds: 20,
			Ingest:        obs.IngestBench{Flows: 1000000, FlowsPerSec: 100000, BytesPerSec: 5e8, Seconds: 18, Bytes: 9e9},
			FiguresMS:     map[string]float64{"fig1": 10},
			FiguresWallMS: wallMS,
		}
		path := filepath.Join(dir, name)
		if err := r.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldP := write("old.json", 120)

	okP := write("ok.json", 130)
	if code, err := run(devnull, oldP, okP, 0.30, 0, 0, 500, ""); err != nil || code != 0 {
		t.Errorf("under ceiling: code %d, err %v; want 0", code, err)
	}

	// Over the ceiling fails even when the relative tolerance would pass.
	slowP := write("slow.json", 900)
	if code, err := run(devnull, oldP, slowP, 9.99, 0, 0, 500, ""); err != nil || code != 1 {
		t.Errorf("over ceiling: code %d, err %v; want 1", code, err)
	}

	// Candidate without the metric (warm figures cache): ceiling skipped.
	plainP := writeReport(t, dir, "plain.json", 100000, 10)
	if code, err := run(devnull, oldP, plainP, 9.99, 0, 0, 500, ""); err != nil || code != 0 {
		t.Errorf("ceiling with no figures_wall_ms: code %d, err %v; want 0", code, err)
	}
}

// TestBenchdiffSummary: the -summary file accumulates a markdown table per
// invocation (append semantics for $GITHUB_STEP_SUMMARY) and flags both
// relative regressions and floor failures.
func TestBenchdiffSummary(t *testing.T) {
	dir := t.TempDir()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	sum := filepath.Join(dir, "summary.md")
	oldP := writeScalingReport(t, dir, "old.json", 4, 4, 0.55)
	lowP := writeScalingReport(t, dir, "low.json", 4, 4, 0.25)

	if code, err := run(devnull, oldP, lowP, 0.99, 0.4, 0, 0, sum); err != nil || code != 1 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	if code, err := run(devnull, oldP, lowP, 0.99, 0, 0, 0, sum); err != nil || code != 0 {
		t.Fatalf("second run: code %d, err %v", code, err)
	}
	data, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if n := strings.Count(text, "### benchdiff:"); n != 2 {
		t.Errorf("summary holds %d sections, want 2 (append semantics)", n)
	}
	for _, want := range []string{
		"| metric | old | new | ratio | status |",
		"ingest.scaling_efficiency",
		"FLOOR FAILED",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}
