package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func writeReport(t *testing.T, dir, name string, fps, fig1 float64) string {
	t.Helper()
	r := &obs.BenchReport{
		Date: "2026-08-05", Scale: 0.05, Shards: 1, Seed: 1, WallSeconds: 20,
		Ingest:    obs.IngestBench{Flows: 1000000, FlowsPerSec: fps, BytesPerSec: 5e8, Seconds: 18, Bytes: 9e9},
		FiguresMS: map[string]float64{"fig1": fig1},
	}
	path := filepath.Join(dir, name)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiff(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", 100000, 10)
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	okP := writeReport(t, dir, "ok.json", 97000, 10.4)
	if code, err := run(devnull, oldP, okP, 0.10); err != nil || code != 0 {
		t.Errorf("within-tolerance diff: code %d, err %v", code, err)
	}

	badP := writeReport(t, dir, "bad.json", 70000, 10)
	if code, err := run(devnull, oldP, badP, 0.10); err != nil || code != 1 {
		t.Errorf("regressed diff: code %d, err %v; want 1, nil", code, err)
	}

	if _, err := run(devnull, oldP, filepath.Join(dir, "missing.json"), 0.10); err == nil {
		t.Error("missing report should error")
	}
}
