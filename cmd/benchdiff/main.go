// Command benchdiff compares two machine-readable bench reports written by
// `lockdown -bench-json` (BENCH_<date>.json) and exits non-zero when the
// new run regressed beyond the tolerance — the CI gate for the pipeline's
// throughput and per-figure compute times.
//
// Usage:
//
//	benchdiff -old BENCH_2026-08-01.json -new BENCH_2026-08-05.json [-max-regress 0.10]
//	          [-min-efficiency 0.4]       absolute floor on ingest.scaling_efficiency
//	          [-max-figures-wall-ms 500]  absolute ceiling on figures_wall_ms
//	          [-summary summary.md]       also write a markdown summary table
//
// Throughput metrics (flows/sec, bytes/sec, scaling_efficiency) regress by
// dropping; timing metrics (wall seconds, per-figure milliseconds) regress
// by growing. Metrics present in only one report are skipped, so figures
// can be added or retired — and scaling fields can appear — without
// breaking the gate against an older baseline.
//
// -max-figures-wall-ms is an absolute ceiling on the candidate's figure
// phase: relative gates drift with their baseline, so the incremental-stats
// contract (figures must stay cheap enough to recompute at every day seal)
// gets a fixed bound instead. Skipped with a note when the candidate report
// lacks figures_wall_ms.
//
// -min-efficiency is an absolute floor, not a relative tolerance: it fails
// the candidate run whenever its scaling_efficiency falls below the floor,
// regardless of the baseline. The floor is skipped (with a printed note)
// when the candidate ran with maxprocs < shards, or on fewer hardware
// CPUs than shards — shards time-slicing one core measure scheduling
// overhead, not scaling — so the gate only binds on runners that actually
// have the cores (the CI parallel job).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	oldPath := flag.String("old", "", "baseline bench report")
	newPath := flag.String("new", "", "candidate bench report")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional slowdown (0.10 = 10%)")
	minEfficiency := flag.Float64("min-efficiency", 0, "absolute floor on the candidate's ingest.scaling_efficiency (0 = no floor); skipped when the candidate ran with maxprocs or hardware CPUs < shards")
	maxEffRegress := flag.Float64("max-eff-regress", 0, "tighter tolerated fractional drop for ingest.scaling_efficiency alone (0 = use -max-regress)")
	maxFigWallMS := flag.Float64("max-figures-wall-ms", 0, "absolute ceiling on the candidate's figures_wall_ms (0 = no ceiling); skipped when the candidate report lacks the metric")
	summaryPath := flag.String("summary", "", "also write a markdown per-metric summary table to this path (append mode — suitable for $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	code, err := run(os.Stdout, *oldPath, *newPath, *maxRegress, *minEfficiency, *maxEffRegress, *maxFigWallMS, *summaryPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(w io.Writer, oldPath, newPath string, maxRegress, minEfficiency, maxEffRegress, maxFigWallMS float64, summaryPath string) (int, error) {
	oldR, err := obs.LoadBench(oldPath)
	if err != nil {
		return 0, err
	}
	newR, err := obs.LoadBench(newPath)
	if err != nil {
		return 0, err
	}
	if oldR.Scale != newR.Scale || oldR.Shards != newR.Shards {
		fmt.Fprintf(w, "note: comparing different configurations (scale %g/%g, shards %d/%d)\n",
			oldR.Scale, newR.Scale, oldR.Shards, newR.Shards)
	}
	deltas := obs.CompareBench(oldR, newR, maxRegress)
	if len(deltas) == 0 {
		return 0, fmt.Errorf("reports share no comparable metrics")
	}
	// scaling_efficiency is already shard-normalized, so it is far less
	// noisy than raw throughput on shared runners — it earns a tighter
	// relative gate than the blanket tolerance.
	if maxEffRegress > 0 {
		for i := range deltas {
			if deltas[i].Metric == "ingest.scaling_efficiency" {
				deltas[i].Regressed = deltas[i].Ratio < 1-maxEffRegress
			}
		}
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-28s %14.2f %14.2f %7.2fx%s\n", d.Metric, d.Old, d.New, d.Ratio, mark)
	}

	floorFailed := false
	var floorNote string
	if minEfficiency > 0 {
		eff := newR.Ingest.ScalingEfficiency
		switch {
		case eff <= 0:
			floorNote = fmt.Sprintf("note: candidate has no scaling_efficiency (not a -measure-scaling run); floor %.2f not applied", minEfficiency)
		case newR.MaxProcs > 0 && newR.MaxProcs < newR.Shards:
			floorNote = fmt.Sprintf("note: candidate ran %d shards on maxprocs=%d — efficiency %.3f measures time-slicing, floor %.2f not applied",
				newR.Shards, newR.MaxProcs, eff, minEfficiency)
		case newR.CPUs > 0 && newR.CPUs < newR.Shards:
			// GOMAXPROCS can be set above the hardware (the committed
			// single-vCPU baselines run with GOMAXPROCS=4): the env var
			// grants permission, the machine grants cores.
			floorNote = fmt.Sprintf("note: candidate ran %d shards on %d hardware CPU(s) — efficiency %.3f measures time-slicing, floor %.2f not applied",
				newR.Shards, newR.CPUs, eff, minEfficiency)
		case eff < minEfficiency:
			floorFailed = true
			floorNote = fmt.Sprintf("scaling_efficiency %.3f below floor %.2f (shards=%d, maxprocs=%d)",
				eff, minEfficiency, newR.Shards, newR.MaxProcs)
		default:
			floorNote = fmt.Sprintf("scaling_efficiency %.3f meets floor %.2f (shards=%d, maxprocs=%d)",
				eff, minEfficiency, newR.Shards, newR.MaxProcs)
		}
		fmt.Fprintln(w, floorNote)
	}

	ceilingFailed := false
	var ceilingNote string
	if maxFigWallMS > 0 {
		switch wall := newR.FiguresWallMS; {
		case wall <= 0:
			ceilingNote = fmt.Sprintf("note: candidate has no figures_wall_ms (figures replayed from cache); ceiling %.0fms not applied", maxFigWallMS)
		case wall > maxFigWallMS:
			ceilingFailed = true
			ceilingNote = fmt.Sprintf("figures_wall_ms %.1f above ceiling %.0fms", wall, maxFigWallMS)
		default:
			ceilingNote = fmt.Sprintf("figures_wall_ms %.1f meets ceiling %.0fms", wall, maxFigWallMS)
		}
		fmt.Fprintln(w, ceilingNote)
	}

	if newR.Cache != nil {
		fmt.Fprintf(w, "%s\n", cacheLine(newR.Cache))
	}

	if summaryPath != "" {
		if err := writeSummary(summaryPath, oldR, newR, deltas, floorNote, floorFailed, ceilingNote, ceilingFailed); err != nil {
			return 0, err
		}
	}

	if regressions > 0 || floorFailed || ceilingFailed {
		if regressions > 0 {
			fmt.Fprintf(w, "\n%d metric(s) regressed beyond %.0f%% (baseline %s, candidate %s)\n",
				regressions, maxRegress*100, oldR.Date, newR.Date)
		}
		return 1, nil
	}
	fmt.Fprintf(w, "\nno regressions beyond %.0f%%\n", maxRegress*100)
	return 0, nil
}

// writeSummary appends a GitHub-flavored markdown table of every compared
// metric — appending (not truncating) so several benchdiff invocations in
// one job can share $GITHUB_STEP_SUMMARY.
func writeSummary(path string, oldR, newR *obs.BenchReport, deltas []obs.BenchDelta, floorNote string, floorFailed bool, ceilingNote string, ceilingFailed bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "### benchdiff: %s vs %s (scale %g, shards %d)\n\n",
		oldR.Date, newR.Date, newR.Scale, newR.Shards)
	fmt.Fprintln(f, "| metric | old | new | ratio | status |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---|")
	for _, d := range deltas {
		status := "ok"
		if d.Regressed {
			status = "**REGRESSED**"
		}
		fmt.Fprintf(f, "| %s | %.2f | %.2f | %.2fx | %s |\n", d.Metric, d.Old, d.New, d.Ratio, status)
	}
	if floorNote != "" {
		if floorFailed {
			fmt.Fprintf(f, "\n**FLOOR FAILED:** %s\n", floorNote)
		} else {
			fmt.Fprintf(f, "\n%s\n", floorNote)
		}
	}
	if ceilingNote != "" {
		if ceilingFailed {
			fmt.Fprintf(f, "\n**CEILING FAILED:** %s\n", ceilingNote)
		} else {
			fmt.Fprintf(f, "\n%s\n", ceilingNote)
		}
	}
	if newR.Cache != nil {
		fmt.Fprintf(f, "\n%s\n", cacheLine(newR.Cache))
	}
	fmt.Fprintln(f)
	return f.Close()
}

// cacheLine renders a candidate report's stage-cache accounting (runs
// with -cache-dir write it; older reports simply lack it).
func cacheLine(c *obs.CacheBench) string {
	return fmt.Sprintf("cache: hits=%d misses=%d invalidations=%d verify_failures=%d",
		c.Hits, c.Misses, c.Invalidations, c.VerifyFailures)
}
