// Command benchdiff compares two machine-readable bench reports written by
// `lockdown -bench-json` (BENCH_<date>.json) and exits non-zero when the
// new run regressed beyond the tolerance — the CI gate for the pipeline's
// throughput and per-figure compute times.
//
// Usage:
//
//	benchdiff -old BENCH_2026-08-01.json -new BENCH_2026-08-05.json [-max-regress 0.10]
//
// Throughput metrics (flows/sec, bytes/sec) regress by dropping; timing
// metrics (wall seconds, per-figure milliseconds) regress by growing.
// Metrics present in only one report are skipped, so figures can be added
// or retired without breaking the gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	oldPath := flag.String("old", "", "baseline bench report")
	newPath := flag.String("new", "", "candidate bench report")
	maxRegress := flag.Float64("max-regress", 0.10, "tolerated fractional slowdown (0.10 = 10%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	code, err := run(os.Stdout, *oldPath, *newPath, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(w *os.File, oldPath, newPath string, maxRegress float64) (int, error) {
	oldR, err := obs.LoadBench(oldPath)
	if err != nil {
		return 0, err
	}
	newR, err := obs.LoadBench(newPath)
	if err != nil {
		return 0, err
	}
	if oldR.Scale != newR.Scale || oldR.Shards != newR.Shards {
		fmt.Fprintf(w, "note: comparing different configurations (scale %g/%g, shards %d/%d)\n",
			oldR.Scale, newR.Scale, oldR.Shards, newR.Shards)
	}
	deltas := obs.CompareBench(oldR, newR, maxRegress)
	if len(deltas) == 0 {
		return 0, fmt.Errorf("reports share no comparable metrics")
	}
	fmt.Fprintf(w, "%-28s %14s %14s %8s\n", "metric", "old", "new", "ratio")
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-28s %14.2f %14.2f %7.2fx%s\n", d.Metric, d.Old, d.New, d.Ratio, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d metric(s) regressed beyond %.0f%% (baseline %s, candidate %s)\n",
			regressions, maxRegress*100, oldR.Date, newR.Date)
		return 1, nil
	}
	fmt.Fprintf(w, "\nno regressions beyond %.0f%%\n", maxRegress*100)
	return 0, nil
}
