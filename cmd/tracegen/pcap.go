package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/dnswire"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/packet"
	"repro/internal/packetize"
	"repro/internal/pcap"
	"repro/internal/trace"
)

// maxPcapFlowBytes caps each direction of a flow when materializing
// packets. A faithful capture of an elephant flow is gigabytes of payload;
// pcap mode exists to exercise the packet → flow path, so large flows are
// truncated (the count of truncations is reported).
const maxPcapFlowBytes = 4 << 20

// pcapSink lowers generated flows to wire-format packets, including real
// RFC 1035 query/response payloads for DNS log entries. HTTP metadata has
// no packet representation (its flows are already in the conn stream); the
// conn-level ground truth is what cmd/flowmeter reconstructs.
type pcapSink struct {
	w         *pcap.Writer
	macs      map[netip.Addr]packet.MAC
	resolver  netip.Addr
	truncated int64
	dnsID     uint16
	warned    bool
}

func (s *pcapSink) Lease(l dhcp.Lease) { s.macs[l.Addr] = l.MAC }

func (s *pcapSink) Flow(r flow.Record) {
	mac, ok := s.macs[r.OrigAddr]
	if !ok {
		mac = packetize.GatewayMAC
	}
	if r.OrigBytes > maxPcapFlowBytes {
		r.OrigBytes = maxPcapFlowBytes
		s.truncated++
	}
	if r.RespBytes > maxPcapFlowBytes {
		r.RespBytes = maxPcapFlowBytes
		s.truncated++
	}
	if err := packetize.Emit(r, mac, func(ts time.Time, frame []byte) error {
		return s.w.WritePacket(ts, frame)
	}); err != nil && !s.warned {
		fmt.Fprintln(os.Stderr, "tracegen: packetize:", err)
		s.warned = true
	}
}

// DNS materializes a resolver log entry as a query/response packet pair.
func (s *pcapSink) DNS(e dnssim.Entry) {
	mac, ok := s.macs[e.Client]
	if !ok {
		mac = packetize.GatewayMAC
	}
	s.dnsID++
	qtype := dnswire.TypeA
	if e.Answer.Is6() && !e.Answer.Is4In6() {
		qtype = dnswire.TypeAAAA
	}
	query := &dnswire.Message{ID: s.dnsID, Name: e.Query, QType: qtype}
	resp := &dnswire.Message{
		ID: s.dnsID, Response: true, Name: e.Query, QType: qtype,
		Answers: []dnswire.Answer{{Addr: e.Answer, TTL: uint32(e.TTL.Seconds())}},
	}
	qb, err := query.Encode()
	if err != nil {
		s.warn(err)
		return
	}
	rb, err := resp.Encode()
	if err != nil {
		s.warn(err)
		return
	}
	sport := uint16(30000 + s.dnsID%30000)
	emit := func(ts time.Time, payload []byte, up bool) {
		eth := &packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		ip := &packet.IPv4{Protocol: packet.ProtoUDP, TTL: 64}
		udp := &packet.UDP{}
		if up {
			eth.Src, eth.Dst = mac, packetize.GatewayMAC
			ip.Src, ip.Dst = e.Client, s.resolver
			udp.SrcPort, udp.DstPort = sport, 53
		} else {
			eth.Src, eth.Dst = packetize.GatewayMAC, mac
			ip.Src, ip.Dst = s.resolver, e.Client
			udp.SrcPort, udp.DstPort = 53, sport
		}
		frame, err := packet.Serialize(payload, eth, ip, udp)
		if err != nil {
			s.warn(err)
			return
		}
		s.warn(s.w.WritePacket(ts, frame))
	}
	emit(e.Time, qb, true)
	emit(e.Time.Add(12*time.Millisecond), rb, false)
}

func (s *pcapSink) HTTPMeta(httplog.Entry) {}

func (s *pcapSink) warn(err error) {
	if err != nil && !s.warned {
		fmt.Fprintln(os.Stderr, "tracegen: pcap:", err)
		s.warned = true
	}
}

func runPcap(gen *trace.Generator, path string, from, to campus.Day, start time.Time) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := pcap.NewWriter(f)
	sink := &pcapSink{w: w, macs: make(map[netip.Addr]packet.MAC), resolver: gen.Resolver()}
	if err := gen.RunDays(sink, from, to); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d packets for days [%d,%d) to %s in %v (%d flow directions truncated to %s)\n",
		w.Count(), from, to, path, time.Since(start).Round(time.Millisecond),
		sink.truncated, "4MB")
	return nil
}
