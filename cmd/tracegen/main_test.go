package main

import "testing"

func TestParseDays(t *testing.T) {
	from, to, err := parseDays("0:121")
	if err != nil || from != 0 || to != 121 {
		t.Errorf("parseDays(0:121) = %d, %d, %v", from, to, err)
	}
	from, to, err = parseDays("10:11")
	if err != nil || from != 10 || to != 11 {
		t.Errorf("parseDays(10:11) = %d, %d, %v", from, to, err)
	}
	for _, bad := range []string{"", "10", "a:b", "10:", ":11", "1:2:3"} {
		if _, _, err := parseDays(bad); err == nil {
			t.Errorf("parseDays(%q) accepted", bad)
		}
	}
}
