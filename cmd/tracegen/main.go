// Command tracegen generates a synthetic campus dataset and writes it to
// disk as the four Zeek-style log files the measurement pipeline consumes
// (conn.log, dns.log, dhcp.log, http.log), or — at small scales — as a raw
// pcap that cmd/flowmeter can turn back into a conn.log.
//
// Usage:
//
//	tracegen -out dataset/ [-scale 0.05] [-seed 1] [-days 0:121]
//	tracegen -pcap capture.pcap -scale 0.002 -days 10:11
//	tracegen -out dataset/ -progress 5s   emit live event rates and ETA
//	tracegen -out dataset/ -cache-dir cache/   reuse an identical prior dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/logsink"
	"repro/internal/obs"
	"repro/internal/stagecache"
	"repro/internal/trace"
	"repro/internal/universe"
)

func main() {
	out := flag.String("out", "", "output directory for Zeek-style logs")
	pcapOut := flag.String("pcap", "", "write a packet-level pcap instead of logs (small scales only)")
	scale := flag.Float64("scale", 0.05, "population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	daysSpec := flag.String("days", "0:121", "day range from:to (day 0 = 2020-02-01)")
	gz := flag.Bool("gzip", false, "compress the log files (.gz)")
	rotate := flag.Bool("rotate", false, "rotate into one directory per study day (Zeek-style)")
	noPandemic := flag.Bool("no-pandemic", false, "generate the counterfactual baseline world")
	progress := flag.Duration("progress", 0, "emit a progress line at this interval (0 = off)")
	cacheDir := flag.String("cache-dir", "", "content-addressed stage cache directory (empty = no caching; -out only)")
	cacheMode := flag.String("cache-mode", "readwrite", "stage-cache mode: off, read or readwrite")
	flag.Parse()

	if (*out == "") == (*pcapOut == "") {
		fmt.Fprintln(os.Stderr, "tracegen: exactly one of -out or -pcap is required")
		os.Exit(2)
	}
	from, to, err := parseDays(*daysSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	cache, err := openCache(*cacheDir, *cacheMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	if err := run(*out, *pcapOut, *scale, *seed, from, to, *gz, *rotate, *noPandemic, *progress, cache); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// openCache resolves the cache flags (nil store = caching inactive).
func openCache(dir, modeStr string) (*stagecache.Store, error) {
	if dir == "" {
		return nil, nil
	}
	mode, err := stagecache.ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	return stagecache.Open(dir, mode, nil)
}

// datasetKey digests everything that shapes the emitted log bytes: the
// code version (generator calibration, writers, signature tables are all
// compile-time) plus every generation knob, including the encoding ones —
// a gzipped or rotated tree is a different artifact.
func datasetKey(scale float64, seed int64, from, to campus.Day, gz, rotate, noPandemic bool) (stagecache.Digest, error) {
	code, err := stagecache.CodeDigest()
	if err != nil {
		return "", err
	}
	h := stagecache.NewHasher("tracegen/dataset")
	h.Digest("code", code)
	h.Float("scale", scale)
	h.Int("seed", seed)
	h.Int("from", int64(from))
	h.Int("to", int64(to))
	h.Bool("gzip", gz)
	h.Bool("rotate", rotate)
	h.Bool("no_pandemic", noPandemic)
	return h.Sum(), nil
}

// countingSink wraps a sink with obs intake counters (flows carry their
// byte volume; DNS/HTTP/lease events count as unit events).
type countingSink struct {
	trace.Sink
	m *obs.Metrics
}

func (s countingSink) Flow(r flow.Record) {
	s.m.Add(obs.StageIngest, r.TotalBytes())
	s.Sink.Flow(r)
}

func (s countingSink) DNS(e dnssim.Entry) {
	s.m.Add(obs.StageIngest, 0)
	s.Sink.DNS(e)
}

func (s countingSink) HTTPMeta(e httplog.Entry) {
	s.m.Add(obs.StageIngest, 0)
	s.Sink.HTTPMeta(e)
}

func (s countingSink) Lease(l dhcp.Lease) {
	s.m.Add(obs.StageIngest, 0)
	s.Sink.Lease(l)
}

func parseDays(spec string) (campus.Day, campus.Day, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -days %q, want from:to", spec)
	}
	from, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -days %q: %v", spec, err)
	}
	to, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad -days %q: %v", spec, err)
	}
	return campus.Day(from), campus.Day(to), nil
}

func run(out, pcapOut string, scale float64, seed int64, from, to campus.Day, gz, rotate, noPandemic bool, progress time.Duration, cache *stagecache.Store) error {
	start := time.Now()
	var key stagecache.Digest
	if cache != nil && out != "" {
		var err error
		key, err = datasetKey(scale, seed, from, to, gz, rotate, noPandemic)
		if err != nil {
			return err
		}
		if cache.GetDir("dataset", key, out) {
			fmt.Fprintf(os.Stderr, "tracegen: dataset replayed from cache (%s) to %s in %v\n",
				cache.Summary(), out, time.Since(start).Round(time.Millisecond))
			return nil
		}
	}
	reg, err := universe.New()
	if err != nil {
		return err
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	cfg.NoPandemic = noPandemic
	gen, err := trace.New(cfg, reg)
	if err != nil {
		return err
	}
	if pcapOut != "" {
		return runPcap(gen, pcapOut, from, to, start)
	}
	var w interface {
		trace.Sink
		Close() error
	}
	switch {
	case rotate:
		w, err = logsink.NewRotatingWriter(out, gz)
	case gz:
		w, err = logsink.NewGzipWriter(out)
	default:
		w, err = logsink.NewWriter(out)
	}
	if err != nil {
		return err
	}
	var sink trace.Sink = w
	var prog *obs.Progress
	if progress > 0 {
		m := obs.NewMetrics()
		sink = countingSink{Sink: w, m: m}
		prog = obs.NewProgress(m, &obs.TextReporter{W: os.Stderr}, progress)
		prog.SetLabel("tracegen")
		prog.SetTotal(int64(to - from))
		prog.Start()
	}
	// Day-at-a-time driving is stream-identical to one RunDays call and
	// feeds the reporter exact day-level completion.
	for day := from; day < to; day++ {
		if err := gen.RunDays(sink, day, day+1); err != nil {
			prog.Stop()
			w.Close()
			return err
		}
		prog.SetDone(int64(day - from + 1))
	}
	prog.Stop()
	if err := w.Close(); err != nil {
		return err
	}
	if cache != nil {
		if err := cache.PutDir("dataset", key, nil, out); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote dataset for days [%d,%d) of %d devices to %s in %v\n",
		from, to, len(gen.Devices()), out, time.Since(start).Round(time.Millisecond))
	return nil
}
