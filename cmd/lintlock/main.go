// Command lintlock is the multichecker driver for the repository's custom
// static-analysis suite (internal/analysis). It enforces the two
// invariants the reproduction's methodology depends on — the privacy
// boundary around raw identifiers and byte-identical regeneration of
// results — plus the obs nil-receiver contract and hot-path error
// handling.
//
// Usage:
//
//	lintlock [-select privleak,determinism] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when clean, 1 when any diagnostic is reported, and 2 on a
// load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lintlock", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	selection := fs.String("select", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to run in (module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*selection)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}
	diags, err := analysis.Run(res, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lintlock: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
