// Command lintlock is the multichecker driver for the repository's custom
// static-analysis suite (internal/analysis). It enforces the invariants
// the reproduction's methodology depends on — the privacy boundary around
// raw identifiers, byte-identical regeneration of results, the obs
// nil-receiver contract, hot-path error handling — and the concurrency
// protocols the parallel ingest path is built on: all-or-nothing atomic
// field access, sync.Pool hygiene, owned goroutines, and seq-pinned
// reads of the shared epoch stores.
//
// Usage:
//
//	lintlock [-select privleak,determinism] [-list] [-json] [-summary file] [packages]
//	lintlock -suppressions [-json] [packages]
//
// Packages default to ./... relative to the current directory. In the
// default mode exit status is 0 when clean, 1 when any diagnostic is
// reported, and 2 on a load or usage error. With -suppressions the tool
// audits //lintlock:ignore directives instead of reporting findings:
// every directive is listed with file:line, analyzer, and justification,
// and the exit status is 1 if any directive is bare (no justification)
// or stale (names an analyzer that is not in the suite).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one diagnostic, emitted by
// -json as an array (never null — a clean run is `[]`).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonDirective is the machine-readable shape of one //lintlock:ignore
// directive in the -suppressions -json report.
type jsonDirective struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Analyzers     []string `json:"analyzers"`
	Justification string   `json:"justification"`
}

// jsonAudit is the top-level -suppressions -json document.
type jsonAudit struct {
	Directives []jsonDirective `json:"directives"`
	Issues     []jsonFinding   `json:"issues"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lintlock", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	selection := fs.String("select", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", ".", "directory to run in (module root)")
	audit := fs.Bool("suppressions", false, "audit //lintlock:ignore directives instead of reporting findings")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	summaryPath := fs.String("summary", "", "append a GitHub-flavored markdown summary to this file (e.g. $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := analysis.ByName(*selection)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}

	if *audit {
		return runAudit(res, analyzers, *asJSON, *summaryPath, stdout, stderr)
	}

	diags, err := analysis.Run(res, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "lintlock:", err)
		return 2
	}
	if *asJSON {
		if err := json.NewEncoder(stdout).Encode(toFindings(diags)); err != nil {
			fmt.Fprintln(stderr, "lintlock:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *summaryPath != "" {
		if err := writeSummary(*summaryPath, len(analyzers), diags); err != nil {
			fmt.Fprintln(stderr, "lintlock:", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lintlock: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runAudit implements -suppressions: list every directive, then fail if
// any is bare or stale.
func runAudit(res *analysis.Result, analyzers []*analysis.Analyzer, asJSON bool, summaryPath string, stdout, stderr io.Writer) int {
	dirs, issues := analysis.AuditSuppressions(res, analyzers)
	if asJSON {
		doc := jsonAudit{Directives: make([]jsonDirective, 0, len(dirs)), Issues: toFindings(issues)}
		for _, d := range dirs {
			doc.Directives = append(doc.Directives, jsonDirective{
				File:          d.Pos.Filename,
				Line:          d.Pos.Line,
				Analyzers:     d.Analyzers,
				Justification: d.Justification,
			})
		}
		if err := json.NewEncoder(stdout).Encode(doc); err != nil {
			fmt.Fprintln(stderr, "lintlock:", err)
			return 2
		}
	} else {
		for _, d := range dirs {
			fmt.Fprintln(stdout, d)
		}
		for _, d := range issues {
			fmt.Fprintln(stdout, d)
		}
	}
	if summaryPath != "" {
		if err := writeAuditSummary(summaryPath, dirs, issues); err != nil {
			fmt.Fprintln(stderr, "lintlock:", err)
			return 2
		}
	}
	if len(issues) > 0 {
		fmt.Fprintf(stderr, "lintlock: %d suppression issue(s)\n", len(issues))
		return 1
	}
	return 0
}

func toFindings(diags []analysis.Diagnostic) []jsonFinding {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// writeSummary appends a GitHub-flavored markdown table of findings —
// appending (not truncating), same as benchdiff's, so several tool
// invocations in one job can share $GITHUB_STEP_SUMMARY.
func writeSummary(path string, nAnalyzers int, diags []analysis.Diagnostic) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if len(diags) == 0 {
		fmt.Fprintf(f, "### lintlock: clean (%d analyzers)\n\n", nAnalyzers)
		return f.Close()
	}
	fmt.Fprintf(f, "### lintlock: %d finding(s)\n\n", len(diags))
	fmt.Fprintln(f, "| location | analyzer | message |")
	fmt.Fprintln(f, "|---|---|---|")
	for _, d := range diags {
		fmt.Fprintf(f, "| %s:%d:%d | %s | %s |\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	fmt.Fprintln(f)
	return f.Close()
}

// writeAuditSummary appends the -suppressions report as a markdown table.
func writeAuditSummary(path string, dirs []analysis.Directive, issues []analysis.Diagnostic) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "### lintlock suppressions: %d directive(s), %d issue(s)\n\n", len(dirs), len(issues))
	if len(dirs) > 0 {
		fmt.Fprintln(f, "| location | analyzers | justification |")
		fmt.Fprintln(f, "|---|---|---|")
		for _, d := range dirs {
			j := d.Justification
			if j == "" {
				j = "**(bare)**"
			}
			fmt.Fprintf(f, "| %s:%d | %s | %s |\n", d.Pos.Filename, d.Pos.Line, strings.Join(d.Analyzers, ","), j)
		}
		fmt.Fprintln(f)
	}
	for _, d := range issues {
		fmt.Fprintf(f, "- **ISSUE:** %s\n", d)
	}
	if len(issues) > 0 {
		fmt.Fprintln(f)
	}
	return f.Close()
}
