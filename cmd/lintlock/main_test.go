package main

// CLI-level tests: build the real binary once, run it against a known-bad
// fixture module (own go.mod, deliberate violations of all eight
// invariants) and a known-good one, asserting exit status and
// diagnostics end to end — driver, loader, and analyzers together.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func lintlockBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lintlock")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "lintlock")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building lintlock: %v", buildErr)
	}
	return binPath
}

// runIn executes the built binary in dir and returns stdout+stderr and
// the exit code.
func runIn(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(lintlockBin(t), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running lintlock: %v\n%s", err, out)
	}
	return string(out), exitErr.ExitCode()
}

func TestBadModuleFailsWithAllEightAnalyzers(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "badmod"), "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on the bad module, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"privleak", "raw identifier type",
		"determinism", "reads the wall clock", "random order",
		"obsnil", "nil guard",
		"errpath", "unchecked error",
		"atomiconly", "plain read of",
		"poolsafe", "escapes through exported",
		"goroutineowner", "no provable shutdown edge",
		"seqpin", "without a sequence pin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGoodModulePasses(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "goodmod"), "./...")
	if code != 0 {
		t.Fatalf("want exit 0 on the clean module, got %d\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("unexpected output on clean module:\n%s", out)
	}
}

func TestSelectRestrictsAnalyzers(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "badmod"), "-select", "errpath", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "errpath") || strings.Contains(out, "privleak") {
		t.Fatalf("-select errpath ran the wrong analyzers:\n%s", out)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	out, code := runIn(t, ".", "-select", "nope", "./...")
	if code != 2 {
		t.Fatalf("want exit 2 for unknown analyzer, got %d\n%s", code, out)
	}
}

func TestListPrintsSuite(t *testing.T) {
	out, code := runIn(t, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit %d\n%s", code, out)
	}
	for _, name := range []string{
		"privleak", "determinism", "obsnil", "errpath",
		"atomiconly", "poolsafe", "goroutineowner", "seqpin",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %s:\n%s", name, out)
		}
	}
}

// TestJSONFindings checks the -json findings shape on the bad module:
// stdout must begin with a parseable JSON array (the trailing
// "N finding(s)" line goes to stderr and CombinedOutput interleaves it
// at the end).
func TestJSONFindings(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "badmod"), "-json", "-select", "seqpin", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, out)
	}
	line, _, _ := strings.Cut(out, "\n")
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(line), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty findings array on the bad module")
	}
	f := findings[0]
	if f.Analyzer != "seqpin" || f.Line == 0 || !strings.Contains(f.File, "resolve.go") {
		t.Fatalf("unexpected finding shape: %+v", f)
	}
}

// TestJSONCleanIsEmptyArray: a clean run must emit `[]`, not null, so
// downstream jq/scripts can iterate without guards.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "goodmod"), "-json", "./...")
	if code != 0 {
		t.Fatalf("want exit 0, got %d\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Fatalf("clean -json output not []:\n%s", out)
	}
}

func TestSummaryAppendsMarkdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	if err := os.WriteFile(path, []byte("pre-existing content\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runIn(t, filepath.Join("testdata", "badmod"), "-summary", abs, "-select", "atomiconly", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if !strings.HasPrefix(s, "pre-existing content\n") {
		t.Fatalf("-summary truncated instead of appending:\n%s", s)
	}
	for _, want := range []string{"### lintlock:", "| location | analyzer | message |", "atomiconly", "plain read of"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestSummaryCleanRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	abs, err := filepath.Abs(path)
	if err != nil {
		t.Fatal(err)
	}
	_, code := runIn(t, filepath.Join("testdata", "goodmod"), "-summary", abs, "./...")
	if code != 0 {
		t.Fatalf("want exit 0, got %d", code)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "lintlock: clean") {
		t.Fatalf("clean summary missing the clean banner:\n%s", got)
	}
}

// TestSuppressionsAuditFailsOnBareAndStale runs the audit over a fixture
// module holding one justified, one stale, and one bare directive.
func TestSuppressionsAuditFailsOnBareAndStale(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "suppressmod"), "-suppressions", "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on bare+stale directives, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"mix.go", "determinism", // every directive listed with file and analyzer
		"fixture clock feeds the audit test only", // justification text surfaces
		"stale ignore directive", "clockcheck",    // stale names the dead analyzer
		"needs an analyzer name and a justification", // the bare directive
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q:\n%s", want, out)
		}
	}
}

// TestSuppressionsAuditCleanModule: justified-only directives list but
// do not fail.
func TestSuppressionsAuditCleanModule(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "goodmod"), "-suppressions", "./...")
	if code != 0 {
		t.Fatalf("want exit 0 on justified-only directives, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "startup banner timestamp") {
		t.Fatalf("audit did not list the justified directive:\n%s", out)
	}
}

func TestSuppressionsJSON(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "suppressmod"), "-suppressions", "-json", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, out)
	}
	line, _, _ := strings.Cut(out, "\n")
	var doc struct {
		Directives []struct {
			File          string   `json:"file"`
			Line          int      `json:"line"`
			Analyzers     []string `json:"analyzers"`
			Justification string   `json:"justification"`
		} `json:"directives"`
		Issues []struct {
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"issues"`
	}
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("-suppressions -json output unparseable: %v\n%s", err, out)
	}
	if len(doc.Directives) != 2 {
		t.Fatalf("want 2 directives (bare ones are issues, not entries), got %d: %+v",
			len(doc.Directives), doc.Directives)
	}
	if len(doc.Issues) != 2 {
		t.Fatalf("want 2 issues (1 stale + 1 bare), got %d: %+v", len(doc.Issues), doc.Issues)
	}
}
