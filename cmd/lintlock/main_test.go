package main

// CLI-level tests: build the real binary once, run it against a known-bad
// fixture module (own go.mod, deliberate violations of all four
// invariants) and a known-good one, asserting exit status and
// diagnostics end to end — driver, loader, and analyzers together.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func lintlockBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lintlock")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "lintlock")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building lintlock: %v", buildErr)
	}
	return binPath
}

// runIn executes the built binary in dir and returns stdout+stderr and
// the exit code.
func runIn(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(lintlockBin(t), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running lintlock: %v\n%s", err, out)
	}
	return string(out), exitErr.ExitCode()
}

func TestBadModuleFailsWithAllFourAnalyzers(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "badmod"), "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on the bad module, got %d\n%s", code, out)
	}
	for _, want := range []string{
		"privleak", "raw identifier type",
		"determinism", "reads the wall clock", "random order",
		"obsnil", "nil guard",
		"errpath", "unchecked error",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGoodModulePasses(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "goodmod"), "./...")
	if code != 0 {
		t.Fatalf("want exit 0 on the clean module, got %d\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("unexpected output on clean module:\n%s", out)
	}
}

func TestSelectRestrictsAnalyzers(t *testing.T) {
	out, code := runIn(t, filepath.Join("testdata", "badmod"), "-select", "errpath", "./...")
	if code != 1 {
		t.Fatalf("want exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "errpath") || strings.Contains(out, "privleak") {
		t.Fatalf("-select errpath ran the wrong analyzers:\n%s", out)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	out, code := runIn(t, ".", "-select", "nope", "./...")
	if code != 2 {
		t.Fatalf("want exit 2 for unknown analyzer, got %d\n%s", code, out)
	}
}

func TestListPrintsSuite(t *testing.T) {
	out, code := runIn(t, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit %d\n%s", code, out)
	}
	for _, name := range []string{"privleak", "determinism", "obsnil", "errpath"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %s:\n%s", name, out)
		}
	}
}
