// Package dhcp is a miniature epoch store; its unpinned Lookup exists so
// the core caller below can violate the seqpin contract.
package dhcp

// LeaseStore maps device pseudonyms to lease counts.
type LeaseStore struct{ m map[uint64]uint64 }

// Lookup reads the unpinned head — shard code must not call this.
func (s *LeaseStore) Lookup(dev uint64) uint64 { return s.m[dev] }

// LookupAt is the seq-pinned accessor shard code is supposed to use.
func (s *LeaseStore) LookupAt(pin uint64, dev uint64) uint64 { return s.m[dev] }

// RetainedBytes is an observability gauge, exempt from pinning.
func (s *LeaseStore) RetainedBytes() uint64 { return uint64(len(s.m)) * 16 }
