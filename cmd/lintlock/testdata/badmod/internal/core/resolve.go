package core

import "badmod/internal/dhcp"

// Resolve reads the shared store through the unpinned head from shard
// code — the seqpin analyzer must flag it.
func Resolve(s *dhcp.LeaseStore, dev uint64) uint64 {
	return s.Lookup(dev)
}
