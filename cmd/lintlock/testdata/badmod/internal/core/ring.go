// Package core violates the concurrency-protocol invariants on purpose:
// mixed plain/atomic field access, a pooled object escaping an exported
// API, and a goroutine with no shutdown edge.
package core

import (
	"sync"
	"sync/atomic"
)

type ring struct {
	head uint64
	tail uint64
}

func (r *ring) push() { atomic.AddUint64(&r.tail, 1) }
func (r *ring) pop()  { atomic.AddUint64(&r.head, 1) }

// length mixes plain reads of both cursors with the atomic accesses above.
func (r *ring) length() int { return int(r.tail - r.head) }

// Watch leaks: the goroutine spins forever with no WaitGroup, close
// signal, or ignore directive.
func Watch(r *ring) {
	go func() {
		for {
			_ = r.length()
		}
	}()
}

type batch struct {
	n     int
	items []int
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

// Take hands a pooled batch to arbitrary callers.
func Take() *batch { return batchPool.Get().(*batch) }
