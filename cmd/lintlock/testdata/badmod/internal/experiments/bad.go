// Package experiments violates the privacy and determinism invariants on
// purpose; the lintlock CLI test asserts each analyzer fires on it.
package experiments

import (
	"net/netip"
	"time"
)

// PerClient leaks a raw client address into a results record.
type PerClient struct {
	Addr  netip.Addr
	Bytes int64
}

// Stamp reads the wall clock on the results path.
func Stamp() time.Time { return time.Now() }

// Keys lets map iteration order escape unsorted.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
