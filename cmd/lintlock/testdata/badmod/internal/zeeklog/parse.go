// Package zeeklog drops a hot-path error on purpose.
package zeeklog

import "errors"

func advance() error { return errors.New("short read") }

// Next silently discards a parse error.
func Next() string {
	advance()
	return ""
}
