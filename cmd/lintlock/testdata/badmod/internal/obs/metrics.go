// Package obs violates the nil-receiver contract on purpose.
package obs

// Metrics is a handle the pipeline may hold as nil.
type Metrics struct{ count int64 }

// Add is missing its nil guard.
func (m *Metrics) Add(n int64) { m.count += n }
