// Package dhcp is the clean counterpart store: core only calls the
// seq-pinned accessor.
package dhcp

// LeaseStore maps device pseudonyms to lease counts.
type LeaseStore struct{ m map[uint64]uint64 }

// Lookup reads the unpinned head; nothing in this module's shard code
// calls it.
func (s *LeaseStore) Lookup(dev uint64) uint64 { return s.m[dev] }

// LookupAt is the seq-pinned accessor.
func (s *LeaseStore) LookupAt(pin uint64, dev uint64) uint64 { return s.m[dev] }
