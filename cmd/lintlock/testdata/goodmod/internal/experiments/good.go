// Package experiments is clean under every analyzer; the one wall-clock
// read carries a justified suppression, which the -suppressions audit
// lists without failing.
package experiments

import (
	"sort"
	"time"
)

// Stamp's clock read never reaches a results record.
func Stamp() time.Time {
	//lintlock:ignore determinism startup banner timestamp, not results-path
	return time.Now()
}

// Record is pseudonym-based.
type Record struct {
	Device uint64
	Bytes  int64
}

// Keys sorts before the order can escape.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
