// Package experiments is clean under every analyzer.
package experiments

import "sort"

// Record is pseudonym-based.
type Record struct {
	Device uint64
	Bytes  int64
}

// Keys sorts before the order can escape.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
