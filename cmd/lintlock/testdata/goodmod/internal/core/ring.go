// Package core is clean under the concurrency-protocol analyzers: typed
// atomics accessed through their method set, an owned goroutine with a
// close-signaled stop and WaitGroup edge, and pool discipline with a
// reset before Put.
package core

import (
	"sync"
	"sync/atomic"
)

type ring struct {
	head atomic.Uint64
	tail atomic.Uint64
}

func (r *ring) push()       { r.tail.Add(1) }
func (r *ring) pop()        { r.head.Add(1) }
func (r *ring) length() int { return int(r.tail.Load() - r.head.Load()) }

// Watch runs until stop closes; wg.Done gives the owner a join edge.
func Watch(r *ring, stop <-chan struct{}, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.length()
			}
		}
	}()
}

type batch struct {
	n     int
	items []int
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

// process recycles its batch with per-use state reset before Put.
func process() {
	b := batchPool.Get().(*batch)
	b.items = b.items[:0]
	b.n = 0
	batchPool.Put(b)
}
