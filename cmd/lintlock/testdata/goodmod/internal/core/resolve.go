package core

import "goodmod/internal/dhcp"

// resolve goes through the seq-pinned accessor, as shard code must.
func resolve(s *dhcp.LeaseStore, pin, dev uint64) uint64 {
	return s.LookupAt(pin, dev)
}
