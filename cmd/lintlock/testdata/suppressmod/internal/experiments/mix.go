// Package experiments exercises the CLI suppression audit: one justified
// directive, one stale directive naming an analyzer that left the suite,
// and one bare directive with no justification. -suppressions must list
// all three and exit 1.
package experiments

import "time"

// Stamp carries a justified suppression.
func Stamp() time.Time {
	//lintlock:ignore determinism fixture clock feeds the audit test only
	return time.Now()
}

// Stale names an analyzer that no longer exists.
func Stale() time.Time {
	//lintlock:ignore clockcheck this analyzer was removed long ago
	return time.Now()
}

// Bare has no justification.
func Bare() time.Time {
	//lintlock:ignore determinism
	return time.Now()
}
