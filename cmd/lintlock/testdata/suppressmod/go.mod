module suppressmod

go 1.22
