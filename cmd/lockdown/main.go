// Command lockdown runs the full reproduction end to end: it generates the
// synthetic campus workload (or a scaled-down version), streams it through
// the measurement pipeline, computes every figure and headline result from
// the paper, and writes CSV series plus an ASCII report.
//
// Usage:
//
//	lockdown [-scale 0.05] [-seed 1] [-out results/] [-quiet]
//	         [-logs dataset/]    ingest a tracegen dataset instead of generating
//	         [-shards N]         parallelize ingest across N pipeline shards
//	         [-yoy]              also simulate the counterfactual baseline year
//	         [-cpuprofile f]     write a CPU profile
//	         [-progress 5s]      emit live ingest progress (events/sec, ETA)
//	         [-progress-format text|json]
//	         [-debug-addr host:port]  expvar + pprof endpoint while running
//	         [-bench-json path]  write a machine-readable BENCH_<date>.json
//	         [-cache-dir d]      content-addressed stage cache (skip clean stages)
//	         [-cache-mode m]     off | read | readwrite (default readwrite)
//	         [-fig-workers n]    figure pool size (0 = GOMAXPROCS; output-neutral)
//
// Scale 1.0 reproduces paper-scale population counts (~32k peak devices,
// tens of millions of flows; allow several minutes and ~2 GB RAM). The
// default 0.05 runs in ~20 seconds and preserves every trend.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/anonymize"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/faultline"
	"repro/internal/figset"
	"repro/internal/logsink"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/stagecache"
	"repro/internal/trace"
	"repro/internal/universe"
	"repro/internal/viz"
)

func siBytes(v float64) string { return viz.SIBytes(v) }

// rotatedLayout reports whether dir holds a rotated dataset (per-day
// subdirectories) rather than a flat one (top-level conn.log).
func rotatedLayout(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, logsink.ConnFile)); err == nil {
		return false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() {
			if _, err := os.Stat(filepath.Join(dir, e.Name(), logsink.ConnFile)); err == nil {
				return true
			}
		}
	}
	return false
}

// config carries one run's settings (flag values; tests drive run directly).
type config struct {
	scale          float64
	seed           int64
	out            string
	logs           string
	shards         int
	yoy            bool
	quiet          bool
	progressEvery  time.Duration
	progressFormat string
	debugAddr      string
	benchJSON      string
	measureScaling bool

	// Stage-cache knobs: cacheDir roots the content-addressed store
	// (empty = no caching), cacheMode gates reads/writes, figWorkers
	// bounds the figure pool (a figure-only knob, so changing it
	// invalidates only the figures stage).
	cacheDir   string
	cacheMode  string
	figWorkers int

	// Fault-robustness knobs (only meaningful with -logs; the generator
	// path has no decode step to guard).
	faultPolicy string  // strict | skip | quarantine | abort
	faultBudget float64 // tolerated drop fraction under abort
	faultInject float64 // injected corruption rate (test/CI harness)
	faultSeed   int64   // corruption injector seed

	// key fixes the pseudonymization key (nil = random); tests and the CI
	// single-vs-sharded diffs use it to make two runs comparable (-key).
	key []byte
	// statusW receives status and progress lines (default os.Stderr).
	statusW io.Writer
}

func main() {
	var cfg config
	flag.Float64Var(&cfg.scale, "scale", 0.05, "population scale (1.0 = paper scale)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed")
	flag.StringVar(&cfg.out, "out", "results", "output directory for CSVs and report")
	flag.StringVar(&cfg.logs, "logs", "", "ingest a tracegen dataset directory instead of generating live")
	flag.IntVar(&cfg.shards, "shards", 1, "pipeline shards (0 = GOMAXPROCS; >1 parallelizes ingest)")
	flag.BoolVar(&cfg.yoy, "yoy", false, "also simulate the counterfactual baseline year (doubles runtime)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the terminal report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.DurationVar(&cfg.progressEvery, "progress", 0, "emit a progress line at this interval (0 = off)")
	flag.StringVar(&cfg.progressFormat, "progress-format", "text", "progress line format: text or json")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve expvar + pprof on this address while running (e.g. localhost:6060)")
	flag.StringVar(&cfg.benchJSON, "bench-json", "", "write a machine-readable bench report (a .json path, or a directory receiving BENCH_<date>.json)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "content-addressed stage cache directory (requires -key; empty = no caching)")
	flag.StringVar(&cfg.cacheMode, "cache-mode", "readwrite", "stage-cache mode: off, read or readwrite")
	flag.IntVar(&cfg.figWorkers, "fig-workers", 0, "figure finalization workers (0 = GOMAXPROCS); scheduling-only, never changes output bytes")
	flag.BoolVar(&cfg.measureScaling, "measure-scaling", false, "also measure single-vs-sharded reference rates on a recorded window and report scaling_efficiency (requires -bench-json and -shards ≥ 2)")
	flag.StringVar(&cfg.faultPolicy, "fault-policy", "strict", "decode-error policy for -logs replay: strict, skip, quarantine or abort")
	flag.Float64Var(&cfg.faultBudget, "fault-budget", 0.001, "tolerated dropped-record fraction under -fault-policy abort")
	flag.Float64Var(&cfg.faultInject, "fault-inject", 0, "inject seeded corruption into the replayed logs at this per-record rate (testing)")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "seed for -fault-inject corruption")
	keyHex := flag.String("key", "", "hex pseudonymization key; fixes device pseudonyms so two runs are byte-comparable (default: random per run)")
	flag.Parse()

	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdown: bad -key:", err)
			os.Exit(1)
		}
		cfg.key = key
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

// ingestPipeline abstracts Pipeline and ShardedPipeline for the harness.
type ingestPipeline interface {
	trace.Sink
	DeviceID(m packet.MAC) anonymize.DeviceID
	Finalize() *core.Dataset
}

func run(cfg config) error {
	start := time.Now()
	statusW := cfg.statusW
	if statusW == nil {
		statusW = os.Stderr
	}
	reg, err := universe.New()
	if err != nil {
		return err
	}

	// Observability: metrics exist whenever any consumer (progress lines,
	// debug endpoint, bench report) needs them; otherwise the pipeline
	// runs the uninstrumented fast path.
	var metrics *obs.Metrics
	if cfg.progressEvery > 0 || cfg.debugAddr != "" || cfg.benchJSON != "" {
		metrics = obs.NewMetrics()
	}
	if cfg.debugAddr != "" {
		dbg, err := obs.ServeDebug(cfg.debugAddr, metrics)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(statusW, "debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)\n", dbg.Addr())
	}
	var prog *obs.Progress
	if cfg.progressEvery > 0 {
		var rep obs.Reporter
		switch cfg.progressFormat {
		case "", "text":
			rep = &obs.TextReporter{W: statusW}
		case "json":
			rep = &obs.JSONReporter{W: statusW}
		default:
			return fmt.Errorf("bad -progress-format %q, want text or json", cfg.progressFormat)
		}
		prog = obs.NewProgress(metrics, rep, cfg.progressEvery)
		prog.SetLabel("ingest")
	}

	// Fault layer: policy guard and optional corruption injection apply to
	// dataset replay only — the generator path has no decode step.
	policy := faultline.PolicyStrict
	if cfg.faultPolicy != "" {
		policy, err = faultline.ParsePolicy(cfg.faultPolicy)
		if err != nil {
			return err
		}
	}
	if cfg.logs == "" && (policy != faultline.PolicyStrict || cfg.faultInject > 0) {
		return fmt.Errorf("-fault-policy/-fault-inject require -logs (nothing to decode on the generator path)")
	}

	rc, err := openRunCache(cfg, reg, metrics)
	if err != nil {
		return err
	}
	// Replayed datasets enter the stats key by content: hashing the whole
	// tree is what makes a single flipped input byte a different key.
	var logsDigest stagecache.Digest
	if rc.store != nil && cfg.logs != "" {
		logsDigest, _, err = stagecache.TreeDigest(cfg.logs)
		if err != nil {
			return err
		}
	}

	// Stats stage: the finalized Dataset plus the generator ground truth.
	// A verified cache hit replaces the entire ingest (and, in logs mode,
	// the truth-rebuild generator pass).
	truth := map[anonymize.DeviceID]devclass.Type{}
	var ds *core.Dataset
	var dsBytes, truthBytes []byte
	statsStatus := "off"
	var statsKey stagecache.Digest
	if rc.store != nil {
		statsKey = rc.statsKey(cfg, logsDigest, false)
		var hitDS *core.Dataset
		var hitTruth map[anonymize.DeviceID]devclass.Type
		if files, ok := rc.store.GetBytes("stats", statsKey, func(files map[string][]byte) error {
			d, err := core.DecodeDataset(files["dataset.bin"])
			if err != nil {
				return err
			}
			t, err := core.DecodeTruth(files["truth.bin"])
			if err != nil {
				return err
			}
			hitDS, hitTruth = d, t
			return nil
		}); ok {
			ds, truth = hitDS, hitTruth
			dsBytes, truthBytes = files["dataset.bin"], files["truth.bin"]
			statsStatus = "hit"
		} else {
			statsStatus = "miss"
		}
	}

	var guard *faultline.Guard
	var sd *statsdayResult
	ingestStart := time.Now()
	var ingestDur time.Duration
	if ds == nil {
		opts := core.Options{Key: cfg.key, Obs: metrics}
		newPipe := func() (ingestPipeline, error) {
			if cfg.shards == 1 {
				return core.NewPipeline(reg, opts)
			}
			return core.NewShardedPipeline(reg, opts, cfg.shards)
		}
		var replayOpts logsink.ReplayOptions
		if cfg.logs != "" {
			// Every replay gets a guard — under PolicyStrict it changes no
			// behavior (Reject stays transparent) but keeps the
			// offered/accepted accounting, so the end-of-run audit line is
			// always complete.
			var quarW io.Writer
			if policy == faultline.PolicyQuarantine {
				if err := os.MkdirAll(cfg.out, 0o755); err != nil {
					return err
				}
				qf, err := os.Create(filepath.Join(cfg.out, "quarantine.log"))
				if err != nil {
					return err
				}
				defer qf.Close()
				quarW = qf
			}
			guard = faultline.NewGuard(policy, cfg.faultBudget, quarW, metrics)
			replayOpts.Guard = guard
		}
		if cfg.faultInject > 0 {
			replayOpts.Inject = &faultline.Config{Seed: cfg.faultSeed, Rate: cfg.faultInject}
		}

		var pipe ingestPipeline
		if cfg.logs != "" {
			fmt.Fprintf(statusW, "replaying dataset from %s...\n", cfg.logs)
			prog.Start()
			if statsdayEligible(cfg, rc, policy) {
				// Incremental path: restore the deepest cached per-day
				// checkpoint and replay only the days past it.
				sd, err = runStatsday(cfg, rc, reg, opts, replayOpts)
				if err != nil {
					return err
				}
				pipe = sd.pipe
			} else {
				if pipe, err = newPipe(); err != nil {
					return err
				}
				// Auto-detect the dataset layout: a flat tracegen directory
				// has a top-level conn.log; a rotated one has per-day
				// subdirectories.
				replay := logsink.ReplayWithOptions
				if rotatedLayout(cfg.logs) {
					replay = logsink.ReplayRotatedWithOptions
				}
				if err := replay(cfg.logs, pipe, replayOpts); err != nil {
					return err
				}
			}
			// Ground truth for the accuracy experiment: rebuild the same
			// population the dataset was generated from (same scale/seed).
			gcfg := trace.DefaultConfig()
			gcfg.Scale = cfg.scale
			gcfg.Seed = cfg.seed
			gen, err := trace.New(gcfg, reg)
			if err != nil {
				return err
			}
			for _, d := range gen.Devices() {
				truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
			}
		} else {
			if pipe, err = newPipe(); err != nil {
				return err
			}
			gcfg := trace.DefaultConfig()
			gcfg.Scale = cfg.scale
			gcfg.Seed = cfg.seed
			gen, err := trace.New(gcfg, reg)
			if err != nil {
				return err
			}
			fmt.Fprintf(statusW, "generating %d devices over %d days (scale %.3g)...\n",
				len(gen.Devices()), campus.NumDays, cfg.scale)
			prog.SetTotal(int64(campus.NumDays))
			prog.Start()
			// Day-at-a-time driving is stream-identical to one Run call (the
			// generator derives all state per (device, day)) and gives the
			// progress reporter exact day-level completion for its ETA.
			for day := campus.Day(0); day < campus.NumDays; day++ {
				if err := gen.RunDays(pipe, day, day+1); err != nil {
					return err
				}
				prog.SetDone(int64(day) + 1)
			}
			for _, d := range gen.Devices() {
				truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
			}
		}
		ds = pipe.Finalize()
		ingestDur = time.Since(ingestStart)
		prog.Stop()
		fmt.Fprintf(statusW, "pipeline: %d flows, %d devices, %s processed in %v\n",
			ds.Stats.FlowsProcessed, len(ds.Devices), siBytes(float64(ds.Stats.BytesProcessed)), ingestDur.Round(time.Second))
		if sd != nil {
			// The probe accounting line the CI append-smoke asserts on.
			fmt.Fprintf(statusW, "%s\n", sd.line())
		}
		if rc.store != nil {
			dsBytes = core.EncodeDataset(ds)
			truthBytes = core.EncodeTruth(truth)
			if err := rc.store.PutBytes("stats", statsKey,
				map[string]stagecache.Digest{"code": rc.code, "rules": rc.rules, "dataset": logsDigest},
				map[string][]byte{"dataset.bin": dsBytes, "truth.bin": truthBytes}); err != nil {
				return err
			}
		}
	} else {
		ingestDur = time.Since(ingestStart)
		fmt.Fprintf(statusW, "pipeline: %d flows, %d devices, %s replayed from stats cache in %v\n",
			ds.Stats.FlowsProcessed, len(ds.Devices), siBytes(float64(ds.Stats.BytesProcessed)), ingestDur.Round(time.Millisecond))
	}
	if cfg.logs != "" {
		// The audit line prints for every replay run — including runs that
		// offered zero records because the stats stage came from cache.
		fmt.Fprintf(statusW, "fault guard: %s\n", guard.Summary())
	}

	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		return err
	}

	// Counterfactual baseline (generator mode only): its own stats-stage
	// entry keyed with no_pandemic=true, resolved before the figures stage
	// so the figures key can chain on the baseline's content.
	var baseDS *core.Dataset
	var yoyDigest stagecache.Digest
	if cfg.yoy && cfg.logs == "" {
		var baseBytes []byte
		var yoyKey stagecache.Digest
		if rc.store != nil {
			yoyKey = rc.statsKey(cfg, "", true)
			if files, ok := rc.store.GetBytes("stats", yoyKey, func(files map[string][]byte) error {
				d, err := core.DecodeDataset(files["dataset.bin"])
				if err != nil {
					return err
				}
				baseDS = d
				return nil
			}); ok {
				baseBytes = files["dataset.bin"]
				fmt.Fprintln(statusW, "counterfactual baseline replayed from stats cache")
			}
		}
		if baseDS == nil {
			fmt.Fprintln(statusW, "simulating counterfactual baseline year...")
			gcfg := trace.DefaultConfig()
			gcfg.Scale = cfg.scale
			gcfg.Seed = cfg.seed
			gcfg.NoPandemic = true
			baseGen, err := trace.New(gcfg, reg)
			if err != nil {
				return err
			}
			basePipe, err := core.NewPipeline(reg, core.Options{Key: cfg.key})
			if err != nil {
				return err
			}
			if err := baseGen.Run(basePipe); err != nil {
				return err
			}
			baseDS = basePipe.Finalize()
			if rc.store != nil {
				baseBytes = core.EncodeDataset(baseDS)
				if err := rc.store.PutBytes("stats", yoyKey,
					map[string]stagecache.Digest{"code": rc.code, "rules": rc.rules},
					map[string][]byte{"dataset.bin": baseBytes}); err != nil {
					return err
				}
			}
		}
		if rc.store != nil {
			yoyDigest = stagecache.ContentDigest(baseBytes)
		}
	}

	// Figures stage: every CSV plus the report, keyed on the content of
	// the stats payloads. A hit skips figure computation entirely — the
	// figure-only-change replay path.
	figStatus := "off"
	var artifacts map[string][]byte
	var figKey stagecache.Digest
	if rc.store != nil {
		figKey = rc.figuresKey(cfg,
			stagecache.ContentDigest(dsBytes), stagecache.ContentDigest(truthBytes), yoyDigest)
		if files, ok := rc.store.GetBytes("figures", figKey, validateArtifacts); ok {
			artifacts = files
			figStatus = "hit"
		} else {
			figStatus = "miss"
		}
	}
	figMS := map[string]float64{}
	var figWallMS float64
	if artifacts == nil {
		// Figure/stat finalization fans out over a bounded worker pool:
		// every figure is an independent pure function over the sealed
		// Dataset, each writing its own results slot, so they run
		// concurrently on whatever cores ingest just released. Per-figure
		// timings still land in figures_ms (localizing a regression to one
		// analysis); the pool's wall time is reported separately as
		// figures_wall_ms — on a multi-core host it is the max lane, not
		// the sum.
		var res *figset.Results
		res, figMS, figWallMS = figset.Compute(ds, figset.Params{
			Scale: cfg.scale, Seed: cfg.seed, Truth: truth, Workers: cfg.figWorkers,
		})
		if baseDS != nil {
			y := experiments.YearOverYear(ds, baseDS)
			res.YoY = &y
		}
		// render_csv stays serial — it reads every figure's slot.
		t0 := time.Now()
		artifacts, err = renderArtifacts(res)
		if err != nil {
			return err
		}
		figMS["render_csv"] = float64(time.Since(t0).Nanoseconds()) / 1e6
		if rc.store != nil {
			if err := rc.store.PutBytes("figures", figKey,
				map[string]stagecache.Digest{"dataset": stagecache.ContentDigest(dsBytes), "truth": stagecache.ContentDigest(truthBytes)},
				artifacts); err != nil {
				return err
			}
		}
	}

	// One render path feeds both the cache and the output directory, so a
	// cached figure set is byte-for-byte what a cold run writes.
	for _, name := range artifactNames() {
		if err := os.WriteFile(filepath.Join(cfg.out, name), artifacts[name], 0o644); err != nil {
			return err
		}
	}
	reportPath := filepath.Join(cfg.out, reportName)
	if !cfg.quiet {
		if _, err := os.Stdout.Write(artifacts[reportName]); err != nil {
			return err
		}
	}
	if cfg.cacheDir != "" {
		if rc.store == nil {
			fmt.Fprintf(statusW, "cache: %s\n", rc.note)
		} else {
			fmt.Fprintf(statusW, "cache: %s stats=%s figures=%s\n", rc.store.Summary(), statsStatus, figStatus)
		}
	}

	if cfg.measureScaling && cfg.benchJSON == "" {
		return fmt.Errorf("-measure-scaling requires -bench-json (it only affects the bench report)")
	}
	if cfg.benchJSON != "" {
		shards := cfg.shards
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		br := &obs.BenchReport{
			Date:        time.Now().UTC().Format("2006-01-02"),
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			CPUs:        runtime.NumCPU(),
			MaxProcs:    runtime.GOMAXPROCS(0),
			Scale:       cfg.scale,
			Shards:      shards,
			Seed:        cfg.seed,
			WallSeconds: time.Since(start).Seconds(),
			Ingest: obs.IngestBench{
				Events:          metrics.Events(),
				Flows:           ds.Stats.FlowsProcessed,
				Bytes:           ds.Stats.BytesProcessed,
				Seconds:         ingestDur.Seconds(),
				FlowsPerSec:     float64(ds.Stats.FlowsProcessed) / ingestDur.Seconds(),
				BytesPerSec:     float64(ds.Stats.BytesProcessed) / ingestDur.Seconds(),
				EpochsPublished: metrics.EpochsPublished(),
				SnapshotBytes:   metrics.SnapshotBytes(),
			},
			FiguresMS:     figMS,
			FiguresWallMS: figWallMS,
			Stages:        metrics.Snapshot().Stages,
		}
		if statsStatus == "hit" || (sd != nil && sd.hits > 0) {
			// A warm run's "ingest" is a cache replay (full, or every day
			// up to a checkpoint), not pipeline throughput; zeroed rates
			// are skipped by CompareBench, so a warm report never fakes an
			// ingest speedup against a cold baseline.
			br.Ingest.FlowsPerSec = 0
			br.Ingest.BytesPerSec = 0
		}
		if sd != nil {
			br.SealMS = sd.sealMS
			br.MergeMS = sd.mergeMS
		}
		if rc.store != nil {
			c := rc.store.Counters()
			br.Cache = &obs.CacheBench{
				Hits:           c.Hits,
				Misses:         c.Misses,
				Invalidations:  c.Invalidations,
				VerifyFailures: c.VerifyFailures,
			}
		}
		if cfg.measureScaling {
			singleRate, shardedRate, err := measureScaling(reg, cfg, shards, statusW)
			if err != nil {
				return err
			}
			br.Ingest.SingleRefEventsPerSec = singleRate
			br.Ingest.ShardedRefEventsPerSec = shardedRate
			br.Ingest.ScalingEfficiency = shardedRate / singleRate / float64(shards)
		}
		path := obs.BenchPath(cfg.benchJSON, br.Date)
		if err := br.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintf(statusW, "wrote bench report to %s\n", path)
	}

	fmt.Fprintf(statusW, "wrote %s and per-figure CSVs to %s/ in %v total\n",
		reportPath, cfg.out, time.Since(start).Round(time.Second))
	return nil
}
