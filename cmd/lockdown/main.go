// Command lockdown runs the full reproduction end to end: it generates the
// synthetic campus workload (or a scaled-down version), streams it through
// the measurement pipeline, computes every figure and headline result from
// the paper, and writes CSV series plus an ASCII report.
//
// Usage:
//
//	lockdown [-scale 0.05] [-seed 1] [-out results/] [-quiet]
//	         [-logs dataset/]    ingest a tracegen dataset instead of generating
//	         [-shards N]         parallelize ingest across N pipeline shards
//	         [-yoy]              also simulate the counterfactual baseline year
//	         [-cpuprofile f]     write a CPU profile
//	         [-progress 5s]      emit live ingest progress (events/sec, ETA)
//	         [-progress-format text|json]
//	         [-debug-addr host:port]  expvar + pprof endpoint while running
//	         [-bench-json path]  write a machine-readable BENCH_<date>.json
//
// Scale 1.0 reproduces paper-scale population counts (~32k peak devices,
// tens of millions of flows; allow several minutes and ~2 GB RAM). The
// default 0.05 runs in ~20 seconds and preserves every trend.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/anonymize"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/faultline"
	"repro/internal/figset"
	"repro/internal/logsink"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/universe"
	"repro/internal/viz"
)

func siBytes(v float64) string { return viz.SIBytes(v) }

// rotatedLayout reports whether dir holds a rotated dataset (per-day
// subdirectories) rather than a flat one (top-level conn.log).
func rotatedLayout(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, logsink.ConnFile)); err == nil {
		return false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() {
			if _, err := os.Stat(filepath.Join(dir, e.Name(), logsink.ConnFile)); err == nil {
				return true
			}
		}
	}
	return false
}

// config carries one run's settings (flag values; tests drive run directly).
type config struct {
	scale          float64
	seed           int64
	out            string
	logs           string
	shards         int
	yoy            bool
	quiet          bool
	progressEvery  time.Duration
	progressFormat string
	debugAddr      string
	benchJSON      string
	measureScaling bool

	// Fault-robustness knobs (only meaningful with -logs; the generator
	// path has no decode step to guard).
	faultPolicy string  // strict | skip | quarantine | abort
	faultBudget float64 // tolerated drop fraction under abort
	faultInject float64 // injected corruption rate (test/CI harness)
	faultSeed   int64   // corruption injector seed

	// key fixes the pseudonymization key (nil = random); tests and the CI
	// single-vs-sharded diffs use it to make two runs comparable (-key).
	key []byte
	// statusW receives status and progress lines (default os.Stderr).
	statusW io.Writer
}

func main() {
	var cfg config
	flag.Float64Var(&cfg.scale, "scale", 0.05, "population scale (1.0 = paper scale)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed")
	flag.StringVar(&cfg.out, "out", "results", "output directory for CSVs and report")
	flag.StringVar(&cfg.logs, "logs", "", "ingest a tracegen dataset directory instead of generating live")
	flag.IntVar(&cfg.shards, "shards", 1, "pipeline shards (0 = GOMAXPROCS; >1 parallelizes ingest)")
	flag.BoolVar(&cfg.yoy, "yoy", false, "also simulate the counterfactual baseline year (doubles runtime)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the terminal report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.DurationVar(&cfg.progressEvery, "progress", 0, "emit a progress line at this interval (0 = off)")
	flag.StringVar(&cfg.progressFormat, "progress-format", "text", "progress line format: text or json")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve expvar + pprof on this address while running (e.g. localhost:6060)")
	flag.StringVar(&cfg.benchJSON, "bench-json", "", "write a machine-readable bench report (a .json path, or a directory receiving BENCH_<date>.json)")
	flag.BoolVar(&cfg.measureScaling, "measure-scaling", false, "also measure single-vs-sharded reference rates on a recorded window and report scaling_efficiency (requires -bench-json and -shards ≥ 2)")
	flag.StringVar(&cfg.faultPolicy, "fault-policy", "strict", "decode-error policy for -logs replay: strict, skip, quarantine or abort")
	flag.Float64Var(&cfg.faultBudget, "fault-budget", 0.001, "tolerated dropped-record fraction under -fault-policy abort")
	flag.Float64Var(&cfg.faultInject, "fault-inject", 0, "inject seeded corruption into the replayed logs at this per-record rate (testing)")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "seed for -fault-inject corruption")
	keyHex := flag.String("key", "", "hex pseudonymization key; fixes device pseudonyms so two runs are byte-comparable (default: random per run)")
	flag.Parse()

	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdown: bad -key:", err)
			os.Exit(1)
		}
		cfg.key = key
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

// ingestPipeline abstracts Pipeline and ShardedPipeline for the harness.
type ingestPipeline interface {
	trace.Sink
	DeviceID(m packet.MAC) anonymize.DeviceID
	Finalize() *core.Dataset
}

func run(cfg config) error {
	start := time.Now()
	statusW := cfg.statusW
	if statusW == nil {
		statusW = os.Stderr
	}
	reg, err := universe.New()
	if err != nil {
		return err
	}

	// Observability: metrics exist whenever any consumer (progress lines,
	// debug endpoint, bench report) needs them; otherwise the pipeline
	// runs the uninstrumented fast path.
	var metrics *obs.Metrics
	if cfg.progressEvery > 0 || cfg.debugAddr != "" || cfg.benchJSON != "" {
		metrics = obs.NewMetrics()
	}
	if cfg.debugAddr != "" {
		dbg, err := obs.ServeDebug(cfg.debugAddr, metrics)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(statusW, "debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)\n", dbg.Addr())
	}
	var prog *obs.Progress
	if cfg.progressEvery > 0 {
		var rep obs.Reporter
		switch cfg.progressFormat {
		case "", "text":
			rep = &obs.TextReporter{W: statusW}
		case "json":
			rep = &obs.JSONReporter{W: statusW}
		default:
			return fmt.Errorf("bad -progress-format %q, want text or json", cfg.progressFormat)
		}
		prog = obs.NewProgress(metrics, rep, cfg.progressEvery)
		prog.SetLabel("ingest")
	}

	var pipe ingestPipeline
	opts := core.Options{Key: cfg.key, Obs: metrics}
	if cfg.shards == 1 {
		pipe, err = core.NewPipeline(reg, opts)
	} else {
		pipe, err = core.NewShardedPipeline(reg, opts, cfg.shards)
	}
	if err != nil {
		return err
	}

	// Fault layer: policy guard and optional corruption injection apply to
	// dataset replay only — the generator path has no decode step.
	policy := faultline.PolicyStrict
	if cfg.faultPolicy != "" {
		policy, err = faultline.ParsePolicy(cfg.faultPolicy)
		if err != nil {
			return err
		}
	}
	if cfg.logs == "" && (policy != faultline.PolicyStrict || cfg.faultInject > 0) {
		return fmt.Errorf("-fault-policy/-fault-inject require -logs (nothing to decode on the generator path)")
	}
	var guard *faultline.Guard
	var replayOpts logsink.ReplayOptions
	if policy != faultline.PolicyStrict {
		var quarW io.Writer
		if policy == faultline.PolicyQuarantine {
			if err := os.MkdirAll(cfg.out, 0o755); err != nil {
				return err
			}
			qf, err := os.Create(filepath.Join(cfg.out, "quarantine.log"))
			if err != nil {
				return err
			}
			defer qf.Close()
			quarW = qf
		}
		guard = faultline.NewGuard(policy, cfg.faultBudget, quarW, metrics)
		replayOpts.Guard = guard
	}
	if cfg.faultInject > 0 {
		replayOpts.Inject = &faultline.Config{Seed: cfg.faultSeed, Rate: cfg.faultInject}
	}

	truth := map[anonymize.DeviceID]devclass.Type{}
	ingestStart := time.Now()
	if cfg.logs != "" {
		// Auto-detect the dataset layout: a flat tracegen directory has a
		// top-level conn.log; a rotated one has per-day subdirectories.
		replay := logsink.ReplayWithOptions
		if rotatedLayout(cfg.logs) {
			replay = logsink.ReplayRotatedWithOptions
		}
		fmt.Fprintf(statusW, "replaying dataset from %s...\n", cfg.logs)
		prog.Start()
		if err := replay(cfg.logs, pipe, replayOpts); err != nil {
			return err
		}
		// Ground truth for the accuracy experiment: rebuild the same
		// population the dataset was generated from (same scale/seed).
		gcfg := trace.DefaultConfig()
		gcfg.Scale = cfg.scale
		gcfg.Seed = cfg.seed
		gen, err := trace.New(gcfg, reg)
		if err != nil {
			return err
		}
		for _, d := range gen.Devices() {
			truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
		}
	} else {
		gcfg := trace.DefaultConfig()
		gcfg.Scale = cfg.scale
		gcfg.Seed = cfg.seed
		gen, err := trace.New(gcfg, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(statusW, "generating %d devices over %d days (scale %.3g)...\n",
			len(gen.Devices()), campus.NumDays, cfg.scale)
		prog.SetTotal(int64(campus.NumDays))
		prog.Start()
		// Day-at-a-time driving is stream-identical to one Run call (the
		// generator derives all state per (device, day)) and gives the
		// progress reporter exact day-level completion for its ETA.
		for day := campus.Day(0); day < campus.NumDays; day++ {
			if err := gen.RunDays(pipe, day, day+1); err != nil {
				return err
			}
			prog.SetDone(int64(day) + 1)
		}
		for _, d := range gen.Devices() {
			truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
		}
	}
	ds := pipe.Finalize()
	ingestDur := time.Since(ingestStart)
	prog.Stop()
	fmt.Fprintf(statusW, "pipeline: %d flows, %d devices, %s processed in %v\n",
		ds.Stats.FlowsProcessed, len(ds.Devices), siBytes(float64(ds.Stats.BytesProcessed)), ingestDur.Round(time.Second))
	if guard != nil {
		fmt.Fprintf(statusW, "fault guard: %s\n", guard.Summary())
	}

	if err := os.MkdirAll(cfg.out, 0o755); err != nil {
		return err
	}
	// Figure/stat finalization fans out over a bounded worker pool: every
	// figure is an independent pure function over the sealed Dataset, each
	// writing its own results slot, so they run concurrently on whatever
	// cores ingest just released. Per-figure timings still land in
	// figures_ms (localizing a regression to one analysis); the pool's
	// wall time is reported separately as figures_wall_ms — on a
	// multi-core host it is the max lane, not the sum.
	res, figMS, figWallMS := figset.Compute(ds, figset.Params{Scale: cfg.scale, Seed: cfg.seed, Truth: truth})
	// render_csv stays serial — it reads every figure's slot.
	timed := func(name string, f func()) {
		t0 := time.Now()
		f()
		figMS[name] = float64(time.Since(t0).Nanoseconds()) / 1e6
	}

	if cfg.yoy && cfg.logs == "" {
		fmt.Fprintln(statusW, "simulating counterfactual baseline year...")
		gcfg := trace.DefaultConfig()
		gcfg.Scale = cfg.scale
		gcfg.Seed = cfg.seed
		gcfg.NoPandemic = true
		baseGen, err := trace.New(gcfg, reg)
		if err != nil {
			return err
		}
		basePipe, err := core.NewPipeline(reg, core.Options{Key: cfg.key})
		if err != nil {
			return err
		}
		if err := baseGen.Run(basePipe); err != nil {
			return err
		}
		y := experiments.YearOverYear(ds, basePipe.Finalize())
		res.YoY = &y
	}
	timed("render_csv", func() { err = res.WriteCSVs(cfg.out) })
	if err != nil {
		return err
	}
	reportPath := filepath.Join(cfg.out, "report.txt")
	f, err := os.Create(reportPath)
	if err != nil {
		return err
	}
	if err := res.Report(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !cfg.quiet {
		if err := res.Report(os.Stdout); err != nil {
			return err
		}
	}

	if cfg.measureScaling && cfg.benchJSON == "" {
		return fmt.Errorf("-measure-scaling requires -bench-json (it only affects the bench report)")
	}
	if cfg.benchJSON != "" {
		shards := cfg.shards
		if sp, ok := pipe.(*core.ShardedPipeline); ok {
			shards = sp.Shards()
		}
		br := &obs.BenchReport{
			Date:        time.Now().UTC().Format("2006-01-02"),
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			CPUs:        runtime.NumCPU(),
			MaxProcs:    runtime.GOMAXPROCS(0),
			Scale:       cfg.scale,
			Shards:      shards,
			Seed:        cfg.seed,
			WallSeconds: time.Since(start).Seconds(),
			Ingest: obs.IngestBench{
				Events:          metrics.Events(),
				Flows:           ds.Stats.FlowsProcessed,
				Bytes:           ds.Stats.BytesProcessed,
				Seconds:         ingestDur.Seconds(),
				FlowsPerSec:     float64(ds.Stats.FlowsProcessed) / ingestDur.Seconds(),
				BytesPerSec:     float64(ds.Stats.BytesProcessed) / ingestDur.Seconds(),
				EpochsPublished: metrics.EpochsPublished(),
				SnapshotBytes:   metrics.SnapshotBytes(),
			},
			FiguresMS:     figMS,
			FiguresWallMS: figWallMS,
			Stages:        metrics.Snapshot().Stages,
		}
		if cfg.measureScaling {
			singleRate, shardedRate, err := measureScaling(reg, cfg, shards, statusW)
			if err != nil {
				return err
			}
			br.Ingest.SingleRefEventsPerSec = singleRate
			br.Ingest.ShardedRefEventsPerSec = shardedRate
			br.Ingest.ScalingEfficiency = shardedRate / singleRate / float64(shards)
		}
		path := obs.BenchPath(cfg.benchJSON, br.Date)
		if err := br.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintf(statusW, "wrote bench report to %s\n", path)
	}

	fmt.Fprintf(statusW, "wrote %s and per-figure CSVs to %s/ in %v total\n",
		reportPath, cfg.out, time.Since(start).Round(time.Second))
	return nil
}
