// Command lockdown runs the full reproduction end to end: it generates the
// synthetic campus workload (or a scaled-down version), streams it through
// the measurement pipeline, computes every figure and headline result from
// the paper, and writes CSV series plus an ASCII report.
//
// Usage:
//
//	lockdown [-scale 0.05] [-seed 1] [-out results/] [-quiet]
//	         [-logs dataset/]   ingest a tracegen dataset instead of generating
//	         [-shards N]        parallelize ingest across N pipeline shards
//	         [-yoy]             also simulate the counterfactual baseline year
//	         [-cpuprofile f]    write a CPU profile
//
// Scale 1.0 reproduces paper-scale population counts (~32k peak devices,
// tens of millions of flows; allow several minutes and ~2 GB RAM). The
// default 0.05 runs in ~20 seconds and preserves every trend.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"repro/internal/anonymize"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/logsink"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/universe"
)

func main() {
	scale := flag.Float64("scale", 0.05, "population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "results", "output directory for CSVs and report")
	logs := flag.String("logs", "", "ingest a tracegen dataset directory instead of generating live")
	shards := flag.Int("shards", 1, "pipeline shards (0 = GOMAXPROCS; >1 parallelizes ingest)")
	yoy := flag.Bool("yoy", false, "also simulate the counterfactual baseline year (doubles runtime)")
	quiet := flag.Bool("quiet", false, "suppress the terminal report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockdown:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*scale, *seed, *out, *logs, *shards, *yoy, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "lockdown:", err)
		os.Exit(1)
	}
}

// ingestPipeline abstracts Pipeline and ShardedPipeline for the harness.
type ingestPipeline interface {
	trace.Sink
	DeviceID(m packet.MAC) anonymize.DeviceID
	Finalize() *core.Dataset
}

func run(scale float64, seed int64, outDir, logsDir string, shards int, yoy, quiet bool) error {
	start := time.Now()
	reg, err := universe.New()
	if err != nil {
		return err
	}
	var pipe ingestPipeline
	if shards == 1 {
		pipe, err = core.NewPipeline(reg, core.Options{})
	} else {
		pipe, err = core.NewShardedPipeline(reg, core.Options{}, shards)
	}
	if err != nil {
		return err
	}
	truth := map[anonymize.DeviceID]devclass.Type{}
	if logsDir != "" {
		fmt.Fprintf(os.Stderr, "replaying dataset from %s...\n", logsDir)
		if err := logsink.Replay(logsDir, pipe); err != nil {
			return err
		}
		// Ground truth for the accuracy experiment: rebuild the same
		// population the dataset was generated from (same scale/seed).
		cfg := trace.DefaultConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		gen, err := trace.New(cfg, reg)
		if err != nil {
			return err
		}
		for _, d := range gen.Devices() {
			truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
		}
	} else {
		cfg := trace.DefaultConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		gen, err := trace.New(cfg, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generating %d devices over 121 days (scale %.3g)...\n", len(gen.Devices()), scale)
		if err := gen.Run(pipe); err != nil {
			return err
		}
		for _, d := range gen.Devices() {
			truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
		}
	}
	ds := pipe.Finalize()
	fmt.Fprintf(os.Stderr, "pipeline: %d flows, %d devices, %s processed in %v\n",
		ds.Stats.FlowsProcessed, len(ds.Devices), siBytes(float64(ds.Stats.BytesProcessed)), time.Since(start).Round(time.Second))

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	res := results{
		scale:       scale,
		fig1:        experiments.Fig1(ds),
		fig2:        experiments.Fig2(ds),
		fig3:        experiments.Fig3(ds),
		fig4:        experiments.Fig4(ds),
		fig5:        experiments.Fig5(ds),
		fig6:        experiments.Fig6(ds),
		fig7:        experiments.Fig7(ds),
		fig8:        experiments.Fig8(ds),
		head:        experiments.Headline(ds),
		pop:         experiments.Population(ds),
		acc:         experiments.Accuracy(ds, truth, 100, seed),
		cdnAblate:   experiments.CDNAblation(ds),
		iotSweep:    experiments.IoTThresholdSweep(ds, truth, []float64{0.25, 0.5, 0.75, 1.0}),
		workPlay:    experiments.WorkLeisure(ds),
		zoomWknd:    experiments.ZoomWeekend(ds),
		convergence: experiments.DiurnalConvergence(ds),
		stats:       ds.Stats,
	}
	if yoy && logsDir == "" {
		fmt.Fprintln(os.Stderr, "simulating counterfactual baseline year...")
		cfg := trace.DefaultConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		cfg.NoPandemic = true
		baseGen, err := trace.New(cfg, reg)
		if err != nil {
			return err
		}
		basePipe, err := core.NewPipeline(reg, core.Options{})
		if err != nil {
			return err
		}
		if err := baseGen.Run(basePipe); err != nil {
			return err
		}
		y := experiments.YearOverYear(ds, basePipe.Finalize())
		res.yoy = &y
	}
	if err := res.writeCSVs(outDir); err != nil {
		return err
	}
	reportPath := filepath.Join(outDir, "report.txt")
	f, err := os.Create(reportPath)
	if err != nil {
		return err
	}
	if err := res.report(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		if err := res.report(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %s and per-figure CSVs to %s/ in %v total\n",
		reportPath, outDir, time.Since(start).Round(time.Second))
	return nil
}
