package main

import (
	"fmt"

	"repro/internal/appsig"
	"repro/internal/core"
	"repro/internal/figset"
	"repro/internal/obs"
	"repro/internal/stagecache"
	"repro/internal/universe"
)

// runCache bundles one run's stage-cache state: the store (nil when
// caching is inactive), the run-invariant code and rules digests every
// stage key chains from, and a human-readable note when -cache-dir was
// given but caching could not engage.
type runCache struct {
	store *stagecache.Store
	code  stagecache.Digest
	rules stagecache.Digest
	note  string
}

// openRunCache resolves the cache flags. Caching requires a fixed
// pseudonymization key: with a random per-run key the device pseudonyms in
// a cached dataset are unlinkable to any other run, so reuse would be
// meaningless — the cache stays off (with a note) rather than serving
// surprising results.
func openRunCache(cfg config, reg *universe.Registry, metrics *obs.Metrics) (*runCache, error) {
	rc := &runCache{}
	if cfg.cacheDir == "" {
		return rc, nil
	}
	mode, err := stagecache.ParseMode(cfg.cacheMode)
	if err != nil {
		return nil, err
	}
	if mode == stagecache.ModeOff {
		rc.note = "mode=off"
		return rc, nil
	}
	if len(cfg.key) == 0 {
		rc.note = "disabled: -key required (random per-run pseudonyms make cached stages unlinkable)"
		return rc, nil
	}
	rc.code, err = stagecache.CodeDigest()
	if err != nil {
		return nil, fmt.Errorf("stage cache: code digest: %w", err)
	}
	rc.rules = stagecache.RulesDigest(reg, appsig.TableRows())
	rc.store, err = stagecache.Open(cfg.cacheDir, mode, metrics)
	if err != nil {
		return nil, fmt.Errorf("stage cache: %w", err)
	}
	return rc, nil
}

// statsKey derives the stats stage's cache key: everything that can move
// a byte of the finalized Dataset or the ground-truth map enters the
// digest; knobs that provably cannot (shard count, output paths, progress
// and report options) deliberately do not. logsDigest is the replayed
// dataset's TreeDigest ("" in generator mode); noPandemic selects the
// counterfactual baseline world (the -yoy second pipeline).
func (rc *runCache) statsKey(cfg config, logsDigest stagecache.Digest, noPandemic bool) stagecache.Digest {
	h := stagecache.NewHasher("lockdown/stats")
	h.Digest("code", rc.code)
	h.Digest("rules", rc.rules)
	h.Int("dataset_codec", core.DatasetCodecVersion)
	h.Bytes("key", cfg.key)
	h.Float("scale", cfg.scale)
	h.Int("seed", cfg.seed)
	h.Bool("no_pandemic", noPandemic)
	if logsDigest != "" {
		h.String("source", "logs")
		h.Digest("dataset", logsDigest)
		// The fault layer shapes which records survive replay, so every
		// knob is key material — a replay under a different policy or
		// injection rate is a different dataset.
		h.String("fault_policy", cfg.faultPolicy)
		h.Float("fault_budget", cfg.faultBudget)
		h.Float("fault_inject", cfg.faultInject)
		h.Int("fault_seed", cfg.faultSeed)
	} else {
		h.String("source", "generate")
	}
	return h.Sum()
}

// figuresKey derives the figures stage's cache key. The stage is chained
// on the *content* of its inputs (the encoded dataset, truth map and
// optional counterfactual baseline), buildkit-style: two configurations
// that produce byte-identical stats share one figures entry. Figure-only
// knobs (here -fig-workers, conservatively keyed even though the pool
// size is output-neutral) invalidate figures without touching stats —
// that asymmetry is what makes a figure-only change replay from cached
// stats in milliseconds.
func (rc *runCache) figuresKey(cfg config, dsDigest, truthDigest, yoyDigest stagecache.Digest) stagecache.Digest {
	h := stagecache.NewHasher("lockdown/figures")
	h.Digest("code", rc.code)
	h.Digest("rules", rc.rules)
	h.Digest("dataset", dsDigest)
	h.Digest("truth", truthDigest)
	h.Bool("yoy", yoyDigest != "")
	if yoyDigest != "" {
		h.Digest("yoy_baseline", yoyDigest)
	}
	h.Float("scale", cfg.scale)
	h.Int("seed", cfg.seed)
	h.Int("fig_workers", int64(cfg.figWorkers))
	return h.Sum()
}

// reportName is the figures-stage artifact holding the ASCII report; the
// figure CSVs use their figset names.
const reportName = "report.txt"

// artifactNames is the figures stage's complete payload listing.
func artifactNames() []string {
	return append(figset.FigureNames(), reportName)
}

// validateArtifacts rejects a figures entry that lacks any expected
// artifact (e.g. one written by a build with a different figure set that
// somehow shared a key).
func validateArtifacts(files map[string][]byte) error {
	for _, name := range artifactNames() {
		if _, ok := files[name]; !ok {
			return fmt.Errorf("figures entry missing %s", name)
		}
	}
	return nil
}

// renderArtifacts renders every figure CSV and the report into memory —
// the single render path for both the output directory and the cache, so
// the two can never diverge.
func renderArtifacts(res *figset.Results) (map[string][]byte, error) {
	out := make(map[string][]byte, len(figset.FigureNames())+1)
	for _, name := range figset.FigureNames() {
		var buf writerBuf
		if err := res.WriteFigure(&buf, name); err != nil {
			return nil, err
		}
		out[name] = buf.b
	}
	var buf writerBuf
	if err := res.Report(&buf); err != nil {
		return nil, err
	}
	out[reportName] = buf.b
	return out, nil
}

// writerBuf is a minimal append-only io.Writer (bytes.Buffer without the
// reader half).
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
