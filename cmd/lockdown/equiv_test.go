package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObservabilityEquivalence runs the full harness twice — once with
// every observability consumer enabled (progress, bench report) and once
// with all of it off — under the same fixed key and seed, and requires
// byte-identical figure CSVs. Instrumentation must only observe.
func TestObservabilityEquivalence(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.01
	}
	key := []byte("equivalence-test-key-0123456789abcd")

	base := config{
		scale:   scale,
		seed:    1,
		quiet:   true,
		shards:  1,
		key:     key,
		statusW: io.Discard,
	}

	plainDir := t.TempDir()
	plain := base
	plain.out = plainDir
	if err := run(plain); err != nil {
		t.Fatalf("plain run: %v", err)
	}

	obsDir := t.TempDir()
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	instr := base
	instr.out = obsDir
	instr.progressEvery = 500 * time.Millisecond
	instr.progressFormat = "json"
	instr.benchJSON = benchPath
	if err := run(instr); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}

	csvs, err := filepath.Glob(filepath.Join(plainDir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) < 8 {
		t.Fatalf("only %d CSVs written, expected every figure", len(csvs))
	}
	for _, p := range csvs {
		name := filepath.Base(p)
		want, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(obsDir, name))
		if err != nil {
			t.Fatalf("instrumented run missing %s: %v", name, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs between plain and instrumented runs", name)
		}
	}
	// The text report must match too (same stats, same figures).
	want, err := os.ReadFile(filepath.Join(plainDir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(obsDir, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("report.txt differs between plain and instrumented runs")
	}

	// And the instrumented run must have produced a valid bench report.
	br, err := obs.LoadBench(benchPath)
	if err != nil {
		t.Fatalf("bench report: %v", err)
	}
	if br.Ingest.Flows == 0 || br.Ingest.FlowsPerSec <= 0 {
		t.Errorf("bench report has empty ingest section: %+v", br.Ingest)
	}
	if len(br.FiguresMS) < 10 {
		t.Errorf("bench report has %d figure timings, want ≥10", len(br.FiguresMS))
	}
	if br.Scale != scale || br.Seed != 1 {
		t.Errorf("bench report run params = scale %v seed %d", br.Scale, br.Seed)
	}
	if len(br.Stages) == 0 {
		t.Error("bench report missing stage counters")
	}
}

// TestShardedRunMatchesSingle pins the sharded path against the single
// pipeline end to end at the acceptance scale (5%, seed 1): for every
// shard count tested, the figure CSVs must be byte-identical and the text
// report — which renders the merged Stats — must match too.
func TestShardedRunMatchesSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestObservabilityEquivalence in short mode")
	}
	key := []byte("sharded-equiv-key-0123456789abcdef0")
	base := config{
		scale:   0.05,
		seed:    1,
		quiet:   true,
		key:     key,
		statusW: io.Discard,
	}
	singleDir := t.TempDir()
	single := base
	single.out = singleDir
	single.shards = 1
	if err := run(single); err != nil {
		t.Fatalf("single run: %v", err)
	}
	csvs, err := filepath.Glob(filepath.Join(singleDir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csvs) < 8 {
		t.Fatalf("only %d CSVs written, expected every figure", len(csvs))
	}

	for _, shards := range []int{4, 8} {
		shardDir := t.TempDir()
		sharded := base
		sharded.out = shardDir
		sharded.shards = shards
		sharded.progressEvery = time.Second // exercise shard snapshots too
		if err := run(sharded); err != nil {
			t.Fatalf("%d-shard run: %v", shards, err)
		}
		for _, p := range csvs {
			name := filepath.Base(p)
			want, _ := os.ReadFile(p)
			got, err := os.ReadFile(filepath.Join(shardDir, name))
			if err != nil {
				t.Fatalf("%d-shard run missing %s: %v", shards, name, err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("%s differs between single and %d-shard runs", name, shards)
			}
		}
		want, err := os.ReadFile(filepath.Join(singleDir, "report.txt"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(shardDir, "report.txt"))
		if err != nil {
			t.Fatalf("%d-shard run missing report.txt: %v", shards, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("report.txt differs between single and %d-shard runs", shards)
		}
	}
}
