package main

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/logsink"
	"repro/internal/stagecache"
	"repro/internal/universe"
)

// The statsday stage makes a rotated-dataset replay incremental: after each
// ingested day the pipeline seals a per-day partial aggregate and, at the
// final day, writes one checkpoint of its full state to the cache under a
// key chained through every day's content. A later run over the same
// dataset grown by one day probes backward from its own final day, hits the
// previous run's checkpoint at N-1, restores the pipeline mid-stream, and
// replays only the appended day — O(delta) instead of O(dataset).

// statsdayEligible gates the per-day checkpoint path to configurations
// whose replay is day-separable: a single pipeline (the checkpoint codec
// captures one pipeline's state), strict policy with no injection (the
// guard's global error budget and the injector's whole-dataset accounting
// would otherwise span days and break per-day key independence), and a
// rotated layout (flat datasets have no day boundaries to key on).
func statsdayEligible(cfg config, rc *runCache, policy faultline.Policy) bool {
	return rc.store != nil && cfg.logs != "" && cfg.shards == 1 &&
		policy == faultline.PolicyStrict && cfg.faultInject == 0 &&
		rotatedLayout(cfg.logs)
}

// statsdayKey derives day i's chained checkpoint key: everything that can
// move a byte of the checkpoint enters the digest — the code and rules, the
// two codec versions, the pseudonymization key, the fault knobs, the
// previous day's key (so any upstream day change cascades) and this day's
// own content digest. The generator knobs (scale, seed) deliberately do
// not: a checkpoint is a pure function of the replayed bytes and the key,
// and scale/seed only matter for the truth rebuild, which happens outside
// this stage.
func (rc *runCache) statsdayKey(cfg config, prev stagecache.Digest, day string, dayDigest stagecache.Digest) stagecache.Digest {
	h := stagecache.NewHasher("lockdown/statsday")
	h.Digest("code", rc.code)
	h.Digest("rules", rc.rules)
	h.Int("dataset_codec", core.DatasetCodecVersion)
	h.Int("checkpoint_codec", core.CheckpointCodecVersion)
	h.Bytes("key", cfg.key)
	h.String("fault_policy", cfg.faultPolicy)
	h.Float("fault_budget", cfg.faultBudget)
	h.Float("fault_inject", cfg.faultInject)
	h.Int("fault_seed", cfg.faultSeed)
	h.Digest("prev", prev)
	h.String("day", day)
	h.Digest("tree", dayDigest)
	return h.Sum()
}

// statsdayResult reports one incremental replay: the pipeline ready to
// Finalize, the probe accounting behind the `statsday:` status line (the
// CI append-smoke assertion surface), and the seal/merge timings for the
// bench report.
type statsdayResult struct {
	pipe     *core.Pipeline
	days     int     // day directories in the dataset
	replayed int     // days actually ingested this run
	hits     int     // checkpoint probes that hit (0 or 1)
	misses   int     // checkpoint probes that missed
	sealMS   float64 // total SealDay cost across replayed days
	mergeMS  float64 // merged-vs-monolithic consistency check cost
}

func (r *statsdayResult) line() string {
	return fmt.Sprintf("statsday: days=%d replayed=%d misses=%d hits=%d",
		r.days, r.replayed, r.misses, r.hits)
}

// runStatsday replays a rotated dataset through the per-day checkpoint
// cache: derive every day's chained key, probe backward for the deepest
// cached checkpoint, restore (or start fresh), replay and seal only the
// remaining days, cross-check the merged partials against the pipeline's
// cumulative stats, and publish the final day's checkpoint for the next
// run. The caller finalizes the returned pipeline.
func runStatsday(cfg config, rc *runCache, reg *universe.Registry, opts core.Options, replayOpts logsink.ReplayOptions) (*statsdayResult, error) {
	days, err := logsink.DayDirs(cfg.logs)
	if err != nil {
		return nil, err
	}
	keys := make([]stagecache.Digest, len(days))
	var prev stagecache.Digest
	for i, d := range days {
		dayDigest, _, err := stagecache.TreeDigest(filepath.Join(cfg.logs, d))
		if err != nil {
			return nil, err
		}
		keys[i] = rc.statsdayKey(cfg, prev, d, dayDigest)
		prev = keys[i]
	}

	res := &statsdayResult{days: len(days)}
	var pipe *core.Pipeline
	start := 0
	// Deepest checkpoint wins: the final day's key hits on an unchanged
	// dataset (replay nothing), day N-2's hits after a one-day append
	// (replay one day), and so on down to a cold start.
	for j := len(days) - 1; j >= 0; j-- {
		var restored *core.Pipeline
		if _, ok := rc.store.GetBytes("statsday", keys[j], func(files map[string][]byte) error {
			p, err := core.RestoreCheckpoint(reg, opts, files["checkpoint.bin"])
			if err != nil {
				return err
			}
			restored = p
			return nil
		}); ok {
			pipe, start = restored, j+1
			res.hits++
			break
		}
		res.misses++
	}
	if pipe == nil {
		pipe, err = core.NewPipeline(reg, opts)
		if err != nil {
			return nil, err
		}
	}

	baseStats := pipe.Stats()
	var parts []*core.DayPartial
	for i := start; i < len(days); i++ {
		if err := logsink.ReplayRotatedDay(cfg.logs, days[i], pipe, replayOpts); err != nil {
			return nil, err
		}
		t0 := time.Now()
		parts = append(parts, pipe.SealDay(days[i]))
		res.sealMS += float64(time.Since(t0).Nanoseconds()) / 1e6
		res.replayed++
	}

	if len(parts) > 0 {
		// The merge consistency check runs on every incremental ingest, not
		// just in tests: the merged per-day partials must account for
		// exactly the stats the pipeline accumulated since the checkpoint.
		t0 := time.Now()
		merged, err := core.MergeDayPartials(parts)
		if err != nil {
			return nil, err
		}
		if got, want := baseStats.Add(merged.Stats), pipe.Stats(); got != want {
			return nil, fmt.Errorf("statsday: merged day partials %+v != pipeline stats %+v", got, want)
		}
		res.mergeMS = float64(time.Since(t0).Nanoseconds()) / 1e6

		ckpt, err := pipe.EncodeCheckpoint()
		if err != nil {
			return nil, err
		}
		if err := rc.store.PutBytes("statsday", keys[len(days)-1],
			map[string]stagecache.Digest{"code": rc.code, "rules": rc.rules},
			map[string][]byte{"checkpoint.bin": ckpt}); err != nil {
			return nil, err
		}
	}
	res.pipe = pipe
	return res, nil
}
