package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campus"
	"repro/internal/faultline"
	"repro/internal/logsink"
	"repro/internal/trace"
	"repro/internal/universe"
)

// writeRotatedTestLogs generates a small rotated (one directory per day)
// dataset for the per-day checkpoint tests.
func writeRotatedTestLogs(t *testing.T, from, to campus.Day) string {
	t.Helper()
	dir := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.002
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := logsink.NewRotatingWriter(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(w, from, to); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStatsdayAppendIncremental is the go-test variant of the CI
// append-smoke walk (scripts/append_smoke.sh): a cached run over a rotated
// dataset's N-1-day prefix seeds one checkpoint per day; after the final
// day appears, the rerun must replay exactly that day (one probe missed at
// the new final key, the next hit the previous run's checkpoint) and still
// emit outputs byte-identical to a cache-free run over the full dataset.
func TestStatsdayAppendIncremental(t *testing.T) {
	logsDir := writeRotatedTestLogs(t, 40, 46)
	days, err := logsink.DayDirs(logsDir)
	if err != nil || len(days) != 6 {
		t.Fatalf("day dirs = %v (err %v), want 6 days", days, err)
	}

	base := cacheTestConfig(t, t.TempDir())
	base.scale = 0.002
	base.logs = logsDir

	// Withhold the final day: the prefix run sees a 5-day dataset.
	last := days[len(days)-1]
	hold := filepath.Join(t.TempDir(), last)
	if err := os.Rename(filepath.Join(logsDir, last), hold); err != nil {
		t.Fatal(err)
	}

	prefixDir := t.TempDir()
	prefix := base
	prefix.out = prefixDir
	prefixStatus := runCached(t, prefix)
	statusHas(t, "prefix", prefixStatus, "statsday: days=5 replayed=5 misses=5 hits=0")

	// The day arrives; only it may be replayed.
	if err := os.Rename(hold, filepath.Join(logsDir, last)); err != nil {
		t.Fatal(err)
	}
	incrDir := t.TempDir()
	incr := base
	incr.out = incrDir
	incrStatus := runCached(t, incr)
	statusHas(t, "append", incrStatus, "statsday: days=6 replayed=1 misses=1 hits=1")

	// Byte identity against a cache-free run over the full dataset.
	refDir := t.TempDir()
	ref := base
	ref.cacheDir = ""
	ref.out = refDir
	runCached(t, ref)
	wantIdenticalOutputs(t, "append vs cache-free", readOutputs(t, refDir), readOutputs(t, incrDir))

	// An unchanged rerun never reaches the per-day path: the monolithic
	// stats entry written by the append run hits first.
	againDir := t.TempDir()
	again := base
	again.out = againDir
	statusHas(t, "unchanged rerun", runCached(t, again), "stats=hit")
	wantIdenticalOutputs(t, "unchanged rerun", readOutputs(t, refDir), readOutputs(t, againDir))
}

// TestStatsdayEligibility pins the gate: the per-day checkpoint path only
// engages for single-shard strict-policy replays of a rotated layout, and
// never in generate mode.
func TestStatsdayEligibility(t *testing.T) {
	logsDir := writeRotatedTestLogs(t, 40, 42)
	flatDir := writeTestLogs(t)

	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	base := cacheTestConfig(t, t.TempDir())
	base.logs = logsDir
	rc, err := openRunCache(base, reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	for name, tc := range map[string]struct {
		mut  func(*config)
		want bool
	}{
		"rotated strict single-shard": {func(*config) {}, true},
		"generate mode":               {func(c *config) { c.logs = "" }, false},
		"flat layout":                 {func(c *config) { c.logs = flatDir }, false},
		"sharded":                     {func(c *config) { c.shards = 4 }, false},
		"fault injection":             {func(c *config) { c.faultInject = 0.001 }, false},
	} {
		cfg := base
		tc.mut(&cfg)
		if got := statsdayEligible(cfg, rc, faultline.PolicyStrict); got != tc.want {
			t.Errorf("%s: eligible = %v, want %v", name, got, tc.want)
		}
	}
	if statsdayEligible(base, rc, faultline.PolicySkip) {
		t.Error("skip policy: eligible, want gated off")
	}
	if statsdayEligible(base, &runCache{}, faultline.PolicyStrict) {
		t.Error("no cache store: eligible, want gated off")
	}
}
