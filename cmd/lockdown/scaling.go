package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
	"repro/internal/universe"
)

// The -measure-scaling window: five busy pandemic-era days, enough events
// at the default CI scale (~5%) for stable rates without dominating the
// harness run.
const (
	scalingFromDay = 60
	scalingToDay   = 64
)

// scalingMinElapsed is the minimum measured wall time per pipeline
// configuration; the recorded window is replayed repeatedly (through a
// fresh pipeline each time) until the accumulated time clears it, so rates
// stay stable even when one replay finishes in tens of milliseconds.
const scalingMinElapsed = 250 * time.Millisecond

// eventRecorder captures a generated event stream for repeated replay.
type eventRecorder struct{ events []trace.Event }

func (r *eventRecorder) Flow(f flow.Record) {
	r.events = append(r.events, trace.Event{Kind: trace.EventFlow, Flow: f})
}
func (r *eventRecorder) DNS(e dnssim.Entry) {
	r.events = append(r.events, trace.Event{Kind: trace.EventDNS, DNS: e})
}
func (r *eventRecorder) HTTPMeta(e httplog.Entry) {
	r.events = append(r.events, trace.Event{Kind: trace.EventHTTP, HTTP: e})
}
func (r *eventRecorder) Lease(l dhcp.Lease) {
	r.events = append(r.events, trace.Event{Kind: trace.EventLease, Lease: l})
}

// measureScaling produces the bench report's scaling reference rates: the
// same recorded event window replayed through a fresh single pipeline and
// a fresh shards-way sharded pipeline, events per second each. Replays use
// the batched fast path in the same run lengths the generator emits, so
// the comparison isolates pipeline architecture, not delivery style. The
// timed span covers feed through Finalize — a sharded pipeline hasn't
// processed an event until its shards drain, and excluding the drain would
// flatter exactly the configuration under test.
func measureScaling(reg *universe.Registry, cfg config, shards int, statusW io.Writer) (singleRate, shardedRate float64, err error) {
	if shards < 2 {
		return 0, 0, fmt.Errorf("-measure-scaling needs -shards ≥ 2 (got %d)", shards)
	}
	gcfg := trace.DefaultConfig()
	gcfg.Scale = cfg.scale
	gcfg.Seed = cfg.seed
	gen, err := trace.New(gcfg, reg)
	if err != nil {
		return 0, 0, err
	}
	rec := &eventRecorder{}
	if err := gen.RunDays(rec, campus.Day(scalingFromDay), campus.Day(scalingToDay)); err != nil {
		return 0, 0, err
	}
	if len(rec.events) == 0 {
		return 0, 0, fmt.Errorf("scaling window recorded no events")
	}

	rate := func(mk func() (ingestPipeline, error)) (float64, error) {
		var elapsed time.Duration
		var events int64
		for elapsed < scalingMinElapsed {
			pipe, err := mk()
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			if bs, ok := pipe.(trace.BatchSink); ok {
				rest := rec.events
				for len(rest) > 0 {
					n := min(1024, len(rest))
					bs.EventBatch(rest[:n])
					rest = rest[n:]
				}
				bs.Flush()
			} else {
				// The single pipeline has no batched ingress; per-event
				// delivery is exactly how the generator feeds it.
				for i := range rec.events {
					rec.events[i].Deliver(pipe)
				}
			}
			pipe.Finalize()
			elapsed += time.Since(t0)
			events += int64(len(rec.events))
		}
		return float64(events) / elapsed.Seconds(), nil
	}

	opts := core.Options{Key: cfg.key}
	singleRate, err = rate(func() (ingestPipeline, error) { return core.NewPipeline(reg, opts) })
	if err != nil {
		return 0, 0, err
	}
	shardedRate, err = rate(func() (ingestPipeline, error) { return core.NewShardedPipeline(reg, opts, shards) })
	if err != nil {
		return 0, 0, err
	}
	fmt.Fprintf(statusW, "scaling ref (days %d–%d, %d events): single %.0f ev/s, %d-shard %.0f ev/s, efficiency %.3f\n",
		scalingFromDay, scalingToDay, len(rec.events),
		singleRate, shards, shardedRate,
		shardedRate/singleRate/float64(shards))
	return singleRate, shardedRate, nil
}
