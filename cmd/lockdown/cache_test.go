package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/logsink"
	"repro/internal/obs"
	"repro/internal/stagecache"
	"repro/internal/trace"
	"repro/internal/universe"
)

var cacheTestKey = []byte("cache-parity-key-0123456789abcdef")

func cacheTestConfig(t *testing.T, cacheDir string) config {
	t.Helper()
	scale := 0.05
	if testing.Short() {
		scale = 0.01
	}
	return config{
		scale:     scale,
		seed:      1,
		shards:    1,
		quiet:     true,
		key:       cacheTestKey,
		cacheDir:  cacheDir,
		cacheMode: "readwrite",
		statusW:   io.Discard,
	}
}

// runCached runs the harness with status capture and returns the status
// transcript.
func runCached(t *testing.T, cfg config) string {
	t.Helper()
	var status bytes.Buffer
	cfg.statusW = &status
	if err := run(cfg); err != nil {
		t.Fatalf("run: %v\nstatus:\n%s", err, status.String())
	}
	return status.String()
}

// readOutputs loads every artifact the harness writes (figure CSVs +
// report) keyed by name.
func readOutputs(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range artifactNames() {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		out[name] = b
	}
	if len(out) < 11 {
		t.Fatalf("only %d artifacts, expected every figure + report", len(out))
	}
	return out
}

func wantIdenticalOutputs(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for name, w := range want {
		if !bytes.Equal(w, got[name]) {
			t.Errorf("%s: %s differs from the cold run", label, name)
		}
	}
}

func statusHas(t *testing.T, label, status, frag string) {
	t.Helper()
	if !strings.Contains(status, frag) {
		t.Errorf("%s: status missing %q:\n%s", label, frag, status)
	}
}

// TestCacheColdWarmPartialParity is the acceptance walk from the ISSUE:
// a cold run populates the cache; a warm run hits every stage and must be
// byte-identical; a warm run at a different shard count still hits (shard
// count is not key material — sharded output is proven byte-identical);
// and a figure-only knob change reuses the cached stats, recomputes only
// figures, and still produces identical bytes (-fig-workers is
// output-neutral by design).
func TestCacheColdWarmPartialParity(t *testing.T) {
	cacheDir := t.TempDir()
	base := cacheTestConfig(t, cacheDir)

	coldDir := t.TempDir()
	cold := base
	cold.out = coldDir
	coldStatus := runCached(t, cold)
	statusHas(t, "cold", coldStatus, "stats=miss figures=miss")
	want := readOutputs(t, coldDir)

	warmDir := t.TempDir()
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	warm := base
	warm.out = warmDir
	warm.benchJSON = benchPath
	warmStatus := runCached(t, warm)
	statusHas(t, "warm", warmStatus, "stats=hit figures=hit")
	statusHas(t, "warm", warmStatus, "replayed from stats cache")
	wantIdenticalOutputs(t, "warm full-hit", want, readOutputs(t, warmDir))

	// The bench report carries the cache counters (hit counters are the
	// proof the stages were skipped, not recomputed), and a replayed run
	// must not report a fake ingest throughput.
	br, err := obs.LoadBench(benchPath)
	if err != nil {
		t.Fatalf("bench report: %v", err)
	}
	if br.Cache == nil || br.Cache.Hits != 2 || br.Cache.Misses != 0 {
		t.Errorf("warm bench cache section = %+v, want 2 hits 0 misses", br.Cache)
	}
	if br.Ingest.FlowsPerSec != 0 {
		t.Errorf("warm run reports ingest throughput %v from cached stats", br.Ingest.FlowsPerSec)
	}

	shardDir := t.TempDir()
	sharded := base
	sharded.out = shardDir
	sharded.shards = 4
	shardStatus := runCached(t, sharded)
	statusHas(t, "4-shard warm", shardStatus, "stats=hit figures=hit")
	wantIdenticalOutputs(t, "4-shard warm", want, readOutputs(t, shardDir))

	partialDir := t.TempDir()
	partial := base
	partial.out = partialDir
	partial.figWorkers = 2
	partialStatus := runCached(t, partial)
	statusHas(t, "figure-only change", partialStatus, "stats=hit figures=miss")
	wantIdenticalOutputs(t, "figure-only change", want, readOutputs(t, partialDir))

	// And the figures entry for the new knob is now cached too.
	againDir := t.TempDir()
	again := partial
	again.out = againDir
	statusHas(t, "figure-only rerun", runCached(t, again), "stats=hit figures=hit")
}

// TestCacheCorruptionRecovery damages cached stats payloads after a cold
// run and requires the next run to detect the damage (verify-failure
// counters), silently recompute, and emit byte-identical outputs — a
// corrupt cache may cost time, never results.
func TestCacheCorruptionRecovery(t *testing.T) {
	cacheDir := t.TempDir()
	base := cacheTestConfig(t, cacheDir)

	coldDir := t.TempDir()
	cold := base
	cold.out = coldDir
	runCached(t, cold)
	want := readOutputs(t, coldDir)

	// Find the stats entry's dataset payload and flip one bit.
	matches, err := filepath.Glob(filepath.Join(cacheDir, "stats", "*", "dataset.bin"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("stats entries = %v (err %v), want exactly one", matches, err)
	}
	payload := matches[0]
	b, err := os.ReadFile(payload)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x10
	if err := os.WriteFile(payload, b, 0o644); err != nil {
		t.Fatal(err)
	}

	recoverDir := t.TempDir()
	rec := base
	rec.out = recoverDir
	status := runCached(t, rec)
	statusHas(t, "recovery", status, "stats=miss")
	statusHas(t, "recovery", status, "verify_failures=1")
	wantIdenticalOutputs(t, "recovery", want, readOutputs(t, recoverDir))

	// The recompute healed the entry: the next run is a clean full hit.
	healDir := t.TempDir()
	heal := base
	heal.out = healDir
	healStatus := runCached(t, heal)
	statusHas(t, "healed", healStatus, "stats=hit figures=hit")
	statusHas(t, "healed", healStatus, "verify_failures=0")
	wantIdenticalOutputs(t, "healed", want, readOutputs(t, healDir))

	// Manifest damage is caught the same way.
	manifests, err := filepath.Glob(filepath.Join(cacheDir, "figures", "*", "manifest.json"))
	if err != nil || len(manifests) == 0 {
		t.Fatalf("no figures manifests (err %v)", err)
	}
	if err := os.WriteFile(manifests[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifestDir := t.TempDir()
	man := base
	man.out = manifestDir
	manStatus := runCached(t, man)
	statusHas(t, "manifest damage", manStatus, "verify_failures=1")
	wantIdenticalOutputs(t, "manifest damage", want, readOutputs(t, manifestDir))
}

// TestCacheRandomKeyStaysOff pins the privacy interlock: without a fixed
// -key the pseudonyms in a cached dataset are unlinkable, so the cache
// must refuse to engage (with a visible note) rather than serve
// meaningless reuse.
func TestCacheRandomKeyStaysOff(t *testing.T) {
	cfg := cacheTestConfig(t, t.TempDir())
	cfg.scale = 0.002
	cfg.key = nil
	cfg.out = t.TempDir()
	status := runCached(t, cfg)
	statusHas(t, "random key", status, "cache: disabled: -key required")
	if strings.Contains(status, "stats=") {
		t.Errorf("cache engaged without a fixed key:\n%s", status)
	}
}

// TestFaultGuardLineAlwaysPrinted is the regression fix that rode along
// with caching: every -logs replay must end with a fault-guard audit line,
// including a replay that offered zero events to the guard because the
// whole stats stage was served from cache — silence is indistinguishable
// from "the guard never ran".
func TestFaultGuardLineAlwaysPrinted(t *testing.T) {
	logsDir := writeTestLogs(t)
	cacheDir := t.TempDir()
	base := cacheTestConfig(t, cacheDir)
	base.logs = logsDir

	coldDir := t.TempDir()
	cold := base
	cold.out = coldDir
	coldStatus := runCached(t, cold)
	statusHas(t, "cold replay", coldStatus, "fault guard: policy=strict offered=")
	if strings.Contains(coldStatus, "offered=0") {
		t.Errorf("cold replay offered no events to the guard:\n%s", coldStatus)
	}

	warmDir := t.TempDir()
	warm := base
	warm.out = warmDir
	warmStatus := runCached(t, warm)
	statusHas(t, "warm replay", warmStatus, "stats=hit")
	statusHas(t, "warm replay", warmStatus, "fault guard: policy=strict offered=0 accepted=0 dropped=0 []")
	wantIdenticalOutputs(t, "warm replay", readOutputs(t, coldDir), readOutputs(t, warmDir))
}

// writeTestLogs generates a small Zeek-style log directory for replay
// tests (narrow window, tiny scale — replay cost, not coverage, is the
// point here).
func writeTestLogs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.002
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := logsink.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(w, 40, 45); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStageKeySensitivity drives the stats and figures key derivations
// across the config surface, table-style: every knob that can move an
// output byte must move its stage key, and the deliberate exclusions
// (shard count, output paths, observability) must not.
func TestStageKeySensitivity(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewMetrics()
	base := cacheTestConfig(t, t.TempDir())
	rc, err := openRunCache(base, reg, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if rc.store == nil {
		t.Fatalf("cache did not engage: %s", rc.note)
	}

	logsDigest := stagecache.Digest(strings.Repeat("a", 64))
	statsKeyOf := func(mut func(*config)) stagecache.Digest {
		cfg := base
		mut(&cfg)
		return rc.statsKey(cfg, "", false)
	}
	baseStats := statsKeyOf(func(*config) {})

	mustMove := map[string]func(*config){
		"scale": func(c *config) { c.scale = 0.051 },
		"seed":  func(c *config) { c.seed = 2 },
		"key":   func(c *config) { c.key = append([]byte{}, bytes.ToUpper(cacheTestKey)...) },
	}
	for name, mut := range mustMove {
		if statsKeyOf(mut) == baseStats {
			t.Errorf("stats key ignores %s", name)
		}
	}
	mustNotMove := map[string]func(*config){
		"shards":       func(c *config) { c.shards = 8 },
		"out":          func(c *config) { c.out = "elsewhere" },
		"quiet":        func(c *config) { c.quiet = false },
		"progress":     func(c *config) { c.progressEvery = 1; c.progressFormat = "json" },
		"bench":        func(c *config) { c.benchJSON = "bench.json" },
		"fig-workers":  func(c *config) { c.figWorkers = 7 },
		"cache-dir":    func(c *config) { c.cacheDir = "other" },
		"fault knobs (generate mode)": func(c *config) {
			c.faultPolicy = "skip"
			c.faultInject = 0.5
		},
	}
	for name, mut := range mustNotMove {
		if statsKeyOf(mut) != baseStats {
			t.Errorf("stats key moves with %s, which cannot change stats bytes", name)
		}
	}

	// Source mode and the replayed tree are key material.
	if rc.statsKey(base, logsDigest, false) == baseStats {
		t.Error("stats key ignores the logs source")
	}
	if rc.statsKey(base, stagecache.Digest(strings.Repeat("b", 64)), false) == rc.statsKey(base, logsDigest, false) {
		t.Error("stats key ignores the replayed dataset digest")
	}
	if rc.statsKey(base, "", true) == baseStats {
		t.Error("stats key ignores the counterfactual (no-pandemic) world")
	}
	// In logs mode every fault knob shapes which records survive replay.
	logsBase := rc.statsKey(base, logsDigest, false)
	for name, mut := range map[string]func(*config){
		"fault-policy": func(c *config) { c.faultPolicy = "skip" },
		"fault-budget": func(c *config) { c.faultBudget = 0.25 },
		"fault-inject": func(c *config) { c.faultInject = 0.01 },
		"fault-seed":   func(c *config) { c.faultSeed = 9 },
	} {
		cfg := base
		mut(&cfg)
		if rc.statsKey(cfg, logsDigest, false) == logsBase {
			t.Errorf("logs-mode stats key ignores %s", name)
		}
	}

	dsD := stagecache.Digest(strings.Repeat("c", 64))
	truthD := stagecache.Digest(strings.Repeat("d", 64))
	figKeyOf := func(mut func(*config)) stagecache.Digest {
		cfg := base
		mut(&cfg)
		return rc.figuresKey(cfg, dsD, truthD, "")
	}
	baseFig := figKeyOf(func(*config) {})
	if figKeyOf(func(c *config) { c.figWorkers = 2 }) == baseFig {
		t.Error("figures key ignores -fig-workers")
	}
	if figKeyOf(func(c *config) { c.shards = 8 }) != baseFig {
		t.Error("figures key moves with the shard count")
	}
	if rc.figuresKey(base, stagecache.Digest(strings.Repeat("e", 64)), truthD, "") == baseFig {
		t.Error("figures key ignores the dataset content")
	}
	if rc.figuresKey(base, dsD, stagecache.Digest(strings.Repeat("f", 64)), "") == baseFig {
		t.Error("figures key ignores the truth content")
	}
	if rc.figuresKey(base, dsD, truthD, stagecache.Digest(strings.Repeat("9", 64))) == baseFig {
		t.Error("figures key ignores the counterfactual baseline")
	}

	// Stats and figures keys live in different domains: identical material
	// can never alias across stages.
	if baseStats == baseFig {
		t.Error("stats and figures keys alias")
	}
}

// TestStatsKeyStableAcrossProcesses re-derives the stats key in a child
// process (same binary, same inputs) and requires the same digest —
// process identity, ASLR, map ordering and environment must not leak into
// keys, or a daemon and a CLI could never share a cache.
func TestStatsKeyStableAcrossProcesses(t *testing.T) {
	if os.Getenv("LOCKDOWN_PRINT_STATS_KEY") == "1" {
		// Child mode: print the key and exit inside the test process.
		key, err := deriveStableStatsKey(t)
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			fmt.Println("STATSKEY:", key)
		}
		return
	}
	want, err := deriveStableStatsKey(t)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestStatsKeyStableAcrossProcesses$", "-test.v")
		cmd.Env = append(os.Environ(), "LOCKDOWN_PRINT_STATS_KEY=1")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child process: %v\n%s", err, out)
		}
		_, after, found := strings.Cut(string(out), "STATSKEY: ")
		if !found {
			t.Fatalf("child printed no key:\n%s", out)
		}
		got := stagecache.Digest(strings.TrimSpace(strings.SplitN(after, "\n", 2)[0]))
		if got != want {
			t.Fatalf("child %d derived %s, parent derived %s", i, got, want)
		}
	}
}

func deriveStableStatsKey(t *testing.T) (stagecache.Digest, error) {
	reg, err := universe.New()
	if err != nil {
		return "", err
	}
	cfg := config{
		scale:     0.05,
		seed:      1,
		key:       cacheTestKey,
		cacheDir:  t.TempDir(),
		cacheMode: "readwrite",
	}
	rc, err := openRunCache(cfg, reg, nil)
	if err != nil {
		return "", err
	}
	if rc.store == nil {
		return "", fmt.Errorf("cache did not engage: %s", rc.note)
	}
	return rc.statsKey(cfg, "", false), nil
}

// TestCacheReadMode proves a populated cache is sufficient on its own: a
// read-only pass over a warm cache hits every stage and writes nothing
// new.
func TestCacheReadMode(t *testing.T) {
	cacheDir := t.TempDir()
	base := cacheTestConfig(t, cacheDir)
	base.scale = 0.002

	coldDir := t.TempDir()
	cold := base
	cold.out = coldDir
	runCached(t, cold)
	want := readOutputs(t, coldDir)

	roDir := t.TempDir()
	ro := base
	ro.out = roDir
	ro.cacheMode = "read"
	status := runCached(t, ro)
	statusHas(t, "read-only warm", status, "mode=read ")
	statusHas(t, "read-only warm", status, "stats=hit figures=hit")
	wantIdenticalOutputs(t, "read-only warm", want, readOutputs(t, roDir))
}
