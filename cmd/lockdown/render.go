package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/appsig"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/viz"
)

// results bundles every computed experiment for rendering.
type results struct {
	scale float64
	fig1  experiments.Fig1Result
	fig2  experiments.Fig2Result
	fig3  experiments.Fig3Result
	fig4  experiments.Fig4Result
	fig5  experiments.Fig5Result
	fig6  experiments.Fig6Result
	fig7  experiments.Fig7Result
	fig8  experiments.Fig8Result
	head  experiments.HeadlineResult
	pop   experiments.PopulationResult
	acc   experiments.AccuracyResult

	yoy         *experiments.YearOverYearResult
	cdnAblate   experiments.CDNAblationResult
	iotSweep    []experiments.IoTThresholdPoint
	workPlay    experiments.WorkLeisureResult
	zoomWknd    experiments.ZoomWeekendResult
	convergence experiments.DiurnalConvergenceResult

	stats core.Stats
}

func siBytes(v float64) string { return viz.SIBytes(v) }

func dayLabels() []string {
	labels := make([]string, campus.NumDays)
	for d := campus.Day(0); d < campus.NumDays; d++ {
		labels[d] = d.String()
	}
	return labels
}

func writeCSVFile(dir, name, labelHeader string, labels []string, cols map[string][]float64, order []string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return viz.WriteCSV(f, labelHeader, labels, cols, order)
}

func (r *results) writeCSVs(dir string) error {
	labels := dayLabels()

	// Figure 1: active devices per day by type.
	cols := map[string][]float64{}
	var order []string
	for _, ty := range devclass.Types {
		series := make([]float64, campus.NumDays)
		for d, v := range r.fig1.ByType[ty] {
			series[d] = float64(v)
		}
		cols[ty.String()] = series
		order = append(order, ty.String())
	}
	if err := writeCSVFile(dir, "fig1_active_devices.csv", "date", labels, cols, order); err != nil {
		return err
	}

	// Figure 2: mean and median bytes per device per day by type.
	cols = map[string][]float64{}
	order = order[:0]
	for _, ty := range devclass.Types {
		cols["mean_"+ty.String()] = r.fig2.Mean[ty]
		cols["median_"+ty.String()] = r.fig2.Median[ty]
		order = append(order, "mean_"+ty.String(), "median_"+ty.String())
	}
	if err := writeCSVFile(dir, "fig2_bytes_per_device.csv", "date", labels, cols, order); err != nil {
		return err
	}

	// Figure 3: normalized hour-of-week medians.
	hourLabels := make([]string, campus.HoursPerWeek)
	for h := range hourLabels {
		hourLabels[h] = fmt.Sprintf("h%03d", h)
	}
	cols = map[string][]float64{}
	order = order[:0]
	for w, label := range r.fig3.WeekLabels {
		cols[label] = r.fig3.Normalized[w]
		order = append(order, label)
	}
	if err := writeCSVFile(dir, "fig3_hour_of_week.csv", "hour", hourLabels, cols, order); err != nil {
		return err
	}

	// Figure 4: population × device-group medians.
	cols = map[string][]float64{}
	order = order[:0]
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, grp := range []string{"mobile-desktop", "unclassified"} {
			if series := r.fig4.Median[pop][grp]; series != nil {
				name := pop + "_" + grp
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	if err := writeCSVFile(dir, "fig4_population_medians.csv", "date", labels, cols, order); err != nil {
		return err
	}

	// Figure 5: daily aggregate Zoom.
	if err := writeCSVFile(dir, "fig5_zoom_daily.csv", "date", labels,
		map[string][]float64{"zoom_bytes": r.fig5.Bytes}, []string{"zoom_bytes"}); err != nil {
		return err
	}

	// Figure 6: monthly summaries per app/population.
	monthLabels := []string{"February", "March", "April", "May"}
	cols = map[string][]float64{}
	order = order[:0]
	for _, app := range appsig.SocialMediaApps {
		for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
			sums := r.fig6.Summary[app][pop]
			for _, stat := range []string{"n", "p1", "q1", "median", "q3", "p95", "p99"} {
				name := fmt.Sprintf("%s_%s_%s", app, pop, stat)
				series := make([]float64, campus.NumMonths)
				for m := campus.February; m < campus.NumMonths; m++ {
					s := sums[m]
					switch stat {
					case "n":
						series[m] = float64(s.N)
					case "p1":
						series[m] = s.P1
					case "q1":
						series[m] = s.Q1
					case "median":
						series[m] = s.Median
					case "q3":
						series[m] = s.Q3
					case "p95":
						series[m] = s.P95
					case "p99":
						series[m] = s.P99
					}
				}
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	if err := writeCSVFile(dir, "fig6_social_durations.csv", "month", monthLabels, cols, order); err != nil {
		return err
	}

	// Figure 7: steam bytes and connections summaries.
	cols = map[string][]float64{}
	order = order[:0]
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, metric := range []string{"bytes", "connections"} {
			sums := r.fig7.Bytes[pop]
			if metric == "connections" {
				sums = r.fig7.Connections[pop]
			}
			for _, stat := range []string{"n", "q1", "median", "q3", "p95"} {
				name := fmt.Sprintf("steam_%s_%s_%s", metric, pop, stat)
				series := make([]float64, campus.NumMonths)
				for m := campus.February; m < campus.NumMonths; m++ {
					s := sums[m]
					switch stat {
					case "n":
						series[m] = float64(s.N)
					case "q1":
						series[m] = s.Q1
					case "median":
						series[m] = s.Median
					case "q3":
						series[m] = s.Q3
					case "p95":
						series[m] = s.P95
					}
				}
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	if err := writeCSVFile(dir, "fig7_steam.csv", "month", monthLabels, cols, order); err != nil {
		return err
	}

	// Figure 8: switch gameplay moving average.
	if err := writeCSVFile(dir, "fig8_switch_gameplay.csv", "date", labels,
		map[string][]float64{
			"gameplay_raw":    r.fig8.GameplayRaw,
			"gameplay_3d_avg": r.fig8.GameplayAvg,
		}, []string{"gameplay_raw", "gameplay_3d_avg"}); err != nil {
		return err
	}

	// Extension: work/leisure category shares per month and population.
	cols = map[string][]float64{}
	order = order[:0]
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		shares := r.workPlay.Share[pop]
		for g := core.CategoryGroup(0); g < core.NumGroups; g++ {
			name := pop + "_" + g.String()
			series := make([]float64, campus.NumMonths)
			for m := campus.February; m < campus.NumMonths; m++ {
				series[m] = shares[m][g]
			}
			cols[name] = series
			order = append(order, name)
		}
	}
	if err := writeCSVFile(dir, "ext_work_leisure.csv", "month", monthLabels, cols, order); err != nil {
		return err
	}

	// Extension: Zoom hour-of-day, weekday vs weekend (online term).
	hod := make([]string, 24)
	for h := range hod {
		hod[h] = fmt.Sprintf("%02d:00", h)
	}
	return writeCSVFile(dir, "ext_zoom_hourly.csv", "hour", hod,
		map[string][]float64{
			"weekday": r.zoomWknd.WeekdayHourly[:],
			"weekend": r.zoomWknd.WeekendHourly[:],
		}, []string{"weekday", "weekend"})
}

// report renders the ASCII report.
func (r *results) report(w io.Writer) error {
	labels := dayLabels()
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	atScale := func(v float64) string {
		return fmt.Sprintf("%.0f (≈%.0f at paper scale)", v, v/r.scale)
	}

	p("==============================================================")
	p(" Locked-In during Lock-Down — reproduction report (scale %.3g)", r.scale)
	p("==============================================================")
	p("")
	p("Pipeline: %d flows processed, %d tap-dropped, %d unattributed, %d unlabeled",
		r.stats.FlowsProcessed, r.stats.FlowsTapDropped, r.stats.FlowsUnattributed, r.stats.FlowsUnlabeled)
	p("          %s total, %d DNS entries, %d leases, %d HTTP metadata entries",
		siBytes(float64(r.stats.BytesProcessed)), r.stats.DNSEntries, r.stats.Leases, r.stats.HTTPEntries)
	p("")

	p("— Figure 1: active devices per day by type —")
	p("  peak %s on %v (paper: 32,019); low %s on %v (paper: 4,973)",
		atScale(float64(r.fig1.Peak)), r.fig1.PeakDay, atScale(float64(r.fig1.Low)), r.fig1.LowDay)
	chart := viz.Chart{
		Title: "  active devices/day (all types)", Height: 10, Width: 60,
		Format: func(v float64) string { return fmt.Sprintf("%.0f", v) },
	}
	total := make([]float64, campus.NumDays)
	for d, v := range r.fig1.Total {
		total[d] = float64(v)
	}
	mob := make([]float64, campus.NumDays)
	unc := make([]float64, campus.NumDays)
	for d := range mob {
		mob[d] = float64(r.fig1.ByType[devclass.Mobile][d])
		unc[d] = float64(r.fig1.ByType[devclass.Unknown][d])
	}
	if err := chart.Render(w, labels, map[string][]float64{"total": total, "mobile": mob, "unclassified": unc},
		[]string{"total", "mobile", "unclassified"}); err != nil {
		return err
	}
	p("")

	p("— Figure 2: bytes per active device (mid-February vs mid-May) —")
	febDay, mayDay := campus.Day(12), campus.FirstDay(campus.May)+5
	for _, ty := range devclass.Types {
		p("  %-18s Feb: mean %9s median %9s | May: mean %9s median %9s", ty.String(),
			siBytes(r.fig2.Mean[ty][febDay]), siBytes(r.fig2.Median[ty][febDay]),
			siBytes(r.fig2.Mean[ty][mayDay]), siBytes(r.fig2.Median[ty][mayDay]))
	}
	p("")

	p("— Figure 3: normalized median traffic per device per hour of week —")
	for wk, label := range r.fig3.WeekLabels {
		peak := 0.0
		for _, v := range r.fig3.Normalized[wk] {
			peak = math.Max(peak, v)
		}
		p("  %-18s devices=%5d peak=%5.1f×min", label, r.fig3.Devices[wk], peak)
	}
	p("")

	p("— Figure 4: median daily bytes (excl. Zoom), post-shutdown users —")
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, grp := range []string{"mobile-desktop", "unclassified"} {
			if series := r.fig4.Median[pop][grp]; series != nil {
				p("  %-13s %-14s n=%4d Feb=%9s May=%9s", pop, grp, r.fig4.N[pop][grp],
					siBytes(series[febDay]), siBytes(series[mayDay]))
			}
		}
	}
	p("")

	p("— Figure 5: daily aggregate Zoom traffic (post-shutdown users) —")
	p("  peak %s on %v (paper: ≈600 GB at full scale → %s at this scale)",
		siBytes(r.fig5.Peak), r.fig5.PeakDay, siBytes(600*(1<<30)*r.scale))
	p("  online-term weekday mean %s vs weekend mean %s",
		siBytes(r.fig5.WeekdayMean), siBytes(r.fig5.WeekendMean))
	if err := (viz.Chart{Title: "  zoom bytes/day", Height: 8, Width: 60}).Render(w, labels,
		map[string][]float64{"zoom": r.fig5.Bytes}, []string{"zoom"}); err != nil {
		return err
	}
	p("")

	p("— Figure 6: monthly mobile session hours (median [IQR], by population) —")
	for _, app := range appsig.SocialMediaApps {
		for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
			sums := r.fig6.Summary[app][pop]
			line := fmt.Sprintf("  %-10s %-13s", app, pop)
			for m := campus.February; m < campus.NumMonths; m++ {
				s := sums[m]
				line += fmt.Sprintf(" | %s n=%-3d med=%5.2fh", m.String()[:3], s.N, s.Median)
			}
			p("%s", line)
		}
	}
	p("")

	p("— Figure 7: monthly Steam usage per device (by population) —")
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		b, c := r.fig7.Bytes[pop], r.fig7.Connections[pop]
		line := fmt.Sprintf("  %-13s", pop)
		for m := campus.February; m < campus.NumMonths; m++ {
			line += fmt.Sprintf(" | %s n=%-3d %8s %4.0f conns", m.String()[:3], b[m].N, siBytes(b[m].Median), c[m].Median)
		}
		p("%s", line)
	}
	p("")

	p("— Figure 8: Nintendo Switch gameplay (3-day moving average) —")
	p("  switches pre-shutdown %s (paper: 1,097); post %s (paper: 267 + 40 new); new %s (paper: 40)",
		atScale(float64(r.fig8.PreShutdown)), atScale(float64(r.fig8.PostShutdown)), atScale(float64(r.fig8.NewSwitches)))
	if err := (viz.Chart{Title: "  gameplay bytes/day (3d avg)", Height: 8, Width: 60}).Render(w, labels,
		map[string][]float64{"gameplay": r.fig8.GameplayAvg}, []string{"gameplay"}); err != nil {
		return err
	}
	p("")

	p("— §4.1 headline results (post-shutdown users) —")
	p("  traffic growth Feb→Apr/May: %+.0f%% (paper: +58%%)", r.head.TrafficGrowth*100)
	p("  distinct sites growth:      %+.0f%% (paper: +34%%)", r.head.DistinctSiteGrowth*100)
	p("  weekend dip pre/post:       %.0f%% / %.0f%% (persist, unlike Feldmann et al.)",
		r.head.WeekendDipPre*100, r.head.WeekendDipPost*100)
	p("  post-shutdown users:        %s (paper: 6,522)", atScale(float64(r.head.PostShutdownUsers)))
	p("")

	p("— §4.2 population split —")
	p("  international: %s (paper: 1,022); share of identified: %.0f%% (paper: 18%%)",
		atScale(float64(r.pop.International)), r.pop.IntlShare*100)
	p("")

	p("— §3 classifier accuracy (100 sampled devices vs ground truth) —")
	p("  correct %d, conservative omissions %d, affirmative errors %d (paper: 84/14/2)",
		r.acc.Correct, r.acc.Omissions, r.acc.Affirmative)
	p("")

	p("— Ablations and extensions —")
	p("  CDN exclusion (§4.2): international %d with exclusion vs %d without; %d flipped domestic",
		r.cdnAblate.IntlExcluded, r.cdnAblate.IntlIncluded, r.cdnAblate.FlippedToDomestic)
	p("  Saidi threshold sweep (§3):")
	for _, pt := range r.iotSweep {
		p("    threshold %.2f: %5d IoT devices, %d correct / %d omissions / %d affirmative",
			pt.Threshold, pt.IoTCount, pt.Correct, pt.Omissions, pt.Affirmative)
	}
	dom := r.workPlay.Share[experiments.PopDomestic]
	p("  work/leisure shares (domestic): Feb work %.1f%% video %.1f%% | Apr work %.1f%% video %.1f%%",
		dom[campus.February][core.GroupWork]*100, dom[campus.February][core.GroupVideo]*100,
		dom[campus.April][core.GroupWork]*100, dom[campus.April][core.GroupVideo]*100)
	p("  weekend Zoom peak at hour %d (§5.1's afternoon bump, \"not shown\" in the paper)",
		r.zoomWknd.WeekendPeakHour)
	p("  diurnal convergence (§2 vs Feldmann et al.): similarities %v → converged=%v",
		fmtSims(r.convergence.Similarity), r.convergence.Converged)
	if r.yoy != nil {
		p("  year-over-year (counterfactual baseline): %+.0f%% (paper: +53%% vs 2019)", r.yoy.Growth*100)
	}
	return nil
}

func fmtSims(sims []float64) string {
	out := "["
	for i, s := range sims {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", s)
	}
	return out + "]"
}
