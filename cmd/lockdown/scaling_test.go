package main

import (
	"io"
	"testing"

	"repro/internal/universe"
)

// TestMeasureScalingSmoke drives measureScaling end to end at a small
// scale: both reference pipelines must accept the recorded window (the
// single pipeline through per-event delivery, the sharded one through the
// batched fast path) and produce positive rates. Regression test for the
// BatchSink cast panic: the single pipeline does not implement
// trace.BatchSink and must be fed per event.
func TestMeasureScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and replays a 5-day window")
	}
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config{scale: 0.01, seed: 1}
	single, sharded, err := measureScaling(reg, cfg, 2, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if single <= 0 || sharded <= 0 {
		t.Fatalf("rates = (%f, %f), want both positive", single, sharded)
	}

	if _, _, err := measureScaling(reg, cfg, 1, io.Discard); err == nil {
		t.Error("shards < 2 should error")
	}
}
