package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/figset"
)

// epochSnapshot is one published epoch: an immutable dataset snapshot and
// its computed figure set. Handlers only ever read it.
type epochSnapshot struct {
	epoch int
	day   string // last sealed day
	final bool   // dataset complete; snapshot equals the batch finalize
	ds    *core.Dataset
	res   *figset.Results
}

// serverState holds the atomically swapped current epoch. Each request
// loads the pointer exactly once, so every response is assembled from a
// single epoch even while the next one is being published.
type serverState struct {
	cur atomic.Pointer[epochSnapshot]
}

func newServerState() *serverState { return &serverState{} }

func (s *serverState) publish(snap *epochSnapshot) { s.cur.Store(snap) }

// snap loads the current epoch for one request, answering 503 (with a
// Retry-After) itself when nothing is sealed yet.
func (s *serverState) snap(w http.ResponseWriter) (*epochSnapshot, bool) {
	snap := s.cur.Load()
	if snap == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no epoch sealed yet", http.StatusServiceUnavailable)
		return nil, false
	}
	w.Header().Set("X-Lockdown-Epoch", strconv.Itoa(snap.epoch))
	return snap, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *serverState) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/v1/figures", s.handleFigureIndex)
	mux.HandleFunc("/v1/figures/", s.handleFigure)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/devices", s.handleDevices)
	return mux
}

func (s *serverState) handleEpoch(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{
		"epoch":   snap.epoch,
		"day":     snap.day,
		"final":   snap.final,
		"flows":   snap.ds.Stats.FlowsProcessed,
		"bytes":   snap.ds.Stats.BytesProcessed,
		"devices": len(snap.ds.Devices),
	})
}

func (s *serverState) handleFigureIndex(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{
		"epoch":   snap.epoch,
		"figures": figset.FigureNames(),
	})
}

func (s *serverState) handleFigure(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w)
	if !ok {
		return
	}
	name := path.Base(r.URL.Path)
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if err := snap.res.WriteFigure(w, name); err != nil {
		// Nothing has been written yet on the unknown-name path (the name
		// switch fails before any output), so the 404 is clean.
		w.Header().Del("Content-Type")
		http.Error(w, fmt.Sprintf("unknown figure %q", name), http.StatusNotFound)
	}
}

func (s *serverState) handleReport(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.res.Report(w)
}

// handleDevices serves aggregate counts only — the daemon never exposes
// per-device records, pseudonymous or not.
func (s *serverState) handleDevices(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w)
	if !ok {
		return
	}
	byType := map[string]int{}
	resident, post, switches := 0, 0, 0
	for _, d := range snap.ds.Devices {
		byType[d.Type.String()]++
		if d.Resident {
			resident++
		}
		if d.PostShutdown {
			post++
		}
		if d.IsSwitch {
			switches++
		}
	}
	writeJSON(w, map[string]any{
		"epoch":         snap.epoch,
		"total":         len(snap.ds.Devices),
		"resident":      resident,
		"post_shutdown": post,
		"switches":      switches,
		"by_type":       byType,
	})
}
