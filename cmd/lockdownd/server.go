package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/figset"
)

// deviceSummary is the aggregate device accounting an epoch serves —
// precomputed at publish time so retained historical epochs hold no
// dataset (and the daemon still never exposes per-device records).
type deviceSummary struct {
	total    int
	resident int
	post     int
	switches int
	byType   map[string]int
}

func summarizeDevices(ds *core.Dataset) deviceSummary {
	sum := deviceSummary{total: len(ds.Devices), byType: map[string]int{}}
	for _, d := range ds.Devices {
		sum.byType[d.Type.String()]++
		if d.Resident {
			sum.resident++
		}
		if d.PostShutdown {
			sum.post++
		}
		if d.IsSwitch {
			sum.switches++
		}
	}
	return sum
}

// epochSnapshot is one published epoch: the figure set computed at its
// seal, the cumulative stats, the precomputed device summary and — for
// incrementally sealed epochs — the day's partial aggregate. Handlers only
// ever read it.
type epochSnapshot struct {
	epoch   int
	day     string // last sealed day
	final   bool   // dataset complete; snapshot equals the batch finalize
	res     *figset.Results
	stats   core.Stats
	devices deviceSummary
	partial *core.DayPartial // nil on the final epoch (published from Finalize)
}

// serverState holds every published epoch. The current epoch is an
// atomically swapped pointer — each request loads it exactly once, so a
// response is assembled from a single epoch even while the next one is
// being published — and the history answers ?epoch=n / /v1/epoch/<n>
// queries for any earlier seal.
type serverState struct {
	cur  atomic.Pointer[epochSnapshot]
	mu   sync.RWMutex
	hist []*epochSnapshot // hist[n-1] = epoch n
}

func newServerState() *serverState { return &serverState{} }

func (s *serverState) publish(snap *epochSnapshot) {
	s.mu.Lock()
	s.hist = append(s.hist, snap)
	s.mu.Unlock()
	s.cur.Store(snap)
}

func (s *serverState) epochCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.hist)
}

func (s *serverState) at(n int) *epochSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if n < 1 || n > len(s.hist) {
		return nil
	}
	return s.hist[n-1]
}

// snap resolves the epoch a request addresses — the current one, or the
// historical one an ?epoch=n selector names — writing the X-Lockdown-Epoch
// header on success and handling 503/400/404 responses itself.
func (s *serverState) snap(w http.ResponseWriter, r *http.Request) (*epochSnapshot, bool) {
	cur := s.cur.Load()
	if cur == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no epoch sealed yet", http.StatusServiceUnavailable)
		return nil, false
	}
	snap := cur
	if sel := r.URL.Query().Get("epoch"); sel != "" {
		n, err := strconv.Atoi(sel)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad epoch %q", sel), http.StatusBadRequest)
			return nil, false
		}
		if snap = s.at(n); snap == nil {
			http.Error(w, fmt.Sprintf("epoch %d not sealed (have 1..%d)", n, cur.epoch), http.StatusNotFound)
			return nil, false
		}
	}
	w.Header().Set("X-Lockdown-Epoch", strconv.Itoa(snap.epoch))
	return snap, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *serverState) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/epoch", s.handleEpoch)
	mux.HandleFunc("/v1/epoch/", s.handleEpochAt)
	mux.HandleFunc("/v1/figures", s.handleFigureIndex)
	mux.HandleFunc("/v1/figures/", s.handleFigure)
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/devices", s.handleDevices)
	return mux
}

func (s *serverState) handleEpoch(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w, r)
	if !ok {
		return
	}
	resp := map[string]any{
		"epoch":   snap.epoch,
		"epochs":  s.epochCount(),
		"day":     snap.day,
		"final":   snap.final,
		"flows":   snap.stats.FlowsProcessed,
		"bytes":   snap.stats.BytesProcessed,
		"devices": snap.devices.total,
	}
	if snap.partial != nil {
		resp["day_flows"] = snap.partial.Stats.FlowsProcessed
		resp["day_bytes"] = snap.partial.Stats.BytesProcessed
		resp["day_touched"] = len(snap.partial.Touched)
	}
	writeJSON(w, resp)
}

// handleEpochAt serves /v1/epoch/<n>: the path segment is the epoch
// selector, resolved through the same ?epoch= machinery (and the same
// X-Lockdown-Epoch contract).
func (s *serverState) handleEpochAt(w http.ResponseWriter, r *http.Request) {
	sel := strings.TrimPrefix(r.URL.Path, "/v1/epoch/")
	q := r.URL.Query()
	q.Set("epoch", sel)
	r.URL.RawQuery = q.Encode()
	s.handleEpoch(w, r)
}

func (s *serverState) handleFigureIndex(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w, r)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{
		"epoch":   snap.epoch,
		"figures": figset.FigureNames(),
	})
}

func (s *serverState) handleFigure(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w, r)
	if !ok {
		return
	}
	name := path.Base(r.URL.Path)
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if err := snap.res.WriteFigure(w, name); err != nil {
		// Nothing has been written yet on the unknown-name path (the name
		// switch fails before any output), so the 404 is clean.
		w.Header().Del("Content-Type")
		http.Error(w, fmt.Sprintf("unknown figure %q", name), http.StatusNotFound)
	}
}

func (s *serverState) handleReport(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.res.Report(w)
}

// handleDevices serves aggregate counts only — the daemon never exposes
// per-device records, pseudonymous or not.
func (s *serverState) handleDevices(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snap(w, r)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{
		"epoch":         snap.epoch,
		"total":         snap.devices.total,
		"resident":      snap.devices.resident,
		"post_shutdown": snap.devices.post,
		"switches":      snap.devices.switches,
		"by_type":       snap.devices.byType,
	})
}
