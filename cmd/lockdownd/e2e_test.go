package main

// Layered end-to-end test: build the real lockdownd and lockdown
// binaries, grow a rotated dataset day by day underneath the running
// daemon while querying it, and assert (a) per-epoch response
// consistency while ingest runs hot and (b) final-epoch byte parity
// with a batch cmd/lockdown run over the same dataset and key.

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/campus"
	"repro/internal/logsink"
	"repro/internal/trace"
	"repro/internal/universe"
)

const (
	e2eScale = 0.005
	e2eSeed  = 1
	e2eFrom  = campus.Day(40)
	e2eTo    = campus.Day(46)
)

var e2eKey = hex.EncodeToString([]byte("e2e-parity-key-0123456789abcdef0"))

var (
	e2eBuildOnce sync.Once
	e2eBins      map[string]string
	e2eBuildErr  error
)

// e2eBin builds the named command ("lockdownd" or "lockdown") once and
// returns the binary path.
func e2eBin(t *testing.T, name string) string {
	t.Helper()
	e2eBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lockdownd-e2e")
		if err != nil {
			e2eBuildErr = err
			return
		}
		e2eBins = map[string]string{}
		for _, cmd := range []string{"lockdownd", "lockdown"} {
			bin := filepath.Join(dir, cmd)
			out, err := exec.Command("go", "build", "-o", bin, "../"+cmd).CombinedOutput()
			if err != nil {
				e2eBuildErr = fmt.Errorf("building %s: %v\n%s", cmd, err, out)
				return
			}
			e2eBins[cmd] = bin
		}
	})
	if e2eBuildErr != nil {
		t.Fatal(e2eBuildErr)
	}
	return e2eBins[name]
}

// writeE2EDataset generates the rotated source dataset.
func writeE2EDataset(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = e2eScale
	cfg.Seed = e2eSeed
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := logsink.NewRotatingWriter(root, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(rw, e2eFrom, e2eTo); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	return root
}

func copyE2EDay(t *testing.T, src, dst, day string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dst, day), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(src, day))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, day, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, day, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

type epochInfo struct {
	Epoch   int    `json:"epoch"`
	Day     string `json:"day"`
	Final   bool   `json:"final"`
	Flows   int64  `json:"flows"`
	Devices int    `json:"devices"`
}

// get fetches a daemon URL, returning status, the X-Lockdown-Epoch header
// (-1 if absent) and the body.
func get(t *testing.T, url string) (int, int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	epoch := -1
	if h := resp.Header.Get("X-Lockdown-Epoch"); h != "" {
		epoch, err = strconv.Atoi(h)
		if err != nil {
			t.Fatalf("GET %s: bad X-Lockdown-Epoch %q", url, h)
		}
	}
	return resp.StatusCode, epoch, body
}

func waitEpoch(t *testing.T, base string, pred func(epochInfo) bool) epochInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _, body := get(t, base+"/v1/epoch")
		if code == http.StatusOK {
			var info epochInfo
			if err := json.Unmarshal(body, &info); err != nil {
				t.Fatalf("/v1/epoch: %v in %s", err, body)
			}
			if pred(info) {
				return info
			}
		} else if code != http.StatusServiceUnavailable {
			t.Fatalf("/v1/epoch: status %d: %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for epoch (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonGrowsWithDatasetAndMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e daemon test skipped in -short mode")
	}
	src := writeE2EDataset(t)
	days, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var dayNames []string
	for _, e := range days {
		if e.IsDir() {
			dayNames = append(dayNames, e.Name())
		}
	}
	if len(dayNames) < 3 {
		t.Fatalf("dataset produced only %d day directories", len(dayNames))
	}

	// Batch reference over the complete dataset.
	batchOut := t.TempDir()
	cmdBatch := exec.Command(e2eBin(t, "lockdown"),
		"-logs", src, "-scale", fmt.Sprint(e2eScale), "-seed", fmt.Sprint(e2eSeed),
		"-key", e2eKey, "-out", batchOut, "-quiet")
	if out, err := cmdBatch.CombinedOutput(); err != nil {
		t.Fatalf("batch lockdown: %v\n%s", err, out)
	}

	// Start the daemon on an empty root.
	dst := t.TempDir()
	daemon := exec.Command(e2eBin(t, "lockdownd"),
		"-root", dst, "-addr", "127.0.0.1:0", "-scale", fmt.Sprint(e2eScale),
		"-seed", fmt.Sprint(e2eSeed), "-key", e2eKey, "-poll", "5ms")
	var stderr bytes.Buffer
	daemon.Stderr = &stderr
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if daemon.Process != nil {
			_ = daemon.Process.Kill()
			_ = daemon.Wait()
		}
	}()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon exited before announcing its address; stderr:\n%s", stderr.String())
	}
	startLine := sc.Text()
	const marker = "serving on http://"
	i := strings.Index(startLine, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", startLine)
	}
	addr := strings.Fields(startLine[i+len(marker):])[0]
	base := "http://" + addr
	// Drain any further stdout so the child never blocks on a full pipe.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
		}
	}()

	// Before any day is sealed every /v1 endpoint is a clean 503.
	if code, _, _ := get(t, base+"/v1/report"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-seal /v1/report: status %d, want 503", code)
	}

	// A concurrent querier hammers the API during growth: every response
	// must come from a sealed epoch, and epochs must never regress.
	qStop := make(chan struct{})
	qDone := make(chan struct{})
	var qErr error
	go func() {
		defer close(qDone)
		last := 0
		for {
			select {
			case <-qStop:
				return
			default:
			}
			resp, err := http.Get(base + "/v1/figures/fig1_active_devices.csv")
			if err != nil {
				qErr = err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				continue
			}
			if resp.StatusCode != http.StatusOK {
				qErr = fmt.Errorf("querier: status %d", resp.StatusCode)
				return
			}
			e, err := strconv.Atoi(resp.Header.Get("X-Lockdown-Epoch"))
			if err != nil || e < last {
				qErr = fmt.Errorf("querier: epoch header %q after epoch %d", resp.Header.Get("X-Lockdown-Epoch"), last)
				return
			}
			last = e
			if !bytes.HasPrefix(body, []byte("date,")) {
				qErr = fmt.Errorf("querier: malformed CSV at epoch %d: %.60s", e, body)
				return
			}
		}
	}()

	// Grow day by day. Day k can only seal once day k+1 exists (or the
	// sentinel lands), so after copying day k+1 we wait for epoch k+1.
	copyE2EDay(t, src, dst, dayNames[0])
	for k := 1; k < len(dayNames); k++ {
		copyE2EDay(t, src, dst, dayNames[k])
		sealedDay := dayNames[k-1]
		info := waitEpoch(t, base, func(i epochInfo) bool { return i.Epoch >= k })
		if info.Epoch == k {
			if info.Day != sealedDay {
				t.Fatalf("epoch %d sealed day %q, want %q", k, info.Day, sealedDay)
			}
			if info.Final {
				t.Fatalf("epoch %d marked final with %d days still to come", k, len(dayNames)-1-k)
			}
		}
		// Per-epoch consistency while the dataset is mid-growth: with no
		// further ingest pending, every endpoint must answer from the same
		// epoch.
		_, eFig, _ := get(t, base+"/v1/figures/fig2_bytes_per_device.csv")
		_, eRep, _ := get(t, base+"/v1/report")
		_, eDev, _ := get(t, base+"/v1/devices")
		if eFig != k || eRep != k || eDev != k {
			t.Fatalf("inconsistent epochs across endpoints after seal %d: fig=%d report=%d devices=%d",
				k, eFig, eRep, eDev)
		}
	}

	// Complete the dataset; the daemon finalizes and publishes the last
	// epoch.
	if err := os.WriteFile(filepath.Join(dst, logsink.TailSentinel), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	final := waitEpoch(t, base, func(i epochInfo) bool { return i.Final })
	if final.Epoch != len(dayNames) {
		t.Fatalf("final epoch %d, want %d", final.Epoch, len(dayNames))
	}
	if final.Day != dayNames[len(dayNames)-1] {
		t.Fatalf("final day %q, want %q", final.Day, dayNames[len(dayNames)-1])
	}
	close(qStop)
	<-qDone
	if qErr != nil {
		t.Fatalf("concurrent querier: %v", qErr)
	}

	// Final parity: every figure CSV and the report served by the daemon
	// must be byte-identical to the batch run's files.
	var figNames []string
	code, _, body := get(t, base+"/v1/figures")
	if code != http.StatusOK {
		t.Fatalf("/v1/figures: status %d", code)
	}
	var index struct {
		Figures []string `json:"figures"`
	}
	if err := json.Unmarshal(body, &index); err != nil {
		t.Fatalf("/v1/figures: %v", err)
	}
	figNames = index.Figures
	if len(figNames) == 0 {
		t.Fatal("/v1/figures returned no names")
	}
	for _, name := range figNames {
		want, err := os.ReadFile(filepath.Join(batchOut, name))
		if err != nil {
			t.Fatalf("batch output missing %s: %v", name, err)
		}
		code, epoch, got := get(t, base+"/v1/figures/"+name)
		if code != http.StatusOK {
			t.Fatalf("/v1/figures/%s: status %d", name, code)
		}
		if epoch != final.Epoch {
			t.Fatalf("/v1/figures/%s served epoch %d, want %d", name, epoch, final.Epoch)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs between daemon and batch (daemon %d bytes, batch %d)", name, len(got), len(want))
		}
	}
	wantReport, err := os.ReadFile(filepath.Join(batchOut, "report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if code, _, gotReport := get(t, base+"/v1/report"); code != http.StatusOK || !bytes.Equal(gotReport, wantReport) {
		t.Fatalf("report differs between daemon and batch (status %d, daemon %d bytes, batch %d)",
			code, len(gotReport), len(wantReport))
	}
	if code, _, _ := get(t, base+"/v1/figures/nope.csv"); code != http.StatusNotFound {
		t.Fatalf("unknown figure: status %d, want 404", code)
	}

	// Historical epochs stay queryable after finalize: epoch 1's metadata
	// comes back pinned by path, and ?epoch=1 pins artifacts to the first
	// seal (header and bytes both from epoch 1, not the final one).
	code, eh, body := get(t, base+"/v1/epoch/1")
	if code != http.StatusOK || eh != 1 {
		t.Fatalf("/v1/epoch/1: status %d, header epoch %d", code, eh)
	}
	var h1 epochInfo
	if err := json.Unmarshal(body, &h1); err != nil {
		t.Fatalf("/v1/epoch/1: %v in %s", err, body)
	}
	if h1.Epoch != 1 || h1.Final || h1.Day != dayNames[0] {
		t.Fatalf("/v1/epoch/1 = %+v, want epoch 1, non-final, day %s", h1, dayNames[0])
	}
	code, eh, fig1old := get(t, base+"/v1/figures/fig1_active_devices.csv?epoch=1")
	if code != http.StatusOK || eh != 1 {
		t.Fatalf("epoch-pinned figure: status %d, header epoch %d", code, eh)
	}
	_, _, fig1cur := get(t, base+"/v1/figures/fig1_active_devices.csv")
	if bytes.Equal(fig1old, fig1cur) {
		t.Fatal("epoch-1 figure identical to final figure; historical pin not honored")
	}
	if code, eh, _ := get(t, base+"/v1/report?epoch=1"); code != http.StatusOK || eh != 1 {
		t.Fatalf("epoch-pinned report: status %d, header epoch %d", code, eh)
	}
	if code, _, _ := get(t, base+"/v1/epoch/99"); code != http.StatusNotFound {
		t.Fatalf("out-of-range epoch: status %d, want 404", code)
	}
	if code, _, _ := get(t, base+"/v1/report?epoch=zero"); code != http.StatusBadRequest {
		t.Fatalf("malformed epoch selector: status %d, want 400", code)
	}

	// Clean shutdown on SIGTERM with exit code 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}
	<-drained
	daemon.Process = nil
}
