// Command lockdownd is the service-mode counterpart of cmd/lockdown: a
// long-running daemon that follows a growing rotated tracegen dataset,
// feeds the measurement pipeline incrementally, and publishes an
// immutable figure/report snapshot at every epoch seal (one epoch per
// sealed day). Queries are answered from the most recently published
// snapshot, so every response is internally consistent — all bytes from
// one epoch — while ingest runs hot; the X-Lockdown-Epoch header names
// the epoch a response came from.
//
// Each epoch is sealed incrementally: the pipeline closes the day into a
// mergeable partial aggregate, re-renders only the devices that day
// touched on top of the previous epoch's copy-on-write snapshot, and
// recomputes the figures from the delta snapshot (figset.Incremental,
// which also cross-checks the merged partials against the snapshot's
// cumulative stats on every seal). Every published epoch is retained, so
// the full seal history stays queryable.
//
// Endpoints (on -addr, sharing the port with expvar/pprof under /debug/):
//
//	/v1/epoch              current epoch metadata (503 until the first seal)
//	/v1/epoch/<n>          historical epoch n's metadata
//	/v1/figures            list of figure CSV names
//	/v1/figures/<name>     one figure CSV, byte-identical to cmd/lockdown's file
//	/v1/report             the ASCII report
//	/v1/devices            aggregate device counts (never per-device records)
//
// /v1/figures, /v1/figures/<name>, /v1/report and /v1/devices accept an
// ?epoch=n selector to answer from a historical epoch; with or without it,
// the X-Lockdown-Epoch response header names the epoch served.
//
// Once the dataset's COMPLETE sentinel appears and the final day is
// ingested, the daemon finalizes the pipeline — the last published epoch
// is then byte-identical to a batch cmd/lockdown run over the same
// dataset with the same -key — and keeps serving until SIGINT/SIGTERM,
// on which it shuts down cleanly with exit code 0.
//
// Usage:
//
//	lockdownd -root dataset/ [-addr localhost:8080] [-scale 0.05] [-seed 1]
//	          [-shards N] [-key hex] [-poll 200ms]
//	          [-fault-policy strict|skip|quarantine|abort] [-fault-budget f]
//	          [-fault-inject rate] [-fault-seed n]
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/anonymize"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/faultline"
	"repro/internal/figset"
	"repro/internal/logsink"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/universe"
)

type config struct {
	root   string
	addr   string
	scale  float64
	seed   int64
	shards int
	poll   time.Duration
	key    []byte

	faultPolicy string
	faultBudget float64
	faultInject float64
	faultSeed   int64
}

// snapshotPipeline is the pipeline surface the daemon needs: streaming
// ingest, per-day seals with copy-on-write delta snapshots (the
// figset.Sealer contract), and the final seal.
type snapshotPipeline interface {
	trace.Sink
	DeviceID(m packet.MAC) anonymize.DeviceID
	SealDay(label string) *core.DayPartial
	SnapshotDelta(prev *core.Dataset, dp *core.DayPartial) *core.Dataset
	Finalize() *core.Dataset
}

func main() {
	var cfg config
	flag.StringVar(&cfg.root, "root", "", "rotated dataset root to follow (required)")
	flag.StringVar(&cfg.addr, "addr", "localhost:8080", "HTTP listen address (\":0\" picks a free port)")
	flag.Float64Var(&cfg.scale, "scale", 0.05, "population scale the dataset was generated at (ground truth)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed the dataset was generated with (ground truth)")
	flag.IntVar(&cfg.shards, "shards", 1, "pipeline shards (>1 parallelizes ingest)")
	flag.DurationVar(&cfg.poll, "poll", 200*time.Millisecond, "tail poll interval")
	keyHex := flag.String("key", "", "hex pseudonymization key; fixes device pseudonyms so daemon and batch runs are byte-comparable")
	flag.StringVar(&cfg.faultPolicy, "fault-policy", "strict", "decode-error policy: strict, skip, quarantine or abort")
	flag.Float64Var(&cfg.faultBudget, "fault-budget", 0.001, "tolerated dropped-record fraction under -fault-policy abort")
	flag.Float64Var(&cfg.faultInject, "fault-inject", 0, "inject seeded corruption at this per-record rate (testing)")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "seed for -fault-inject corruption")
	flag.Parse()

	if cfg.root == "" {
		fmt.Fprintln(os.Stderr, "lockdownd: -root is required")
		os.Exit(2)
	}
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdownd: bad -key:", err)
			os.Exit(1)
		}
		cfg.key = key
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lockdownd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	reg, err := universe.New()
	if err != nil {
		return err
	}
	metrics := obs.NewMetrics()

	var pipe snapshotPipeline
	opts := core.Options{Key: cfg.key, Obs: metrics}
	if cfg.shards == 1 {
		pipe, err = core.NewPipeline(reg, opts)
	} else {
		pipe, err = core.NewShardedPipeline(reg, opts, cfg.shards)
	}
	if err != nil {
		return err
	}

	// Ground truth for the accuracy experiments: rebuild the population
	// the dataset was generated from, before ingest starts (pseudonyms
	// only need the key, not traffic).
	gcfg := trace.DefaultConfig()
	gcfg.Scale = cfg.scale
	gcfg.Seed = cfg.seed
	gen, err := trace.New(gcfg, reg)
	if err != nil {
		return err
	}
	truth := map[anonymize.DeviceID]devclass.Type{}
	for _, d := range gen.Devices() {
		truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
	}
	figParams := figset.Params{Scale: cfg.scale, Seed: cfg.seed, Truth: truth}

	policy, err := faultline.ParsePolicy(cfg.faultPolicy)
	if err != nil {
		return err
	}
	var replayOpts logsink.ReplayOptions
	var guard *faultline.Guard
	if policy != faultline.PolicyStrict {
		guard = faultline.NewGuard(policy, cfg.faultBudget, nil, metrics)
		replayOpts.Guard = guard
	}
	if cfg.faultInject > 0 {
		replayOpts.Inject = &faultline.Config{Seed: cfg.faultSeed, Rate: cfg.faultInject}
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	stopFn := func() { stopOnce.Do(func() { close(stop) }) }
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stopFn()
	}()

	state := newServerState()
	dbg, err := obs.ServeDebugMux(cfg.addr, metrics, state.mux())
	if err != nil {
		return err
	}
	defer dbg.Close()
	// Startup line on stdout: tests and scripts parse the bound address.
	fmt.Printf("lockdownd: serving on http://%s (following %s)\n", dbg.Addr(), cfg.root)

	epoch := 0
	inc := figset.NewIncremental(pipe, figParams, core.Stats{})
	var sealErr error
	tailErr := logsink.TailRotated(cfg.root, pipe, logsink.TailOptions{
		ReplayOptions: replayOpts,
		Poll:          cfg.poll,
		Stop:          stop,
		OnDaySealed: func(day string, final bool) {
			epoch++
			if final {
				// The finalize path below publishes this epoch from the
				// sealed pipeline — identical data, and it frees the
				// accumulators for serving-only life.
				return
			}
			ep, err := inc.Seal(day)
			if err != nil {
				// A merge-consistency failure means the published figures
				// could drift from the ingested data — stop rather than
				// keep serving.
				sealErr = err
				stopFn()
				return
			}
			state.publish(&epochSnapshot{epoch: epoch, day: day, res: ep.Results,
				stats: ep.Dataset.Stats, devices: summarizeDevices(ep.Dataset), partial: ep.Partial})
			metrics.EpochPublish()
			fmt.Fprintf(os.Stderr, "lockdownd: epoch %d sealed (%s): %d flows, %d devices (day: %d flows, %d touched)\n",
				epoch, day, ep.Dataset.Stats.FlowsProcessed, len(ep.Dataset.Devices),
				ep.Partial.Stats.FlowsProcessed, len(ep.Partial.Touched))
		},
	})
	if sealErr != nil {
		return sealErr
	}
	if tailErr != nil && !errors.Is(tailErr, logsink.ErrTailStopped) {
		return tailErr
	}
	if tailErr == nil {
		ds := pipe.Finalize()
		res, _, _ := figset.Compute(ds, figParams)
		state.publish(&epochSnapshot{epoch: epoch, day: lastDay(cfg.root), final: true,
			res: res, stats: ds.Stats, devices: summarizeDevices(ds)})
		metrics.EpochPublish()
		if guard != nil {
			fmt.Fprintf(os.Stderr, "lockdownd: fault guard: %s\n", guard.Summary())
		}
		fmt.Fprintf(os.Stderr, "lockdownd: dataset complete after %d epochs; serving until signal\n", epoch)
		<-stop
	}
	fmt.Fprintln(os.Stderr, "lockdownd: shutting down")
	return nil
}

// lastDay names the dataset's final day directory (for /v1/epoch after
// finalize); empty when unreadable.
func lastDay(root string) string {
	entries, err := os.ReadDir(root)
	if err != nil {
		return ""
	}
	last := ""
	for _, e := range entries {
		if e.IsDir() && e.Name() > last {
			last = e.Name()
		}
	}
	return last
}
