// Command flowmeter is the standalone packet-to-flow extractor: it reads an
// Ethernet pcap, assembles bidirectional flows (the Zeek role in the
// paper's pipeline), and writes a Zeek-style conn.log.
//
// Usage:
//
//	flowmeter -in capture.pcap -out conn.log [-local 10.0.0.0/8] [-verify]
//	          [-progress 5s]  emit live packet/byte rates while reading
//	          [-fault-policy skip|strict|abort] [-fault-budget 0.001]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"repro/internal/decodeerr"
	"repro/internal/faultline"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/zeeklog"
)

func main() {
	in := flag.String("in", "", "input pcap file")
	out := flag.String("out", "conn.log", "output conn.log path")
	local := flag.String("local", "10.0.0.0/8", "client (originator) network")
	verify := flag.Bool("verify", false, "verify transport checksums")
	progress := flag.Duration("progress", 0, "emit a progress line at this interval (0 = off)")
	// Undecodable packets have always been skipped here (a tap hands you
	// whatever was on the wire), so unlike lockdown the default is skip —
	// strict and abort opt back into hard failure.
	faultPolicy := flag.String("fault-policy", "skip", "undecodable-packet policy: skip, strict or abort")
	faultBudget := flag.Float64("fault-budget", 0.001, "tolerated undecodable-packet fraction under -fault-policy abort")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "flowmeter: -in is required")
		os.Exit(2)
	}
	policy, err := faultline.ParsePolicy(*faultPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowmeter:", err)
		os.Exit(2)
	}
	if err := run(*in, *out, *local, *verify, *progress, policy, *faultBudget); err != nil {
		fmt.Fprintln(os.Stderr, "flowmeter:", err)
		os.Exit(1)
	}
}

func run(in, out, local string, verify bool, progress time.Duration, policy faultline.Policy, budget float64) error {
	start := time.Now()
	localNet, err := netip.ParsePrefix(local)
	if err != nil {
		return fmt.Errorf("bad -local: %w", err)
	}
	inF, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inF.Close()
	reader, err := pcap.NewReader(inF)
	if err != nil {
		return err
	}
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	conn := zeeklog.NewConnWriter(outF)

	var writeErr error
	asm := flow.NewAssembler(flow.Config{LocalNets: []netip.Prefix{localNet}}, func(r flow.Record) {
		if err := conn.Write(r); err != nil && writeErr == nil {
			writeErr = err
		}
	})

	var metrics *obs.Metrics
	var prog *obs.Progress
	if progress > 0 {
		metrics = obs.NewMetrics()
		prog = obs.NewProgress(metrics, &obs.TextReporter{W: os.Stderr}, progress)
		prog.SetLabel("flowmeter")
		prog.Start()
	}
	guard := faultline.NewGuard(policy, budget, nil, metrics)

	// Metrics are flushed in runs rather than per packet: the atomic adds
	// are visible only to the progress reporter, which samples far less
	// often than once per 256 packets.
	const metricsFlushEvery = 256
	var pendPackets, pendBytes int64

	var packets, skipped int64
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		packets++
		pendPackets++
		pendBytes += int64(len(rec.Data))
		if pendPackets == metricsFlushEvery {
			metrics.AddN(obs.StageIngest, pendPackets, pendBytes)
			pendPackets, pendBytes = 0, 0
		}
		p, err := packet.Decode(rec.Data, verify)
		if err != nil {
			class := decodeerr.Malformed
			if errors.Is(err, packet.ErrTruncated) {
				class = decodeerr.Truncated
			}
			if gerr := guard.Reject("pcap", "", decodeerr.New(class, "pcap", int(packets), err)); gerr != nil {
				return gerr
			}
			skipped++
			continue
		}
		guard.Accept()
		info, ok := flow.InfoFromPacket(rec.Time, p)
		if !ok {
			skipped++
			continue
		}
		if err := asm.Add(info); err != nil {
			skipped++
		}
	}
	metrics.AddN(obs.StageIngest, pendPackets, pendBytes)
	asm.Flush()
	prog.Stop()
	if writeErr != nil {
		return writeErr
	}
	if err := conn.Close(); err != nil {
		return err
	}
	if err := outF.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flowmeter: %d packets (%d skipped) → %d flows in %v\n",
		packets, skipped, conn.Count(), time.Since(start).Round(time.Millisecond))
	if guard.DropTotal() > 0 {
		fmt.Fprintf(os.Stderr, "flowmeter: fault guard: %s\n", guard.Summary())
	}
	return nil
}
