package lockdownrepro

// One benchmark per figure and headline result of the paper, plus
// end-to-end throughput benchmarks for the pipeline and generator. Each
// figure benchmark measures regenerating that figure's series from the
// finalized dataset; the fixture (generate + ingest at 2% scale) is built
// once and shared.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/anonymize"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/universe"
)

const benchScale = 0.02

var (
	benchOnce  sync.Once
	benchDS    *core.Dataset
	benchTruth map[anonymize.DeviceID]devclass.Type
	benchErr   error
)

func benchDataset(b *testing.B) (*core.Dataset, map[anonymize.DeviceID]devclass.Type) {
	b.Helper()
	benchOnce.Do(func() {
		reg, err := universe.New()
		if err != nil {
			benchErr = err
			return
		}
		cfg := trace.DefaultConfig()
		cfg.Scale = benchScale
		gen, err := trace.New(cfg, reg)
		if err != nil {
			benchErr = err
			return
		}
		pipe, err := core.NewPipeline(reg, core.Options{Key: []byte("benchmark-fixture-key-0123456789ab")})
		if err != nil {
			benchErr = err
			return
		}
		if err := gen.Run(pipe); err != nil {
			benchErr = err
			return
		}
		truth := make(map[anonymize.DeviceID]devclass.Type, len(gen.Devices()))
		for _, d := range gen.Devices() {
			truth[pipe.DeviceID(d.MAC)] = d.Kind.TruthType()
		}
		benchDS = pipe.Finalize()
		benchTruth = truth
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchTruth
}

// BenchmarkFig1ActiveDevices regenerates Figure 1 (active devices per day
// by device type; peak 32,019 / low 4,973 at paper scale).
func BenchmarkFig1ActiveDevices(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(ds)
		if r.Peak == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig2BytesPerDevice regenerates Figure 2 (mean and median bytes
// per active device per day by type).
func BenchmarkFig2BytesPerDevice(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(ds)
		if len(r.Median) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig3HourOfWeek regenerates Figure 3 (normalized median traffic
// per device per hour of week for the four sample weeks).
func BenchmarkFig3HourOfWeek(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(ds)
		if r.Divisor <= 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig4PopulationSplit regenerates Figure 4 (median bytes per
// device excluding Zoom, international vs domestic).
func BenchmarkFig4PopulationSplit(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(ds)
		if len(r.Median) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig5Zoom regenerates Figure 5 (daily aggregate Zoom traffic).
func BenchmarkFig5Zoom(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(ds)
		if r.Peak == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig6SocialMedia regenerates Figure 6 (monthly mobile session
// durations for Facebook/Instagram/TikTok by population).
func BenchmarkFig6SocialMedia(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(ds)
		if len(r.Summary) != 3 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig7Steam regenerates Figure 7 (monthly Steam bytes and
// connections by population).
func BenchmarkFig7Steam(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(ds)
		if len(r.Bytes) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig8Switch regenerates Figure 8 (Switch gameplay moving average
// and the 1,097 → 267 device counts).
func BenchmarkFig8Switch(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(ds)
		if r.PreShutdown == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkHeadlineStats regenerates §4.1 (+58% traffic, +34% distinct
// sites, weekend-dip persistence).
func BenchmarkHeadlineStats(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Headline(ds)
		if r.PostShutdownUsers == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkPopulationSplit regenerates §4.2 (1,022 international devices,
// 18% of identified).
func BenchmarkPopulationSplit(b *testing.B) {
	ds, _ := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Population(ds)
		if r.PostShutdownUsers == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkClassifierAccuracy regenerates §3's 100-device review
// (84 correct / 14 omissions / 2 affirmative errors).
func BenchmarkClassifierAccuracy(b *testing.B) {
	ds, truth := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Accuracy(ds, truth, 100, int64(i))
		if r.Sampled == 0 {
			b.Fatal("empty sample")
		}
	}
}

// BenchmarkPipelineThroughput measures the streaming ingest path: one
// generated study day through the full pipeline (normalization, labeling,
// signatures, aggregation).
func BenchmarkPipelineThroughput(b *testing.B) {
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = benchScale
	gen, err := trace.New(cfg, reg)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{Key: []byte("throughput-bench-key-0123456789abc")})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := campus.Day(i % campus.NumDays)
		if err := gen.RunDays(pipe, day, day+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := pipe.Stats()
	b.ReportMetric(float64(st.FlowsProcessed)/float64(b.N), "flows/day")
}

// BenchmarkPipelineThroughputObserved is BenchmarkPipelineThroughput with
// the observability layer enabled — the delta between the two is the
// instrumentation cost (counters every flow, timings 1-in-64 sampled).
// BenchmarkPipelineThroughput itself runs with a nil Metrics and so also
// measures the disabled fast path.
func BenchmarkPipelineThroughputObserved(b *testing.B) {
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = benchScale
	gen, err := trace.New(cfg, reg)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{
		Key: []byte("throughput-bench-key-0123456789abc"),
		Obs: obs.NewMetrics(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := campus.Day(i % campus.NumDays)
		if err := gen.RunDays(pipe, day, day+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := pipe.Stats()
	b.ReportMetric(float64(st.FlowsProcessed)/float64(b.N), "flows/day")
}

// BenchmarkGenerateOnly measures the synthetic workload generator alone.
func BenchmarkGenerateOnly(b *testing.B) {
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = benchScale
	gen, err := trace.New(cfg, reg)
	if err != nil {
		b.Fatal(err)
	}
	sink := nullSink{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day := campus.Day(i % campus.NumDays)
		if err := gen.RunDays(sink, day, day+1); err != nil {
			b.Fatal(err)
		}
	}
}

type nullSink struct{}

func (nullSink) Flow(flow.Record)       {}
func (nullSink) DNS(dnssim.Entry)       {}
func (nullSink) HTTPMeta(httplog.Entry) {}
func (nullSink) Lease(dhcp.Lease)       {}

// The ingest-only benchmarks below record a slice of generated days once
// and replay it, so they measure dispatch + pipeline work alone with
// generation off the clock — the number the sharded dispatcher's batch
// protocol is accountable to.

const (
	benchIngestFrom = campus.Day(60) // online term: peak traffic mix
	benchIngestTo   = campus.Day(64)
)

var (
	benchEventsOnce sync.Once
	benchEvents     []trace.Event
	benchEventsErr  error
)

type recordingSink struct{ events *[]trace.Event }

func (s recordingSink) Flow(r flow.Record) {
	*s.events = append(*s.events, trace.Event{Kind: trace.EventFlow, Flow: r})
}
func (s recordingSink) DNS(e dnssim.Entry) {
	*s.events = append(*s.events, trace.Event{Kind: trace.EventDNS, DNS: e})
}
func (s recordingSink) HTTPMeta(e httplog.Entry) {
	*s.events = append(*s.events, trace.Event{Kind: trace.EventHTTP, HTTP: e})
}
func (s recordingSink) Lease(l dhcp.Lease) {
	*s.events = append(*s.events, trace.Event{Kind: trace.EventLease, Lease: l})
}

func ingestEvents(b *testing.B) []trace.Event {
	b.Helper()
	benchEventsOnce.Do(func() {
		reg, err := universe.New()
		if err != nil {
			benchEventsErr = err
			return
		}
		cfg := trace.DefaultConfig()
		cfg.Scale = benchScale
		gen, err := trace.New(cfg, reg)
		if err != nil {
			benchEventsErr = err
			return
		}
		benchEventsErr = gen.RunDays(recordingSink{events: &benchEvents}, benchIngestFrom, benchIngestTo)
	})
	if benchEventsErr != nil {
		b.Fatal(benchEventsErr)
	}
	return benchEvents
}

// feedEvents drives a recorded event stream into sink, using the batched
// fast path when the sink advertises one.
func feedEvents(sink trace.Sink, events []trace.Event) {
	if bs, ok := sink.(trace.BatchSink); ok {
		for len(events) > 0 {
			n := min(1024, len(events))
			bs.EventBatch(events[:n])
			events = events[n:]
		}
		bs.Flush()
		return
	}
	for i := range events {
		events[i].Deliver(sink)
	}
}

// BenchmarkIngestEventsSingle replays the recorded stream through one
// Pipeline — the single-core ingest ceiling.
func BenchmarkIngestEventsSingle(b *testing.B) {
	events := ingestEvents(b)
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{Key: []byte("ingest-bench-key-0123456789abcdef00")})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feedEvents(pipe, events)
	}
	b.StopTimer()
	reportEventRate(b, len(events))
}

// BenchmarkIngestEventsSharded replays the same stream through the
// sharded dispatcher at several shard counts. The 4-shard result against
// BenchmarkIngestEventsSingle is the headline scaling number recorded in
// EXPERIMENTS.md ("Sharded ingest").
func BenchmarkIngestEventsSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			events := ingestEvents(b)
			reg, err := universe.New()
			if err != nil {
				b.Fatal(err)
			}
			sp, err := core.NewShardedPipeline(reg, core.Options{Key: []byte("ingest-bench-key-0123456789abcdef00")}, shards)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { sp.Finalize() })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				feedEvents(sp, events)
			}
			b.StopTimer()
			reportEventRate(b, len(events))
		})
	}
}

func reportEventRate(b *testing.B, perOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(perOp)*float64(b.N)/s, "events/sec")
	}
}
