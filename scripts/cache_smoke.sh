#!/usr/bin/env sh
# Cache smoke: prove the stage cache's acceptance walk on the shipped
# binary. A cold run populates the cache; a warm run must hit every stage,
# produce byte-identical outputs, and beat the cold wall clock by at least
# MIN_SPEEDUP; a figure-only knob change (-fig-workers) must reuse the
# cached stats (stats=hit figures=miss) and still emit identical bytes.
# The bench JSONs are left behind for cmd/benchdiff -summary.
#
# Usage: cache_smoke.sh <lockdown-binary> <work-dir> <key-hex> <scale> [min-speedup]
set -eu

BIN=$1
WORK=$2
KEY=$3
SCALE=$4
MIN_SPEEDUP=${5:-3}

fail() {
    echo "cache-smoke: $1" >&2
    exit 1
}

mkdir -p "$WORK"
CACHE=$WORK/cache

echo "== cold run (populates the cache)"
"$BIN" -scale "$SCALE" -quiet -key "$KEY" -cache-dir "$CACHE" \
    -out "$WORK/cold" -bench-json "$WORK/BENCH_cache_cold.json" 2>"$WORK/cold.log"
cat "$WORK/cold.log"
grep -q 'stats=miss figures=miss' "$WORK/cold.log" || fail "cold run did not miss both stages"

echo "== warm run (must hit every stage)"
"$BIN" -scale "$SCALE" -quiet -key "$KEY" -cache-dir "$CACHE" \
    -out "$WORK/warm" -bench-json "$WORK/BENCH_cache_warm.json" 2>"$WORK/warm.log"
cat "$WORK/warm.log"
grep -q 'stats=hit figures=hit' "$WORK/warm.log" || fail "warm run did not hit both stages"
grep -q 'verify_failures=0' "$WORK/warm.log" || fail "warm run reported verify failures"
diff -r "$WORK/cold" "$WORK/warm" || fail "warm outputs differ from cold outputs"

# Wall-clock gate: the warm run replays cached stats and figures, so it
# must be at least MIN_SPEEDUP x faster than the cold run end to end.
wall() {
    sed -n 's/.*"wall_seconds": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}
COLD_WALL=$(wall "$WORK/BENCH_cache_cold.json")
WARM_WALL=$(wall "$WORK/BENCH_cache_warm.json")
[ -n "$COLD_WALL" ] && [ -n "$WARM_WALL" ] || fail "bench reports missing wall_seconds"
echo "cold wall: ${COLD_WALL}s, warm wall: ${WARM_WALL}s (gate: ${MIN_SPEEDUP}x)"
awk -v cold="$COLD_WALL" -v warm="$WARM_WALL" -v min="$MIN_SPEEDUP" 'BEGIN {
    if (warm <= 0) exit 0;           # sub-resolution warm run: trivially fast
    if (cold / warm < min) {
        printf "cache-smoke: warm speedup %.2fx below the %.1fx gate\n", cold / warm, min;
        exit 1;
    }
    printf "warm speedup: %.1fx\n", cold / warm;
}' || exit 1

echo "== figure-only change (-fig-workers 2: stats stay cached)"
"$BIN" -scale "$SCALE" -quiet -key "$KEY" -cache-dir "$CACHE" -fig-workers 2 \
    -out "$WORK/partial" -bench-json "$WORK/BENCH_cache_partial.json" 2>"$WORK/partial.log"
cat "$WORK/partial.log"
grep -q 'stats=hit figures=miss' "$WORK/partial.log" \
    || fail "figure-only change did not reuse cached stats"
diff -r "$WORK/cold" "$WORK/partial" || fail "figure-only change moved output bytes"

echo "cache-smoke: OK"
