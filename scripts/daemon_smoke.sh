#!/usr/bin/env sh
# Daemon smoke: start lockdownd over a complete rotated dataset, poll
# /v1/epoch until the final epoch is published, diff a queried figure CSV
# and the report against a batch cmd/lockdown run over the same dataset
# and key, then check clean SIGTERM shutdown (exit code 0).
#
# Usage: daemon_smoke.sh <lockdownd-binary> <dataset-root> <batch-out-dir> <key-hex> <scale> [days-from:to]
set -eu

BIN=$1
ROOT=$2
BATCH=$3
KEY=$4
SCALE=$5

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

"$BIN" -root "$ROOT" -addr 127.0.0.1:0 -scale "$SCALE" -key "$KEY" -poll 20ms \
    >"$OUT/stdout" 2>"$OUT/stderr" &
PID=$!

fail() {
    echo "daemon-smoke: $1" >&2
    echo "--- daemon stdout ---" >&2; cat "$OUT/stdout" >&2 || true
    echo "--- daemon stderr ---" >&2; cat "$OUT/stderr" >&2 || true
    kill "$PID" 2>/dev/null || true
    exit 1
}

# Wait for the startup line and extract the bound address.
ADDR=""
i=0
while [ $i -lt 200 ]; do
    ADDR=$(sed -n 's|.*serving on http://\([^ ]*\).*|\1|p' "$OUT/stdout" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before announcing its address"
    i=$((i + 1))
    sleep 0.1
done
[ -n "$ADDR" ] || fail "no startup line after 20s"
echo "daemon-smoke: daemon on $ADDR (pid $PID)"

# Poll /v1/epoch until the dataset is fully ingested and finalized.
i=0
while [ $i -lt 1200 ]; do
    if curl -fsS "http://$ADDR/v1/epoch" 2>/dev/null | grep -q '"final": true'; then
        break
    fi
    kill -0 "$PID" 2>/dev/null || fail "daemon exited during ingest"
    i=$((i + 1))
    sleep 0.5
done
curl -fsS "http://$ADDR/v1/epoch" | grep -q '"final": true' || fail "final epoch not reached in 600s"
curl -fsS "http://$ADDR/v1/epoch"
echo ""

# The queried artifacts must be byte-identical to the batch run's files.
for fig in fig1_active_devices.csv fig5_zoom_daily.csv; do
    curl -fsS "http://$ADDR/v1/figures/$fig" -o "$OUT/$fig" || fail "GET /v1/figures/$fig failed"
    cmp "$OUT/$fig" "$BATCH/$fig" || fail "$fig differs from batch output"
done
curl -fsS "http://$ADDR/v1/report" -o "$OUT/report.txt" || fail "GET /v1/report failed"
cmp "$OUT/report.txt" "$BATCH/report.txt" || fail "report.txt differs from batch output"
echo "daemon-smoke: figure CSVs and report byte-identical to batch run"

# Historical epochs: the first seal stays queryable after finalize, pinned
# both by path (/v1/epoch/1) and by selector (?epoch=1), with the header
# naming the epoch actually served.
curl -fsS "http://$ADDR/v1/epoch/1" | grep -q '"epoch": 1' || fail "/v1/epoch/1 missing epoch 1"
curl -fsS "http://$ADDR/v1/epoch/1" | grep -q '"final": false' || fail "/v1/epoch/1 claims final"
curl -fsS -D "$OUT/h1" "http://$ADDR/v1/figures/fig1_active_devices.csv?epoch=1" -o "$OUT/fig1_e1.csv" \
    || fail "epoch-pinned figure fetch failed"
grep -qi '^x-lockdown-epoch: 1' "$OUT/h1" || fail "epoch-pinned figure served wrong epoch header"
cmp -s "$OUT/fig1_e1.csv" "$BATCH/fig1_active_devices.csv" && fail "epoch-1 figure identical to final (pin not honored)"
curl -fsS "http://$ADDR/v1/report?epoch=1" -o "$OUT/report_e1.txt" || fail "epoch-pinned report fetch failed"
curl -fsS "http://$ADDR/v1/epoch/9999" >/dev/null 2>&1 && fail "out-of-range epoch served instead of 404"
echo "daemon-smoke: historical epoch 1 queryable and pinned"

# Clean shutdown: SIGTERM must exit 0.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
[ "$RC" -eq 0 ] || fail "daemon exited $RC after SIGTERM, want 0"
echo "daemon-smoke: clean shutdown (exit 0)"
