#!/usr/bin/env sh
# Append smoke: prove the per-day stats cache makes a one-day append
# O(delta) on the shipped binary. A cached run over the dataset's 14-day
# prefix seeds per-day checkpoints; after the 15th day is appended, the
# rerun must (a) replay exactly one day (statsday: replayed=1 misses=1
# hits=1 — one probe missed at the new final day, the next hit the
# previous run's checkpoint), (b) emit outputs byte-identical to a
# cache-free run over the full dataset, and (c) land within a fixed
# multiple of the full run's single-day cost.
#
# Usage: append_smoke.sh <lockdown-binary> <tracegen-binary> <work-dir> <key-hex> <scale> [day-budget]
set -eu

LOCKDOWN=$1
TRACEGEN=$2
WORK=$3
KEY=$4
SCALE=$5
DAY_BUDGET=${6:-8}

fail() {
    echo "append-smoke: $1" >&2
    exit 1
}

mkdir -p "$WORK"
CACHE=$WORK/cache

echo "== generate 15-day rotated dataset (days 36:51)"
rm -rf "$WORK/full" "$WORK/trunc"
"$TRACEGEN" -scale "$SCALE" -rotate -days 36:51 -out "$WORK/full"
DAYS=$(ls -d "$WORK"/full/*/ | wc -l)
[ "$DAYS" -eq 15 ] || fail "expected 15 day directories, got $DAYS"
LAST=$(ls "$WORK/full" | sort | tail -1)

# Truncated copy: byte-identical prefix, final day withheld.
cp -r "$WORK/full" "$WORK/trunc"
rm -rf "$WORK/trunc/$LAST"

echo "== cold cache-free reference over the full dataset"
"$LOCKDOWN" -logs "$WORK/full" -scale "$SCALE" -quiet -key "$KEY" \
    -out "$WORK/ref" -bench-json "$WORK/BENCH_append_cold.json" 2>"$WORK/ref.log"
cat "$WORK/ref.log"

echo "== cached run over the 14-day prefix (seeds per-day checkpoints)"
"$LOCKDOWN" -logs "$WORK/trunc" -scale "$SCALE" -quiet -key "$KEY" -cache-dir "$CACHE" \
    -out "$WORK/trunc-out" 2>"$WORK/trunc.log"
cat "$WORK/trunc.log"
grep -q 'statsday: days=14 replayed=14 misses=14 hits=0' "$WORK/trunc.log" \
    || fail "prefix run did not cold-build all 14 days"

echo "== append day 15 and rerun"
cp -r "$WORK/full/$LAST" "$WORK/trunc/$LAST"
"$LOCKDOWN" -logs "$WORK/trunc" -scale "$SCALE" -quiet -key "$KEY" -cache-dir "$CACHE" \
    -out "$WORK/incr" -bench-json "$WORK/BENCH_append_incr.json" 2>"$WORK/incr.log"
cat "$WORK/incr.log"
grep -q 'statsday: days=15 replayed=1 misses=1 hits=1' "$WORK/incr.log" \
    || fail "append rerun did not replay exactly the appended day"

# Byte identity against the cache-free full run: the incremental rerun and
# the reference saw the same bytes, so every CSV and the report must match.
diff -r "$WORK/ref" "$WORK/incr" || fail "incremental outputs differ from the cold full run"
echo "append-smoke: incremental outputs byte-identical to the cold full run"

# Wall gate: the incremental rerun may cost at most DAY_BUDGET times the
# full run's per-day average (cold_wall / 15), with a 1s floor so timer
# resolution and process startup never flake the gate.
wall() {
    sed -n 's/.*"wall_seconds": *\([0-9.eE+-]*\).*/\1/p' "$1" | head -1
}
COLD_WALL=$(wall "$WORK/BENCH_append_cold.json")
INCR_WALL=$(wall "$WORK/BENCH_append_incr.json")
[ -n "$COLD_WALL" ] && [ -n "$INCR_WALL" ] || fail "bench reports missing wall_seconds"
echo "cold wall: ${COLD_WALL}s (15 days), incremental wall: ${INCR_WALL}s (gate: ${DAY_BUDGET}x single day, 1s floor)"
awk -v cold="$COLD_WALL" -v incr="$INCR_WALL" -v budget="$DAY_BUDGET" 'BEGIN {
    limit = budget * cold / 15;
    if (limit < 1) limit = 1;
    if (incr > limit) {
        printf "append-smoke: incremental wall %.2fs above the %.2fs gate\n", incr, limit;
        exit 1;
    }
    printf "incremental wall %.2fs within the %.2fs gate\n", incr, limit;
}' || exit 1

echo "append-smoke: OK"
