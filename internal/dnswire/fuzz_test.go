package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzDecode checks the message decoder never panics and that
// decode(encode(decode(x))) is stable for valid inputs.
func FuzzDecode(f *testing.F) {
	q, _ := (&Message{ID: 1, Name: "www.example.com", QType: TypeA}).Encode()
	r, _ := (&Message{ID: 2, Response: true, Name: "zoom.us", QType: TypeA,
		Answers: []Answer{{Addr: netip.MustParseAddr("23.0.0.5"), TTL: 300}}}).Encode()
	f.Add(q)
	f.Add(r)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		wire, err := m.Encode()
		if err != nil {
			// Decoded names can contain bytes Encode rejects (labels are
			// arbitrary octets on the wire); that asymmetry is fine.
			return
		}
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Name != m.Name || m2.ID != m.ID || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("unstable round trip: %+v vs %+v", m, m2)
		}
	})
}
