// Package dnswire encodes and decodes DNS messages (RFC 1035 wire format)
// for the packet-level dataset path: queries and A/AAAA responses, enough
// to materialize the resolver log as real UDP payloads in generated pcaps
// and to parse them back.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"repro/internal/decodeerr"
)

// Record types and classes used by the simulation.
const (
	TypeA    uint16 = 1
	TypeAAAA uint16 = 28
	ClassIN  uint16 = 1
)

// Errors returned by the decoder.
var (
	ErrTruncated = errors.New("dnswire: truncated message")
	ErrBadName   = errors.New("dnswire: malformed name")
)

// Message is the subset of a DNS message the simulation uses: one question
// and zero or more address answers.
type Message struct {
	ID       uint16
	Response bool
	// Name is the question name (no trailing dot).
	Name string
	// QType is TypeA or TypeAAAA.
	QType uint16
	// Answers holds the response addresses (empty for queries).
	Answers []Answer
}

// Answer is one address record.
type Answer struct {
	Addr netip.Addr
	TTL  uint32
}

// encodeName appends the RFC 1035 label encoding of name.
func encodeName(b []byte, name string) ([]byte, error) {
	if name == "" {
		return append(b, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// decodeName reads a label sequence starting at off, following at most one
// level of compression pointers. It returns the name and the offset just
// past the name's in-place encoding.
func decodeName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, fmt.Errorf("%w: compression loop", ErrBadName)
		}
		if off >= len(msg) {
			return "", 0, ErrTruncated
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrBadName)
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrBadName)
		default:
			if off+1+l > len(msg) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	b := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(b[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000 // QR
		flags |= 0x0400 // AA
	} else {
		flags |= 0x0100 // RD
	}
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], 1) // QDCOUNT
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.Answers)))

	var err error
	b, err = encodeName(b, m.Name)
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, m.QType)
	b = binary.BigEndian.AppendUint16(b, ClassIN)

	for _, a := range m.Answers {
		// Compression pointer to the question name at offset 12.
		b = append(b, 0xc0, 12)
		rtype := TypeA
		if a.Addr.Is6() && !a.Addr.Is4In6() {
			rtype = TypeAAAA
		}
		b = binary.BigEndian.AppendUint16(b, rtype)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		addr := a.Addr.AsSlice()
		b = binary.BigEndian.AppendUint16(b, uint16(len(addr)))
		b = append(b, addr...)
	}
	return b, nil
}

// Decode parses a message. Failures are classified (*decodeerr.Error):
// messages cut short are truncated, everything else is malformed — so the
// packet-replay path can account wire corruption per class.
func Decode(data []byte) (*Message, error) {
	m, err := decode(data)
	if err == nil {
		return m, nil
	}
	class := decodeerr.Malformed
	if errors.Is(err, ErrTruncated) {
		class = decodeerr.Truncated
	}
	return nil, decodeerr.New(class, "dnswire", 0, err)
}

func decode(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&0x8000 != 0
	qd := binary.BigEndian.Uint16(data[4:6])
	an := binary.BigEndian.Uint16(data[6:8])
	if qd != 1 {
		return nil, fmt.Errorf("dnswire: %d questions, want 1", qd)
	}
	name, off, err := decodeName(data, 12)
	if err != nil {
		return nil, err
	}
	m.Name = name
	if off+4 > len(data) {
		return nil, ErrTruncated
	}
	m.QType = binary.BigEndian.Uint16(data[off : off+2])
	off += 4

	for i := 0; i < int(an); i++ {
		_, nameEnd, err := decodeName(data, off)
		if err != nil {
			return nil, err
		}
		off = nameEnd
		if off+10 > len(data) {
			return nil, ErrTruncated
		}
		rtype := binary.BigEndian.Uint16(data[off : off+2])
		ttl := binary.BigEndian.Uint32(data[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
		off += 10
		if off+rdlen > len(data) {
			return nil, ErrTruncated
		}
		rdata := data[off : off+rdlen]
		off += rdlen
		switch rtype {
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnswire: A record with %d bytes", rdlen)
			}
			addr, _ := netip.AddrFromSlice(rdata)
			m.Answers = append(m.Answers, Answer{Addr: addr, TTL: ttl})
		case TypeAAAA:
			if rdlen != 16 {
				return nil, fmt.Errorf("dnswire: AAAA record with %d bytes", rdlen)
			}
			addr, _ := netip.AddrFromSlice(rdata)
			m.Answers = append(m.Answers, Answer{Addr: addr, TTL: ttl})
		default:
			// Other record types are skipped.
		}
	}
	return m, nil
}
