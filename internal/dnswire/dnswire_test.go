package dnswire

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := &Message{ID: 0x1234, Name: "www.facebook.com", QType: TypeA}
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != q.ID || got.Response || got.Name != q.Name || got.QType != TypeA || len(got.Answers) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Message{
		ID: 0xbeef, Response: true, Name: "zoom.us", QType: TypeA,
		Answers: []Answer{
			{Addr: netip.MustParseAddr("23.0.1.2"), TTL: 300},
			{Addr: netip.MustParseAddr("23.1.3.4"), TTL: 300},
		},
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.Name != "zoom.us" || len(got.Answers) != 2 {
		t.Fatalf("got %+v", got)
	}
	for i := range r.Answers {
		if got.Answers[i] != r.Answers[i] {
			t.Errorf("answer %d: %+v != %+v", i, got.Answers[i], r.Answers[i])
		}
	}
}

func TestAAAARoundTrip(t *testing.T) {
	r := &Message{
		ID: 7, Response: true, Name: "hdslb.com", QType: TypeAAAA,
		Answers: []Answer{{Addr: netip.MustParseAddr("2001:db8:2400::1"), TTL: 60}},
	}
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Addr != r.Answers[0].Addr {
		t.Errorf("addr = %v", got.Answers[0].Addr)
	}
}

func TestBadNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	for _, name := range []string{"..", "a..b", string(long) + ".com"} {
		m := &Message{Name: name, QType: TypeA}
		if _, err := m.Encode(); !errors.Is(err, ErrBadName) {
			t.Errorf("Encode(%q) err = %v", name, err)
		}
	}
}

func TestDecodeTruncation(t *testing.T) {
	m := &Message{ID: 1, Response: true, Name: "example.com", QType: TypeA,
		Answers: []Answer{{Addr: netip.MustParseAddr("1.2.3.4"), TTL: 10}}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(120))
		rng.Read(buf)
		Decode(buf) // errors fine, panics not
	}
}

func TestCompressionLoopRejected(t *testing.T) {
	// Header + a name that points at itself.
	wire := make([]byte, 14)
	wire[4], wire[5] = 0, 1 // QDCOUNT=1
	wire[12], wire[13] = 0xc0, 12
	if _, err := Decode(wire); err == nil {
		t.Error("self-referential pointer accepted")
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a plausible name from the fuzz input.
		labels := []string{}
		for _, b := range raw {
			l := int(b)%20 + 1
			lbl := make([]byte, l)
			for i := range lbl {
				lbl[i] = 'a' + byte((int(b)+i)%26)
			}
			labels = append(labels, string(lbl))
			if len(labels) == 5 {
				break
			}
		}
		if len(labels) == 0 {
			return true
		}
		name := ""
		for i, l := range labels {
			if i > 0 {
				name += "."
			}
			name += l
		}
		m := &Message{ID: 9, Name: name, QType: TypeA}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		return err == nil && got.Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	m := &Message{ID: 1, Response: true, Name: "static.xx.fbcdn.net", QType: TypeA,
		Answers: []Answer{{Addr: netip.MustParseAddr("23.3.4.5"), TTL: 300}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResponse(b *testing.B) {
	m := &Message{ID: 1, Response: true, Name: "static.xx.fbcdn.net", QType: TypeA,
		Answers: []Answer{{Addr: netip.MustParseAddr("23.3.4.5"), TTL: 300}}}
	wire, _ := m.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
