package logsink

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
	"repro/internal/universe"
)

// tally counts replayed events and verifies flow ordering.
type tally struct {
	t                        *testing.T
	flows, dns, http, leases int
	bytes                    int64
	lastFlow                 time.Time
}

func (s *tally) Flow(r flow.Record) {
	s.flows++
	s.bytes += r.TotalBytes()
	if r.Start.Before(s.lastFlow) {
		s.t.Fatal("replayed flows out of order")
	}
	s.lastFlow = r.Start
}
func (s *tally) DNS(dnssim.Entry)       { s.dns++ }
func (s *tally) HTTPMeta(httplog.Entry) { s.http++ }
func (s *tally) Lease(dhcp.Lease)       { s.leases++ }

func TestWriteThenReplayMatchesLive(t *testing.T) {
	if testing.Short() {
		t.Skip("disk round trip")
	}
	dir := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.005
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}

	// Live pass: count events directly.
	live := &tally{t: t}
	if err := g.RunDays(live, 5, 12); err != nil {
		t.Fatal(err)
	}

	// Disk pass: same generator config written to logs, then replayed.
	g2, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RunDays(w, 5, 12); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ConnFile, DNSFile, DHCPFile, HTTPFile} {
		if st, err := os.Stat(filepath.Join(dir, name)); err != nil || st.Size() == 0 {
			t.Fatalf("log %s missing or empty: %v", name, err)
		}
	}

	replayed := &tally{t: t}
	if err := Replay(dir, replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.flows != live.flows || replayed.dns != live.dns ||
		replayed.http != live.http || replayed.leases != live.leases {
		t.Errorf("replay counts %d/%d/%d/%d != live %d/%d/%d/%d",
			replayed.flows, replayed.dns, replayed.http, replayed.leases,
			live.flows, live.dns, live.http, live.leases)
	}
	if replayed.bytes != live.bytes {
		t.Errorf("replay bytes %d != live %d", replayed.bytes, live.bytes)
	}
	_ = campus.NumDays
}

// batchTally is a tally that also accepts the trace.BatchSink fast path,
// so Replay hands it event runs instead of per-event calls.
type batchTally struct {
	tally
	batches int
	flushes int
	days    map[time.Time]struct{}
}

func (s *batchTally) EventBatch(events []trace.Event) {
	s.batches++
	for i := range events {
		switch events[i].Kind {
		case trace.EventFlow:
			s.day(events[i].Flow.Start)
		case trace.EventDNS:
			s.day(events[i].DNS.Time)
		case trace.EventHTTP:
			s.day(events[i].HTTP.Time)
		}
		events[i].Deliver(&s.tally)
	}
}

// day records the distinct UTC days seen in the merged stream — leases are
// replayed up front and carry no epoch boundary of their own.
func (s *batchTally) day(t time.Time) {
	if s.days == nil {
		s.days = make(map[time.Time]struct{})
	}
	s.days[t.UTC().Truncate(24*time.Hour)] = struct{}{}
}

func (s *batchTally) Flush() { s.flushes++ }

func TestReplayBatchedMatchesPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("disk round trip")
	}
	dir := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.005
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(w, 5, 9); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	plain := &tally{t: t}
	if err := Replay(dir, plain); err != nil {
		t.Fatal(err)
	}
	batched := &batchTally{tally: tally{t: t}}
	if err := Replay(dir, batched); err != nil {
		t.Fatal(err)
	}
	// Replay seals an epoch at every UTC day rollover plus one final flush
	// at end of input: (days-1) rollovers + 1 = one flush per distinct day.
	if batched.batches == 0 || batched.flushes != len(batched.days) {
		t.Errorf("batches = %d, flushes = %d over %d replayed days; want one flush per day",
			batched.batches, batched.flushes, len(batched.days))
	}
	if batched.flows != plain.flows || batched.dns != plain.dns ||
		batched.http != plain.http || batched.leases != plain.leases ||
		batched.bytes != plain.bytes {
		t.Errorf("batched replay %d/%d/%d/%d (%d bytes) != per-event %d/%d/%d/%d (%d bytes)",
			batched.flows, batched.dns, batched.http, batched.leases, batched.bytes,
			plain.flows, plain.dns, plain.http, plain.leases, plain.bytes)
	}
}

func TestReplayMissingDir(t *testing.T) {
	if err := Replay("/nonexistent-dataset-dir", &tally{t: t}); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("disk round trip")
	}
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.005
	plainDir, gzDir := t.TempDir(), t.TempDir()

	write := func(dir string, gz bool) *tally {
		g, err := trace.New(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		var w *Writer
		if gz {
			w, err = NewGzipWriter(dir)
		} else {
			w, err = NewWriter(dir)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := g.RunDays(w, 8, 12); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got := &tally{t: t}
		if err := Replay(dir, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := write(plainDir, false)
	zipped := write(gzDir, true)
	if plain.flows != zipped.flows || plain.bytes != zipped.bytes ||
		plain.dns != zipped.dns || plain.leases != zipped.leases {
		t.Errorf("gzip replay differs: %+v vs %+v", plain, zipped)
	}
	// Compression actually happened.
	ps, err := os.Stat(filepath.Join(plainDir, ConnFile))
	if err != nil {
		t.Fatal(err)
	}
	zs, err := os.Stat(filepath.Join(gzDir, ConnFile+".gz"))
	if err != nil {
		t.Fatal(err)
	}
	if zs.Size() >= ps.Size()/2 {
		t.Errorf("gzip conn.log %d bytes vs plain %d — little compression", zs.Size(), ps.Size())
	}
}

func TestWriterCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "logs")
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Empty logs are valid and replayable.
	if err := Replay(dir, &tally{t: t}); err != nil {
		t.Fatal(err)
	}
}
