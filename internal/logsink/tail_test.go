package logsink

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultline"
	"repro/internal/trace"
	"repro/internal/universe"
)

// tailPoll is the fast poll interval tests run the tail at.
const tailPoll = 2 * time.Millisecond

func writeSentinel(t *testing.T, root string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, TailSentinel), nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

// copyDay clones one day directory of a rotated dataset.
func copyDay(t *testing.T, src, dst, day string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dst, day), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(src, day))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, day, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, day, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func listDays(t *testing.T, root string) []string {
	t.Helper()
	days, err := dayDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) == 0 {
		t.Fatalf("no day directories under %s", root)
	}
	return days
}

// TestTailRotatedMatchesReplayStatic tails an already-complete dataset and
// checks stream-for-stream equality with batch replay — including full
// pipeline-dataset parity under a fixed key, which pins the lease-merge
// equivalence (tail interleaves leases by timestamp; batch replays them in
// a global first pass).
func TestTailRotatedMatchesReplayStatic(t *testing.T) {
	src := writeRotated(t)
	writeSentinel(t, src)

	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}
	if clean.flows == 0 {
		t.Fatal("degenerate dataset: no flows")
	}

	var sealed []string
	finals := map[string]bool{}
	got := &tally{t: t}
	err := TailRotated(src, got, TailOptions{
		Poll: tailPoll,
		OnDaySealed: func(day string, final bool) {
			sealed = append(sealed, day)
			finals[day] = final
		},
	})
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if got.flows != clean.flows || got.dns != clean.dns || got.http != clean.http || got.leases != clean.leases {
		t.Fatalf("tail tallies diverge: flows %d/%d dns %d/%d http %d/%d leases %d/%d",
			got.flows, clean.flows, got.dns, clean.dns, got.http, clean.http, got.leases, clean.leases)
	}
	days := listDays(t, src)
	if !reflect.DeepEqual(sealed, days) {
		t.Fatalf("sealed days %v, want %v", sealed, days)
	}
	for i, d := range days {
		if want := i == len(days)-1; finals[d] != want {
			t.Fatalf("day %s final = %v, want %v", d, finals[d], want)
		}
	}

	// Full dataset parity through the real pipeline.
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("tail-parity-key-0123456789abcdef")
	mk := func() *core.Pipeline {
		p, err := core.NewPipeline(reg, core.Options{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	batchP := mk()
	if err := ReplayRotated(src, batchP); err != nil {
		t.Fatal(err)
	}
	tailP := mk()
	if err := TailRotated(src, tailP, TailOptions{Poll: tailPoll}); err != nil {
		t.Fatal(err)
	}
	want, gotDS := batchP.Finalize(), tailP.Finalize()
	if want.Stats != gotDS.Stats {
		t.Fatalf("stats diverge:\nbatch %+v\ntail  %+v", want.Stats, gotDS.Stats)
	}
	if len(want.Devices) != len(gotDS.Devices) {
		t.Fatalf("%d devices via tail, want %d", len(gotDS.Devices), len(want.Devices))
	}
	for i := range want.Devices {
		if !reflect.DeepEqual(want.Devices[i], gotDS.Devices[i]) {
			t.Fatalf("device %d diverges:\nbatch %+v\ntail  %+v", i, want.Devices[i], gotDS.Devices[i])
		}
	}
}

// TestTailRotatedGrowingDataset grows the dataset under the tail: every
// log is appended in odd-sized chunks (so the tail constantly observes
// torn lines and partial headers), days appear one by one, and the
// sentinel lands last. The tail must deliver exactly the clean event
// stream.
func TestTailRotatedGrowingDataset(t *testing.T) {
	src := writeRotated(t)
	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}
	days := listDays(t, src)

	dst := t.TempDir()
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(done)
		const chunk = 8191 // odd: chunk edges land mid-line, mid-field
		for _, day := range days {
			if err := os.MkdirAll(filepath.Join(dst, day), 0o755); err != nil {
				errc <- err
				return
			}
			entries, err := os.ReadDir(filepath.Join(src, day))
			if err != nil {
				errc <- err
				return
			}
			type growing struct {
				f    *os.File
				data []byte
				off  int
			}
			var files []*growing
			for _, e := range entries {
				data, err := os.ReadFile(filepath.Join(src, day, e.Name()))
				if err != nil {
					errc <- err
					return
				}
				f, err := os.Create(filepath.Join(dst, day, e.Name()))
				if err != nil {
					errc <- err
					return
				}
				files = append(files, &growing{f: f, data: data})
			}
			for {
				any := false
				for _, g := range files {
					if g.off >= len(g.data) {
						continue
					}
					end := g.off + chunk
					if end > len(g.data) {
						end = len(g.data)
					}
					if _, err := g.f.Write(g.data[g.off:end]); err != nil {
						errc <- err
						return
					}
					g.off = end
					any = true
				}
				if !any {
					break
				}
				time.Sleep(time.Millisecond)
			}
			for _, g := range files {
				if err := g.f.Close(); err != nil {
					errc <- err
					return
				}
			}
		}
		if err := os.WriteFile(filepath.Join(dst, TailSentinel), nil, 0o644); err != nil {
			errc <- err
		}
	}()

	var sealed []string
	got := &tally{t: t}
	err := TailRotated(dst, got, TailOptions{
		Poll:        tailPoll,
		OnDaySealed: func(day string, final bool) { sealed = append(sealed, day) },
	})
	<-done
	select {
	case werr := <-errc:
		t.Fatalf("writer: %v", werr)
	default:
	}
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if got.flows != clean.flows || got.dns != clean.dns || got.http != clean.http || got.leases != clean.leases {
		t.Fatalf("grown-tail tallies diverge: flows %d/%d dns %d/%d http %d/%d leases %d/%d",
			got.flows, clean.flows, got.dns, clean.dns, got.http, clean.http, got.leases, clean.leases)
	}
	if !reflect.DeepEqual(sealed, days) {
		t.Fatalf("sealed days %v, want %v", sealed, days)
	}
}

// tornCut picks a seeded byte offset strictly inside a data record of a
// log, so writing the prefix leaves a torn line mid-record.
func tornCut(t *testing.T, data []byte, rng *rand.Rand) int {
	t.Helper()
	type span struct{ start, end int }
	var lines []span
	off := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) > 1 && line[0] != '#' {
			lines = append(lines, span{off, off + len(line)})
		}
		off += len(line) + 1
	}
	if len(lines) == 0 {
		t.Fatal("no data records to tear")
	}
	l := lines[rng.Intn(len(lines))]
	return l.start + 1 + rng.Intn(l.end-l.start-1)
}

// TestTailTornResumeSeededOffsets is the torn_test.go seeded-offset
// property extended to the tail path (the satellite bugfix): at any
// seeded offset, a conn.log cut mid-record means "the writer is
// mid-append" — the tail must wait, resume when the remainder lands, and
// deliver the full clean stream with zero drops (no phantom truncated
// record) and zero duplicates.
func TestTailTornResumeSeededOffsets(t *testing.T) {
	src := writeRotated(t)
	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}
	days := listDays(t, src)
	connData, err := os.ReadFile(filepath.Join(src, days[0], ConnFile))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		cut := tornCut(t, connData, rng)
		dst := t.TempDir()
		done := make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			defer close(done)
			fail := func(err error) { errc <- err }
			// Day 0: every log complete except conn.log, written torn.
			if err := os.MkdirAll(filepath.Join(dst, days[0]), 0o755); err != nil {
				fail(err)
				return
			}
			for _, name := range []string{DNSFile, DHCPFile, HTTPFile} {
				data, err := os.ReadFile(filepath.Join(src, days[0], name))
				if err != nil {
					fail(err)
					return
				}
				if err := os.WriteFile(filepath.Join(dst, days[0], name), data, 0o644); err != nil {
					fail(err)
					return
				}
			}
			connPath := filepath.Join(dst, days[0], ConnFile)
			if err := os.WriteFile(connPath, connData[:cut], 0o644); err != nil {
				fail(err)
				return
			}
			// Leave the tail staring at the torn record, then append the
			// remainder and let the dataset complete.
			time.Sleep(50 * time.Millisecond)
			f, err := os.OpenFile(connPath, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				fail(err)
				return
			}
			if _, err := f.Write(connData[cut:]); err != nil {
				fail(err)
				return
			}
			if err := f.Close(); err != nil {
				fail(err)
				return
			}
			for _, d := range days[1:] {
				copyDay(t, src, dst, d)
			}
			if err := os.WriteFile(filepath.Join(dst, TailSentinel), nil, 0o644); err != nil {
				fail(err)
			}
		}()

		// A skip-policy guard makes a phantom drop countable instead of
		// fatal — the assertion below demands exactly zero.
		guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
		got := &tally{t: t}
		err := TailRotated(dst, got, TailOptions{
			ReplayOptions: ReplayOptions{Guard: guard},
			Poll:          tailPoll,
		})
		<-done
		select {
		case werr := <-errc:
			t.Fatalf("cut %d: writer: %v", cut, werr)
		default:
		}
		if err != nil {
			t.Fatalf("cut %d: tail: %v", cut, err)
		}
		if guard.DropTotal() != 0 {
			t.Fatalf("cut %d: phantom drops on a torn live tail: %s", cut, guard.Summary())
		}
		if got.flows != clean.flows {
			t.Fatalf("cut %d: %d flows, want %d (no loss, no duplicates)", cut, got.flows, clean.flows)
		}
		if got.dns != clean.dns || got.http != clean.http || got.leases != clean.leases {
			t.Fatalf("cut %d: other streams shifted: dns %d/%d http %d/%d leases %d/%d",
				cut, got.dns, clean.dns, got.http, clean.http, got.leases, clean.leases)
		}
		if guard.Accepted()+guard.DropTotal() != guard.Offered() {
			t.Fatalf("cut %d: accounting broken: %s", cut, guard.Summary())
		}
	}
}

// TestTailFinalTornRecordDropsLikeBatch pins the other side of the torn
// contract: when the dataset is *complete* and the final record really is
// truncated (the writer died mid-append), the tail must classify it
// exactly as batch replay does — one truncated drop, everything else
// delivered.
func TestTailFinalTornRecordDropsLikeBatch(t *testing.T) {
	src := writeRotated(t)
	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}
	torn := copyRotated(t, src)
	tearConnLog(t, torn, 0.5)
	writeSentinel(t, torn)

	guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
	got := &tally{t: t}
	if err := TailRotated(torn, got, TailOptions{
		ReplayOptions: ReplayOptions{Guard: guard},
		Poll:          tailPoll,
	}); err != nil {
		t.Fatalf("tail: %v", err)
	}
	if guard.DropTotal() != 1 {
		t.Fatalf("drops = %s, want exactly one truncated", guard.Summary())
	}
	if got.flows != clean.flows-1 {
		t.Fatalf("%d flows, want %d", got.flows, clean.flows-1)
	}
}

// TestTailStop checks clean shutdown both while idle (waiting for a new
// day) and while blocked mid-record on a torn line: ErrTailStopped, no
// phantom drops, no stray events.
func TestTailStop(t *testing.T) {
	src := writeRotated(t)
	days := listDays(t, src)

	t.Run("idle", func(t *testing.T) {
		dst := t.TempDir()
		for _, d := range days {
			copyDay(t, src, dst, d)
		}
		// No sentinel: after consuming every day the tail waits for more.
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(30 * time.Millisecond)
			close(stop)
		}()
		got := &tally{t: t}
		err := TailRotated(dst, got, TailOptions{Poll: tailPoll, Stop: stop})
		<-done
		if !errors.Is(err, ErrTailStopped) {
			t.Fatalf("err = %v, want ErrTailStopped", err)
		}
	})

	t.Run("mid-record", func(t *testing.T) {
		dst := t.TempDir()
		copyDay(t, src, dst, days[0])
		connPath := filepath.Join(dst, days[0], ConnFile)
		data, err := os.ReadFile(connPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := tornCut(t, data, rand.New(rand.NewSource(7)))
		if err := os.WriteFile(connPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(30 * time.Millisecond)
			close(stop)
		}()
		guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
		got := &tally{t: t}
		err = TailRotated(dst, got, TailOptions{
			ReplayOptions: ReplayOptions{Guard: guard},
			Poll:          tailPoll,
			Stop:          stop,
		})
		<-done
		if !errors.Is(err, ErrTailStopped) {
			t.Fatalf("err = %v, want ErrTailStopped", err)
		}
		if guard.DropTotal() != 0 {
			t.Fatalf("stop mid-record produced drops: %s", guard.Summary())
		}
	})
}

// TestTailRequiresPlainLogs: gzip datasets cannot be tailed (a gzip
// stream cannot be incrementally decoded past a torn tail) and must be
// rejected loudly rather than replayed wrong.
func TestTailRequiresPlainLogs(t *testing.T) {
	root := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.002
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRotatingWriter(root, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(rw, 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	writeSentinel(t, root)
	err = TailRotated(root, &tally{t: t}, TailOptions{Poll: tailPoll})
	if err == nil || errors.Is(err, ErrTailStopped) {
		t.Fatalf("tail of gzip dataset: err = %v, want gzip rejection", err)
	}
}
