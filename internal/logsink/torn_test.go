package logsink

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/decodeerr"
	"repro/internal/faultline"
	"repro/internal/trace"
	"repro/internal/universe"
)

// writeRotated generates a small rotated dataset and returns its root.
func writeRotated(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.005
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRotatingWriter(root, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RunDays(rw, 5, 8); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	return root
}

// copyRotated clones a rotated dataset into a fresh temp dir.
func copyRotated(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// tearConnLog truncates the first day's conn.log mid-way through its last
// record at the given fraction of the detectable span, modeling a write
// torn by rotation. The cut is constrained to land before the record's
// last tab: a tear inside the final field's digits still parses as a
// (shorter) valid value — a fundamental limit of unframed TSV, covered by
// the value-tolerance bounds of the differential harness instead.
func tearConnLog(t *testing.T, root string, frac float64) {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var days []string
	for _, e := range entries {
		if e.IsDir() {
			days = append(days, e.Name())
		}
	}
	sort.Strings(days)
	path := filepath.Join(root, days[0], ConnFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	last := -1
	for i, l := range lines {
		if l != "" && !strings.HasPrefix(l, "#") {
			last = i
		}
	}
	if last < 0 {
		t.Fatal("no data records in day-0 conn.log")
	}
	rec := lines[last]
	lastTab := strings.LastIndexByte(rec, '\t')
	if lastTab < 1 {
		t.Fatalf("degenerate record %q", rec)
	}
	cut := 1 + int(frac*float64(lastTab-1))
	// Everything after the torn record is lost with it, #close included.
	torn := strings.Join(lines[:last], "\n") + "\n" + rec[:cut]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTornRotationBoundary is the rotation-boundary robustness property:
// for any seeded split offset, a record torn at the end of one day's
// conn.log surfaces exactly one truncated-record drop, and the resumed
// replay (next day onward) neither loses nor duplicates anything else —
// total flows are exactly the clean count minus one.
func TestTornRotationBoundary(t *testing.T) {
	src := writeRotated(t)

	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}
	if clean.flows == 0 {
		t.Fatal("degenerate dataset: no flows")
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		frac := rng.Float64()
		torn := copyRotated(t, src)
		tearConnLog(t, torn, frac)

		guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
		got := &tally{t: t}
		if err := ReplayRotatedWithOptions(torn, got, ReplayOptions{Guard: guard}); err != nil {
			t.Fatalf("offset frac %.3f: replay failed: %v", frac, err)
		}
		drops := guard.Drops()
		if guard.DropTotal() != 1 || drops[decodeerr.Truncated] != 1 {
			t.Fatalf("offset frac %.3f: drops = %v, want exactly one truncated", frac, drops)
		}
		if got.flows != clean.flows-1 {
			t.Fatalf("offset frac %.3f: %d flows, want %d (clean %d minus the torn record, no duplicates)",
				frac, got.flows, clean.flows-1, clean.flows)
		}
		if got.dns != clean.dns || got.http != clean.http || got.leases != clean.leases {
			t.Fatalf("offset frac %.3f: other streams shifted: dns %d/%d http %d/%d leases %d/%d",
				frac, got.dns, clean.dns, got.http, clean.http, got.leases, clean.leases)
		}
		if guard.Accepted()+guard.DropTotal() != guard.Offered() {
			t.Fatalf("offset frac %.3f: accounting broken: %s", frac, guard.Summary())
		}
	}
}

// TestTornTailInjectorOnRotation runs the same property through the
// injector's torn-tail fault class instead of a hand-built tear, pinning
// the two implementations to the same semantics.
func TestTornTailInjectorOnRotation(t *testing.T) {
	src := writeRotated(t)
	clean := &tally{t: t}
	if err := ReplayRotated(src, clean); err != nil {
		t.Fatal(err)
	}

	// Tear every log of every day: per-file torn tails at zero random
	// rate. Each file's physical last line is cut; for these logs that is
	// the #close trailer, which parsers skip — so only files whose tear
	// happens to land on data surface drops. Accounting must hold anyway.
	dst := t.TempDir()
	reports, err := faultline.CorruptDataset(src, dst, faultline.Config{Seed: 4, TornTail: true})
	if err != nil {
		t.Fatal(err)
	}
	var total faultline.Report
	for _, r := range reports {
		total.Merge(r)
	}
	if total.Faults[faultline.FaultTornTail] == 0 {
		t.Fatal("no torn tails applied")
	}

	guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
	got := &tally{t: t}
	if err := ReplayRotatedWithOptions(dst, got, ReplayOptions{Guard: guard}); err != nil {
		t.Fatal(err)
	}
	if guard.Accepted()+guard.DropTotal() != guard.Offered() {
		t.Fatalf("accounting broken: %s", guard.Summary())
	}
	// A torn #close is invisible; a torn record drops exactly itself.
	if lost := clean.flows - got.flows; int64(lost) != guard.Drops()[decodeerr.Truncated] {
		t.Fatalf("lost %d flows but guard counted %d truncated", lost, guard.Drops()[decodeerr.Truncated])
	}
}
