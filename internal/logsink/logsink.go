// Package logsink persists a generated workload as the four Zeek-style log
// files the real measurement system consumed (conn, dns, dhcp, http), and
// replays them back into any trace.Sink (normally the pipeline). Together
// with cmd/tracegen this provides the at-rest dataset form: generate once,
// analyze many times — exactly how the original infrastructure operated.
package logsink

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/faultline"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
	"repro/internal/zeeklog"
)

// File names within a dataset directory. Gzipped variants (name + ".gz")
// are produced by NewGzipWriter and detected transparently by Replay — the
// same convention Zeek's log rotation uses.
const (
	ConnFile = "conn.log"
	DNSFile  = "dns.log"
	DHCPFile = "dhcp.log"
	HTTPFile = "http.log"
)

// Writer is a trace.Sink that writes the four log files.
type Writer struct {
	closers []io.Closer
	conn    *zeeklog.ConnWriter
	dns     *dnssim.LogWriter
	dhcp    *dhcp.LogWriter
	http    *httplog.Writer
	err     error
}

// NewWriter creates (or truncates) plain log files in dir.
func NewWriter(dir string) (*Writer, error) { return newWriter(dir, false) }

// NewGzipWriter creates gzip-compressed log files (name + ".gz") in dir.
func NewGzipWriter(dir string) (*Writer, error) { return newWriter(dir, true) }

func newWriter(dir string, compress bool) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{}
	var err error
	open := func(name string) io.Writer {
		if err != nil {
			return nil
		}
		if compress {
			name += ".gz"
		}
		var f *os.File
		f, err = os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil
		}
		w.closers = append(w.closers, f)
		if compress {
			gz := gzip.NewWriter(f)
			// Close order matters: gz before its file. Prepend so Close
			// walks inner-to-outer.
			w.closers = append(w.closers[:len(w.closers)-1], gz, f)
			return gz
		}
		return f
	}
	connW := open(ConnFile)
	dnsW := open(DNSFile)
	dhcpW := open(DHCPFile)
	httpW := open(HTTPFile)
	if err != nil {
		w.Close()
		return nil, err
	}
	w.conn = zeeklog.NewConnWriter(connW)
	w.dns = dnssim.NewLogWriter(dnsW)
	w.dhcp = dhcp.NewLogWriter(dhcpW)
	w.http = httplog.NewWriter(httpW)
	return w, nil
}

func (w *Writer) note(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Flow implements trace.Sink.
func (w *Writer) Flow(r flow.Record) { w.note(w.conn.Write(r)) }

// DNS implements trace.Sink.
func (w *Writer) DNS(e dnssim.Entry) { w.note(w.dns.Write(e)) }

// HTTPMeta implements trace.Sink.
func (w *Writer) HTTPMeta(e httplog.Entry) { w.note(w.http.Write(e)) }

// Lease implements trace.Sink.
func (w *Writer) Lease(l dhcp.Lease) { w.note(w.dhcp.Write(l)) }

// Err returns the first write error encountered.
func (w *Writer) Err() error { return w.err }

// Close flushes and closes all logs, returning the first error.
func (w *Writer) Close() error {
	if w.conn != nil {
		w.note(w.conn.Close())
	}
	if w.dns != nil {
		w.note(w.dns.Close())
	}
	if w.dhcp != nil {
		w.note(w.dhcp.Close())
	}
	if w.http != nil {
		w.note(w.http.Close())
	}
	for _, c := range w.closers {
		w.note(c.Close())
	}
	return w.err
}

// openLog opens a dataset log, preferring the plain file and falling back
// to the gzipped variant.
func openLog(dir, name string) (io.ReadCloser, error) {
	if f, err := os.Open(filepath.Join(dir, name)); err == nil {
		return f, nil
	}
	f, err := os.Open(filepath.Join(dir, name+".gz"))
	if err != nil {
		return nil, fmt.Errorf("logsink: neither %s nor %s.gz in %s", name, name, dir)
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzReadCloser{gz: gz, f: f}, nil
}

type gzReadCloser struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzReadCloser) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzReadCloser) Close() error {
	err := g.gz.Close()
	if err2 := g.f.Close(); err == nil {
		err = err2
	}
	return err
}

// ReplayOptions configures the fault-robustness layer of a replay. The
// zero value reproduces the historical behavior exactly: no corruption
// injected, first decode error fatal.
type ReplayOptions struct {
	// Guard applies the fault policy to decode errors; nil means strict.
	Guard *faultline.Guard
	// Inject, when non-nil, streams every log through a seeded corruption
	// injector (sub-seeded per file) before parsing — the test-harness
	// path for exercising the guard without pre-corrupting files on disk.
	Inject *faultline.Config
}

// inject wraps r with the corruption injector when configured.
func (o ReplayOptions) inject(r io.Reader, name string) io.Reader {
	if o.Inject == nil {
		return r
	}
	return faultline.NewReader(r, o.Inject.Sub(name))
}

// lenient reports whether decode errors are survivable (duplicate
// detection is only worth its comparison cost then).
func (o ReplayOptions) lenient() bool {
	return o.Guard.Policy() != faultline.PolicyStrict
}

// Replay streams a dataset directory into sink: DHCP leases first (they
// index address bindings), then flows, DNS entries and HTTP metadata merged
// in timestamp order, matching the live generation order. A sink that
// implements trace.BatchSink (the sharded pipeline) receives the same
// events in batched runs instead of one interface call each.
func Replay(dir string, sink trace.Sink) error {
	return ReplayWithOptions(dir, sink, ReplayOptions{})
}

// ReplayWithOptions is Replay with the fault-robustness layer: an optional
// corruption injector on every log stream and an error-budget guard over
// every decode failure. Log headers stay fatal under every policy — a file
// whose schema cannot be read contributes nothing to skip over. Under a
// lenient policy, adjacent identical records (the duplicated-write fault)
// are detected per stream and dropped as decodeerr.Duplicate.
func ReplayWithOptions(dir string, sink trace.Sink, opts ReplayOptions) error {
	if err := replayLeases(dir, sink, opts); err != nil {
		return err
	}
	return replayMerged(dir, sink, opts)
}

// replayLeases streams the day's DHCP log into sink under the fault layer.
func replayLeases(dir string, sink trace.Sink, opts ReplayOptions) error {
	g := opts.Guard
	lenient := opts.lenient()
	dhcpF, err := openLog(dir, DHCPFile)
	if err != nil {
		return err
	}
	defer dhcpF.Close()
	dhcpR, err := dhcp.NewLogReader(opts.inject(dhcpF, DHCPFile))
	if err != nil {
		return fmt.Errorf("dhcp.log: %w", err)
	}
	var prevLease string
	for {
		l, err := dhcpR.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if rerr := g.Reject("dhcp", dhcpR.Raw(), err); rerr != nil {
				return rerr
			}
			continue
		}
		if lenient {
			if raw := dhcpR.Raw(); raw != "" && raw == prevLease {
				if rerr := g.RejectDuplicate("dhcp", dhcpR.Line(), raw); rerr != nil {
					return rerr
				}
				continue
			} else {
				prevLease = raw
			}
		}
		g.Accept()
		sink.Lease(l)
	}
}

// replayMerged streams the day's traffic logs (conn, dns, http) into sink
// as a timestamp-ordered three-way merge under the fault layer.
func replayMerged(dir string, sink trace.Sink, opts ReplayOptions) error {
	out := trace.NewBatcher(sink)
	g := opts.Guard
	lenient := opts.lenient()

	connF, err := openLog(dir, ConnFile)
	if err != nil {
		return err
	}
	defer connF.Close()
	dnsF, err := openLog(dir, DNSFile)
	if err != nil {
		return err
	}
	defer dnsF.Close()
	httpF, err := openLog(dir, HTTPFile)
	if err != nil {
		return err
	}
	defer httpF.Close()

	connR, err := zeeklog.NewConnReader(opts.inject(connF, ConnFile))
	if err != nil {
		return fmt.Errorf("conn.log: %w", err)
	}
	dnsR, err := dnssim.NewLogReader(opts.inject(dnsF, DNSFile))
	if err != nil {
		return fmt.Errorf("dns.log: %w", err)
	}
	httpR, err := httplog.NewReader(opts.inject(httpF, HTTPFile))
	if err != nil {
		return fmt.Errorf("http.log: %w", err)
	}

	// Three-way merge by timestamp.
	var (
		curFlow  flow.Record
		curDNS   dnssim.Entry
		curHTTP  httplog.Entry
		haveFlow bool
		haveDNS  bool
		haveHTTP bool
		prevConn string
		prevDNS  string
		prevHTTP string
	)
	advanceFlow := func() error {
		for {
			r, err := connR.Next()
			if err == io.EOF {
				haveFlow = false
				return nil
			}
			if err != nil {
				if rerr := g.Reject("conn", connR.Raw(), err); rerr != nil {
					return rerr
				}
				continue
			}
			if lenient {
				if raw := connR.Raw(); raw != "" && raw == prevConn {
					if rerr := g.RejectDuplicate("conn", connR.Line(), raw); rerr != nil {
						return rerr
					}
					continue
				} else {
					prevConn = raw
				}
			}
			g.Accept()
			curFlow, haveFlow = r, true
			return nil
		}
	}
	advanceDNS := func() error {
		for {
			e, err := dnsR.Next()
			if err == io.EOF {
				haveDNS = false
				return nil
			}
			if err != nil {
				if rerr := g.Reject("dns", dnsR.Raw(), err); rerr != nil {
					return rerr
				}
				continue
			}
			if lenient {
				if raw := dnsR.Raw(); raw != "" && raw == prevDNS {
					if rerr := g.RejectDuplicate("dns", dnsR.Line(), raw); rerr != nil {
						return rerr
					}
					continue
				} else {
					prevDNS = raw
				}
			}
			g.Accept()
			curDNS, haveDNS = e, true
			return nil
		}
	}
	advanceHTTP := func() error {
		for {
			e, err := httpR.Next()
			if err == io.EOF {
				haveHTTP = false
				return nil
			}
			if err != nil {
				if rerr := g.Reject("http", httpR.Raw(), err); rerr != nil {
					return rerr
				}
				continue
			}
			if lenient {
				if raw := httpR.Raw(); raw != "" && raw == prevHTTP {
					if rerr := g.RejectDuplicate("http", httpR.Line(), raw); rerr != nil {
						return rerr
					}
					continue
				} else {
					prevHTTP = raw
				}
			}
			g.Accept()
			curHTTP, haveHTTP = e, true
			return nil
		}
	}
	if err := advanceFlow(); err != nil {
		return err
	}
	if err := advanceDNS(); err != nil {
		return err
	}
	if err := advanceHTTP(); err != nil {
		return err
	}
	// Day-rollover flushes tag batch epochs onto the replay stream the way
	// the generator's per-day flushes do for live traces: each UTC day
	// boundary becomes a stream boundary, so a batch-capable sink (the
	// sharded pipeline) seals and publishes its join-table delta at least
	// once per replayed day instead of only at end of input.
	var curDay time.Time
	rollDay := func(t time.Time) {
		day := t.UTC().Truncate(24 * time.Hour)
		if !curDay.IsZero() && day.After(curDay) {
			out.Flush()
		}
		curDay = day
	}
	for haveFlow || haveDNS || haveHTTP {
		// Pick the earliest of the available heads; DNS wins ties so
		// resolutions precede the flows they label.
		switch {
		case haveDNS && (!haveFlow || !curFlow.Start.Before(curDNS.Time)) && (!haveHTTP || !curHTTP.Time.Before(curDNS.Time)):
			rollDay(curDNS.Time)
			out.DNS(curDNS)
			if err := advanceDNS(); err != nil {
				return err
			}
		case haveFlow && (!haveHTTP || !curHTTP.Time.Before(curFlow.Start)):
			rollDay(curFlow.Start)
			out.Flow(curFlow)
			if err := advanceFlow(); err != nil {
				return err
			}
		default:
			rollDay(curHTTP.Time)
			out.HTTPMeta(curHTTP)
			if err := advanceHTTP(); err != nil {
				return err
			}
		}
	}
	out.Flush()
	return nil
}
