// Package logsink persists a generated workload as the four Zeek-style log
// files the real measurement system consumed (conn, dns, dhcp, http), and
// replays them back into any trace.Sink (normally the pipeline). Together
// with cmd/tracegen this provides the at-rest dataset form: generate once,
// analyze many times — exactly how the original infrastructure operated.
package logsink

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
	"repro/internal/zeeklog"
)

// File names within a dataset directory. Gzipped variants (name + ".gz")
// are produced by NewGzipWriter and detected transparently by Replay — the
// same convention Zeek's log rotation uses.
const (
	ConnFile = "conn.log"
	DNSFile  = "dns.log"
	DHCPFile = "dhcp.log"
	HTTPFile = "http.log"
)

// Writer is a trace.Sink that writes the four log files.
type Writer struct {
	closers []io.Closer
	conn    *zeeklog.ConnWriter
	dns     *dnssim.LogWriter
	dhcp    *dhcp.LogWriter
	http    *httplog.Writer
	err     error
}

// NewWriter creates (or truncates) plain log files in dir.
func NewWriter(dir string) (*Writer, error) { return newWriter(dir, false) }

// NewGzipWriter creates gzip-compressed log files (name + ".gz") in dir.
func NewGzipWriter(dir string) (*Writer, error) { return newWriter(dir, true) }

func newWriter(dir string, compress bool) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{}
	var err error
	open := func(name string) io.Writer {
		if err != nil {
			return nil
		}
		if compress {
			name += ".gz"
		}
		var f *os.File
		f, err = os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil
		}
		w.closers = append(w.closers, f)
		if compress {
			gz := gzip.NewWriter(f)
			// Close order matters: gz before its file. Prepend so Close
			// walks inner-to-outer.
			w.closers = append(w.closers[:len(w.closers)-1], gz, f)
			return gz
		}
		return f
	}
	connW := open(ConnFile)
	dnsW := open(DNSFile)
	dhcpW := open(DHCPFile)
	httpW := open(HTTPFile)
	if err != nil {
		w.Close()
		return nil, err
	}
	w.conn = zeeklog.NewConnWriter(connW)
	w.dns = dnssim.NewLogWriter(dnsW)
	w.dhcp = dhcp.NewLogWriter(dhcpW)
	w.http = httplog.NewWriter(httpW)
	return w, nil
}

func (w *Writer) note(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Flow implements trace.Sink.
func (w *Writer) Flow(r flow.Record) { w.note(w.conn.Write(r)) }

// DNS implements trace.Sink.
func (w *Writer) DNS(e dnssim.Entry) { w.note(w.dns.Write(e)) }

// HTTPMeta implements trace.Sink.
func (w *Writer) HTTPMeta(e httplog.Entry) { w.note(w.http.Write(e)) }

// Lease implements trace.Sink.
func (w *Writer) Lease(l dhcp.Lease) { w.note(w.dhcp.Write(l)) }

// Err returns the first write error encountered.
func (w *Writer) Err() error { return w.err }

// Close flushes and closes all logs, returning the first error.
func (w *Writer) Close() error {
	if w.conn != nil {
		w.note(w.conn.Close())
	}
	if w.dns != nil {
		w.note(w.dns.Close())
	}
	if w.dhcp != nil {
		w.note(w.dhcp.Close())
	}
	if w.http != nil {
		w.note(w.http.Close())
	}
	for _, c := range w.closers {
		w.note(c.Close())
	}
	return w.err
}

// openLog opens a dataset log, preferring the plain file and falling back
// to the gzipped variant.
func openLog(dir, name string) (io.ReadCloser, error) {
	if f, err := os.Open(filepath.Join(dir, name)); err == nil {
		return f, nil
	}
	f, err := os.Open(filepath.Join(dir, name+".gz"))
	if err != nil {
		return nil, fmt.Errorf("logsink: neither %s nor %s.gz in %s", name, name, dir)
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzReadCloser{gz: gz, f: f}, nil
}

type gzReadCloser struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzReadCloser) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzReadCloser) Close() error {
	err := g.gz.Close()
	if err2 := g.f.Close(); err == nil {
		err = err2
	}
	return err
}

// Replay streams a dataset directory into sink: DHCP leases first (they
// index address bindings), then flows, DNS entries and HTTP metadata merged
// in timestamp order, matching the live generation order. A sink that
// implements trace.BatchSink (the sharded pipeline) receives the same
// events in batched runs instead of one interface call each.
func Replay(dir string, sink trace.Sink) error {
	out := trace.NewBatcher(sink)

	// Leases: sequential, already in grant order.
	dhcpF, err := openLog(dir, DHCPFile)
	if err != nil {
		return err
	}
	leases, err := dhcp.ReadAll(dhcpF)
	dhcpF.Close()
	if err != nil {
		return err
	}
	for _, l := range leases {
		out.Lease(l)
	}

	connF, err := openLog(dir, ConnFile)
	if err != nil {
		return err
	}
	defer connF.Close()
	dnsF, err := openLog(dir, DNSFile)
	if err != nil {
		return err
	}
	defer dnsF.Close()
	httpF, err := openLog(dir, HTTPFile)
	if err != nil {
		return err
	}
	defer httpF.Close()

	connR, err := zeeklog.NewConnReader(connF)
	if err != nil {
		return fmt.Errorf("conn.log: %w", err)
	}
	dnsR, err := dnssim.NewLogReader(dnsF)
	if err != nil {
		return fmt.Errorf("dns.log: %w", err)
	}
	httpR, err := httplog.NewReader(httpF)
	if err != nil {
		return fmt.Errorf("http.log: %w", err)
	}

	// Three-way merge by timestamp.
	var (
		curFlow  flow.Record
		curDNS   dnssim.Entry
		curHTTP  httplog.Entry
		haveFlow bool
		haveDNS  bool
		haveHTTP bool
	)
	advanceFlow := func() error {
		r, err := connR.Next()
		if err == io.EOF {
			haveFlow = false
			return nil
		}
		if err != nil {
			return err
		}
		curFlow, haveFlow = r, true
		return nil
	}
	advanceDNS := func() error {
		e, err := dnsR.Next()
		if err == io.EOF {
			haveDNS = false
			return nil
		}
		if err != nil {
			return err
		}
		curDNS, haveDNS = e, true
		return nil
	}
	advanceHTTP := func() error {
		e, err := httpR.Next()
		if err == io.EOF {
			haveHTTP = false
			return nil
		}
		if err != nil {
			return err
		}
		curHTTP, haveHTTP = e, true
		return nil
	}
	if err := advanceFlow(); err != nil {
		return err
	}
	if err := advanceDNS(); err != nil {
		return err
	}
	if err := advanceHTTP(); err != nil {
		return err
	}
	for haveFlow || haveDNS || haveHTTP {
		// Pick the earliest of the available heads; DNS wins ties so
		// resolutions precede the flows they label.
		switch {
		case haveDNS && (!haveFlow || !curFlow.Start.Before(curDNS.Time)) && (!haveHTTP || !curHTTP.Time.Before(curDNS.Time)):
			out.DNS(curDNS)
			if err := advanceDNS(); err != nil {
				return err
			}
		case haveFlow && (!haveHTTP || !curHTTP.Time.Before(curFlow.Start)):
			out.Flow(curFlow)
			if err := advanceFlow(); err != nil {
				return err
			}
		default:
			out.HTTPMeta(curHTTP)
			if err := advanceHTTP(); err != nil {
				return err
			}
		}
	}
	out.Flush()
	return nil
}
