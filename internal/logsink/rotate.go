package logsink

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
)

// RotatingWriter writes one dataset directory per study day
// (<root>/2020-02-01/conn.log, ...), the way Zeek rotates its logs. Events
// must arrive in non-decreasing time order (the generator's contract);
// each day boundary closes the previous day's logs.
type RotatingWriter struct {
	root     string
	compress bool
	cur      *Writer
	curDay   campus.Day
	started  bool
	err      error
}

// NewRotatingWriter returns a writer rotating under root.
func NewRotatingWriter(root string, compress bool) (*RotatingWriter, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &RotatingWriter{root: root, compress: compress}, nil
}

func (rw *RotatingWriter) fail(err error) {
	if rw.err == nil && err != nil {
		rw.err = err
	}
}

// ensure switches to the day's writer, rotating if needed.
func (rw *RotatingWriter) ensure(day campus.Day) *Writer {
	if rw.err != nil {
		return nil
	}
	if rw.started && day == rw.curDay {
		return rw.cur
	}
	if rw.started {
		rw.fail(rw.cur.Close())
	}
	w, err := newWriter(filepath.Join(rw.root, day.String()), rw.compress)
	if err != nil {
		rw.fail(err)
		return nil
	}
	rw.cur, rw.curDay, rw.started = w, day, true
	return w
}

// Flow implements trace.Sink.
func (rw *RotatingWriter) Flow(r flow.Record) {
	if day, ok := campus.DayOf(r.Start); ok {
		if w := rw.ensure(day); w != nil {
			w.Flow(r)
		}
	}
}

// DNS implements trace.Sink.
func (rw *RotatingWriter) DNS(e dnssim.Entry) {
	if day, ok := campus.DayOf(e.Time); ok {
		if w := rw.ensure(day); w != nil {
			w.DNS(e)
		}
	}
}

// HTTPMeta implements trace.Sink.
func (rw *RotatingWriter) HTTPMeta(e httplog.Entry) {
	if day, ok := campus.DayOf(e.Time); ok {
		if w := rw.ensure(day); w != nil {
			w.HTTPMeta(e)
		}
	}
}

// Lease implements trace.Sink.
func (rw *RotatingWriter) Lease(l dhcp.Lease) {
	if day, ok := campus.DayOf(l.Start); ok {
		if w := rw.ensure(day); w != nil {
			w.Lease(l)
		}
	}
}

// Close finishes the open day.
func (rw *RotatingWriter) Close() error {
	if rw.started {
		rw.fail(rw.cur.Close())
	}
	return rw.err
}

// ReplayRotated replays a rotated dataset: every day directory under root,
// in date order. Because DHCP leases can span day boundaries, all lease
// logs are replayed before any traffic.
func ReplayRotated(root string, sink trace.Sink) error {
	return ReplayRotatedWithOptions(root, sink, ReplayOptions{})
}

// ReplayRotatedWithOptions is ReplayRotated with the fault-robustness
// layer. One guard spans the whole dataset (the error budget is global,
// matching a multi-month run); injection sub-seeds per day directory, then
// per file, so corruption is independent across every file of the dataset.
func ReplayRotatedWithOptions(root string, sink trace.Sink, opts ReplayOptions) error {
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var days []string
	for _, e := range entries {
		if e.IsDir() {
			days = append(days, e.Name())
		}
	}
	if len(days) == 0 {
		return fmt.Errorf("logsink: no day directories under %s", root)
	}
	sort.Strings(days) // YYYY-MM-DD sorts chronologically
	dayOpts := func(d string) ReplayOptions {
		o := opts
		if opts.Inject != nil {
			sub := opts.Inject.Sub(d)
			o.Inject = &sub
		}
		return o
	}
	// Pass 1: leases.
	for _, d := range days {
		if err := replayLeases(filepath.Join(root, d), sink, dayOpts(d)); err != nil {
			return err
		}
	}
	// Pass 2: traffic, day by day. The dhcp logs are not re-read (pass 1
	// consumed them), so leases are neither double-offered to the guard
	// nor double-counted by the injector; leaseless keeps any stray lease
	// out of the sink regardless.
	for _, d := range days {
		if err := replayMerged(filepath.Join(root, d), &leaseless{sink}, dayOpts(d)); err != nil {
			return err
		}
	}
	return nil
}

// leaseless forwards everything except leases (already replayed globally).
type leaseless struct{ trace.Sink }

func (l *leaseless) Lease(dhcp.Lease) {}

// DayDirs returns the dataset's day directory names under root in date
// order (YYYY-MM-DD sorts chronologically) — the unit the per-day stats
// cache keys and replays.
func DayDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var days []string
	for _, e := range entries {
		if e.IsDir() {
			days = append(days, e.Name())
		}
	}
	if len(days) == 0 {
		return nil, fmt.Errorf("logsink: no day directories under %s", root)
	}
	sort.Strings(days)
	return days, nil
}

// ReplayRotatedDay replays exactly one day directory: its lease log first,
// then its merged traffic (with leases filtered out of the merged pass,
// mirroring ReplayRotatedWithOptions). Injection sub-seeds per day the
// same way the whole-dataset replay does, so a given day's stream is
// byte-for-byte the one ReplayRotatedWithOptions would feed for that day.
//
// Replaying days one at a time (day d's leases immediately before day d's
// traffic) is equivalent to the whole-dataset order (all leases, then all
// traffic) for every lookup the pipeline performs: a lease can only match
// timestamps at or after its start, so leases from later days are
// invisible to earlier traffic, and a renewal that coalesces with a span
// from an earlier day only extends its end — affecting only lookups at or
// after the renewal day. The daemon's live tail ingests in exactly this
// per-day order and its CI parity check pins the equivalence end to end.
func ReplayRotatedDay(root, day string, sink trace.Sink, opts ReplayOptions) error {
	o := opts
	if opts.Inject != nil {
		sub := opts.Inject.Sub(day)
		o.Inject = &sub
	}
	dir := filepath.Join(root, day)
	if err := replayLeases(dir, sink, o); err != nil {
		return err
	}
	return replayMerged(dir, &leaseless{sink}, o)
}
