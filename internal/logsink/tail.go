package logsink

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
	"repro/internal/zeeklog"
)

// TailSentinel is the default marker file name: its existence under a
// rotated dataset root declares the dataset complete (the writer will
// append no further bytes and create no further day directories).
const TailSentinel = "COMPLETE"

// ErrTailStopped is returned by TailRotated when its Stop channel closes.
// It propagates through the parsers as an ordinary (unclassified) stream
// error, so a line the writer was mid-append at shutdown is neither
// emitted nor counted as a decode drop — the tail simply stops between
// records.
var ErrTailStopped = errors.New("logsink: tail stopped")

// TailOptions configures TailRotated. The embedded ReplayOptions carry
// the same fault machinery batch replay uses (guard policy, seeded
// injection with identical per-day/per-file sub-seeding, so a tailed and
// a batch-replayed dataset see byte-identical corruption).
type TailOptions struct {
	ReplayOptions
	// Poll is the interval between checks for new bytes, new day
	// directories, and the sentinel (default 200ms).
	Poll time.Duration
	// Stop, when closed, aborts the tail with ErrTailStopped at the next
	// poll boundary.
	Stop <-chan struct{}
	// Sentinel overrides the completion marker file name (default
	// TailSentinel).
	Sentinel string
	// OnDaySealed, when non-nil, is called after each day directory has
	// been fully replayed into the sink (and the sink's batcher flushed —
	// a batch-capable sink has sealed the day's epoch). final is true
	// when the dataset is complete: this was the last day.
	OnDaySealed func(day string, final bool)
}

// TailRotated follows a growing rotated dataset under root, streaming
// events into sink as the writer produces them, and returns once the
// sentinel file declares the dataset complete (or with ErrTailStopped on
// Stop). It is the live-ingest counterpart of ReplayRotatedWithOptions
// and produces the same event stream with one documented difference:
// DHCP leases are merged into each day's traffic in timestamp order
// (winning ties) instead of being replayed in a global first pass — a
// tail cannot read future days. The result is equivalent: every lease
// lookup is time-aware, a lease starting after t never matches nor
// terminates a lookup at t, and leases still arrive in global start
// order, so attribution, coalescing, and the final dataset are identical
// (the tail parity tests pin this).
//
// Within a day the tail blocks at end-of-file until more bytes arrive: a
// torn final line means "the writer is mid-append" and parsing resumes
// when the line completes — no duplicate event, no phantom truncated
// drop. A day is final once a later day directory or the sentinel exists
// (the rotating writer closes a day before starting the next); only then
// is a torn final line a real truncated record, handled by the guard
// exactly as batch replay handles it.
//
// Tail mode requires plain (uncompressed) logs: a gzip stream cannot be
// incrementally decoded past a torn tail.
func TailRotated(root string, sink trace.Sink, opts TailOptions) error {
	poll := opts.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	sentinel := opts.Sentinel
	if sentinel == "" {
		sentinel = TailSentinel
	}
	sentinelPath := filepath.Join(root, sentinel)

	dayOpts := func(d string) ReplayOptions {
		o := opts.ReplayOptions
		if o.Inject != nil {
			sub := o.Inject.Sub(d)
			o.Inject = &sub
		}
		return o
	}

	seen := 0 // day directories fully replayed so far
	for {
		days, err := dayDirs(root)
		if err != nil {
			return err
		}
		complete := fileExists(sentinelPath)
		if seen < len(days) {
			day := days[seen]
			next := seen + 1
			final := func() bool {
				if fileExists(sentinelPath) {
					return true
				}
				ds, err := dayDirs(root)
				return err == nil && len(ds) > next
			}
			if err := tailDay(filepath.Join(root, day), sink, dayOpts(day), poll, opts.Stop, final); err != nil {
				return err
			}
			seen = next
			if opts.OnDaySealed != nil {
				ds, err := dayDirs(root)
				last := fileExists(sentinelPath) && err == nil && len(ds) == seen
				opts.OnDaySealed(day, last)
			}
			continue
		}
		if complete {
			if seen == 0 {
				return fmt.Errorf("logsink: no day directories under %s", root)
			}
			return nil
		}
		select {
		case <-opts.Stop:
			return ErrTailStopped
		case <-time.After(poll):
		}
	}
}

// dayDirs lists root's day directories in chronological (lexical) order.
// A root that does not exist yet is an empty dataset, not an error — the
// writer may not have started.
func dayDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var days []string
	for _, e := range entries {
		if e.IsDir() {
			days = append(days, e.Name())
		}
	}
	sort.Strings(days) // YYYY-MM-DD sorts chronologically
	return days, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// tailReader is a blocking reader over one growing log file: at
// end-of-file it polls for more bytes, returning io.EOF only once the
// day is final (checked before a read that still found nothing — the
// writer closed the file before the finality marker appeared, so no more
// bytes can arrive), and ErrTailStopped when stop closes. The parsers'
// line scanners block inside Read, which is exactly the torn-tail
// contract: an incomplete final line waits for the writer instead of
// decoding as truncated.
type tailReader struct {
	f     *os.File
	poll  time.Duration
	stop  <-chan struct{}
	final func() bool
	fin   bool // finality observed before the previous empty read
}

func (r *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := r.f.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if r.fin {
			return 0, io.EOF
		}
		if r.final() {
			// Drain once more: bytes may have landed between the empty
			// read above and the finality check.
			r.fin = true
			continue
		}
		select {
		case <-r.stop:
			return 0, ErrTailStopped
		case <-time.After(r.poll):
		}
	}
}

func (r *tailReader) Close() error { return r.f.Close() }

// openTail opens one log for tailing, waiting for the file to appear (a
// freshly rotated day directory may not have all files yet).
func openTail(dir, name string, poll time.Duration, stop <-chan struct{}, final func() bool) (io.ReadCloser, error) {
	for {
		f, err := os.Open(filepath.Join(dir, name))
		if err == nil {
			return &tailReader{f: f, poll: poll, stop: stop, final: final}, nil
		}
		if !os.IsNotExist(err) {
			return nil, err
		}
		if fileExists(filepath.Join(dir, name+".gz")) {
			return nil, fmt.Errorf("logsink: %s is gzip-compressed in %s; tail mode requires plain logs", name, dir)
		}
		if final() {
			return nil, fmt.Errorf("logsink: %s missing in finalized day directory %s", name, dir)
		}
		select {
		case <-stop:
			return nil, ErrTailStopped
		case <-time.After(poll):
		}
	}
}

// logStream is the shape every per-file reader shares (conn, dns, dhcp,
// http): typed record iteration plus the raw line and line number the
// guard reports on rejects.
type logStream[T any] interface {
	Next() (T, error)
	Raw() string
	Line() int
}

// streamHead is the merge head of one tailed stream.
type streamHead[T any] struct {
	cur  T
	ok   bool
	prev string // previous raw line, for lenient duplicate detection
}

// advanceHead fills a merge head with the stream's next accepted record,
// applying the guard policy and (under lenient policies) adjacent-
// duplicate detection — the same per-record loop batch replay runs.
func advanceHead[T any](h *streamHead[T], r logStream[T], source string, opts ReplayOptions) error {
	g := opts.Guard
	lenient := opts.lenient()
	for {
		v, err := r.Next()
		if err == io.EOF {
			h.ok = false
			return nil
		}
		if err != nil {
			if rerr := g.Reject(source, r.Raw(), err); rerr != nil {
				return rerr
			}
			continue
		}
		if lenient {
			if raw := r.Raw(); raw != "" && raw == h.prev {
				if rerr := g.RejectDuplicate(source, r.Line(), raw); rerr != nil {
					return rerr
				}
				continue
			} else {
				h.prev = raw
			}
		}
		g.Accept()
		h.cur, h.ok = v, true
		return nil
	}
}

// tailDay streams one day directory into sink as a timestamp-ordered
// four-way merge (leases win ties, then DNS, then flows, then HTTP — so
// a binding precedes the flows it attributes and a resolution precedes
// the flows it labels), blocking at each file's tail until the day is
// final. The sink's batcher is flushed at day end, which is the epoch
// seal for a batch-capable sink.
func tailDay(dir string, sink trace.Sink, opts ReplayOptions, poll time.Duration, stop <-chan struct{}, final func() bool) error {
	open := func(name string) (io.ReadCloser, error) {
		return openTail(dir, name, poll, stop, final)
	}
	dhcpF, err := open(DHCPFile)
	if err != nil {
		return err
	}
	defer dhcpF.Close()
	connF, err := open(ConnFile)
	if err != nil {
		return err
	}
	defer connF.Close()
	dnsF, err := open(DNSFile)
	if err != nil {
		return err
	}
	defer dnsF.Close()
	httpF, err := open(HTTPFile)
	if err != nil {
		return err
	}
	defer httpF.Close()

	// The header reads at construction block until the writer has written
	// each file's schema line; header errors stay fatal under every
	// policy, exactly as in batch replay.
	dhcpR, err := dhcp.NewLogReader(opts.inject(dhcpF, DHCPFile))
	if err != nil {
		return fmt.Errorf("dhcp.log: %w", err)
	}
	connR, err := zeeklog.NewConnReader(opts.inject(connF, ConnFile))
	if err != nil {
		return fmt.Errorf("conn.log: %w", err)
	}
	dnsR, err := dnssim.NewLogReader(opts.inject(dnsF, DNSFile))
	if err != nil {
		return fmt.Errorf("dns.log: %w", err)
	}
	httpR, err := httplog.NewReader(opts.inject(httpF, HTTPFile))
	if err != nil {
		return fmt.Errorf("http.log: %w", err)
	}

	var (
		lease streamHead[dhcp.Lease]
		fl    streamHead[flow.Record]
		dn    streamHead[dnssim.Entry]
		ht    streamHead[httplog.Entry]
	)
	if err := advanceHead(&lease, dhcpR, "dhcp", opts); err != nil {
		return err
	}
	if err := advanceHead(&fl, connR, "conn", opts); err != nil {
		return err
	}
	if err := advanceHead(&dn, dnsR, "dns", opts); err != nil {
		return err
	}
	if err := advanceHead(&ht, httpR, "http", opts); err != nil {
		return err
	}

	out := trace.NewBatcher(sink)
	for lease.ok || fl.ok || dn.ok || ht.ok {
		// Earliest timestamp wins; on ties the earlier consider call wins,
		// encoding the lease > DNS > flow > HTTP priority.
		best := 0
		var bt time.Time
		consider := func(code int, ok bool, t time.Time) {
			if ok && (best == 0 || t.Before(bt)) {
				best, bt = code, t
			}
		}
		consider(1, lease.ok, lease.cur.Start)
		consider(2, dn.ok, dn.cur.Time)
		consider(3, fl.ok, fl.cur.Start)
		consider(4, ht.ok, ht.cur.Time)
		switch best {
		case 1:
			out.Lease(lease.cur)
			if err := advanceHead(&lease, dhcpR, "dhcp", opts); err != nil {
				return err
			}
		case 2:
			out.DNS(dn.cur)
			if err := advanceHead(&dn, dnsR, "dns", opts); err != nil {
				return err
			}
		case 3:
			out.Flow(fl.cur)
			if err := advanceHead(&fl, connR, "conn", opts); err != nil {
				return err
			}
		default:
			out.HTTPMeta(ht.cur)
			if err := advanceHead(&ht, httpR, "http", opts); err != nil {
				return err
			}
		}
	}
	out.Flush()
	return nil
}
