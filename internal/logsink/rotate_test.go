package logsink

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/universe"
)

func TestRotatingWriterMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("disk round trip")
	}
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.005

	// Monolithic reference.
	monoDir := t.TempDir()
	g1, _ := trace.New(cfg, reg)
	w1, err := NewWriter(monoDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.RunDays(w1, 3, 8); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	ref := &tally{t: t}
	if err := Replay(monoDir, ref); err != nil {
		t.Fatal(err)
	}

	// Rotated (gzip, to cover both options at once).
	rotDir := t.TempDir()
	g2, _ := trace.New(cfg, reg)
	w2, err := NewRotatingWriter(rotDir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RunDays(w2, 3, 8); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// One directory per generated day.
	entries, err := os.ReadDir(rotDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("day dirs = %d, want 5", len(entries))
	}
	if _, err := os.Stat(filepath.Join(rotDir, "2020-02-04", ConnFile+".gz")); err != nil {
		t.Fatalf("expected rotated gz conn log: %v", err)
	}

	got := &tally{t: t}
	if err := ReplayRotated(rotDir, got); err != nil {
		t.Fatal(err)
	}
	if got.flows != ref.flows || got.bytes != ref.bytes ||
		got.dns != ref.dns || got.http != ref.http || got.leases != ref.leases {
		t.Errorf("rotated replay %+v != monolithic %+v",
			[5]int64{int64(got.flows), got.bytes, int64(got.dns), int64(got.http), int64(got.leases)},
			[5]int64{int64(ref.flows), ref.bytes, int64(ref.dns), int64(ref.http), int64(ref.leases)})
	}
}

func TestReplayRotatedEmpty(t *testing.T) {
	if err := ReplayRotated(t.TempDir(), &tally{t: t}); err == nil {
		t.Error("empty root accepted")
	}
}
