package analysis

import "testing"

// The bad fixture reproduces the historical bug shapes: a pooled batch
// escaping via an exported return (named and direct), a Put with no reset,
// and a use after Put.
func TestPoolSafeFlagsProtocolViolations(t *testing.T) {
	diags := runFixture(t, fixtureDir("poolsafe", "bad"), "fixture/internal/core", PoolSafe)
	if len(diags) < 4 {
		t.Fatalf("expected four poolsafe findings, got %d: %v", len(diags), diags)
	}
}

func TestPoolSafeAcceptsRecyclingDiscipline(t *testing.T) {
	diags := runFixture(t, fixtureDir("poolsafe", "good"), "fixture/internal/core", PoolSafe)
	if len(diags) != 0 {
		t.Fatalf("poolsafe fired on disciplined recycling: %v", diags)
	}
}
