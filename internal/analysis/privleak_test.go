package analysis

import "testing"

func TestPrivLeakFlagsDownstreamLeaks(t *testing.T) {
	diags := runFixture(t, fixtureDir("privleak", "results"), "fixture/internal/experiments", PrivLeak)
	if len(diags) == 0 {
		t.Fatal("expected privleak findings on the leaking fixture")
	}
}

func TestPrivLeakIgnoresUpstreamPackages(t *testing.T) {
	diags := runFixture(t, fixtureDir("privleak", "upstream"), "fixture/internal/flow", PrivLeak)
	if len(diags) != 0 {
		t.Fatalf("privleak fired on a capture-side package: %v", diags)
	}
}

// The same leaking code must be silent when the package sits upstream of
// the privacy boundary — the package filter, not the code shape, decides.
func TestPrivLeakPackageFilter(t *testing.T) {
	diags, err := Run(loadFixture(t, fixtureDir("privleak", "results"), "fixture/internal/packetize"), []*Analyzer{PrivLeak})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("privleak fired outside its downstream set: %v", diags)
	}
}
