package analysis

import "testing"

func TestObsNilFlagsUnguardedMethods(t *testing.T) {
	diags := runFixture(t, fixtureDir("obsnil", "obs"), "fixture/internal/obs", ObsNil)
	if len(diags) == 0 {
		t.Fatal("expected obsnil findings on the fixture")
	}
}

func TestObsNilIgnoresOtherPackages(t *testing.T) {
	diags, err := Run(loadFixture(t, fixtureDir("obsnil", "obs"), "fixture/internal/stats"), []*Analyzer{ObsNil})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("obsnil fired outside internal/obs: %v", diags)
	}
}
