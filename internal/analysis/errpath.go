package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrPath is an errcheck scoped to where it matters: the ingest hot path.
// A silently dropped error in the flow assembler, the Zeek TSV parser,
// DNS wire decoding, DHCP log parsing, pcap reading, or the trace
// builder corrupts the dataset without failing the run — the worst
// possible failure mode for a measurement reproduction. Within those
// packages, calling an error-returning function as a bare statement is an
// error; `_ = f()` remains available as an explicit, greppable dismissal,
// and defers are exempt (teardown best-effort is conventional).
var ErrPath = &Analyzer{
	Name: "errpath",
	Doc: "error-returning calls on the ingest hot path must be checked or " +
		"explicitly discarded with `_ =`",
	Run: runErrPath,
}

// errPathTargets are the hot-path packages (suffix-matched).
var errPathTargets = []string{
	"internal/flow",
	"internal/zeeklog",
	"internal/dnswire",
	"internal/dhcp",
	"internal/pcap",
	"internal/trace",
}

func runErrPath(pass *Pass) error {
	if !pathMatches(pass.Path(), errPathTargets) {
		return nil
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if infallibleWriter(pass, call) {
				return true
			}
			if name, drops := dropsError(pass, call); drops {
				pass.Reportf(call.Pos(), "unchecked error from %s on the ingest hot path; "+
					"handle it or discard explicitly with `_ = ...`", name)
			}
			return true
		})
	}
	return nil
}

// infallibleWriter reports whether call writes to a sink documented to
// never return a non-nil error: *strings.Builder and *bytes.Buffer
// methods, or an fmt.Fprint* call whose destination is one of those.
func infallibleWriter(pass *Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isBuilderOrBuffer(pass.TypeOf(sel.X)) {
			return true
		}
		if fn, _ := pass.ObjectOf(sel.Sel).(*types.Func); fn != nil &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return isBuilderOrBuffer(pass.TypeOf(call.Args[0]))
		}
	}
	return false
}

func isBuilderOrBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s := t.String()
	return s == "strings.Builder" || s == "bytes.Buffer"
}

// dropsError reports whether call returns an error that the bare
// statement discards, plus a printable callee name.
func dropsError(pass *Pass, call *ast.CallExpr) (string, bool) {
	t := pass.TypeOf(call)
	if t == nil {
		return "", false
	}
	returnsErr := false
	switch tt := t.(type) {
	case *types.Tuple:
		for i := 0; i < tt.Len(); i++ {
			if isErrorType(tt.At(i).Type()) {
				returnsErr = true
			}
		}
	default:
		returnsErr = isErrorType(tt)
	}
	if !returnsErr {
		return "", false
	}
	return calleeName(call), true
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
