package analysis

import "testing"

func TestDeterminismFlagsResultsPath(t *testing.T) {
	diags := runFixture(t, fixtureDir("determinism", "results"), "fixture/internal/experiments", Determinism)
	if len(diags) == 0 {
		t.Fatal("expected determinism findings on the fixture")
	}
}

func TestDeterminismIgnoresCommandPackages(t *testing.T) {
	diags := runFixture(t, fixtureDir("determinism", "upstream"), "fixture/cmd/tool", Determinism)
	if len(diags) != 0 {
		t.Fatalf("determinism fired on a command package: %v", diags)
	}
}
