package analysis

import "testing"

// The mixed fixture is the historical bug shape: ring cursors accessed via
// sync/atomic on the push/pop path but read plainly by a gauge, plus a
// plain reset of a typed atomic. Every want line must fire.
func TestAtomicOnlyFlagsMixedAccess(t *testing.T) {
	diags := runFixture(t, fixtureDir("atomiconly", "mixed"), "fixture/internal/core", AtomicOnly)
	if len(diags) < 4 {
		t.Fatalf("expected the four mixed-access findings, got %d: %v", len(diags), diags)
	}
}

func TestAtomicOnlyAcceptsDisciplinedRing(t *testing.T) {
	diags := runFixture(t, fixtureDir("atomiconly", "clean"), "fixture/internal/core", AtomicOnly)
	if len(diags) != 0 {
		t.Fatalf("atomiconly fired on a disciplined ring: %v", diags)
	}
}

// The analyzer is module-wide — it must fire regardless of package path.
func TestAtomicOnlyHasNoPackageFilter(t *testing.T) {
	diags := runFixture(t, fixtureDir("atomiconly", "mixed"), "fixture/cmd/tool", AtomicOnly)
	if len(diags) == 0 {
		t.Fatal("atomiconly should apply outside internal/ too")
	}
}
