package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineOwner guards against goroutine leaks in the packages that will
// back the long-running service mode: every `go` statement there must have
// a provable shutdown edge, so a daemon embedding the pipeline can drain
// and exit instead of accumulating orphans. Accepted evidence, anywhere in
// the launched function's body (the function literal, or the same-package
// function/method the statement calls):
//
//   - a channel receive (`<-ch`, including select cases) or a range over a
//     channel — a close-signaled exit path;
//   - a (*sync.WaitGroup).Done call — an owner is counting this goroutine
//     down;
//   - a close(ch) call (typically deferred) — the goroutine signals its own
//     completion to an owner that waits on the channel.
//
// A goroutine whose body the analyzer cannot see (an external function
// value) carries no proof and is a finding; if its lifecycle is genuinely
// owned elsewhere, say how with an ignore directive:
//
//	//lintlock:ignore goroutineowner Serve returns when Close closes ln
var GoroutineOwner = &Analyzer{
	Name: "goroutineowner",
	Doc: "go statements in long-lived packages must have a provable shutdown " +
		"edge (WaitGroup.Done, channel receive/range, or close signal)",
	Run: runGoroutineOwner,
}

// goroutineOwnerTargets are the long-lived packages (suffix-matched): the
// concurrent ingest core, the observability layer (its progress reporter
// and debug server outlive single calls), and the log replay source the
// future lockdownd will tail.
var goroutineOwnerTargets = []string{
	"internal/core",
	"internal/obs",
	"internal/logsink",
}

func runGoroutineOwner(pass *Pass) error {
	if !pathMatches(pass.Path(), goroutineOwnerTargets) {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, where := goFuncBody(pass, goStmt, decls)
			if body == nil {
				pass.Reportf(goStmt.Pos(), "go statement launches %s, whose body this analyzer "+
					"cannot inspect; prove the shutdown edge locally (wrap it in a literal that "+
					"signals completion) or justify with an ignore directive", where)
				return true
			}
			if !hasShutdownEdge(pass, body) {
				pass.Reportf(goStmt.Pos(), "goroutine launched here has no provable shutdown edge "+
					"(no WaitGroup.Done, channel receive/range, or close signal); a long-running "+
					"service embedding this package would leak it")
			}
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes this package's function declarations by their
// *types.Func object, so `go p.worker()` can be resolved to a body.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.ObjectOf(fd.Name); obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// goFuncBody resolves the body of the function a go statement launches:
// the literal itself, or a same-package declaration. Returns a description
// of the callee when the body is unavailable.
func goFuncBody(pass *Pass, goStmt *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(goStmt.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		if fd, ok := decls[pass.ObjectOf(fun)]; ok {
			return fd.Body, ""
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if fd, ok := decls[pass.ObjectOf(fun.Sel)]; ok {
			return fd.Body, ""
		}
		return nil, fun.Sel.Name
	}
	return nil, "a computed function value"
}

// hasShutdownEdge scans body for any of the accepted evidence forms.
func hasShutdownEdge(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // <-ch anywhere, including select cases
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) || isCloseCall(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone reports whether call is (*sync.WaitGroup).Done.
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// isCloseCall reports whether call is the close builtin on a channel.
func isCloseCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "close"
}
