// Package analysis is a self-contained static-analysis suite that machine-
// checks the two invariants the reproduction's methodology rests on:
//
//   - privacy: raw device/client identifiers (MACs, IPs, DHCP leases) never
//     cross into analysis packages without passing through
//     internal/anonymize (the §3 IRB protocol);
//   - determinism: the results path stays reproducible — no wall-clock
//     reads, no process-seeded randomness, no map-iteration order leaking
//     into figure output.
//
// Plus two robustness checks: the nil-receiver guard on internal/obs
// handle types (the zero-alloc disabled path) and unchecked errors on the
// ingest hot path.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is built only on the standard
// library (go/ast, go/types, go/importer), so the module stays
// dependency-free. cmd/lintlock is the multichecker driver; `make lint`
// and the lint-custom CI job run it over ./... .
//
// # Suppressing a finding
//
// A diagnostic can be silenced with a justification comment on the same
// line or the line immediately above:
//
//	//lintlock:ignore determinism bench timestamps are wall-clock by design
//	stamp := time.Now()
//
// The first word after "ignore" is the analyzer name (comma-separated for
// several, or "all"); everything after it is the justification, which is
// mandatory — a bare ignore directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant it guards.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.ImportPath }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypeOf returns the type of e, or nil if not recorded.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(position, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in the order diagnostics are grouped:
// the methodology invariants (privacy, determinism), the robustness checks
// (obs nil guard, hot-path errors), then the concurrency-protocol family
// (atomic access discipline, pool recycling, goroutine ownership, seq-
// pinned join reads).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		PrivLeak, Determinism, ObsNil, ErrPath,
		AtomicOnly, PoolSafe, GoroutineOwner, SeqPin,
	}
}

// ByName resolves a comma-separated analyzer selection against the suite.
func ByName(selection string) ([]*Analyzer, error) {
	all := Analyzers()
	if selection == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, name := range strings.Split(selection, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names(all))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func names(as []*Analyzer) string {
	ns := make([]string, len(as))
	for i, a := range as {
		ns[i] = a.Name
	}
	return strings.Join(ns, ", ")
}

// Run applies the analyzers to every loaded package and returns the
// surviving diagnostics sorted by position. Malformed ignore directives
// are reported alongside analyzer findings.
func Run(res *Result, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range res.Packages {
		diags = append(diags, pkg.directiveIssues...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     res.Fset,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// pathMatches reports whether an import path equals one of the suffix
// patterns or ends in "/"+pattern. Suffix matching keeps the analyzer
// configs meaningful for both this module ("repro/internal/flow") and the
// test fixture modules ("badmod/internal/flow").
func pathMatches(path string, patterns []string) bool {
	for _, pat := range patterns {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}
