package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PrivLeak enforces the package-level privacy boundary from §3 of the
// paper: raw device/client identifiers (MAC addresses, IP addresses, DHCP
// leases) may flow through the capture-side packages, but the analysis
// side only ever sees pseudonyms. Concretely, in the downstream packages
// no exported function result, struct field, var, or interface method may
// mention a raw-identifier type. Parameters are allowed only in files
// that import internal/anonymize — consuming a raw identifier in order to
// pseudonymize it is the one sanctioned crossing.
var PrivLeak = &Analyzer{
	Name: "privleak",
	Doc: "raw identifier types (MAC/IP/lease) must not appear in exported API " +
		"of analysis-side packages unless the file routes them through internal/anonymize",
	Run: runPrivLeak,
}

// privLeakDownstream are the analysis-side packages (suffix-matched; see
// pathMatches) where raw identifiers are forbidden. Everything upstream of
// internal/anonymize — packet, flow, dhcp, pcap, the pipeline core — is
// exempt by omission: those packages exist to carry raw identifiers.
// internal/devclass is deliberately absent: the classifier consumes raw
// MACs/OUIs by design — like the original system it runs inside the
// privacy boundary, before pseudonymization.
var privLeakDownstream = []string{
	"internal/experiments",
	"internal/stats",
	"internal/viz",
	"internal/campus",
	"cmd/lockdown",
}

// rawIdentifierTypes names the types that carry pre-anonymization
// identifiers, package path suffix → type names. Containment is
// transitive: a struct embedding a raw type is itself raw.
var rawIdentifierTypes = map[string][]string{
	"net":             {"HardwareAddr", "IP"},
	"net/netip":       {"Addr", "Prefix", "AddrPort"},
	"internal/packet": {"MAC"},
	"internal/dhcp":   {"Lease"},
}

// anonymizePath is the sanctioned crossing point (suffix-matched).
const anonymizePath = "internal/anonymize"

func runPrivLeak(pass *Pass) error {
	if !pathMatches(pass.Path(), privLeakDownstream) {
		return nil
	}
	for _, file := range pass.Files() {
		paramsExempt := importsAnonymize(file)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDecl(pass, d, paramsExempt)
			case *ast.GenDecl:
				checkGenDecl(pass, d, paramsExempt)
			}
		}
	}
	return nil
}

func importsAnonymize(file *ast.File) bool {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if pathMatches(path, []string{anonymizePath}) {
			return true
		}
	}
	return false
}

func checkFuncDecl(pass *Pass, d *ast.FuncDecl, paramsExempt bool) {
	if !d.Name.IsExported() || !receiverExported(d) {
		return
	}
	obj, ok := pass.ObjectOf(d.Name).(*types.Func)
	if !ok {
		return
	}
	checkSignature(pass, d.Pos(), "func "+d.Name.Name, obj.Type().(*types.Signature), paramsExempt)
}

func checkGenDecl(pass *Pass, d *ast.GenDecl, paramsExempt bool) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			checkTypeSpec(pass, s, paramsExempt)
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				obj := pass.ObjectOf(name)
				if obj == nil {
					continue
				}
				if reason, leaky := rawType(obj.Type(), nil); leaky {
					pass.Reportf(name.Pos(), "exported var %s has raw identifier type %s; "+
						"pseudonymize via internal/anonymize before it reaches this package", name.Name, reason)
				}
			}
		}
	}
}

func checkTypeSpec(pass *Pass, s *ast.TypeSpec, paramsExempt bool) {
	obj := pass.ObjectOf(s.Name)
	if obj == nil {
		return
	}
	switch u := obj.Type().Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if reason, leaky := rawType(f.Type(), nil); leaky {
				pass.Reportf(f.Pos(), "exported field %s.%s has raw identifier type %s; "+
					"store an anonymize.DeviceID (or other pseudonym) instead", s.Name.Name, f.Name(), reason)
			}
		}
	case *types.Interface:
		for i := 0; i < u.NumExplicitMethods(); i++ {
			m := u.ExplicitMethod(i)
			if !m.Exported() {
				continue
			}
			checkSignature(pass, m.Pos(), "interface method "+s.Name.Name+"."+m.Name(),
				m.Type().(*types.Signature), paramsExempt)
		}
	default:
		if reason, leaky := rawType(obj.Type().Underlying(), nil); leaky {
			pass.Reportf(s.Name.Pos(), "exported type %s is defined over raw identifier type %s; "+
				"analysis-side types must be pseudonym-based", s.Name.Name, reason)
		}
	}
}

func checkSignature(pass *Pass, pos token.Pos, what string, sig *types.Signature, paramsExempt bool) {
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if reason, leaky := rawType(results.At(i).Type(), nil); leaky {
			pass.Reportf(pos, "%s returns raw identifier type %s; "+
				"return a pseudonym from internal/anonymize instead", what, reason)
		}
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if reason, leaky := rawType(params.At(i).Type(), nil); leaky && !paramsExempt {
			pass.Reportf(pos, "%s takes raw identifier type %s in a package past the privacy "+
				"boundary; only files importing internal/anonymize may consume raw identifiers", what, reason)
		}
	}
}

func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// rawType reports whether t is, or transitively contains, a raw
// identifier type, along with the offending type's name.
func rawType(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil {
		return "", false
	}
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true

	if named, ok := t.(interface {
		Obj() *types.TypeName
	}); ok { // *types.Named and *types.Alias both carry a TypeName
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			pkgPath := obj.Pkg().Path()
			for suffix, typeNames := range rawIdentifierTypes {
				if !pathMatches(pkgPath, []string{suffix}) {
					continue
				}
				for _, name := range typeNames {
					if obj.Name() == name {
						return pkgPath + "." + obj.Name(), true
					}
				}
			}
		}
	}

	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reason, leaky := rawType(u.Field(i).Type(), seen); leaky {
				return reason, true
			}
		}
	case *types.Slice:
		return rawType(u.Elem(), seen)
	case *types.Array:
		return rawType(u.Elem(), seen)
	case *types.Pointer:
		return rawType(u.Elem(), seen)
	case *types.Map:
		if reason, leaky := rawType(u.Key(), seen); leaky {
			return reason, true
		}
		return rawType(u.Elem(), seen)
	case *types.Chan:
		return rawType(u.Elem(), seen)
	}
	return "", false
}
