package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolSafe guards the batch-recycling contract around sync.Pool (the PR 3
// protocol: pooled 256-slot event batches recycled between the dispatcher
// and the shard workers). Three rules, module-wide:
//
//   - no escape through exported APIs: a value obtained from pool.Get()
//     must not be returned by an exported function or method — the caller
//     would hold a buffer the pool is free to hand to someone else the
//     moment it is Put back;
//   - no use after Put: once pool.Put(x) runs, x belongs to the pool (and
//     possibly to another goroutine already); any later use of x in the
//     same function is a finding;
//   - reset before Put: if the pooled struct carries per-use state (slice,
//     pointer, map, or interface fields, or a length/count-style int
//     field), some statement in the Put's block must clear it first — a
//     field assignment on x or a Reset-style method call — so a recycled
//     value can never leak one use's contents (or retained pointers) into
//     the next.
//
// The use-after-Put rule is lexical (statement position within the
// function), which is exactly right for the straight-line recycle sites
// the contract prescribes; code too clever for that reads as a finding and
// should be simplified or justified with an ignore directive.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc: "sync.Pool values must not escape exported APIs, must not be used " +
		"after Put, and must have per-use state reset before Put",
	Run: runPoolSafe,
}

func runPoolSafe(pass *Pass) error {
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd)
		}
	}
	return nil
}

// isPoolMethodCall reports whether call is pool.Get or pool.Put on a
// sync.Pool (or *sync.Pool) receiver, returning the method name.
func isPoolMethodCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Put" {
		return "", false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return "", false
	}
	return name, true
}

// poolGetSource returns the pool.Get call inside rhs, unwrapping one type
// assertion (`pool.Get().(*T)`), or nil.
func poolGetSource(pass *Pass, rhs ast.Expr) *ast.CallExpr {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if name, ok := isPoolMethodCall(pass, call); !ok || name != "Get" {
		return nil
	}
	return call
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	// pooledVars: objects assigned directly from pool.Get() in this
	// function (through at most one type assertion).
	pooledVars := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if poolGetSource(pass, rhs) == nil {
				continue
			}
			if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					pooledVars[obj] = true
				}
			}
		}
		return true
	})

	// Rule 1: pooled values must not be returned from exported functions —
	// neither a variable holding a Get result nor a Get call returned
	// directly.
	if fd.Name.IsExported() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // a closure's returns are not fd's API
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if poolGetSource(pass, res) != nil {
					pass.Reportf(ret.Pos(), "pool.Get result escapes through exported %s; "+
						"the pool may hand this buffer to another goroutine after Put — copy it "+
						"or keep the pooled type internal", fd.Name.Name)
					continue
				}
				for obj := range pooledVars {
					if mentionsObject(pass, res, obj) {
						pass.Reportf(ret.Pos(), "pooled value %q escapes through exported %s; "+
							"the pool may hand this buffer to another goroutine after Put — copy it "+
							"or keep the pooled type internal", obj.Name(), fd.Name.Name)
					}
				}
			}
			return true
		})
	}

	// Rules 2 and 3 hang off each Put site.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := isPoolMethodCall(pass, call); !ok || name != "Put" || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true // Put of a fresh composite/new(...) needs no reset
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		checkUseAfterPut(pass, fd.Body, call, obj)
		checkResetBeforePut(pass, fd.Body, call, obj)
		return true
	})
}

// checkUseAfterPut flags any use of obj lexically after the Put call in
// the same function (excluding the Put call itself and re-assignments that
// rebind the variable to a fresh value).
func checkUseAfterPut(pass *Pass, body *ast.BlockStmt, put *ast.CallExpr, obj types.Object) {
	rebound := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok && assign.Pos() > put.End() {
			for _, lhs := range assign.Lhs {
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.ObjectOf(lid) == obj {
					if rebound == token.Pos(-1) || assign.Pos() < rebound {
						rebound = assign.Pos()
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return true
		}
		if id.Pos() <= put.End() {
			return true
		}
		if rebound != token.Pos(-1) && id.Pos() >= rebound {
			return false // rebound to a fresh value; later uses are fine
		}
		pass.Reportf(id.Pos(), "%q is used after being returned to its pool with Put; "+
			"the pool (or another goroutine) owns it now", obj.Name())
		return false
	})
}

// checkResetBeforePut requires a per-use-state reset in the statements of
// the Put's enclosing block that precede it, when the pooled struct has
// state worth resetting.
func checkResetBeforePut(pass *Pass, body *ast.BlockStmt, put *ast.CallExpr, obj types.Object) {
	fields := resettableFields(obj.Type())
	if len(fields) == 0 {
		return
	}
	block := enclosingBlock(body, put.Pos())
	if block == nil {
		block = body
	}
	for _, stmt := range block.List {
		if stmt.End() > put.Pos() {
			break
		}
		if resetsState(pass, stmt, obj) {
			return
		}
	}
	pass.Reportf(put.Pos(), "Put returns %q to its pool without resetting per-use state "+
		"(fields: %s); a recycled value would leak the previous use's contents",
		obj.Name(), strings.Join(fields, ", "))
}

// resettableFields lists the fields of t (a struct, or pointer to one)
// that carry per-use state: slices, pointers, maps, interfaces, and
// length/count-style ints.
func resettableFields(t types.Type) []string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Type().Underlying().(type) {
		case *types.Slice, *types.Pointer, *types.Map, *types.Interface, *types.Chan:
			out = append(out, f.Name())
		case *types.Basic:
			if isCountName(f.Name()) {
				out = append(out, f.Name())
			}
		}
	}
	return out
}

// isCountName matches the int fields conventionally used as logical
// lengths of fixed arrays (the slice-len analogue).
func isCountName(name string) bool {
	switch strings.ToLower(name) {
	case "n", "len", "length", "count", "used", "size":
		return true
	}
	return false
}

// resetsState reports whether stmt writes a field of obj or calls a
// Reset-style method on it.
func resetsState(pass *Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				strings.Contains(strings.ToLower(sel.Sel.Name), "reset") {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// enclosingBlock returns the innermost *ast.BlockStmt containing pos.
func enclosingBlock(body *ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt = body
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		if b.Pos() <= pos && pos < b.End() {
			if best == nil || (b.Pos() >= best.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
		return true
	})
	return best
}
