package analysis

import (
	"strings"
	"testing"
)

func TestErrPathFlagsHotPath(t *testing.T) {
	diags := runFixture(t, fixtureDir("errpath", "hot"), "fixture/internal/zeeklog", ErrPath)
	if len(diags) == 0 {
		t.Fatal("expected errpath findings on the fixture")
	}
}

func TestErrPathIgnoresColdPackages(t *testing.T) {
	diags := runFixture(t, fixtureDir("errpath", "cold"), "fixture/internal/experiments", ErrPath)
	if len(diags) != 0 {
		t.Fatalf("errpath fired off the hot path: %v", diags)
	}
}

// A directive without a justification is itself reported.
func TestBareIgnoreDirectiveIsReported(t *testing.T) {
	res := loadFixture(t, fixtureDir("directives"), "fixture/internal/whatever")
	diags, err := Run(res, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the directive finding, got %d: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "lintlock" || !strings.Contains(diags[0].Message, "justification") {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}
