package analysis

import "testing"

func TestGoroutineOwnerFlagsLeaks(t *testing.T) {
	diags := runFixture(t, fixtureDir("goroutineowner", "bad"), "fixture/internal/core", GoroutineOwner)
	if len(diags) < 3 {
		t.Fatalf("expected three goroutineowner findings, got %d: %v", len(diags), diags)
	}
}

func TestGoroutineOwnerAcceptsOwnedWorkers(t *testing.T) {
	diags := runFixture(t, fixtureDir("goroutineowner", "good"), "fixture/internal/core", GoroutineOwner)
	if len(diags) != 0 {
		t.Fatalf("goroutineowner fired on owned workers: %v", diags)
	}
}

// Short-lived packages are out of scope: the same leaky fixture under a
// non-target path must stay silent.
func TestGoroutineOwnerIgnoresShortLivedPackages(t *testing.T) {
	res := loadFixture(t, fixtureDir("goroutineowner", "bad"), "fixture/internal/experiments")
	diags, err := Run(res, []*Analyzer{GoroutineOwner})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("goroutineowner fired outside the long-lived packages: %v", diags)
	}
}
