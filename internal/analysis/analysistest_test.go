package analysis

// A miniature analysistest: fixture packages live under
// testdata/src/<analyzer>/, each directory holding one package that is
// parsed and type-checked standalone (stdlib imports only) under a
// caller-chosen import path — the path is what routes it into or past an
// analyzer's package filter. Expected findings are `// want "substring"`
// comments on the offending line; every diagnostic must match a want on
// its line and every want must be matched.

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	wantRE   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// loadFixture type-checks the fixture directory as one package named by
// importPath.
func loadFixture(t *testing.T, dir, importPath string) *Result {
	return loadFixtureSeq(t, fixturePkg{dir, importPath})
}

// fixturePkg names one fixture directory and the import path to check it
// under.
type fixturePkg struct {
	dir, importPath string
}

// loadFixtureSeq type-checks several fixture directories in order, making
// each package importable by the later ones under its import path — the
// multi-package variant for analyzers whose invariant spans a provider and
// a consumer package (e.g. seqpin's store/shard split).
func loadFixtureSeq(t *testing.T, pkgs ...fixturePkg) *Result {
	t.Helper()
	loadMu.Lock()
	defer loadMu.Unlock()

	res := &Result{Fset: sharedFset}
	locals := make(map[string]*types.Package, len(pkgs))
	for _, fp := range pkgs {
		entries, err := os.ReadDir(fp.dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, e.Name())
			}
		}
		if len(files) == 0 {
			t.Fatalf("no fixture files in %s", fp.dir)
		}
		pkg, err := parsePackage(fp.importPath, "", fp.dir, files)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		if err := typecheck(pkg, locals); err != nil {
			t.Fatalf("type-checking fixture: %v", err)
		}
		locals[pkg.ImportPath] = pkg.Types
		res.Packages = append(res.Packages, pkg)
	}
	return res
}

// runFixture loads dir as importPath, runs the analyzers, and checks the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, dir, importPath string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	res := loadFixture(t, dir, importPath)
	diags, err := Run(res, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWants(t, diags, res.Packages[0])
	return diags
}

// runFixtureSeq is runFixture over a multi-package fixture; want comments
// are honored in every loaded package.
func runFixtureSeq(t *testing.T, analyzers []*Analyzer, pkgs ...fixturePkg) []Diagnostic {
	t.Helper()
	res := loadFixtureSeq(t, pkgs...)
	diags, err := Run(res, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	checkWants(t, diags, res.Packages...)
	return diags
}

// checkWants matches diagnostics against the fixtures' want comments.
func checkWants(t *testing.T, diags []Diagnostic, pkgs ...*Package) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	for _, file := range files {
		path := sharedFset.Position(file.Pos()).Filename
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				k := key{path, i + 1}
				wants[k] = append(wants[k], q[1])
			}
		}
	}

	matched := make(map[key][]bool)
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[k] {
			if !matched[k][i] && (strings.Contains(d.Message, w) || strings.Contains(d.Analyzer, w)) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
			}
		}
	}
}

func fixtureDir(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}
