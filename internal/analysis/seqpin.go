package analysis

import (
	"go/ast"
	"go/types"
)

// SeqPin guards the exactness contract of the shared epoch-snapshot join
// (PR 5): shard and dispatcher code may read the shared dhcp.LeaseStore /
// dnssim.LabelStore only through the sequence-pinned accessors
// (LookupAt/LabelAt-style methods taking a pin), never through an unpinned
// head view. An unpinned read compiles and returns plausible data, but it
// sees broadcasts that arrived *after* the event being processed — the
// result silently diverges from the single pipeline, which is the one bug
// class the whole seq-pinning protocol exists to rule out.
//
// Concretely: within internal/core, every method call on a LeaseStore or
// LabelStore value must either carry a uint64 pin/seq parameter (the
// pinned readers and the sequence-tagged writer) or be a named side-table
// gauge (RetainedBytes). Anything else — Addrs, a future unpinned Lookup,
// an iteration helper — is a finding.
var SeqPin = &Analyzer{
	Name: "seqpin",
	Doc: "shard/dispatch code must read the shared lease/label stores through " +
		"seq-pinned accessors (LookupAt/LabelAt), never the unpinned head",
	Run: runSeqPin,
}

// seqPinCallers are the packages holding shard/dispatch code (suffix-
// matched): the sharded pipeline, its join views, and the route workers.
var seqPinCallers = []string{
	"internal/core",
}

// seqPinStores names the guarded store types by (package suffix, type
// name).
var seqPinStores = map[string][]string{
	"internal/dhcp":   {"LeaseStore"},
	"internal/dnssim": {"LabelStore"},
}

// seqPinGauges are store methods exempt from pinning: read-only gauges
// over store metadata (not join state).
var seqPinGauges = map[string]bool{
	"RetainedBytes": true,
}

func runSeqPin(pass *Pass) error {
	if !pathMatches(pass.Path(), seqPinCallers) {
		return nil
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			storeName, method, ok := guardedStoreCall(pass, call)
			if !ok {
				return true
			}
			if seqPinGauges[method.Name()] || hasPinParam(method) {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s reads the shared %s without a sequence pin; shard/"+
				"dispatch code must use the seq-pinned accessors (LookupAt/LabelAt-style, "+
				"uint64 pin parameter) so lookups see exactly the single pipeline's join state",
				storeName, method.Name(), storeName)
			return true
		})
	}
	return nil
}

// guardedStoreCall reports whether call invokes a method on one of the
// guarded store types, returning the store type name and the method.
func guardedStoreCall(pass *Pass, call *ast.CallExpr) (string, *types.Func, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", nil, false
	}
	for pkgSuffix, typeNames := range seqPinStores {
		if !pathMatches(named.Obj().Pkg().Path(), []string{pkgSuffix}) {
			continue
		}
		if contains(typeNames, named.Obj().Name()) {
			return named.Obj().Name(), fn, true
		}
	}
	return "", nil, false
}

// hasPinParam reports whether the method signature carries an explicit
// uint64 sequence parameter named pin or seq — the structural signature of
// the pinned accessors and the sequence-tagged writer.
func hasPinParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if p.Name() != "pin" && p.Name() != "seq" {
			continue
		}
		if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
			return true
		}
	}
	return false
}
