package analysis

import "testing"

func seqpinFixture(callerPath string) []fixturePkg {
	return []fixturePkg{
		{fixtureDir("seqpin", "store"), "fixture/internal/dhcp"},
		{fixtureDir("seqpin", "shard"), callerPath},
	}
}

// Shard code reading the unpinned head (Lookup, Addrs) is the exactness
// bug; the pinned accessor, the sequence-tagged writer, and the byte gauge
// are sanctioned.
func TestSeqPinFlagsUnpinnedHeadReads(t *testing.T) {
	diags := runFixtureSeq(t, []*Analyzer{SeqPin}, seqpinFixture("fixture/internal/core")...)
	if len(diags) != 2 {
		t.Fatalf("expected exactly the two unpinned-read findings, got %d: %v", len(diags), diags)
	}
}

// The rule binds shard/dispatch code only: the same calls from a package
// outside internal/core are not shard reads.
func TestSeqPinIgnoresNonShardCallers(t *testing.T) {
	res := loadFixtureSeq(t, seqpinFixture("fixture/internal/toolbox")...)
	diags, err := Run(res, []*Analyzer{SeqPin})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("seqpin fired outside shard code: %v", diags)
	}
}
