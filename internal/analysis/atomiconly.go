package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicOnly guards the memory-ordering contract of the lock-free ingest
// transport: a struct field that participates in an atomic protocol must
// be accessed atomically *everywhere*. One plain load of a ring cursor (or
// one plain store to a snapshot publication pointer) compiles, passes
// single-threaded tests, and silently corrupts data only under real
// concurrency — the exact bug class the SPSC ring's padded cursors and the
// epoch stores' atomic.Pointer cells exist to prevent. Two field classes
// are covered, module-wide:
//
//   - function-style atomics: a field whose address is ever passed to a
//     sync/atomic function (atomic.LoadUint64(&s.f), atomic.AddInt64, ...)
//     is an atomic field; any other selector access to it — a plain read,
//     a plain write, or its address escaping to a non-atomic callee — is a
//     finding.
//   - typed atomics (atomic.Uint64, atomic.Pointer[T], atomic.Value, ...):
//     the method set already forces atomic access, but a direct assignment
//     to the field (`r.head = atomic.Uint64{}` — a plain, tear-prone reset
//     that compiles fine) bypasses it and is a finding.
//
// Struct-literal initialization is exempt: construction happens before the
// value is published to other goroutines, which is exactly when plain
// writes are legal.
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc: "a struct field accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere; typed atomic fields must never be plainly assigned",
	Run: runAtomicOnly,
}

func runAtomicOnly(pass *Pass) error {
	// Pass 1 over the whole package: collect the fields used with
	// function-style atomics, and remember which selector nodes are the
	// sanctioned atomic accesses themselves.
	atomicFields := make(map[types.Object]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if sel := addressedField(pass, arg); sel != nil {
					atomicFields[pass.ObjectOf(sel.Sel)] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: every other access to those fields must be atomic, and
	// typed-atomic fields must not be plainly assigned.
	for _, file := range pass.Files() {
		checkAtomicAccesses(pass, file, atomicFields, sanctioned)
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a package-level function of
// sync/atomic (LoadUint64, StoreInt64, AddInt32, SwapPointer, ...).
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField returns the selector sel when arg is `&x.sel` and sel
// resolves to a struct field, else nil.
func addressedField(pass *Pass, arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok || !isFieldSelector(pass, sel) {
		return nil
	}
	return sel
}

// isFieldSelector reports whether sel selects a struct field (not a method
// or package member).
func isFieldSelector(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// atomicTypedField reports whether sel selects a struct field whose type is
// declared in sync/atomic (atomic.Uint64, atomic.Pointer[T], atomic.Value).
func atomicTypedField(pass *Pass, sel *ast.SelectorExpr) bool {
	if !isFieldSelector(pass, sel) {
		return false
	}
	t := pass.TypeOf(sel)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkAtomicAccesses walks one file flagging mixed accesses.
func checkAtomicAccesses(pass *Pass, file *ast.File, atomicFields map[types.Object]bool, sanctioned map[*ast.SelectorExpr]bool) {
	// assignedSelectors maps each LHS selector of an assignment so writes
	// are distinguished from reads in the message.
	assigned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					assigned[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				assigned[sel] = true
			}
		}
		return true
	})

	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := selectedFieldObj(pass, sel); obj != nil && atomicFields[obj] && !sanctioned[sel] {
			verb := "plain read of"
			if assigned[sel] {
				verb = "plain write to"
			}
			pass.Reportf(sel.Pos(), "%s field %q, which is accessed via sync/atomic elsewhere in "+
				"this package; every access must be atomic (mixed access tears under concurrency)",
				verb, sel.Sel.Name)
			return true
		}
		if assigned[sel] && atomicTypedField(pass, sel) {
			pass.Reportf(sel.Pos(), "plain assignment to atomic-typed field %q bypasses its "+
				"atomic method set; use its Store method (plain resets tear under concurrent readers)",
				sel.Sel.Name)
		}
		return true
	})
}

// selectedFieldObj returns the field object sel selects, or nil.
func selectedFieldObj(pass *Pass, sel *ast.SelectorExpr) types.Object {
	if !isFieldSelector(pass, sel) {
		return nil
	}
	return pass.ObjectOf(sel.Sel)
}
