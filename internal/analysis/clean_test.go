package analysis

import "testing"

// TestRepositoryIsClean is the acceptance gate: the full suite over the
// whole module must report nothing. Any new wall-clock read, global rand
// draw, map-order leak, raw-identifier crossing, unguarded obs method,
// dropped hot-path error, mixed plain/atomic field access, pool-protocol
// breach, unowned goroutine, or unpinned store read fails this test (and
// `make lint` / the lint-custom CI job) until fixed or suppressed with a
// justification.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	res, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(res.Packages) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(res.Packages))
	}
	diags, err := Run(res, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("privleak,errpath")
	if err != nil || len(got) != 2 || got[0].Name != "privleak" || got[1].Name != "errpath" {
		t.Fatalf("ByName selection failed: %v %v", got, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown analyzer name did not error")
	}
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("default selection: %v %v", all, err)
	}
}
