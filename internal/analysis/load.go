package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, parsed, and type-checked local package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// suppress maps filename → line → analyzer names covered by an
	// ignore directive on that line.
	suppress        map[string]map[int][]string
	directiveIssues []Diagnostic
	// directives records every well-formed ignore directive for the
	// suppression audit (lintlock -suppressions).
	directives []Directive
}

// A Result is the output of one Load: a shared FileSet plus the packages
// in dependency order.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// sharedFset is the process-wide FileSet. Sharing one keeps positions
// coherent between locally loaded packages and the cached stdlib source
// importer (which is bound to the FileSet it was created with).
var sharedFset = token.NewFileSet()

var (
	loadMu  sync.Mutex // go/types and the source importer are not concurrency-safe
	stdOnce sync.Once
	stdImp  types.ImporterFrom
)

// stdImporter returns the cached source importer used for non-local
// (standard library) imports. Cgo is disabled so packages like net
// type-check from pure-Go source without invoking the cgo tool.
func stdImporter() types.ImporterFrom {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return stdImp
}

// comboImporter resolves local module packages from the in-progress load
// and everything else (the standard library) from source under GOROOT.
type comboImporter struct {
	local map[string]*types.Package
}

func (c *comboImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return stdImporter().ImportFrom(path, "", 0)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir) with
// `go list`, parses them, and type-checks them in dependency order.
func Load(dir string, patterns ...string) (*Result, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	order, err := topoOrder(listed, byPath)
	if err != nil {
		return nil, err
	}

	res := &Result{Fset: sharedFset}
	locals := make(map[string]*types.Package, len(order))
	for _, lp := range order {
		pkg, err := parsePackage(lp.ImportPath, lp.Name, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		if err := typecheck(pkg, locals); err != nil {
			return nil, err
		}
		locals[pkg.ImportPath] = pkg.Types
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		out = append(out, lp)
	}
	return out, nil
}

// topoOrder sorts packages so every package follows its in-set imports.
func topoOrder(listed []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	// Deterministic starting order keeps load behavior reproducible.
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(listed))
	var order []*listedPackage
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", lp.ImportPath)
		}
		state[lp.ImportPath] = visiting
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = done
		order = append(order, lp)
		return nil
	}
	for _, lp := range listed {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// parsePackage parses the named files and collects ignore directives.
func parsePackage(importPath, name, dir string, files []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Name:       name,
		Dir:        dir,
		suppress:   make(map[string]map[int][]string),
	}
	for _, f := range files {
		path := filepath.Join(dir, f)
		file, err := parser.ParseFile(sharedFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
		pkg.scanDirectives(file)
	}
	return pkg, nil
}

// typecheck resolves pkg against the already-checked local packages plus
// the standard library.
func typecheck(pkg *Package, locals map[string]*types.Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: &comboImporter{local: locals}}
	tpkg, err := conf.Check(pkg.ImportPath, sharedFset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %w", pkg.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lintlock:ignore"

// scanDirectives records every ignore directive in file. A directive
// covers its own line and the next one, so it works both inline and as a
// standalone comment above the flagged statement.
func (p *Package) scanDirectives(file *ast.File) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			pos := sharedFset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				p.directiveIssues = append(p.directiveIssues, Diagnostic{
					Pos:      pos,
					Analyzer: "lintlock",
					Message: "ignore directive needs an analyzer name and a justification: " +
						directivePrefix + " <analyzer> <why this is safe>",
				})
				continue
			}
			names := strings.Split(fields[0], ",")
			p.directives = append(p.directives, Directive{
				Pos:           pos,
				Analyzers:     names,
				Justification: strings.Join(fields[1:], " "),
			})
			byLine := p.suppress[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				p.suppress[pos.Filename] = byLine
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				byLine[line] = append(byLine[line], names...)
			}
		}
	}
}

// suppressed reports whether an ignore directive covers analyzer findings
// at pos.
func (p *Package) suppressed(pos token.Position, analyzer string) bool {
	for _, name := range p.suppress[pos.Filename][pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
