// Package core is clean under poolsafe: batches stay internal, state is
// reset before Put, and nothing touches a batch once the pool owns it.
package core

import "sync"

type batch struct {
	events []int
	owner  *int
	n      int
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

// take keeps the pooled value on an unexported path.
func take() *batch {
	b := batchPool.Get().(*batch)
	return b
}

// recycle resets per-use state and lets go.
func recycle(b *batch) {
	b.events = b.events[:0]
	b.owner = nil
	b.n = 0
	batchPool.Put(b)
}

// recycleFresh puts a brand-new value; nothing to reset.
func recycleFresh() {
	batchPool.Put(new(batch))
}

// Sum is an exported API that exposes only a copy of pooled state.
func Sum(vs []int) int {
	b := take()
	b.events = append(b.events, vs...)
	b.n = len(b.events)
	total := 0
	for _, v := range b.events {
		total += v
	}
	recycle(b)
	return total
}
