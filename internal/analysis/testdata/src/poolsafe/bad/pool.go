// Package core reproduces the historical bug shapes poolsafe exists to
// catch: a pooled batch escaping through an exported return value, a Put
// with no reset of per-use state, and a value touched after its Put.
package core

import "sync"

type batch struct {
	events []int
	owner  *int
	n      int
}

var batchPool = sync.Pool{New: func() any { return new(batch) }}

// Take leaks a pooled batch to the caller of an exported API.
func Take() *batch {
	b := batchPool.Get().(*batch)
	return b // want "escapes through exported Take"
}

// TakeDirect leaks the Get result without even naming it.
func TakeDirect() any {
	return batchPool.Get() // want "escapes through exported TakeDirect"
}

// recycleDirty returns a batch still carrying the previous use's events.
func recycleDirty(b *batch) {
	batchPool.Put(b) // want "without resetting per-use state"
}

// recycleThenRead keeps using the batch after the pool owns it again.
func recycleThenRead(b *batch) int {
	b.events = b.events[:0]
	b.owner = nil
	b.n = 0
	batchPool.Put(b)
	return b.n // want "used after being returned to its pool"
}
