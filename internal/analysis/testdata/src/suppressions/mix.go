// Package experiments exercises the suppression audit: one justified
// directive, one stale (unknown analyzer), one bare.
package experiments

import "time"

// Stamp carries a justified suppression for a real analyzer.
func Stamp() time.Time {
	//lintlock:ignore determinism fixture clock is part of the audit test
	return time.Now()
}

// Stale names an analyzer that is not in the suite.
func Stale() time.Time {
	//lintlock:ignore clockcheck this analyzer no longer exists
	return time.Now()
}

// Bare has a directive with no justification.
func Bare() time.Time {
	//lintlock:ignore determinism
	return time.Now()
}
