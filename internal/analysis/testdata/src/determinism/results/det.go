// Fixture for the determinism analyzer, loaded as a results-path package
// (import path suffix internal/experiments).
package results

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want "reads the wall clock"
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "reads the wall clock"
}

func Jitter() int {
	return rand.Intn(10) // want "process-seeded"
}

func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded constructors are fine
	return r.Intn(10)                   // methods on *rand.Rand are fine
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "random order"
		out = append(out, k)
	}
	return out
}

func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // sorted below: fine
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortIDs(ids []int) { sort.Ints(ids) }

func HelperSortedKeys(m map[int]int) []int {
	var out []int
	for k := range m { // sorted by a local helper: fine
		out = append(out, k)
	}
	sortIDs(out)
	return out
}

func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want "reaches output"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m { // keyed writes are order-insensitive: fine
		out[v] = k
	}
	return out
}

func Total(s []int) int {
	total := 0
	for _, v := range s { // slices iterate in order: fine
		total += v
	}
	return total
}

func Suppressed() time.Time {
	//lintlock:ignore determinism fixture: wall-clock timestamp allowed here
	return time.Now()
}

func CellKeys(m *sync.Map) []string {
	var out []string
	m.Range(func(k, _ any) bool { // want "random order"
		out = append(out, k.(string))
		return true
	})
	return out
}

func SortedCellKeys(m *sync.Map) []string {
	var out []string
	m.Range(func(k, _ any) bool { // sorted below: fine
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

func DumpCells(w io.Writer, m *sync.Map) {
	m.Range(func(k, v any) bool { // want "reaches output"
		fmt.Fprintf(w, "%v=%v\n", k, v)
		return true
	})
}

func CountCells(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { // counting is order-insensitive: fine
		n++
		return true
	})
	return n
}
