// Fixture proving determinism stays silent outside the results path:
// command packages measure real wall-clock time by design.
package upstream

import "time"

// Uptime is legitimate progress instrumentation.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp is a legitimate report timestamp.
func Stamp() time.Time { return time.Now() }
