// Fixture proving errpath stays silent off the hot path: the same
// unchecked call that fires under internal/zeeklog is ignored here.
package cold

import "errors"

func mustFail() error { return errors.New("boom") }

// Emit drops an error, but this package is not on the ingest hot path.
func Emit() {
	mustFail()
}
