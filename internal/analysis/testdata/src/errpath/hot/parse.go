// Fixture for the errpath analyzer, loaded with import path suffix
// internal/zeeklog (an ingest hot-path package).
package hot

import (
	"fmt"
	"strconv"
	"strings"
)

type scanner struct{ lines []string }

func (s *scanner) push(line string) error {
	s.lines = append(s.lines, line)
	if line == "" {
		return fmt.Errorf("empty line")
	}
	return nil
}

func Parse(lines []string) (total int, err error) {
	s := &scanner{}
	for _, l := range lines {
		s.push(l) // want "unchecked error"
		n, err := strconv.Atoi(l)
		if err != nil {
			return 0, err
		}
		total += n
	}
	if err := s.push("end"); err != nil { // checked: fine
		return 0, err
	}
	_ = s.push("explicit")   // explicit discard: fine
	defer s.push("teardown") // defers are teardown best-effort: fine

	var sb strings.Builder
	sb.WriteString("x")       // strings.Builder never errors: fine
	fmt.Fprintf(&sb, "%d", 1) // Fprintf to a Builder never errors: fine

	//lintlock:ignore errpath fixture demonstrating a justified suppression
	s.push("suppressed")
	return total, nil
}
