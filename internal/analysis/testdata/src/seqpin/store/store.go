// Package dhcp is a miniature of the real epoch-versioned LeaseStore: a
// pinned accessor, a sequence-tagged writer, a gauge — and an unpinned
// head view, which is exactly what shard code must never call.
package dhcp

type LeaseStore struct {
	macs map[string]string
	seqs map[string]uint64
}

// LookupAt resolves addr as of sequence pin (the sanctioned reader).
func (s *LeaseStore) LookupAt(addr string, pin uint64) (string, bool) {
	if s.seqs[addr] > pin {
		return "", false
	}
	mac, ok := s.macs[addr]
	return mac, ok
}

// Lookup is the unpinned head view: it sees broadcasts that arrived after
// the event being processed.
func (s *LeaseStore) Lookup(addr string) (string, bool) {
	mac, ok := s.macs[addr]
	return mac, ok
}

// Observe folds one binding in under sequence seq (single writer).
func (s *LeaseStore) Observe(addr, mac string, seq uint64) {
	s.macs[addr] = mac
	s.seqs[addr] = seq
}

// RetainedBytes is a metadata gauge, exempt from pinning.
func (s *LeaseStore) RetainedBytes() int64 { return int64(len(s.macs)) }

// Addrs iterates the head state — also unpinned.
func (s *LeaseStore) Addrs() []string {
	out := make([]string, 0, len(s.macs))
	for a := range s.macs {
		out = append(out, a)
	}
	return out
}
