// Package core reproduces the bug shape seqpin exists to catch: shard
// code resolving a join against the store head instead of the seq-pinned
// accessor — plausible data, wrong epoch.
package core

import "fixture/internal/dhcp"

type shard struct {
	leases *dhcp.LeaseStore
	pin    uint64
}

// resolvePinned is the sanctioned path.
func (s *shard) resolvePinned(addr string) (string, bool) {
	return s.leases.LookupAt(addr, s.pin)
}

// observe is the dispatcher writer path (sequence-tagged).
func (s *shard) observe(addr, mac string, seq uint64) {
	s.leases.Observe(addr, mac, seq)
}

// gauge reads store metadata, not join state.
func (s *shard) gauge() int64 {
	return s.leases.RetainedBytes()
}

// resolveHead reads the unpinned head — the exactness bug.
func (s *shard) resolveHead(addr string) (string, bool) {
	return s.leases.Lookup(addr) // want "without a sequence pin"
}

// snapshotAddrs iterates head state from shard code.
func (s *shard) snapshotAddrs() []string {
	return s.leases.Addrs() // want "without a sequence pin"
}
