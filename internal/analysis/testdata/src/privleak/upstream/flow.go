// Fixture proving privleak stays silent on capture-side packages: the
// same shapes that are violations under internal/experiments are fine
// under internal/flow, which exists to carry raw identifiers.
package upstream

import "net/netip"

// Flow is a raw five-tuple fragment.
type Flow struct {
	Src netip.Addr
	Dst netip.Addr
}

// Describe returns a raw address; allowed upstream.
func Describe(f Flow) netip.Addr { return f.Src }
