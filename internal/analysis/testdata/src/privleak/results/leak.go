// Fixture for the privleak analyzer, loaded as an analysis-side package
// (import path suffix internal/experiments). No file here imports
// internal/anonymize, so raw identifiers are forbidden in every exported
// position.
package results

import (
	"net"
	"net/netip"
)

// Report is a figure-output record.
type Report struct {
	Device netip.Addr // want "raw identifier type"
	ID     uint64
}

type wrapped struct {
	a netip.Addr
}

func (w wrapped) addr() netip.Addr { return w.a } // unexported: fine

// Wrapped leaks transitively through a slice of an unexported struct.
type Wrapped struct {
	W []wrapped // want "raw identifier type"
}

// Lookup is an index keyed by a raw identifier.
type Lookup map[netip.Addr]uint64 // want "raw identifier type"

func Leak() net.HardwareAddr { // want "returns raw identifier type"
	return nil
}

func Consume(a netip.Addr) uint64 { // want "takes raw identifier type"
	_ = a
	return 0
}

//lintlock:ignore privleak fixture demonstrating a justified suppression
func Suppressed(a netip.Addr) uint64 {
	_ = a
	return 0
}

func internalOnly(a netip.Addr) uint64 { // unexported: fine
	_ = a
	return 0
}

// Sink mixes a leaking and a clean method.
type Sink interface {
	Put(m net.HardwareAddr) // want "takes raw identifier type"
	Ok(id uint64)
}

// DefaultGateway is a package-level leak.
var DefaultGateway = netip.MustParseAddr("10.0.0.1") // want "exported var"

// Clean shows the intended shape: pseudonym-based records.
type Clean struct {
	Device uint64
	Bytes  int64
}
