// Fixture for the obsnil analyzer, loaded with import path suffix
// internal/obs so the Metrics/Progress nil-receiver contract applies.
package obs

// Metrics mirrors the obs handle contract: a possibly-nil pointer every
// exported method must tolerate.
type Metrics struct {
	count int64
	label string
}

func (m *Metrics) Add(n int64) { // early-return guard: fine
	if m == nil {
		return
	}
	m.count += n
}

func (m *Metrics) SetLabel(l string) { // wrap guard: fine
	if m != nil {
		m.label = l
	}
}

func (m *Metrics) AddPositive(n int64) { // compound guard: fine
	if m == nil || n <= 0 {
		return
	}
	m.count += n
}

func (m *Metrics) Count() int64 { // want "nil guard"
	return m.count
}

func (m *Metrics) Snapshot() (int64, string) { // decl before guard: fine
	var zero int64
	if m == nil {
		return zero, ""
	}
	return m.count, m.label
}

func (m *Metrics) Reset() { // want "nil guard"
	if m != nil {
		m.count = 0
	}
	m.label = "" // receiver escapes the wrap guard
}

func (m *Metrics) Kind() string { return "metrics" } // receiver unused: fine

func (m *Metrics) bump() { m.count++ } // unexported: callers guard first

// Progress is the second guarded handle type.
type Progress struct{ done int64 }

func (p *Progress) SetDone(n int64) { // want "nil guard"
	p.done = n
}

// Other is not a guarded handle type; no guard required.
type Other struct{ x int }

func (o *Other) Touch() { o.x++ }
