// Fixture with a malformed suppression: the directive names an analyzer
// but carries no justification, which is itself a finding.
package directives

import "errors"

func mustFail() error { return errors.New("boom") }

//lintlock:ignore errpath
func Bad() {
	mustFail()
}
