// Package core is clean under atomiconly: every access to an atomic field
// is atomic, typed atomics go through their method set, and construction
// uses a composite literal (legal — pre-publication).
package core

import "sync/atomic"

type ring struct {
	head   uint64
	tail   uint64
	closed atomic.Uint32
	slots  []int
}

func newRing(n int) *ring {
	return &ring{slots: make([]int, n)}
}

func (r *ring) push(v int) {
	t := atomic.LoadUint64(&r.tail)
	r.slots[t%uint64(len(r.slots))] = v
	atomic.StoreUint64(&r.tail, t+1)
}

func (r *ring) pop() (int, bool) {
	h := atomic.LoadUint64(&r.head)
	if atomic.LoadUint64(&r.tail) == h {
		return 0, false
	}
	v := r.slots[h%uint64(len(r.slots))]
	atomic.StoreUint64(&r.head, h+1)
	return v, true
}

func (r *ring) len() int {
	return int(atomic.LoadUint64(&r.tail) - atomic.LoadUint64(&r.head))
}

func (r *ring) close()         { r.closed.Store(1) }
func (r *ring) isClosed() bool { return r.closed.Load() == 1 }
