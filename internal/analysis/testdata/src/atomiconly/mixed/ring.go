// Package core reproduces the historical bug shape atomiconly exists to
// catch: an SPSC ring whose cursors are atomic on the push/pop path but
// read plainly by a gauge — a torn read under real concurrency — plus a
// plain reset of a typed atomic.
package core

import "sync/atomic"

type ring struct {
	head   uint64
	tail   uint64
	closed atomic.Uint32
	slots  []int
}

func (r *ring) push(v int) {
	t := atomic.LoadUint64(&r.tail)
	r.slots[t%uint64(len(r.slots))] = v
	atomic.StoreUint64(&r.tail, t+1)
}

func (r *ring) pop() (int, bool) {
	h := atomic.LoadUint64(&r.head)
	if atomic.LoadUint64(&r.tail) == h {
		return 0, false
	}
	v := r.slots[h%uint64(len(r.slots))]
	atomic.StoreUint64(&r.head, h+1)
	return v, true
}

// len mixes in the plain reads: both cursors are atomic everywhere else.
func (r *ring) len() int {
	return int(r.tail - r.head) // want "plain read of" "plain read of"
}

// reset mixes in a plain write and a plain assignment to a typed atomic.
func (r *ring) reset() {
	r.tail = 0                 // want "plain write to"
	r.closed = atomic.Uint32{} // want "plain assignment to atomic-typed field"
}
