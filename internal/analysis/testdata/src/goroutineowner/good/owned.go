// Package core is clean under goroutineowner: every goroutine carries a
// provable shutdown edge — a WaitGroup count-down, a close-signaled
// channel loop, or a completion close the owner waits on.
package core

import "sync"

func workers(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // WaitGroup edge
		defer wg.Done()
		for j := range jobs {
			consume(j)
		}
	}()

	done := make(chan struct{})
	go func() { // completion-close edge
		defer close(done)
		consume(0)
	}()

	stop := make(chan struct{})
	go watcher(stop) // declared worker with a receive edge

	close(stop)
	wg.Wait()
	<-done
}

func watcher(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		}
	}
}

func consume(int) {}
