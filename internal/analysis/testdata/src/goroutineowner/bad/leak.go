// Package core reproduces the bug shape goroutineowner exists to catch in
// the long-lived packages: workers launched with no shutdown edge, which a
// daemon embedding the package would leak on every restart of the
// pipeline.
package core

// leakLoop spins forever with no stop signal.
func leakLoop() {
	go func() { // want "no provable shutdown edge"
		for {
			work()
		}
	}()
}

// leakDecl launches a same-package function that also has no edge.
func leakDecl() {
	go pump() // want "no provable shutdown edge"
}

func pump() {
	for {
		work()
	}
}

// leakOpaque launches a function value the analyzer cannot see into.
func leakOpaque(f func()) {
	go f() // want "cannot inspect"
}

func work() {}
