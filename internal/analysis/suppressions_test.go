package analysis

import (
	"strings"
	"testing"
)

// The audit fixture carries one justified directive for a real analyzer,
// one naming an analyzer that does not exist (stale), and one bare
// directive (no justification).
func TestAuditSuppressions(t *testing.T) {
	res := loadFixture(t, fixtureDir("suppressions"), "fixture/internal/experiments")
	dirs, issues := AuditSuppressions(res, Analyzers())

	if len(dirs) != 2 {
		t.Fatalf("want the two well-formed directives listed, got %d: %v", len(dirs), dirs)
	}
	if !strings.Contains(dirs[0].String(), "determinism") ||
		!strings.Contains(dirs[0].Justification, "fixture clock") {
		t.Errorf("directive audit line malformed: %s", dirs[0])
	}

	var stale, bare int
	for _, d := range issues {
		switch {
		case strings.Contains(d.Message, "stale ignore directive"):
			stale++
		case strings.Contains(d.Message, "justification"):
			bare++
		}
	}
	if stale != 1 || bare != 1 {
		t.Fatalf("want 1 stale + 1 bare issue, got stale=%d bare=%d: %v", stale, bare, issues)
	}
}

// A clean module audit returns the repository's real directives with no
// issues — this is what `lintlock -suppressions` gates in CI.
func TestRepositorySuppressionsAreJustified(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	res, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	dirs, issues := AuditSuppressions(res, Analyzers())
	for _, d := range issues {
		t.Errorf("%s", d)
	}
	for _, d := range dirs {
		if strings.TrimSpace(d.Justification) == "" {
			t.Errorf("%s: directive with empty justification", d.Pos)
		}
	}
}
