package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the reproducibility invariant: regenerating the
// dataset and figures must be byte-identical run to run (the obs-on/off
// equivalence test pins this for one configuration; the analyzer prevents
// new nondeterminism sources from entering the results path at all). In
// the generator, experiment, and figure-output packages it flags:
//
//   - time.Now / time.Since — wall-clock reads (simulated time comes from
//     the campus calendar, never the host clock);
//   - package-level math/rand functions — process-seeded randomness (all
//     randomness must flow from an explicitly seeded *rand.Rand);
//   - ranging over a map where the loop body appends to an outer slice
//     that is never sorted afterwards, or calls a write/print/encode sink —
//     map iteration order is randomized per process, so either pattern
//     makes output ordering nondeterministic.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "results-path packages must not read the wall clock, use process-seeded " +
		"randomness, or let map iteration order reach output",
	Run: runDeterminism,
}

// determinismTargets are the packages whose code feeds the figures/CSVs
// (suffix-matched). cmd/* are deliberately excluded: progress reporting
// and bench reports measure real wall-clock time by design.
var determinismTargets = []string{
	"internal/trace",
	"internal/experiments",
	"internal/viz",
	"internal/stats",
	"internal/dnssim",
	"internal/universe",
	"internal/campus",
	"internal/appsig",
	"internal/devclass",
}

// seededConstructors are the package-level math/rand functions that
// construct explicitly seeded generators rather than using the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sinkPrefixes mark calls that emit ordered output.
var sinkPrefixes = []string{"Write", "Print", "Fprint", "Encode", "Render"}

func runDeterminism(pass *Pass) error {
	if !pathMatches(pass.Path(), determinismTargets) {
		return nil
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDeterminism(pass, fd.Body)
		}
	}
	return nil
}

func checkFuncDeterminism(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n)
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, body, n)
				}
			}
		}
		return true
	})
}

// checkNondetCall flags wall-clock reads and global math/rand use.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a results-path package; "+
				"derive timestamps from the campus calendar so regeneration stays byte-identical", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s is process-seeded; draw from an explicitly "+
				"seeded *rand.Rand so traces regenerate identically", fn.Pkg().Name(), fn.Name())
		}
	}
}

// calledFunc resolves the *types.Func a call invokes, or nil.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// checkMapRange flags a map-range loop whose body makes iteration order
// observable: a direct output sink, or an append to an outer slice that
// is never sorted later in the same function.
func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := sinkName(n); name != "" {
				pass.Reportf(rng.Pos(), "map iteration order reaches output: %s is called inside "+
					"this range over a map; iterate sorted keys instead", name)
				return false
			}
		case *ast.AssignStmt:
			if obj := appendTarget(pass, n); obj != nil && declaredOutside(obj, rng) &&
				!sortedAfter(pass, funcBody, rng, obj) {
				pass.Reportf(rng.Pos(), "appending to %q while ranging over a map leaves it in "+
					"random order; sort it before use (or iterate sorted keys)", obj.Name())
				return false
			}
		}
		return true
	})
}

// sinkName returns the callee name if the call writes ordered output.
func sinkName(call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return ""
	}
	for _, prefix := range sinkPrefixes {
		if strings.HasPrefix(name, prefix) {
			return name
		}
	}
	return ""
}

// appendTarget returns the object of x in `x = append(x, ...)`, or nil.
func appendTarget(pass *Pass, assign *ast.AssignStmt) types.Object {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil
	} else if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(lhs)
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after the range loop, which restores a deterministic order.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		switch {
		case (pkg == "sort" || pkg == "slices") &&
			(strings.HasPrefix(fn.Name(), "Sort") || isSortHelper(fn.Name())):
			// stdlib sort
		case strings.Contains(strings.ToLower(fn.Name()), "sort"):
			// local helper wrapping a sort (e.g. sortOUIs)
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortHelper(name string) bool {
	switch name {
	case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
		return true
	}
	return false
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
