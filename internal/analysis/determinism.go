package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the reproducibility invariant: regenerating the
// dataset and figures must be byte-identical run to run (the obs-on/off
// equivalence test pins this for one configuration; the analyzer prevents
// new nondeterminism sources from entering the results path at all). In
// the generator, experiment, and figure-output packages it flags:
//
//   - time.Now / time.Since — wall-clock reads (simulated time comes from
//     the campus calendar, never the host clock);
//   - package-level math/rand functions — process-seeded randomness (all
//     randomness must flow from an explicitly seeded *rand.Rand);
//   - ranging over a map where the loop body appends to an outer slice
//     that is never sorted afterwards, or calls a write/print/encode sink —
//     map iteration order is randomized per process, so either pattern
//     makes output ordering nondeterministic;
//   - the same two patterns inside a (*sync.Map).Range callback — the
//     concurrent join stores iterate cells this way when sealing epoch
//     snapshots, and sync.Map makes the same no-order guarantee plain maps
//     do, so a seal path feeding an unsorted slice into output would leak
//     iteration order into the results.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "results-path packages must not read the wall clock, use process-seeded " +
		"randomness, or let map iteration order reach output",
	Run: runDeterminism,
}

// determinismTargets are the packages whose code feeds the figures/CSVs
// (suffix-matched). cmd/* are deliberately excluded: progress reporting
// and bench reports measure real wall-clock time by design.
var determinismTargets = []string{
	"internal/trace",
	"internal/experiments",
	"internal/viz",
	"internal/stats",
	"internal/dnssim",
	"internal/dhcp",
	"internal/universe",
	"internal/campus",
	"internal/appsig",
	"internal/devclass",
}

// seededConstructors are the package-level math/rand functions that
// construct explicitly seeded generators rather than using the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sinkPrefixes mark calls that emit ordered output.
var sinkPrefixes = []string{"Write", "Print", "Fprint", "Encode", "Render"}

func runDeterminism(pass *Pass) error {
	if !pathMatches(pass.Path(), determinismTargets) {
		return nil
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncDeterminism(pass, fd.Body)
		}
	}
	return nil
}

func checkFuncDeterminism(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n)
			if lit := syncMapRangeCallback(pass, n); lit != nil {
				checkUnorderedIter(pass, body, n, lit.Body, "sync.Map.Range callback")
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkUnorderedIter(pass, body, n, n.Body, "range over a map")
				}
			}
		}
		return true
	})
}

// syncMapRangeCallback returns the function literal passed to a
// (*sync.Map).Range call, or nil when the call is anything else.
func syncMapRangeCallback(pass *Pass, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" || len(call.Args) != 1 {
		return nil
	}
	fn, _ := pass.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	lit, _ := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	return lit
}

// checkNondetCall flags wall-clock reads and global math/rand use.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a results-path package; "+
				"derive timestamps from the campus calendar so regeneration stays byte-identical", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s is process-seeded; draw from an explicitly "+
				"seeded *rand.Rand so traces regenerate identically", fn.Pkg().Name(), fn.Name())
		}
	}
}

// calledFunc resolves the *types.Func a call invokes, or nil.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// checkUnorderedIter flags an unordered iteration (a range over a map, or
// a sync.Map.Range callback) whose body makes iteration order observable:
// a direct output sink, or an append to an outer slice that is never
// sorted later in the same function. span is the whole iteration
// construct (the RangeStmt or the Range call); iterBody is the per-entry
// body inspected for escapes.
func checkUnorderedIter(pass *Pass, funcBody *ast.BlockStmt, span ast.Node, iterBody ast.Node, what string) {
	ast.Inspect(iterBody, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := sinkName(n); name != "" {
				pass.Reportf(span.Pos(), "map iteration order reaches output: %s is called inside "+
					"this %s; iterate sorted keys instead", name, what)
				return false
			}
		case *ast.AssignStmt:
			if obj := appendTarget(pass, n); obj != nil && declaredOutside(obj, span) &&
				!sortedAfter(pass, funcBody, span, obj) {
				pass.Reportf(span.Pos(), "appending to %q inside this %s leaves it in "+
					"random order; sort it before use (or iterate sorted keys)", obj.Name(), what)
				return false
			}
		}
		return true
	})
}

// sinkName returns the callee name if the call writes ordered output.
func sinkName(call *ast.CallExpr) string {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return ""
	}
	for _, prefix := range sinkPrefixes {
		if strings.HasPrefix(name, prefix) {
			return name
		}
	}
	return ""
}

// appendTarget returns the object of x in `x = append(x, ...)`, or nil.
func appendTarget(pass *Pass, assign *ast.AssignStmt) types.Object {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil
	} else if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(lhs)
}

func declaredOutside(obj types.Object, span ast.Node) bool {
	return obj.Pos() < span.Pos() || obj.Pos() > span.End()
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after the iteration construct, which restores a deterministic
// order.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, span ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < span.End() {
			return true
		}
		fn := calledFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		switch {
		case (pkg == "sort" || pkg == "slices") &&
			(strings.HasPrefix(fn.Name(), "Sort") || isSortHelper(fn.Name())):
			// stdlib sort
		case strings.Contains(strings.ToLower(fn.Name()), "sort"):
			// local helper wrapping a sort (e.g. sortOUIs)
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortHelper(name string) bool {
	switch name {
	case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable":
		return true
	}
	return false
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
