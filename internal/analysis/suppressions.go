package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A Directive is one well-formed //lintlock:ignore comment: where it is,
// which analyzers it silences, and why. The suppression audit (lintlock
// -suppressions) lists them all and rejects stale ones, so every silenced
// finding in the repository stays enumerable and justified.
type Directive struct {
	Pos           token.Position
	Analyzers     []string
	Justification string
}

// String renders the audit line: file:line: analyzer(s): justification.
func (d Directive) String() string {
	return fmt.Sprintf("%s:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, strings.Join(d.Analyzers, ","), d.Justification)
}

// AuditSuppressions collects every ignore directive in the loaded packages
// and validates it: a directive must carry a justification (bare ones are
// already Diagnostics from the load) and must name only known analyzers
// (or "all") — a directive naming an analyzer that no longer exists is
// stale: it silences nothing and hides a stale claim about the code.
// Directives are returned sorted by position; issues carry the "lintlock"
// analyzer name like other framework diagnostics.
func AuditSuppressions(res *Result, analyzers []*Analyzer) ([]Directive, []Diagnostic) {
	known := make(map[string]bool, len(analyzers)+1)
	known["all"] = true
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []Directive
	var issues []Diagnostic
	for _, pkg := range res.Packages {
		issues = append(issues, pkg.directiveIssues...)
		for _, d := range pkg.directives {
			dirs = append(dirs, d)
			for _, name := range d.Analyzers {
				if !known[name] {
					issues = append(issues, Diagnostic{
						Pos:      d.Pos,
						Analyzer: "lintlock",
						Message: fmt.Sprintf("stale ignore directive: %q is not an analyzer "+
							"in the suite; it suppresses nothing — delete it or fix the name", name),
					})
				}
			}
		}
	}
	sort.Slice(dirs, func(i, j int) bool {
		a, b := dirs[i].Pos, dirs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i].Pos, issues[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return dirs, issues
}
