package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsNil guards the zero-alloc disabled path of the observability layer:
// the pipeline holds possibly-nil *obs.Metrics / *obs.Progress handles,
// and every exported pointer-receiver method must tolerate a nil receiver
// (doc contract of package obs; verified dynamically by
// TestNilMetricsZeroAlloc, enforced structurally here). A method may not
// touch its receiver before either an early-return nil guard
// (`if m == nil { return ... }`) or a wrapping non-nil guard
// (`if m != nil { ... }`).
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc: "exported pointer-receiver methods on obs handle types must guard " +
		"against a nil receiver before using it (zero-alloc disabled path)",
	Run: runObsNil,
}

// obsNilGuarded maps package path suffix → receiver type names whose
// methods carry the nil-receiver contract.
var obsNilGuarded = map[string][]string{
	"internal/obs": {"Metrics", "Progress"},
}

func runObsNil(pass *Pass) error {
	var guarded []string
	for suffix, typeNames := range obsNilGuarded {
		if pathMatches(pass.Path(), []string{suffix}) {
			guarded = append(guarded, typeNames...)
		}
	}
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvType, recvIdent := receiverInfo(fd)
			if recvType == "" || !contains(guarded, recvType) {
				continue
			}
			if recvIdent == nil {
				continue // unnamed receiver can't be dereferenced
			}
			obj := pass.ObjectOf(recvIdent)
			if obj == nil {
				continue
			}
			if !nilGuarded(pass, fd.Body, obj) {
				pass.Reportf(fd.Pos(), "method (*%s).%s uses its receiver before a nil guard; "+
					"start with `if %s == nil { return ... }` so the disabled-observability path stays safe",
					recvType, fd.Name.Name, recvIdent.Name)
			}
		}
	}
	return nil
}

// receiverInfo returns the pointer receiver's base type name and the
// receiver identifier ("" / nil when not a pointer receiver).
func receiverInfo(fd *ast.FuncDecl) (string, *ast.Ident) {
	if len(fd.Recv.List) != 1 {
		return "", nil
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", nil // value receivers copy; nil cannot reach them
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok {
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return "", nil
	}
	if len(field.Names) == 0 {
		return id.Name, nil
	}
	return id.Name, field.Names[0]
}

// nilGuarded walks the method body in order: statements may not use the
// receiver until a guard is seen. An equality guard (`if m == nil` first
// in an || chain, body ending in return) protects the whole remainder; an
// inequality guard (`if m != nil` first in an && chain) protects only its
// own block, so scanning continues after it.
func nilGuarded(pass *Pass, body *ast.BlockStmt, recv types.Object) bool {
	for _, stmt := range body.List {
		switch guardKind(pass, stmt, recv) {
		case guardReturn:
			return true
		case guardWrap:
			continue
		}
		if usesObject(pass, stmt, recv) {
			return false
		}
	}
	return true
}

type guard int

const (
	guardNone guard = iota
	guardReturn
	guardWrap
)

func guardKind(pass *Pass, stmt ast.Stmt, recv types.Object) guard {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return guardNone
	}
	if isNilCheck(pass, leftmost(ifStmt.Cond, token.LOR), recv, token.EQL) {
		if endsInReturn(ifStmt.Body) && ifStmt.Else == nil {
			return guardReturn
		}
		return guardNone
	}
	if isNilCheck(pass, leftmost(ifStmt.Cond, token.LAND), recv, token.NEQ) && ifStmt.Else == nil {
		return guardWrap
	}
	return guardNone
}

// leftmost peels a left-associative chain of op down to its first operand.
func leftmost(e ast.Expr, op token.Token) ast.Expr {
	for {
		b, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || b.Op != op {
			return ast.Unparen(e)
		}
		e = b.X
	}
}

// isNilCheck reports whether e is `recv <op> nil` (either operand order).
func isNilCheck(pass *Pass, e ast.Expr, recv types.Object, op token.Token) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	isRecv := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && pass.ObjectOf(id) == recv
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}

func endsInReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	last := body.List[len(body.List)-1]
	switch last.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		// panic(...) terminates too
		call, ok := last.(*ast.ExprStmt).X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func usesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
