package trace

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/universe"
)

// eventRecorder is a plain Sink that records every event in arrival order.
type eventRecorder struct{ events []Event }

func (r *eventRecorder) Flow(f flow.Record) {
	r.events = append(r.events, Event{Kind: EventFlow, Flow: f})
}
func (r *eventRecorder) DNS(e dnssim.Entry) {
	r.events = append(r.events, Event{Kind: EventDNS, DNS: e})
}
func (r *eventRecorder) HTTPMeta(e httplog.Entry) {
	r.events = append(r.events, Event{Kind: EventHTTP, HTTP: e})
}
func (r *eventRecorder) Lease(l dhcp.Lease) {
	r.events = append(r.events, Event{Kind: EventLease, Lease: l})
}

// batchRecorder additionally implements BatchSink, so producers take the
// batch fast path. Per-event methods stay available (embedded) but must
// not be used in the same stream — the exactly-one-path contract.
type batchRecorder struct {
	eventRecorder
	batches  int
	flushes  int
	maxBatch int
}

func (r *batchRecorder) EventBatch(events []Event) {
	r.batches++
	if len(events) > r.maxBatch {
		r.maxBatch = len(events)
	}
	// The slice is only borrowed; append copies the events out.
	r.events = append(r.events, events...)
}

func (r *batchRecorder) Flush() { r.flushes++ }

// diffStreams reports the first divergence between two event streams.
func diffStreams(t *testing.T, want, got []Event) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("stream lengths differ: %d vs %d", len(want), len(got))
	}
	for i := 0; i < len(want) && i < len(got); i++ {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("streams diverge at event %d:\nper-event: %+v\nbatched:   %+v",
				i, want[i], got[i])
		}
	}
}

// TestBatchDeliveryEquivalence runs the same generator config against a
// plain Sink and a BatchSink and requires the two delivery paths to produce
// the identical event stream — same events, same order, one Flush per day.
func TestBatchDeliveryEquivalence(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	const fromDay, toDay = 20, 23
	mk := func() *Generator {
		g, err := New(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	var per eventRecorder
	if err := mk().RunDays(&per, fromDay, toDay); err != nil {
		t.Fatal(err)
	}
	var bat batchRecorder
	if err := mk().RunDays(&bat, fromDay, toDay); err != nil {
		t.Fatal(err)
	}

	if len(per.events) == 0 {
		t.Fatal("generator produced no events")
	}
	if bat.batches == 0 {
		t.Error("BatchSink was not used")
	}
	if bat.flushes != toDay-fromDay {
		t.Errorf("flushes = %d, want one per day (%d)", bat.flushes, toDay-fromDay)
	}
	if bat.maxBatch > batchEmitCap {
		t.Errorf("batch of %d events exceeds emit cap %d", bat.maxBatch, batchEmitCap)
	}
	diffStreams(t, per.events, bat.events)
}

// TestBatcherPaths feeds an identical mixed stream through a Batcher
// wrapping a plain sink and one wrapping a batch sink, checking both
// deliver the stream unchanged and the batch path chunks at the emit cap.
func TestBatcherPaths(t *testing.T) {
	base := campus.StudyStart.Add(30 * 24 * time.Hour)
	client := netip.MustParseAddr("10.1.2.3")
	var src []Event
	for i := 0; i < batchEmitCap+37; i++ {
		ts := base.Add(time.Duration(i) * time.Second)
		switch i % 4 {
		case 0:
			src = append(src, Event{Kind: EventFlow, Flow: flow.Record{
				Start: ts, OrigAddr: client, OrigBytes: int64(i)}})
		case 1:
			src = append(src, Event{Kind: EventDNS, DNS: dnssim.Entry{
				Time: ts, Client: client, Query: "example.test"}})
		case 2:
			src = append(src, Event{Kind: EventHTTP, HTTP: httplog.Entry{
				Time: ts, Client: client, Host: "example.test"}})
		case 3:
			src = append(src, Event{Kind: EventLease, Lease: dhcp.Lease{
				Addr: client, Start: ts, End: ts.Add(time.Hour)}})
		}
	}
	feed := func(sink Sink) {
		b := NewBatcher(sink)
		for i := range src {
			src[i].Deliver(b)
		}
		b.Flush()
	}

	var plain eventRecorder
	feed(&plain)
	diffStreams(t, src, plain.events)

	var bat batchRecorder
	feed(&bat)
	diffStreams(t, src, bat.events)
	if bat.batches != 2 {
		t.Errorf("batches = %d, want 2 (one full run + the Flush remainder)", bat.batches)
	}
	if bat.flushes != 1 {
		t.Errorf("flushes = %d, want 1", bat.flushes)
	}
	if bat.maxBatch != batchEmitCap {
		t.Errorf("maxBatch = %d, want %d", bat.maxBatch, batchEmitCap)
	}
}
