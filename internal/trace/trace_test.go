package trace

import (
	"testing"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/universe"
)

// countingSink tallies and sanity-checks everything the generator emits.
type countingSink struct {
	t        *testing.T
	flows    int
	dns      int
	http     int
	leases   int
	bytes    int64
	lastFlow time.Time
	flowRecs []flow.Record
	keep     bool
}

func (s *countingSink) Flow(r flow.Record) {
	s.flows++
	s.bytes += r.TotalBytes()
	if err := r.Validate(); err != nil {
		s.t.Fatalf("invalid flow: %v", err)
	}
	if r.Start.Before(s.lastFlow) {
		s.t.Fatalf("flow out of order: %v before %v", r.Start, s.lastFlow)
	}
	s.lastFlow = r.Start
	if !universe.ResidenceNet.Contains(r.OrigAddr) && !universe.ResidenceNetV6.Contains(r.OrigAddr) {
		s.t.Fatalf("flow originates outside residence nets: %v", r.OrigAddr)
	}
	if s.keep {
		s.flowRecs = append(s.flowRecs, r)
	}
}
func (s *countingSink) DNS(e dnssim.Entry)       { s.dns++ }
func (s *countingSink) HTTPMeta(e httplog.Entry) { s.http++ }
func (s *countingSink) Lease(l dhcp.Lease)       { s.leases++ }

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	return cfg
}

func newTestGenerator(t testing.TB, cfg Config) *Generator {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Scale = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("zero scale accepted")
	}
	bad = DefaultConfig()
	bad.IntlFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("IntlFraction 1.5 accepted")
	}
	bad = DefaultConfig()
	bad.Students = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative students accepted")
	}
}

func TestPopulationShape(t *testing.T) {
	g := newTestGenerator(t, smallConfig())
	devs := g.Devices()
	if len(devs) == 0 {
		t.Fatal("no devices")
	}
	// Scale 0.01 of 15k students → ≈150 students → ≈350 devices.
	if len(devs) < 250 || len(devs) > 550 {
		t.Errorf("population = %d devices, expected ≈350", len(devs))
	}
	byKind := map[Kind]int{}
	intl, stay, stealth := 0, 0, 0
	for _, d := range devs {
		byKind[d.Kind]++
		if d.Intl {
			intl++
		}
		if d.Stays() {
			stay++
		}
		if d.Stealth {
			stealth++
		}
		if d.Intl && d.HomeRegion == "" && d.ArriveDay == 0 {
			t.Fatalf("international device %d without home region", d.Index)
		}
		if d.MAC.IsZero() {
			t.Fatalf("device %d has zero MAC", d.Index)
		}
		if d.Stealth != d.MAC.LocallyAdministered() {
			t.Fatalf("device %d stealth=%v but MAC local bit=%v", d.Index, d.Stealth, d.MAC.LocallyAdministered())
		}
	}
	if byKind[KindPhone] == 0 || byKind[KindLaptop] == 0 || byKind[KindIoT] == 0 || byKind[KindSwitch] == 0 {
		t.Errorf("kinds missing: %v", byKind)
	}
	// Phones ≈ laptops (Figure 1's 1:1 observation).
	ratio := float64(byKind[KindPhone]) / float64(byKind[KindLaptop])
	if ratio < 0.9 || ratio > 1.35 {
		t.Errorf("phone:laptop ratio = %.2f", ratio)
	}
	if intl == 0 || stay == 0 || stealth == 0 {
		t.Errorf("intl=%d stay=%d stealth=%d", intl, stay, stealth)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := newTestGenerator(t, smallConfig()).Devices()
	b := newTestGenerator(t, smallConfig()).Devices()
	if len(a) != len(b) {
		t.Fatal("population size differs")
	}
	for i := range a {
		if a[i].MAC != b[i].MAC || a[i].Kind != b[i].Kind || a[i].DepartDay != b[i].DepartDay {
			t.Fatalf("device %d differs across builds", i)
		}
	}
	other := smallConfig()
	other.Seed = 99
	c := newTestGenerator(t, other).Devices()
	same := 0
	for i := range a {
		if i < len(c) && a[i].MAC == c[i].MAC {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical population")
	}
}

func TestGenerateOneDay(t *testing.T) {
	g := newTestGenerator(t, smallConfig())
	sink := &countingSink{t: t}
	if err := g.RunDays(sink, 3, 4); err != nil {
		t.Fatal(err)
	}
	if sink.flows == 0 || sink.dns == 0 || sink.leases == 0 || sink.http == 0 {
		t.Fatalf("day produced flows=%d dns=%d leases=%d http=%d", sink.flows, sink.dns, sink.leases, sink.http)
	}
	// Every active device leased exactly once.
	if sink.leases > len(g.Devices()) {
		t.Errorf("more leases (%d) than devices (%d)", sink.leases, len(g.Devices()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	run := func() (int, int64) {
		g := newTestGenerator(t, smallConfig())
		sink := &countingSink{t: t}
		if err := g.RunDays(sink, 10, 12); err != nil {
			t.Fatal(err)
		}
		return sink.flows, sink.bytes
	}
	f1, b1 := run()
	f2, b2 := run()
	if f1 != f2 || b1 != b2 {
		t.Errorf("nondeterministic: flows %d/%d bytes %d/%d", f1, f2, b1, b2)
	}
}

func TestDepartureShrinksPopulation(t *testing.T) {
	g := newTestGenerator(t, smallConfig())
	febSink := &countingSink{t: t}
	maySink := &countingSink{t: t}
	if err := g.RunDays(febSink, 10, 11); err != nil { // mid-February Tuesday
		t.Fatal(err)
	}
	mayDay := campus.FirstDay(campus.May) + 4 // a May weekday
	if err := g.RunDays(maySink, mayDay, mayDay+1); err != nil {
		t.Fatal(err)
	}
	if maySink.leases*3 > febSink.leases {
		t.Errorf("May active devices (%d) not far below February (%d)", maySink.leases, febSink.leases)
	}
}

func TestRunDaysRangeValidation(t *testing.T) {
	g := newTestGenerator(t, smallConfig())
	sink := &countingSink{t: t}
	if err := g.RunDays(sink, -1, 2); err == nil {
		t.Error("negative from accepted")
	}
	if err := g.RunDays(sink, 0, campus.NumDays+1); err == nil {
		t.Error("past-end accepted")
	}
	if err := g.RunDays(sink, 5, 2); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestZoomAppearsOnlyInOnlineTerm(t *testing.T) {
	g := newTestGenerator(t, smallConfig())

	count8801 := func(recs []flow.Record) int {
		n := 0
		for _, r := range recs {
			if r.RespPort == 8801 {
				n++
			}
		}
		return n
	}
	feb := &countingSink{t: t, keep: true}
	if err := g.RunDays(feb, 11, 12); err != nil { // Wed Feb 12
		t.Fatal(err)
	}
	apr := &countingSink{t: t, keep: true}
	aprDay := campus.FirstDay(campus.April) + 7 // Wed Apr 8
	if err := g.RunDays(apr, aprDay, aprDay+1); err != nil {
		t.Fatal(err)
	}
	febZoom := count8801(feb.flowRecs)
	aprZoom := count8801(apr.flowRecs)
	if aprZoom == 0 {
		t.Error("no Zoom media flows on an online-term weekday")
	}
	// Per-device Zoom rate must explode despite the smaller population.
	febRate := float64(febZoom) / float64(feb.leases)
	aprRate := float64(aprZoom) / float64(apr.leases)
	if aprRate < 5*febRate {
		t.Errorf("zoom per-device rate Feb=%.3f Apr=%.3f; expected online-term surge", febRate, aprRate)
	}
}

func TestSwitchTrafficMostlyNintendo(t *testing.T) {
	cfg := smallConfig()
	cfg.Scale = 0.05
	g := newTestGenerator(t, cfg)
	// Find a switch that stays.
	var sw *Device
	for _, d := range g.Devices() {
		if d.Kind == KindSwitch && d.Stays() && d.ArriveDay == 0 {
			sw = d
			break
		}
	}
	if sw == nil {
		t.Skip("no staying switch at this scale/seed")
	}
	sink := &countingSink{t: t, keep: true}
	if err := g.RunDays(sink, 50, 57); err != nil { // late March week
		t.Fatal(err)
	}
	// Identify the switch's flows via its leases... simpler: all flows to
	// nintendo domains resolve into the nintendo service prefixes.
	reg := g.reg
	var nintendoBytes, total int64
	for _, r := range sink.flowRecs {
		info, ok := reg.LookupAddr(r.RespAddr)
		if !ok {
			continue
		}
		if info.Service.Name == "nintendo" {
			nintendoBytes += r.TotalBytes()
		}
		total += r.TotalBytes()
	}
	if nintendoBytes == 0 {
		t.Error("no nintendo traffic in late March")
	}
	_ = total
}

func TestNewSwitchesArriveInApril(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.2
	g := newTestGenerator(t, cfg)
	april1 := campus.FirstDay(campus.April)
	newSwitches := 0
	for _, d := range g.Devices() {
		if d.Kind == KindSwitch && d.ArriveDay >= april1 {
			newSwitches++
			if !d.Stays() {
				t.Error("new switch does not stay")
			}
		}
	}
	want := cfg.scaled(cfg.NewSwitchCount)
	if newSwitches != want {
		t.Errorf("new switches = %d, want %d", newSwitches, want)
	}
}

func TestVisitorsAreShortLived(t *testing.T) {
	g := newTestGenerator(t, smallConfig())
	visitors := 0
	for _, d := range g.Devices() {
		span := int(d.DepartDay - d.ArriveDay)
		if d.ArriveDay > 0 && span <= 8 && d.Kind == KindPhone {
			visitors++
			if span < 2 {
				t.Errorf("visitor with %d-day span", span)
			}
		}
	}
	if visitors == 0 {
		t.Error("no visitor devices generated")
	}
}

func TestDeviceDaySeedStability(t *testing.T) {
	if deviceDaySeed(1, 5, 10) != deviceDaySeed(1, 5, 10) {
		t.Error("seed not stable")
	}
	if deviceDaySeed(1, 5, 10) == deviceDaySeed(1, 5, 11) ||
		deviceDaySeed(1, 5, 10) == deviceDaySeed(1, 6, 10) ||
		deviceDaySeed(1, 5, 10) == deviceDaySeed(2, 5, 10) {
		t.Error("seed collisions across axes")
	}
}

func TestKindTruthTypes(t *testing.T) {
	cases := map[Kind]string{
		KindPhone: "Mobile", KindLaptop: "Laptop & Desktop", KindDesktop: "Laptop & Desktop",
		KindIoT: "IoT", KindSwitch: "IoT", KindPlayStation: "IoT", KindXbox: "IoT",
	}
	for k, want := range cases {
		if got := k.TruthType().String(); got != want {
			t.Errorf("%v truth = %q, want %q", k, got, want)
		}
	}
}

func BenchmarkGenerateDay(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Scale = 0.05
	g := newTestGenerator(b, cfg)
	sink := &nullSink{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.generateDay(campus.Day(i%campus.NumDays), sink)
	}
}

type nullSink struct{}

func (nullSink) Flow(flow.Record)       {}
func (nullSink) DNS(dnssim.Entry)       {}
func (nullSink) HTTPMeta(httplog.Entry) {}
func (nullSink) Lease(dhcp.Lease)       {}
