package trace

import (
	"math/rand"

	"repro/internal/campus"
	"repro/internal/universe"
)

// This file holds the behavioral calibration tables. Each constant is tied
// to a number or trend the paper reports; EXPERIMENTS.md records how well
// the generated dataset reproduces them.

// ---- Figure 7: Steam monthly activity probabilities -----------------------
//
// Fraction of (post-shutdown) laptop/desktop devices with any Steam traffic
// per month. Calibrated to the n= counts in Figure 7: domestic 681, 958,
// 958, 1243 of ≈1,650 domestic machines; international 212, 363, 312, 308
// of ≈440 identified-international machines.
var (
	steamMonthlyDomestic = [campus.NumMonths]float64{0.41, 0.58, 0.58, 0.75}
	steamMonthlyIntl     = [campus.NumMonths]float64{0.48, 0.82, 0.71, 0.70}
)

// sampleTikTokAdoption draws the month a phone starts using TikTok, or -1.
// Cumulative adoption targets Figure 6c's growing n: domestic 32%→45%,
// international 27%→46% of mobile devices from February to May.
func sampleTikTokAdoption(rng *rand.Rand, intl bool) int {
	r := rng.Float64()
	cum := [campus.NumMonths]float64{0.32, 0.37, 0.42, 0.45}
	if intl {
		cum = [campus.NumMonths]float64{0.27, 0.36, 0.42, 0.46}
	}
	for m, c := range cum {
		if r < c {
			return m
		}
	}
	return -1
}

// ---- Figure 6: social media session models --------------------------------
//
// Monthly session rates and lengths per app and population. The shapes
// encode §5.2's narrative:
//   - Facebook: domestic flat then down in May; international rises during
//     the shutdown, closing the February gap.
//   - Instagram: domestic flat then down in May (Q1 drops earlier);
//     international rises into May.
//   - TikTok: domestic median up in March, down in April, back to February
//     levels in May, with spread (σ) growing all window; international
//     much less active with growing variance.
type socialProfile struct {
	sessionsPerDay [campus.NumMonths]float64 // Poisson rate per active day
	medianMinutes  float64
	lengthMult     [campus.NumMonths]float64 // per-month session length scale
	sigma          float64                   // lognormal σ of session length
	// spread is the σ of a per-device-per-month lognormal multiplier
	// (median 1): it widens the cross-device distribution — TikTok's
	// rising 3rd quartile and 99th percentile — without moving the
	// median.
	spread         [campus.NumMonths]float64
	bytesPerMinute float64 // median application bytes
}

var socialProfiles = map[string]map[bool]socialProfile{ // app -> intl? -> profile
	"facebook": {
		false: {sessionsPerDay: [4]float64{1.10, 1.10, 1.05, 0.72}, medianMinutes: 7, lengthMult: [4]float64{1, 1, 1, 0.85}, sigma: 1.0, bytesPerMinute: 3 << 20},
		true:  {sessionsPerDay: [4]float64{0.62, 0.80, 1.00, 1.05}, medianMinutes: 7, lengthMult: [4]float64{1, 1, 1.05, 1.1}, sigma: 1.0, bytesPerMinute: 3 << 20},
	},
	"instagram": {
		false: {sessionsPerDay: [4]float64{1.30, 1.30, 1.15, 0.85}, medianMinutes: 6, lengthMult: [4]float64{1, 1, 0.95, 0.8}, sigma: 1.0, bytesPerMinute: 4 << 20},
		true:  {sessionsPerDay: [4]float64{1.00, 1.25, 1.25, 1.40}, medianMinutes: 6, lengthMult: [4]float64{1, 1.05, 1.1, 1.2}, sigma: 1.0, bytesPerMinute: 4 << 20},
	},
	"tiktok": {
		false: {sessionsPerDay: [4]float64{1.00, 1.35, 1.12, 1.00}, medianMinutes: 9, lengthMult: [4]float64{1, 1.05, 1, 1}, sigma: 1.0, spread: [4]float64{0, 0.20, 0.45, 0.60}, bytesPerMinute: 6 << 20},
		true:  {sessionsPerDay: [4]float64{0.50, 0.70, 0.75, 0.70}, medianMinutes: 8, lengthMult: [4]float64{1, 1.1, 1.15, 1.1}, sigma: 1.1, spread: [4]float64{0.10, 0.30, 0.55, 0.70}, bytesPerMinute: 6 << 20},
	},
}

// ---- Figure 3 / §4.1: diurnal shapes and volume growth --------------------

// hourWeights are relative activity weights per campus-local hour.
var (
	// Pre-pandemic weekdays: classes during the day, evening peak.
	hoursPreWeekday = [24]float64{
		0.35, 0.2, 0.12, 0.08, 0.06, 0.08, 0.15, 0.3, 0.5, 0.55,
		0.55, 0.6, 0.65, 0.6, 0.55, 0.55, 0.6, 0.7, 0.8, 0.95,
		1.0, 1.0, 0.9, 0.6,
	}
	// Lock-down weekdays: traffic spikes earlier (online classes from
	// 8am) and overall volume is higher; evening peak remains.
	hoursLockWeekday = [24]float64{
		0.35, 0.2, 0.12, 0.08, 0.06, 0.08, 0.2, 0.45, 0.8, 0.95,
		0.95, 0.9, 0.85, 0.85, 0.8, 0.75, 0.7, 0.75, 0.85, 0.95,
		1.0, 1.0, 0.9, 0.6,
	}
	// Weekends: late start, flat afternoon — §4.1 finds them essentially
	// unchanged across the shutdown.
	hoursWeekend = [24]float64{
		0.4, 0.25, 0.15, 0.1, 0.07, 0.07, 0.1, 0.15, 0.3, 0.45,
		0.6, 0.7, 0.75, 0.75, 0.7, 0.7, 0.7, 0.7, 0.75, 0.8,
		0.85, 0.85, 0.8, 0.6,
	}
)

// dayHourWeights returns the diurnal shape for a given study day.
func dayHourWeights(day campus.Day) *[24]float64 {
	if day.IsWeekend() {
		return &hoursWeekend
	}
	if day.Phase() >= campus.Lockdown {
		return &hoursLockWeekday
	}
	return &hoursPreWeekday
}

// sampleHour draws an hour of day from the weights.
func sampleHour(rng *rand.Rand, w *[24]float64) int {
	total := 0.0
	for _, v := range w {
		total += v
	}
	r := rng.Float64() * total
	for h, v := range w {
		if r < v {
			return h
		}
		r -= v
	}
	return 23
}

// leisureMult scales non-Zoom leisure bytes per phase, producing §4.1's
// +58% February→April/May total traffic among post-shutdown users (Zoom
// contributes the rest) and Figure 4's international elevation from the
// break onward. The elevation concentrates in home-heavy international
// students (the sub-population the midpoint method identifies); moderate
// international students rise less, and domestic traffic stays flat during
// break, matching Figure 4's contrast.
func leisureMult(day campus.Day, intl, homeHeavy bool) float64 {
	switch day.Phase() {
	case campus.PrePandemic:
		return 1.0
	case campus.Emergency:
		return 1.05
	case campus.PandemicDeparture:
		return 1.08
	case campus.Lockdown:
		return 1.10
	case campus.AcademicBreak:
		switch {
		case homeHeavy:
			return 2.05
		case intl:
			return 1.30
		default:
			return 0.98
		}
	default: // online term
		switch {
		case homeHeavy:
			return 1.72
		case intl:
			return 1.22
		default:
			return 1.13
		}
	}
}

// browseServicesPerDay is the number of distinct leisure services a device
// samples per active day. The online-term increase yields §4.1's "34%
// more distinct sites".
func browseServicesPerDay(kind Kind, day campus.Day) float64 {
	base := 0.0
	switch kind {
	case KindPhone:
		base = 5.5
	case KindLaptop:
		base = 6.5
	case KindDesktop:
		base = 6.5
	default:
		return 0
	}
	switch day.Phase() {
	case campus.AcademicBreak:
		base *= 1.15
	case campus.OnlineTerm:
		base *= 1.38
	}
	// Weekend dips in per-device volume persist across the whole window
	// (§4.1's contrast with Feldmann et al.), though they soften once
	// students are trapped indoors.
	if day.IsWeekend() {
		if day.Phase() >= campus.Lockdown {
			base *= 0.88
		} else {
			base *= 0.78
		}
	}
	return base
}

// phoneLockdownBoost is an extra byte multiplier for phones once the
// lock-down begins: phones carry much of the new streaming/scrolling load,
// keeping Figure 2's post-shutdown mobile and laptop medians roughly equal
// despite laptops gaining Zoom.
const phoneLockdownBoost = 1.32

// activityP is the probability a present device produces any traffic on a
// day — the weekday/weekend sawtooth of Figure 1.
func activityP(kind Kind, day campus.Day) float64 {
	weekend := day.IsWeekend()
	post := day.Phase() >= campus.Lockdown
	switch kind {
	case KindPhone:
		switch {
		case weekend && !post:
			return 0.86
		case weekend && post:
			return 0.92
		default:
			return 0.96
		}
	case KindLaptop:
		switch {
		case weekend && !post:
			return 0.76
		case weekend && post:
			return 0.85
		default:
			return 0.89
		}
	case KindDesktop:
		if weekend {
			return 0.85
		}
		return 0.93
	case KindIoT:
		return 0.99
	case KindSwitch:
		return 0.93 // standby pings nearly daily
	default: // other consoles
		return 0.85
	}
}

// ---- Browsing preference tables -------------------------------------------

// svcPref weights one catalog service for leisure selection, with the
// median bytes one day's visit transfers (before intensity and phase
// multipliers).
type svcPref struct {
	service *universe.Service
	weight  int
	bytes   float64
	sigma   float64
}

// categoryBytes returns the per-visit byte scale for a category, per device
// kind (phones stream smaller renditions).
func categoryBytes(cat universe.Category, kind Kind) (median float64, sigma float64) {
	switch cat {
	case universe.CatVideo:
		if kind == KindPhone {
			return 180 << 20, 0.9
		}
		return 350 << 20, 0.9
	case universe.CatMusic:
		return 45 << 20, 0.8
	case universe.CatSocial:
		return 25 << 20, 0.9 // non-session social browsing (reddit etc.)
	case universe.CatMessaging:
		return 12 << 20, 0.9
	case universe.CatGaming:
		return 40 << 20, 1.1
	case universe.CatNews, universe.CatEducation, universe.CatWeb, universe.CatCampus:
		return 7 << 20, 1.0
	case universe.CatInfra, universe.CatCloud:
		return 1 << 20, 1.0
	default:
		return 5 << 20, 1.0
	}
}

// buildPrefs derives the US-service and per-home-region preference tables
// from the catalog.
func buildPrefs(reg *universe.Registry) (us []svcPref, home map[string][]svcPref) {
	home = make(map[string][]svcPref)
	for i := range reg.Services() {
		s := &reg.Services()[i]
		switch s.Category {
		case universe.CatCDN, universe.CatConferencing:
			continue // reached via other paths
		case universe.CatInfra:
			continue // infra handled as background
		}
		if s.Name == "nintendo" || s.Name == "steam" {
			continue // gaming models handle these explicitly
		}
		w := prefWeight(s)
		if w == 0 {
			continue
		}
		median, sigma := categoryBytes(s.Category, KindLaptop)
		p := svcPref{service: s, weight: w, bytes: median, sigma: sigma}
		if s.Region.US || s.Region.Code == "campus" {
			us = append(us, p)
		} else {
			home[s.Region.Code] = append(home[s.Region.Code], p)
		}
	}
	return us, home
}

// prefWeight sets how often a service is visited relative to others in its
// pool.
func prefWeight(s *universe.Service) int {
	switch s.Category {
	case universe.CatVideo:
		switch s.Name {
		case "youtube":
			return 26
		case "netflix":
			return 20
		case "bilibili", "iqiyi":
			return 22
		default:
			return 7
		}
	case universe.CatSocial:
		// Facebook/Instagram/TikTok flows come from the session model,
		// not general browsing.
		switch s.Name {
		case "facebook", "instagram", "tiktok":
			return 0
		default:
			return 6
		}
	case universe.CatMusic:
		return 8
	case universe.CatMessaging:
		return 8
	case universe.CatEducation:
		return 5
	case universe.CatNews:
		return 4
	case universe.CatWeb:
		return 6
	case universe.CatGaming:
		return 3
	case universe.CatIoT:
		// People shop for gadgets: browsers visit the vendor site
		// (Domains[0]) — never the device backends, so this does not
		// pollute Saidi signatures.
		return 1
	case universe.CatCampus:
		if s.TapExcluded {
			return 2
		}
		return 5
	default:
		if s.TapExcluded {
			return 4 // tap-excluded traffic is generated and then dropped
		}
		return 2
	}
}

// homeRegions distributes international students across home regions.
var homeRegions = []struct {
	code   string
	weight int
}{
	{"cn", 60}, {"kr", 12}, {"in", 10}, {"jp", 8}, {"eu", 6}, {"br", 2}, {"mx", 2},
}

func sampleHomeRegion(rng *rand.Rand) string {
	w := make([]int, len(homeRegions))
	for i, h := range homeRegions {
		w[i] = h.weight
	}
	return homeRegions[pickWeighted(rng, w)].code
}

// foreignByteFraction is the share of leisure picks an international
// student directs at home-region services. Home-heavy students are the
// sub-population §4.2's midpoint method can identify; moderate students
// stay (conservatively) classified domestic.
// Foreign *picks* understate foreign *bytes*: video services dominate both
// pools, so even a modest pick share yields a large byte share. 0.08 keeps
// moderate students' midpoints (conservatively) inside the US; 0.62 places
// home-heavy students' midpoints abroad.
func foreignByteFraction(homeHeavy bool) float64 {
	if homeHeavy {
		return 0.62
	}
	return 0.06
}

// ---- Zoom (Figure 5) -------------------------------------------------------

// zoomProfile describes class attendance after instruction moved online.
type zoomDayProfile struct {
	sessionP   float64 // probability the device attends at all
	meanCount  float64 // Poisson mean of sessions given attendance
	minMinutes float64
	expMinutes float64 // exponential tail beyond the minimum
	startHour  int     // earliest class hour
	endHour    int     // latest class start hour
}

// zoomFor returns the Zoom profile for a device kind on a day, or nil when
// no Zoom traffic applies.
func zoomFor(kind Kind, day campus.Day) *zoomDayProfile {
	phase := day.Phase()
	online := phase == campus.OnlineTerm
	var participate float64
	switch kind {
	case KindLaptop:
		participate = 0.85
	case KindDesktop:
		participate = 0.60
	case KindPhone:
		participate = 0.20
	default:
		return nil
	}
	switch {
	case online && !day.IsWeekend():
		// §5.1: most active 8am–6pm on weekdays.
		return &zoomDayProfile{
			sessionP:  participate,
			meanCount: 1.5, minMinutes: 45, expMinutes: 25,
			startHour: 8, endHour: 17,
		}
	case online && day.IsWeekend():
		// Small weekend afternoon bump: clubs, calls home.
		return &zoomDayProfile{
			sessionP:  participate * 0.12,
			meanCount: 1.0, minMinutes: 25, expMinutes: 20,
			startHour: 12, endHour: 16,
		}
	case phase <= campus.PandemicDeparture && !day.IsWeekend():
		// Pre-pandemic: occasional meetings.
		return &zoomDayProfile{
			sessionP:  participate * 0.02,
			meanCount: 1.0, minMinutes: 30, expMinutes: 15,
			startHour: 9, endHour: 16,
		}
	default:
		return nil
	}
}

// zoomBytesPerMinute is the media rate of one Zoom session (≈100 MB/hour,
// calibrated so aggregate daily Zoom peaks near Figure 5's ≈600 GB at full
// scale).
const zoomBytesPerMinute = 1.6 * (1 << 20)

// heartbeatDomains are the always-on sync/push backends phones and laptops
// chat with hourly. The hourly cadence gives every device traffic in most
// hours, which Figure 3's per-hour medians require (an hour with traffic on
// fewer than half the devices has a zero median).
var (
	heartbeatDomainsUS   = []string{"google.com", "whatsapp.net", "discord.com", "gmail.com", "outlook.com"}
	heartbeatDomainsHome = map[string][]string{
		"cn": {"weixin.qq.com", "qq.com"},
		"kr": {"kakao.com", "naver.com"},
		"jp": {"line.me"},
		"in": {"jio.com"},
		"eu": {"telegram.org"},
		"br": {"globo.com"},
		"mx": {"televisa.com"},
	}
)

// ---- Gaming ----------------------------------------------------------------

// steamSessionMult scales Steam play-session frequency per month,
// reproducing Figure 7b's trends (domestic connections decline over the
// window; international spike in March).
var (
	steamSessionMultDom  = [campus.NumMonths]float64{1.00, 0.95, 0.80, 0.65}
	steamSessionMultIntl = [campus.NumMonths]float64{1.00, 1.30, 1.15, 0.80}
	// steamDownloadP is the per-day probability of a multi-GB game
	// download, the driver of Figure 7a's March byte spike.
	steamDownloadPDom  = [campus.NumMonths]float64{0.035, 0.10, 0.055, 0.04}
	steamDownloadPIntl = [campus.NumMonths]float64{0.04, 0.14, 0.12, 0.045}
)

// switchPlayP is the probability a Switch has a gameplay session on a day,
// shaping Figure 8: break/early-term spikes (Animal Crossing released
// March 20), a return toward pre-pandemic levels in late April, and a May
// rise as "boredom kicks in".
func switchPlayP(day campus.Day) float64 {
	acnh, _ := campus.DayOf(campus.AnimalCrossingRelease)
	switch {
	case day >= acnh && day < acnh+10:
		return 0.90
	case day.Phase() == campus.AcademicBreak:
		return 0.85
	case day.Phase() == campus.OnlineTerm:
		mayD := campus.FirstDay(campus.May)
		lateAprD := campus.FirstDay(campus.April) + 14
		switch {
		case day >= mayD+10:
			return 0.62
		case day >= lateAprD:
			return 0.38
		default:
			return 0.50
		}
	case day.Phase() >= campus.Lockdown:
		return 0.60
	default:
		return 0.35
	}
}
