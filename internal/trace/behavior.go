package trace

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/campus"
	"repro/internal/flow"
	"repro/internal/universe"
)

// deviceDay generates one device's full day of traffic.
func (g *Generator) deviceDay(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	switch dev.Kind {
	case KindPhone:
		g.background(ds, dev, rng, ip)
		g.heartbeats(ds, dev, rng, ip)
		g.browse(ds, dev, rng, ip)
		g.social(ds, dev, rng, ip)
		g.zoom(ds, dev, rng, ip)
	case KindLaptop, KindDesktop:
		g.background(ds, dev, rng, ip)
		g.heartbeats(ds, dev, rng, ip)
		g.browse(ds, dev, rng, ip)
		g.zoom(ds, dev, rng, ip)
		g.steam(ds, dev, rng, ip)
		// Light desktop social media — §5.2 found it insignificant, and
		// Figure 6 filters to mobile; a trickle keeps that filter honest.
		if dev.FacebookUser && rng.Float64() < 0.05 {
			g.socialSession(ds, dev, rng, ip, "facebook", 4*time.Minute)
		}
	case KindIoT:
		g.iotDay(ds, dev, rng, ip)
	case KindSwitch:
		g.switchDay(ds, dev, rng, ip)
	case KindPlayStation, KindXbox:
		g.consoleDay(ds, dev, rng, ip)
	}
}

// background emits the infra chatter every general-purpose device produces:
// NTP, OCSP, connectivity checks (the cleartext HTTP that carries
// User-Agent evidence), and OS updates.
func (g *Generator) background(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	t := g.at(ds, rng, sampleHour(rng, ds.hours))
	g.emitFlow(ds, rng, dev, ip, flowSpec{
		domain: "pool.ntp.org", start: t, dur: time.Second,
		bytes: 512, proto: flow.ProtoUDP, respPort: 123, withDNS: rng.Float64() < 0.3,
	})
	if rng.Float64() < 0.7 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "ocsp.digicert.com", start: g.at(ds, rng, sampleHour(rng, ds.hours)),
			dur: 2 * time.Second, bytes: int64(3<<10 + rng.Intn(5<<10)), respPort: 80, withDNS: true,
		})
	}
	// Connectivity checks reveal the User-Agent for non-stealth devices.
	if dev.UserAgent != "" && rng.Float64() < 0.8 {
		g.emitHTTPMeta(ds, rng, dev, ip, "detectportal.firefox.com", dev.UserAgent,
			g.at(ds, rng, sampleHour(rng, ds.hours)))
	}
	// Desktop-mode browsing on a few phones: the affirmative
	// misclassification source (§3's 2/100).
	if dev.desktopModeBrowser && rng.Float64() < 0.5 {
		g.emitHTTPMeta(ds, rng, dev, ip, "detectportal.firefox.com", desktopModeUA,
			g.at(ds, rng, sampleHour(rng, ds.hours)))
	}
	// OS updates (bulky, occasional).
	if (dev.Kind == KindLaptop || dev.Kind == KindDesktop) && rng.Float64() < 0.08 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "windowsupdate.com", start: g.at(ds, rng, sampleHour(rng, ds.hours)),
			dur:   time.Duration(5+rng.Intn(20)) * time.Minute,
			bytes: int64(logNormal(rng, 0, 0.8) * float64(300<<20)), withDNS: true,
		})
	}
	// Apple devices phone home to tap-excluded Apple networks; the
	// capture filter drops these downstream.
	if rng.Float64() < 0.25 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "push.apple.com", start: g.at(ds, rng, sampleHour(rng, ds.hours)),
			dur: 10 * time.Minute, bytes: int64(1<<20 + rng.Intn(4<<20)), withDNS: true,
		})
	}
}

// heartbeats emits the hourly push/sync chatter of interactive devices,
// modulated by the diurnal shape so per-hour medians (Figure 3) follow the
// day's rhythm.
func (g *Generator) heartbeats(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	mult := leisureMult(ds.behaviorDay, dev.Intl, dev.HomeHeavy) * ds.seasonal
	domains := heartbeatDomainsUS
	var home []string
	if dev.Intl {
		home = heartbeatDomainsHome[dev.HomeRegion]
	}
	for h := 0; h < 24; h++ {
		w := ds.hours[h]
		if rng.Float64() >= 0.5+0.45*w {
			continue
		}
		domain := domains[rng.Intn(len(domains))]
		if len(home) > 0 && rng.Float64() < 0.4 {
			domain = home[rng.Intn(len(home))]
		}
		bytes := int64(logNormal(rng, 0, 0.5) * 1.6 * float64(1<<20) * w * mult)
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: domain, start: g.at(ds, rng, h),
			dur:   time.Duration(20+rng.Intn(300)) * time.Second,
			bytes: bytes, withDNS: h == 0 || rng.Float64() < 0.08,
		})
	}
}

// browse emits general leisure traffic from the preference tables.
func (g *Generator) browse(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	mean := browseServicesPerDay(dev.Kind, ds.behaviorDay)
	if mean <= 0 {
		return
	}
	n := poisson(rng, mean)
	if n == 0 {
		return
	}
	mult := leisureMult(ds.behaviorDay, dev.Intl, dev.HomeHeavy) * dev.Intensity * ds.seasonal
	if dev.Kind == KindPhone && ds.behaviorDay.Phase() >= campus.Lockdown {
		mult *= phoneLockdownBoost
	}
	foreignP := 0.02
	if dev.Intl {
		foreignP = foreignByteFraction(dev.HomeHeavy)
	}
	for i := 0; i < n; i++ {
		prefs, weights := g.usPrefs, g.usWeights
		foreignPick := false
		if dev.Intl && rng.Float64() < foreignP {
			if hp := g.homePrefs[dev.HomeRegion]; len(hp) > 0 {
				prefs, weights = hp, g.homeWts[dev.HomeRegion]
				foreignPick = true
			}
		}
		p := prefs[pickWeighted(rng, weights)]
		median, sigma := p.bytes, p.sigma
		if dev.Kind == KindPhone {
			m, s := categoryBytes(p.service.Category, KindPhone)
			median, sigma = m, s
		}
		if foreignPick && !dev.HomeHeavy {
			// Moderate international students keep home-country chat and
			// news, not home-country video streaming — their foreign
			// *byte* share stays small, which is why the midpoint method
			// (conservatively) classifies them domestic.
			if median > 25<<20 {
				median, sigma = 25<<20, 0.8
			}
		}
		bytes := int64(logNormal(rng, 0, sigma) * median * mult)
		dur := time.Duration(2+rng.Intn(8)) * time.Minute
		if p.service.Category == universe.CatVideo {
			dur = time.Duration(15+rng.Intn(50)) * time.Minute
		}
		domain := p.service.Domains[rng.Intn(len(p.service.Domains))]
		if p.service.Category == universe.CatIoT {
			// Humans visit the vendor's website, not device backends.
			domain = p.service.Domains[0]
		}
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: domain, start: g.at(ds, rng, sampleHour(rng, ds.hours)),
			dur: dur, bytes: bytes, withDNS: true,
		})
	}
}

// social emits the day's Facebook/Instagram/TikTok sessions for a phone.
func (g *Generator) social(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	month := campus.MonthOfDay(ds.behaviorDay)
	run := func(appIdx int, app string, user bool) {
		if !user {
			return
		}
		prof := socialProfiles[app][dev.HomeHeavy]
		count := poisson(rng, prof.sessionsPerDay[month])
		if count == 0 {
			return
		}
		// Per-device-per-month spread multiplier (median 1): widens the
		// cross-device distribution without moving the median.
		spreadMult := 1.0
		if s := prof.spread[month]; s > 0 {
			r2 := rand.New(rand.NewSource(deviceDaySeed(g.cfg.Seed, dev.Index,
				campus.Day(4000+int(month)*8+appIdx))))
			spreadMult = logNormal(r2, 0, s)
		}
		for i := 0; i < count; i++ {
			minutes := logNormal(rng, 0, prof.sigma) * prof.medianMinutes * prof.lengthMult[month] * spreadMult
			g.socialSession(ds, dev, rng, ip, app, time.Duration(minutes*float64(time.Minute)))
		}
	}
	run(0, "facebook", dev.FacebookUser)
	run(1, "instagram", dev.InstagramUser)
	run(2, "tiktok", dev.TikTokAdoptMonth >= 0 && int(month) >= dev.TikTokAdoptMonth)
}

// socialSession emits one stitched-session's worth of overlapping flows
// across the app's domains — the structure §5.2's duration computation
// reconstructs.
func (g *Generator) socialSession(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr, app string, dur time.Duration) {
	if dur < 30*time.Second {
		dur = 30 * time.Second
	}
	if dur > 5*time.Hour {
		dur = 5 * time.Hour
	}
	start := g.at(ds, rng, sampleHour(rng, ds.hours))
	prof := socialProfiles[app][dev.HomeHeavy]
	totalBytes := int64(float64(dur) / float64(time.Minute) * prof.bytesPerMinute * logNormal(rng, 0, 0.4))

	type part struct {
		domain string
		frac   float64
	}
	var parts []part
	switch app {
	case "facebook":
		parts = []part{{"facebook.com", 0.25}, {"fbcdn.net", 0.6}, {"facebook.net", 0.15}}
	case "instagram":
		// Instagram sessions traverse the shared Facebook CDN domains —
		// exactly the ambiguity the §5.2 heuristic resolves.
		parts = []part{{"instagram.com", 0.2}, {"cdninstagram.com", 0.55}, {"fbcdn.net", 0.25}}
	case "tiktok":
		parts = []part{{"tiktok.com", 0.1}, {"tiktokcdn.com", 0.65}, {"tiktokv.com", 0.25}}
	}
	for i, p := range parts {
		// Parts start staggered but overlap for the session's span.
		offset := time.Duration(float64(dur) * 0.05 * float64(i))
		partDur := dur - offset - time.Duration(float64(dur)*0.03*float64(i))
		if partDur < time.Second {
			partDur = time.Second
		}
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: p.domain, start: start.Add(offset), dur: partDur,
			bytes: int64(float64(totalBytes) * p.frac), withDNS: i == 0 || rng.Float64() < 0.5,
		})
	}
}

// zoom emits the day's class sessions (Figure 5).
func (g *Generator) zoom(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	prof := zoomFor(dev.Kind, ds.behaviorDay)
	if prof == nil || rng.Float64() >= prof.sessionP {
		return
	}
	count := poisson(rng, prof.meanCount)
	if count < 1 {
		count = 1
	}
	for i := 0; i < count; i++ {
		hour := prof.startHour + rng.Intn(prof.endHour-prof.startHour+1)
		start := g.at(ds, rng, hour)
		minutes := prof.minMinutes + rng.ExpFloat64()*prof.expMinutes
		dur := time.Duration(minutes * float64(time.Minute))
		// Signaling via zoom.us (DNS-labeled)...
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "zoom.us", start: start, dur: dur,
			bytes: int64(2<<20 + rng.Intn(6<<20)), withDNS: true,
		})
		// ...and bulk media over UDP 8801 straight to an address from the
		// published list, with no DNS label — the flows §5.1's IP-list
		// matching exists for.
		media := g.zoomMediaAddr(rng)
		mediaBytes := int64(minutes * zoomBytesPerMinute * logNormal(rng, 0, 0.35))
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			directAddr: media, domain: "", start: start.Add(5 * time.Second),
			dur: dur - 10*time.Second, bytes: mediaBytes,
			proto: flow.ProtoUDP, respPort: 8801,
		})
	}
}

// zoomMediaAddr picks a media-server address inside the Zoom ranges but
// outside the DNS-mapped space (hosts .0.2–.0.250 are reserved for direct
// connections in the address plan).
func (g *Generator) zoomMediaAddr(rng *rand.Rand) netip.Addr {
	p := g.zoomPrefixes[rng.Intn(len(g.zoomPrefixes))]
	base := p.Addr().As4()
	return netip.AddrFrom4([4]byte{base[0], base[1], 0, byte(2 + rng.Intn(249))})
}

// steam emits Steam play sessions and occasional multi-GB downloads
// (Figure 7).
func (g *Generator) steam(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	month := campus.MonthOfDay(ds.behaviorDay)
	if !dev.SteamMonthly[month] {
		return
	}
	sessMult, dlP := steamSessionMultDom[month], steamDownloadPDom[month]
	if dev.HomeHeavy {
		sessMult, dlP = steamSessionMultIntl[month], steamDownloadPIntl[month]
	}
	sessions := poisson(rng, 0.55*sessMult)
	for i := 0; i < sessions; i++ {
		start := g.at(ds, rng, sampleHour(rng, ds.hours))
		dur := time.Duration(20+rng.Intn(100)) * time.Minute
		// A play session opens several control connections plus one bulk
		// content flow — Figure 7b counts connections, 7a counts bytes.
		conns := 4 + rng.Intn(7)
		for c := 0; c < conns; c++ {
			domain := steamControlDomains[rng.Intn(len(steamControlDomains))]
			g.emitFlow(ds, rng, dev, ip, flowSpec{
				domain: domain, start: start.Add(time.Duration(c) * 3 * time.Second),
				dur: dur / time.Duration(1+c%3), bytes: int64(100<<10 + rng.Intn(2<<20)),
				withDNS: c == 0,
			})
		}
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "steamcontent.com", start: start.Add(time.Minute), dur: dur,
			bytes: int64(logNormal(rng, 0, 1.2) * float64(6<<20) * dev.Intensity), withDNS: true,
		})
	}
	if rng.Float64() < dlP {
		// Game download: the March byte spike.
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "steamcontent.com", start: g.at(ds, rng, sampleHour(rng, ds.hours)),
			dur:   time.Duration(20+rng.Intn(60)) * time.Minute,
			bytes: int64(logNormal(rng, 0, 0.7) * float64(2<<30)), withDNS: true,
		})
	}
}

var steamControlDomains = []string{
	"steampowered.com", "steamcommunity.com", "steamstatic.com", "steamusercontent.com",
}

// iotDay emits an IoT device's platform chatter and, for streaming
// hardware, its evening video sessions (the heavy tail of Figure 2).
func (g *Generator) iotDay(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	svc := g.reg.ServiceByName(dev.IoTPlatform)
	if svc == nil || len(svc.Domains) < 4 {
		return
	}
	// Domains[0] is the vendor's human-facing website; devices talk to
	// the backends: [1] the control/heartbeat endpoint, [2] telemetry,
	// [3] the firmware/update endpoint (rare) — so a device's Saidi
	// signature fraction is usually 2/3 or 3/3, occasionally 1/3.
	heartbeat, telemetry, firmware := svc.Domains[1], svc.Domains[2], svc.Domains[3]
	for h := 0; h < 24; h++ {
		if rng.Float64() < 0.9 {
			g.emitFlow(ds, rng, dev, ip, flowSpec{
				domain: heartbeat, start: g.at(ds, rng, h), dur: 5 * time.Second,
				bytes: int64(8<<10 + rng.Intn(30<<10)), withDNS: h == 0 || rng.Float64() < 0.1,
			})
		}
	}
	if rng.Float64() < 0.7 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: telemetry, start: g.at(ds, rng, 3), dur: 30 * time.Second,
			bytes: int64(logNormal(rng, 0, 0.8) * float64(2<<20)), withDNS: true,
		})
	}
	if rng.Float64() < 0.03 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: firmware, start: g.at(ds, rng, 4), dur: 5 * time.Minute,
			bytes: int64(logNormal(rng, 0, 0.5) * float64(40<<20)), withDNS: true,
		})
	}
	// UA-revealing devices check in over cleartext occasionally.
	if dev.UserAgent != "" && rng.Float64() < 0.4 {
		g.emitHTTPMeta(ds, rng, dev, ip, heartbeat, dev.UserAgent, g.at(ds, rng, 19))
	}
	// Streaming hardware plays video in the evening; lock-down boosts it.
	if dev.IoTPlatform == "roku" || dev.IoTPlatform == "samsung-tv" || dev.IoTPlatform == "lg-tv" {
		watchP := 0.55
		if ds.behaviorDay.Phase() >= campus.Lockdown {
			watchP = 0.75
		}
		if rng.Float64() < watchP {
			streamSvc := []string{"netflix.com", "hulu.com", "youtube.com"}[rng.Intn(3)]
			g.emitFlow(ds, rng, dev, ip, flowSpec{
				domain: streamSvc, start: g.at(ds, rng, 18+rng.Intn(5)),
				dur:   time.Duration(40+rng.Intn(120)) * time.Minute,
				bytes: int64(logNormal(rng, 0, 0.9) * float64(1<<30) * dev.Intensity), withDNS: true,
			})
		}
	}
}

// switchDay emits a Nintendo Switch's standby pings, gameplay sessions, and
// download traffic (Figure 8 and the §5.3.2 device counts).
func (g *Generator) switchDay(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	// Standby: connectivity test plus push-notification keepalive.
	g.emitFlow(ds, rng, dev, ip, flowSpec{
		domain: "conntest.nintendowifi.net", start: g.at(ds, rng, 9+rng.Intn(4)),
		dur: 2 * time.Second, bytes: int64(4<<10 + rng.Intn(8<<10)), respPort: 80, withDNS: true,
	})
	g.emitFlow(ds, rng, dev, ip, flowSpec{
		domain: "npns.srv.nintendo.net", start: g.at(ds, rng, 0), dur: 20 * time.Hour,
		bytes: int64(150<<10 + rng.Intn(300<<10)), withDNS: rng.Float64() < 0.2,
	})
	// Gameplay sessions (Figure 8's headline series).
	if rng.Float64() < switchPlayP(ds.behaviorDay) {
		sessions := 1 + poisson(rng, 0.4)
		for i := 0; i < sessions; i++ {
			start := g.at(ds, rng, 14+rng.Intn(8))
			dur := time.Duration(30+rng.Intn(90)) * time.Minute
			g.emitFlow(ds, rng, dev, ip, flowSpec{
				domain: "nex.nintendo.net", start: start, dur: dur,
				bytes: int64(logNormal(rng, 0, 0.8) * float64(12<<20)), withDNS: true,
			})
			g.emitFlow(ds, rng, dev, ip, flowSpec{
				domain: "baas.nintendo.com", start: start, dur: time.Minute,
				bytes: int64(200<<10 + rng.Intn(400<<10)), withDNS: rng.Float64() < 0.3,
			})
		}
	}
	// Game downloads: heavy around the Animal Crossing release.
	acnh, _ := campus.DayOf(campus.AnimalCrossingRelease)
	dlP := 0.02
	if ds.behaviorDay >= acnh && ds.behaviorDay < acnh+8 {
		dlP = 0.30
	}
	if rng.Float64() < dlP {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "atum.hac.lp1.d4c.nintendo.net", start: g.at(ds, rng, 12+rng.Intn(8)),
			dur:   time.Duration(25+rng.Intn(50)) * time.Minute,
			bytes: int64(logNormal(rng, 0, 0.4) * float64(5<<30)), withDNS: true,
		})
	}
	// Occasional system update.
	if rng.Float64() < 0.02 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: "sun.hac.lp1.d4c.nintendo.net", start: g.at(ds, rng, 4),
			dur: 10 * time.Minute, bytes: int64(logNormal(rng, 0, 0.4) * float64(300<<20)), withDNS: true,
		})
	}
}

// consoleDay emits PlayStation/Xbox traffic.
func (g *Generator) consoleDay(ds *dayState, dev *Device, rng *rand.Rand, ip netip.Addr) {
	domain, cdn := "playstation.net", "playstation.com"
	if dev.Kind == KindXbox {
		domain, cdn = "xboxlive.com", "xbox.com"
	}
	// Presence ping.
	g.emitFlow(ds, rng, dev, ip, flowSpec{
		domain: domain, start: g.at(ds, rng, 10+rng.Intn(6)), dur: 30 * time.Second,
		bytes: int64(50<<10 + rng.Intn(200<<10)), withDNS: rng.Float64() < 0.3,
	})
	playP := 0.45
	if ds.behaviorDay.Phase() >= campus.Lockdown {
		playP = 0.65
	}
	if rng.Float64() < playP {
		start := g.at(ds, rng, 16+rng.Intn(6))
		dur := time.Duration(40+rng.Intn(120)) * time.Minute
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: domain, start: start, dur: dur,
			bytes: int64(logNormal(rng, 0, 0.8) * float64(40<<20)), withDNS: true,
		})
	}
	if rng.Float64() < 0.04 {
		g.emitFlow(ds, rng, dev, ip, flowSpec{
			domain: cdn, start: g.at(ds, rng, 13+rng.Intn(6)),
			dur:   time.Duration(30+rng.Intn(60)) * time.Minute,
			bytes: int64(logNormal(rng, 0, 0.6) * float64(8<<30)), withDNS: true,
		})
	}
}
