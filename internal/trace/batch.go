package trace

import (
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
)

// EventKind discriminates the union arms of Event.
type EventKind uint8

// Event kinds, one per Sink method.
const (
	EventFlow EventKind = iota
	EventDNS
	EventHTTP
	EventLease
)

// Event is one sink event in batchable form: a kind tag plus the inline
// payload for that kind. Only the field selected by Kind is meaningful;
// the others are zero values.
type Event struct {
	Kind  EventKind
	Flow  flow.Record
	DNS   dnssim.Entry
	HTTP  httplog.Entry
	Lease dhcp.Lease
}

// BatchSink is an optional fast path a Sink may implement. A producer
// that finds the interface delivers events through EventBatch in runs
// instead of one interface call per event, and calls Flush at stream
// boundaries (end of a trace day, end of input). The contract mirrors
// the per-event methods exactly:
//
//   - events arrive in the same global order the Sink methods would see
//     them (leases first within a day, then flows/DNS/HTTP in time order);
//   - each event is delivered exactly once, through exactly one path —
//     a producer never mixes EventBatch and per-event calls in one stream;
//   - the slice and its events are only valid for the duration of the
//     call: a sink must copy anything it retains;
//   - after Flush returns, every event delivered so far must be visible
//     to the sink's downstream consumers (a buffering sink drains its
//     open buffers; an unbuffered sink may treat it as a no-op).
type BatchSink interface {
	Sink
	EventBatch([]Event)
	Flush()
}

// batchEmitCap is the producer-side run length: Run/RunDays and
// logsink.Replay hand a BatchSink slices of at most this many events.
const batchEmitCap = 1024

// Batcher adapts per-event emission to the fastest delivery path its sink
// supports: for a BatchSink it accumulates events into runs of at most
// batchEmitCap and hands them over through EventBatch; for a plain Sink
// every method forwards directly with no buffering and no Event
// construction. Batcher itself implements Sink, so a producer wraps its
// output sink once and emits as usual, calling Flush at stream boundaries.
// Not safe for concurrent use.
type Batcher struct {
	sink Sink
	bs   BatchSink // non-nil when sink supports the batch fast path
	buf  []Event
	// epochs counts Flush calls — the stream boundaries a batch-capable
	// sink treats as epoch seals (the sharded pipeline publishes its
	// pending join-table delta at each one).
	epochs int64
}

// NewBatcher wraps sink, detecting the batch fast path once.
func NewBatcher(sink Sink) *Batcher {
	b := &Batcher{sink: sink}
	if bs, ok := sink.(BatchSink); ok {
		b.bs = bs
	}
	return b
}

func (b *Batcher) push(ev Event) {
	if b.buf == nil {
		b.buf = make([]Event, 0, batchEmitCap)
	}
	b.buf = append(b.buf, ev)
	if len(b.buf) == batchEmitCap {
		b.bs.EventBatch(b.buf)
		b.buf = b.buf[:0]
	}
}

// Flow implements Sink.
func (b *Batcher) Flow(r flow.Record) {
	if b.bs == nil {
		b.sink.Flow(r)
		return
	}
	b.push(Event{Kind: EventFlow, Flow: r})
}

// DNS implements Sink.
func (b *Batcher) DNS(e dnssim.Entry) {
	if b.bs == nil {
		b.sink.DNS(e)
		return
	}
	b.push(Event{Kind: EventDNS, DNS: e})
}

// HTTPMeta implements Sink.
func (b *Batcher) HTTPMeta(e httplog.Entry) {
	if b.bs == nil {
		b.sink.HTTPMeta(e)
		return
	}
	b.push(Event{Kind: EventHTTP, HTTP: e})
}

// Lease implements Sink.
func (b *Batcher) Lease(l dhcp.Lease) {
	if b.bs == nil {
		b.sink.Lease(l)
		return
	}
	b.push(Event{Kind: EventLease, Lease: l})
}

// Flush drains the open run and forwards the flush to a batch-capable
// sink; a no-op for plain sinks. Call at stream boundaries (end of input,
// end of a trace day). Each forwarded flush is an epoch boundary: a
// batch-capable sink must make every event delivered so far visible, and
// the sharded pipeline additionally seals its pending join-table delta
// into a published snapshot epoch there.
func (b *Batcher) Flush() {
	if b.bs == nil {
		return
	}
	if len(b.buf) > 0 {
		b.bs.EventBatch(b.buf)
		b.buf = b.buf[:0]
	}
	b.epochs++
	b.bs.Flush()
}

// Epochs returns the number of stream-boundary flushes forwarded so far
// (0 for a plain sink, which has no epoch concept).
func (b *Batcher) Epochs() int64 {
	if b.bs == nil {
		return 0
	}
	return b.epochs
}

// Deliver replays one event through sink's per-event interface — the
// shared fallback for producers whose consumer is not a BatchSink, and
// the per-event half of the "exactly one path" contract above.
func (e *Event) Deliver(sink Sink) {
	switch e.Kind {
	case EventFlow:
		sink.Flow(e.Flow)
	case EventDNS:
		sink.DNS(e.DNS)
	case EventHTTP:
		sink.HTTPMeta(e.HTTP)
	case EventLease:
		sink.Lease(e.Lease)
	}
}
