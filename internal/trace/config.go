// Package trace generates the synthetic campus workload that substitutes
// for the real (privacy-bound, unreleasable) residential-network capture.
//
// The generator simulates the residential population — students with
// phones, laptops, IoT devices and game consoles — through the four study
// months, driving per-day behavior from the campus calendar: the departure
// waves of March, the switch to Zoom classes on March 30, the lock-down
// surge in streaming, social media and gaming, and the distinct behavior of
// international students. It emits exactly the artifact types the real tap
// produced (flow records, DNS log entries, DHCP leases, HTTP metadata), in
// time order, so the measurement pipeline downstream is identical to one
// running on real data.
//
// Every behavioral constant is calibrated against a number or trend the
// paper reports; see profiles.go for the mapping.
package trace

import (
	"errors"
	"time"
)

// Config controls the generated population. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness. Same seed + same scale → identical
	// output.
	Seed int64
	// Scale multiplies the population (1.0 reproduces paper-scale
	// counts: ~32k peak devices, 6.5k post-shutdown users). Tests and
	// benches run at 0.01–0.05.
	Scale float64

	// Students is the resident student count at Scale 1.0.
	Students int
	// IntlFraction is the international share of the student body (§4.2
	// cites reports of about 25%).
	IntlFraction float64
	// HomeHeavyFraction is the share of international students whose
	// traffic is dominated by home-country services (the sub-population
	// the midpoint method can actually identify).
	HomeHeavyFraction float64

	// DomesticStayRate and IntlStayRate are the probabilities that a
	// student remains on campus through the lock-down. International
	// students stay at a higher rate (flights home vanished).
	DomesticStayRate float64
	IntlStayRate     float64
	// SwitchOwnerStayBoost multiplies the stay probability for Switch
	// owners (calibrates the 1,097 → 267 Switch population drop against
	// the 6,522 post-shutdown total).
	SwitchOwnerStayBoost float64

	// VisitorFraction adds short-lived guest devices (filtered by the
	// pipeline's 14-day rule).
	VisitorFraction float64
	// NewSwitchCount is how many brand-new Switch consoles appear in
	// April and May at Scale 1.0 (§5.3.2 reports 40).
	NewSwitchCount int

	// DNSTTL is the resolver answer TTL.
	DNSTTL time.Duration
	// LeaseTime is the DHCP lease duration.
	LeaseTime time.Duration

	// NoPandemic generates the counterfactual baseline: nobody departs,
	// classes stay in person, and every day behaves like the equivalent
	// February weekday (with a mild end-of-term uptick). This is the
	// stand-in for the paper's 2019 comparison year (§4.1: "Traffic in
	// April and May 2020 was 53% higher than in 2019").
	NoPandemic bool
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Scale:                1.0,
		Students:             15000,
		IntlFraction:         0.25,
		HomeHeavyFraction:    0.45,
		DomesticStayRate:     0.115,
		IntlStayRate:         0.26,
		SwitchOwnerStayBoost: 1.45,
		VisitorFraction:      0.05,
		NewSwitchCount:       40,
		DNSTTL:               5 * time.Minute,
		LeaseTime:            24 * time.Hour,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Scale <= 0 || c.Scale > 4:
		return errors.New("trace: Scale must be in (0, 4]")
	case c.Students <= 0:
		return errors.New("trace: Students must be positive")
	case c.IntlFraction < 0 || c.IntlFraction > 1:
		return errors.New("trace: IntlFraction outside [0,1]")
	case c.HomeHeavyFraction < 0 || c.HomeHeavyFraction > 1:
		return errors.New("trace: HomeHeavyFraction outside [0,1]")
	case c.DomesticStayRate < 0 || c.DomesticStayRate > 1 || c.IntlStayRate < 0 || c.IntlStayRate > 1:
		return errors.New("trace: stay rates outside [0,1]")
	case c.VisitorFraction < 0 || c.VisitorFraction > 1:
		return errors.New("trace: VisitorFraction outside [0,1]")
	}
	return nil
}

// scaled returns n scaled by the population factor, with a floor of zero.
func (c Config) scaled(n int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < 0 {
		return 0
	}
	return v
}
