package trace

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/universe"
)

// Sink receives the generated artifacts. Within one day, Lease events
// arrive first (in time order), followed by Flow/DNS/HTTPMeta events in
// global time order — the order the real capture would deliver them.
type Sink interface {
	Flow(flow.Record)
	DNS(dnssim.Entry)
	HTTPMeta(httplog.Entry)
	Lease(dhcp.Lease)
}

// Generator produces the synthetic campus workload.
type Generator struct {
	cfg      Config
	reg      *universe.Registry
	resolver *dnssim.Resolver
	dhcpSrv  *dhcp.Server
	devices  []*Device

	usPrefs   []svcPref
	usWeights []int
	homePrefs map[string][]svcPref
	homeWts   map[string][]int

	zoomPrefixes []netip.Prefix

	// batch is the reusable emission buffer for BatchSink consumers
	// (capacity batchEmitCap; empty between days).
	batch []Event
}

// New builds a generator. The same cfg and registry produce byte-identical
// output.
func New(cfg Config, reg *universe.Registry) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	srv, err := dhcp.NewServer(netip.MustParsePrefix("10.0.0.0/10"), cfg.LeaseTime)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:       cfg,
		reg:       reg,
		resolver:  dnssim.NewResolver(reg, cfg.DNSTTL),
		dhcpSrv:   srv,
		devices:   buildPopulation(cfg),
		homePrefs: make(map[string][]svcPref),
		homeWts:   make(map[string][]int),
	}
	g.usPrefs, g.homePrefs = buildPrefs(reg)
	g.usWeights = weightsOf(g.usPrefs)
	for code, prefs := range g.homePrefs {
		g.homeWts[code] = weightsOf(prefs)
	}
	for _, pi := range reg.Prefixes() {
		// Direct-IP media servers live in the published v4 ranges.
		if pi.Owner == "zoom" && pi.Prefix.Addr().Is4() {
			g.zoomPrefixes = append(g.zoomPrefixes, pi.Prefix)
		}
	}
	if len(g.zoomPrefixes) == 0 {
		return nil, fmt.Errorf("trace: registry has no zoom prefixes")
	}
	return g, nil
}

func weightsOf(prefs []svcPref) []int {
	w := make([]int, len(prefs))
	for i, p := range prefs {
		w[i] = p.weight
	}
	return w
}

// Devices exposes the population ground truth (for the accuracy experiment
// and tests). The slice aliases internal state; treat as read-only.
func (g *Generator) Devices() []*Device { return g.devices }

// Resolver returns the campus resolver's address (the destination of DNS
// traffic).
func (g *Generator) Resolver() netip.Addr { return g.reg.ResolverAddr() }

// ZoomPrefixes returns the address ranges standing in for Zoom's published
// IP list.
func (g *Generator) ZoomPrefixes() []netip.Prefix {
	return append([]netip.Prefix(nil), g.zoomPrefixes...)
}

// Run generates the full study window.
func (g *Generator) Run(sink Sink) error {
	return g.RunDays(sink, 0, campus.NumDays)
}

// RunDays generates days [from, to).
func (g *Generator) RunDays(sink Sink, from, to campus.Day) error {
	if from < 0 || to > campus.NumDays || from > to {
		return fmt.Errorf("trace: day range [%d,%d) outside study window", from, to)
	}
	for day := from; day < to; day++ {
		g.generateDay(day, sink)
	}
	return nil
}

// event is one time-stamped artifact inside a day buffer.
type event struct {
	t    time.Time
	seq  int // insertion order, the sort tie-breaker (stable order)
	flow *flow.Record
	dns  *dnssim.Entry
	http *httplog.Entry
}

// eventSlice sorts by time then insertion order — equivalent to a stable
// sort by time, without reflection on the hot path.
type eventSlice []event

func (s eventSlice) Len() int      { return len(s) }
func (s eventSlice) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s eventSlice) Less(i, j int) bool {
	if !s[i].t.Equal(s[j].t) {
		return s[i].t.Before(s[j].t)
	}
	return s[i].seq < s[j].seq
}

// dayState carries one day's shared generation context. day is the real
// calendar day (timestamps); behaviorDay drives every behavioral decision —
// in counterfactual (NoPandemic) mode it maps onto the matching February
// weekday so the whole window behaves pre-pandemic.
type dayState struct {
	day         campus.Day
	behaviorDay campus.Day
	start       time.Time
	end         time.Time
	hours       *[24]float64
	// seasonal is a mild end-of-term uptick applied in counterfactual
	// mode (ordinary years see slightly more traffic late in the term).
	seasonal float64
	events   []event
}

func (g *Generator) generateDay(day campus.Day, sink Sink) {
	behaviorDay := day
	seasonal := 1.0
	if g.cfg.NoPandemic {
		// day % 28 lands in February on the same weekday (28 = 4 weeks).
		behaviorDay = day % 28
		if campus.MonthOfDay(day) >= campus.April {
			seasonal = 1.04
		}
	}
	ds := &dayState{
		day:         day,
		behaviorDay: behaviorDay,
		start:       day.Time(),
		end:         day.Time().Add(24*time.Hour - time.Second),
		hours:       dayHourWeights(behaviorDay),
		seasonal:    seasonal,
	}
	// Batch-capable sinks get the same stream in slices (plus a Flush at
	// the day boundary); the delivery order is identical either way, so
	// the two paths are stream-equivalent (TestBatchDeliveryEquivalence).
	bs, batched := sink.(BatchSink)
	// Pass 1: decide who is active and lease addresses in deterministic
	// time order (device-index microsecond offsets keep the DHCP request
	// stream monotone).
	type activeDev struct {
		dev *Device
		rng *rand.Rand
		ip  netip.Addr
	}
	var actives []activeDev
	for i, d := range g.devices {
		if !d.Present(day) {
			continue
		}
		rng := rand.New(rand.NewSource(deviceDaySeed(g.cfg.Seed, d.Index, day)))
		if rng.Float64() >= activityP(d.Kind, behaviorDay) {
			continue
		}
		lease, err := g.dhcpSrv.Request(d.MAC, ds.start.Add(time.Duration(i)*time.Microsecond))
		if err != nil {
			continue // pool exhausted: device silent today
		}
		if batched {
			g.emitBatched(bs, Event{Kind: EventLease, Lease: lease})
		} else {
			sink.Lease(lease)
		}
		actives = append(actives, activeDev{dev: d, rng: rng, ip: lease.Addr})
	}
	// Pass 2: generate each active device's day.
	for _, a := range actives {
		g.deviceDay(ds, a.dev, a.rng, a.ip)
	}
	// Pass 3: deliver in time order.
	for i := range ds.events {
		ds.events[i].seq = i
	}
	sort.Sort(eventSlice(ds.events))
	if batched {
		for _, e := range ds.events {
			switch {
			case e.dns != nil:
				g.emitBatched(bs, Event{Kind: EventDNS, DNS: *e.dns})
			case e.flow != nil:
				g.emitBatched(bs, Event{Kind: EventFlow, Flow: *e.flow})
			case e.http != nil:
				g.emitBatched(bs, Event{Kind: EventHTTP, HTTP: *e.http})
			}
		}
		if len(g.batch) > 0 {
			bs.EventBatch(g.batch)
			g.batch = g.batch[:0]
		}
		bs.Flush()
		return
	}
	for _, e := range ds.events {
		switch {
		case e.dns != nil:
			sink.DNS(*e.dns)
		case e.flow != nil:
			sink.Flow(*e.flow)
		case e.http != nil:
			sink.HTTPMeta(*e.http)
		}
	}
}

// emitBatched buffers one event for a BatchSink, handing over a full
// slice every batchEmitCap events. The buffer is reused, honoring the
// borrow-only contract of EventBatch.
func (g *Generator) emitBatched(bs BatchSink, ev Event) {
	if g.batch == nil {
		g.batch = make([]Event, 0, batchEmitCap)
	}
	g.batch = append(g.batch, ev)
	if len(g.batch) == cap(g.batch) {
		bs.EventBatch(g.batch)
		g.batch = g.batch[:0]
	}
}

// deviceDaySeed derives a stable per-(device, day) RNG seed (splitmix64).
func deviceDaySeed(seed int64, index int, day campus.Day) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(index)*0xbf58476d1ce4e5b9 + uint64(day)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// at returns a concrete time within the day: the sampled hour plus uniform
// minutes/seconds.
func (g *Generator) at(ds *dayState, rng *rand.Rand, hour int) time.Time {
	return ds.start.Add(time.Duration(hour)*time.Hour +
		time.Duration(rng.Intn(3600))*time.Second +
		time.Duration(rng.Intn(1000))*time.Millisecond)
}

// flowSpec describes one flow to emit.
type flowSpec struct {
	domain   string
	start    time.Time
	dur      time.Duration
	bytes    int64 // responder (download) bytes
	proto    flow.Proto
	respPort uint16
	withDNS  bool
	// directAddr overrides DNS resolution (Zoom media servers connected
	// by address from the published list).
	directAddr netip.Addr
}

// emitFlow appends one flow (and possibly its DNS resolution and a small
// resolver flow) to the day buffer.
func (g *Generator) emitFlow(ds *dayState, rng *rand.Rand, dev *Device, devIP netip.Addr, spec flowSpec) {
	if spec.start.Before(ds.start) {
		spec.start = ds.start
	}
	if !spec.start.Before(ds.end) {
		spec.start = ds.end.Add(-time.Minute)
	}
	if spec.dur < time.Second {
		spec.dur = time.Second
	}
	if maxDur := ds.end.Sub(spec.start); spec.dur > maxDur {
		spec.dur = maxDur
	}

	server := spec.directAddr
	srcAddr := devIP
	if !server.IsValid() {
		// Dual-stack devices carry a share of traffic over IPv6 from
		// their SLAAC address; DNS queries still travel over IPv4.
		useV6 := dev.V6Capable && rng.Float64() < 0.25
		var entry dnssim.Entry
		var ok bool
		if useV6 {
			entry, ok = g.resolver.QueryAAAA(devIP, spec.domain, spec.start.Add(-300*time.Millisecond))
			if ok {
				srcAddr = dev.MAC.EUI64Addr(universe.ResidenceNetV6)
			}
		}
		if !ok {
			entry, ok = g.resolver.Query(devIP, spec.domain, spec.start.Add(-300*time.Millisecond))
		}
		if !ok {
			return // unregistered domain: nothing to emit
		}
		server = entry.Answer
		if spec.withDNS {
			e := entry
			ds.events = append(ds.events, event{t: e.Time, dns: &e})
			// A fraction of resolver lookups also show up as visible
			// UDP/53 flows to the campus resolver (never DNS-labeled —
			// they exercise the pipeline's unlabeled path).
			if rng.Float64() < 0.25 {
				ds.events = append(ds.events, event{t: e.Time, flow: &flow.Record{
					Start: e.Time, Duration: 40 * time.Millisecond,
					OrigAddr: devIP, OrigPort: uint16(32768 + rng.Intn(28000)),
					RespAddr: g.reg.ResolverAddr(), RespPort: 53,
					Proto:     flow.ProtoUDP,
					OrigBytes: 64, RespBytes: 220, OrigPkts: 1, RespPkts: 1,
					Service: "dns",
				}})
			}
		}
	}

	if spec.respPort == 0 {
		spec.respPort = 443
	}
	if spec.proto == 0 {
		spec.proto = flow.ProtoTCP
	}
	if spec.bytes < 256 {
		spec.bytes = 256
	}
	origBytes := spec.bytes/25 + int64(rng.Intn(2048))
	service := "tls"
	if spec.respPort == 80 {
		service = "http"
	}
	rec := &flow.Record{
		Start: spec.start, Duration: spec.dur,
		OrigAddr: srcAddr, OrigPort: uint16(32768 + rng.Intn(28000)),
		RespAddr: server, RespPort: spec.respPort,
		Proto:     spec.proto,
		OrigBytes: origBytes, RespBytes: spec.bytes,
		OrigPkts: origBytes/1200 + 1, RespPkts: spec.bytes/1380 + 1,
		Service: service,
	}
	rec.State = connStateFor(rec)
	ds.events = append(ds.events, event{t: rec.Start, flow: rec})
}

// connStateFor stamps a realistic conn_state mix: mostly clean SF closes
// with a small tail of aborts and still-open connections. Derived from the
// already-drawn ephemeral port so no extra randomness enters the stream.
func connStateFor(rec *flow.Record) flow.ConnState {
	if rec.Proto != flow.ProtoTCP {
		return flow.StateOther
	}
	switch v := rec.OrigPort % 1000; {
	case v < 8:
		return flow.StateRSTO
	case v < 12:
		return flow.StateRSTR
	case v < 20:
		return flow.StateS1
	default:
		return flow.StateSF
	}
}

// emitHTTPMeta appends a cleartext HTTP request's metadata plus its small
// port-80 flow.
func (g *Generator) emitHTTPMeta(ds *dayState, rng *rand.Rand, dev *Device, devIP netip.Addr, host, ua string, t time.Time) {
	if ua == "" {
		return
	}
	if t.Before(ds.start) {
		t = ds.start
	}
	if !t.Before(ds.end) {
		t = ds.end.Add(-time.Second)
	}
	e := &httplog.Entry{Time: t, Client: devIP, Host: host, UserAgent: ua}
	ds.events = append(ds.events, event{t: t, http: e})
	g.emitFlow(ds, rng, dev, devIP, flowSpec{
		domain: host, start: t, dur: 2 * time.Second,
		bytes: int64(2<<10 + rng.Intn(20<<10)), respPort: 80, withDNS: rng.Float64() < 0.5,
	})
}
