package trace

import (
	"math/rand"

	"repro/internal/campus"
	"repro/internal/devclass"
	"repro/internal/packet"
)

// Kind is the generator's ground-truth device kind (finer than the
// classifier's output type).
type Kind int

// Device kinds.
const (
	KindPhone Kind = iota
	KindLaptop
	KindDesktop
	KindIoT
	KindSwitch
	KindPlayStation
	KindXbox
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPhone:
		return "phone"
	case KindLaptop:
		return "laptop"
	case KindDesktop:
		return "desktop"
	case KindIoT:
		return "iot"
	case KindSwitch:
		return "switch"
	case KindPlayStation:
		return "playstation"
	case KindXbox:
		return "xbox"
	default:
		return "unknown"
	}
}

// TruthType maps a kind to the classifier type it should ideally resolve
// to (consoles are IoT for Figure 1's taxonomy).
func (k Kind) TruthType() devclass.Type {
	switch k {
	case KindPhone:
		return devclass.Mobile
	case KindLaptop, KindDesktop:
		return devclass.LaptopDesktop
	default:
		return devclass.IoT
	}
}

// Device is one simulated network device with its behavioral parameters.
type Device struct {
	// Index is the device's position in the population (stable across
	// runs for a given config).
	Index int
	MAC   packet.MAC
	Kind  Kind

	// Student context.
	Intl      bool
	HomeHeavy bool
	// HomeRegion is the universe region code of an international
	// student's home country ("" for domestic students).
	HomeRegion string
	// ArriveDay is the first day the device can appear (0 for most; new
	// Switches arrive in April/May; visitors arrive throughout).
	ArriveDay campus.Day
	// DepartDay is the first day the device is gone, or campus.NumDays if
	// it stays the whole window.
	DepartDay campus.Day

	// Stealth devices use randomized MACs and never emit cleartext
	// User-Agent metadata: they are the raw material of the paper's
	// "unclassified" class.
	Stealth bool
	// V6Capable devices carry a share of their traffic over IPv6 from
	// their SLAAC (EUI-64) residence address.
	V6Capable bool
	// UserAgent is the device's UA string when it does emit HTTP
	// metadata ("" for stealth devices and most IoT).
	UserAgent string
	// IoTPlatform names the universe IoT service whose backends this
	// device (kind IoT) contacts.
	IoTPlatform string

	// Intensity is a per-device multiplicative traffic factor (lognormal
	// around 1) giving Figure 2 its mean ≫ median tails.
	Intensity float64

	// Social/gaming behavior flags.
	FacebookUser  bool
	InstagramUser bool
	// TikTokAdoptMonth is the first study month the device uses TikTok,
	// or -1 for never (adoption grows across the window, matching the
	// rising n in Figure 6c).
	TikTokAdoptMonth int
	// SteamMonthly[m] reports whether this device plays Steam in study
	// month m (kind laptop/desktop only; drives Figure 7's n counts).
	SteamMonthly [campus.NumMonths]bool

	// desktopModeBrowser marks phones that sometimes present a desktop
	// User-Agent — the generator's source of affirmative
	// misclassification (the paper found 2/100).
	desktopModeBrowser bool
}

// Present reports whether the device is on campus on the given day.
func (d *Device) Present(day campus.Day) bool {
	return day >= d.ArriveDay && day < d.DepartDay
}

// Stays reports whether the device remains into the online term (the
// post-shutdown population's ground truth).
func (d *Device) Stays() bool {
	onlineDay, _ := campus.DayOf(campus.BreakEnd)
	return d.DepartDay > onlineDay
}

// iotPlatforms lists the universe IoT services devices are drawn from,
// with ownership weights and the OUI vendor their hardware reports.
var iotPlatforms = []struct {
	platform string
	vendor   string
	weight   int
}{
	{"roku", "Roku", 20},
	{"samsung-tv", "Samsung TV", 15},
	{"lg-tv", "LG TV", 10},
	{"sonos", "Sonos", 10},
	{"hue", "Philips Hue", 8},
	{"kasa", "TP-Link", 10},
	{"wyze", "Wyze", 8},
	{"ring", "Ring", 5},
	{"nest", "Nest Labs", 5},
	{"smartthings", "Samsung", 4},
	{"tuya", "Espressif", 3},
	{"ecobee", "Espressif", 2},
}

// phone and laptop fleets: vendor OUI name, UA string.
var phoneModels = []struct {
	vendor string
	ua     string
	weight int
}{
	{"Apple", "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X) AppleWebKit/605.1.15 Mobile/15E148", 55},
	{"Samsung Mobile", "Mozilla/5.0 (Linux; Android 10; SM-G973U) AppleWebKit/537.36 Chrome/80.0 Mobile", 20},
	{"OnePlus", "Mozilla/5.0 (Linux; Android 10; ONEPLUS A6013) AppleWebKit/537.36 Chrome/80.0 Mobile", 8},
	{"Xiaomi", "Mozilla/5.0 (Linux; Android 9; Mi 9T) AppleWebKit/537.36 Chrome/80.0 Mobile", 9},
	{"Huawei", "Mozilla/5.0 (Linux; Android 10; ELS-NX9) AppleWebKit/537.36 Chrome/80.0 Mobile", 8},
}

var laptopModels = []struct {
	vendor string
	ua     string
	weight int
}{
	{"Apple", "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3) AppleWebKit/605.1.15 Safari/605.1.15", 40},
	{"Intel", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/80.0", 25},
	{"Dell", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Edg/80.0", 15},
	{"HP", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Gecko/20100101 Firefox/73.0", 10},
	{"Lenovo", "Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/73.0", 10},
}

const desktopModeUA = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 Chrome/80.0"

// consoleUA maps console kinds to the UA their embedded browsers emit.
var consoleUA = map[Kind]string{
	KindSwitch:      "Mozilla/5.0 (Nintendo Switch; WebApplet) AppleWebKit/606.4",
	KindPlayStation: "Mozilla/5.0 (PlayStation 4 7.02) AppleWebKit/605.1.15",
	KindXbox:        "Mozilla/5.0 (Windows NT 10.0; Xbox; Xbox One) AppleWebKit/537.36 Edge/44",
}

// pickWeighted returns an index into weights proportional to weight.
func pickWeighted(rng *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}

// mintMAC builds a MAC in the given OUI with device-unique low bytes, or a
// locally administered (randomized) MAC when stealth.
func mintMAC(rng *rand.Rand, oui [3]byte, stealth bool) packet.MAC {
	var m packet.MAC
	if stealth {
		m[0] = byte(rng.Intn(256))&0xfc | 0x02 // local bit set, unicast
		for i := 1; i < 6; i++ {
			m[i] = byte(rng.Intn(256))
		}
		return m
	}
	m[0], m[1], m[2] = oui[0], oui[1], oui[2]
	for i := 3; i < 6; i++ {
		m[i] = byte(rng.Intn(256))
	}
	return m
}

func vendorOUI(rng *rand.Rand, vendor string) [3]byte {
	ouis := devclass.VendorOUIs(vendor)
	if len(ouis) == 0 {
		// Unregistered vendor: mint a plausible global OUI the registry
		// does not know (classifier will miss it, which is realistic).
		return [3]byte{byte(rng.Intn(128)) & 0xfc, byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	return ouis[rng.Intn(len(ouis))]
}
