package trace

import (
	"math"
	"math/rand"

	"repro/internal/campus"
)

// buildPopulation materializes the device population from the config,
// deterministically under cfg.Seed.
func buildPopulation(cfg Config) []*Device {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nStudents := cfg.scaled(cfg.Students)
	var devices []*Device

	breakDay, _ := campus.DayOf(campus.BreakStart)
	april1 := campus.FirstDay(campus.April)

	addDevice := func(d *Device) {
		d.Index = len(devices)
		devices = append(devices, d)
	}

	for s := 0; s < nStudents; s++ {
		intl := rng.Float64() < cfg.IntlFraction
		homeHeavy := intl && rng.Float64() < cfg.HomeHeavyFraction
		homeRegion := ""
		if intl {
			homeRegion = sampleHomeRegion(rng)
		}

		// Stay/leave decision, with Switch owners nudged toward staying
		// (calibrates the post-shutdown Switch count).
		ownsSwitch := rng.Float64() < 0.073
		stayP := cfg.DomesticStayRate
		if intl {
			stayP = cfg.IntlStayRate
		}
		if ownsSwitch {
			stayP = math.Min(1, stayP*cfg.SwitchOwnerStayBoost)
		}
		stays := rng.Float64() < stayP
		departDay := campus.Day(campus.NumDays)
		if !stays {
			// Draw even in counterfactual mode so both worlds share one
			// population (same students, devices and MACs), then discard:
			// nobody leaves a campus with no pandemic.
			d := sampleDeparture(rng)
			if !cfg.NoPandemic {
				departDay = d
			}
		}

		student := studentDevices{
			rng: rng, cfg: cfg,
			intl: intl, homeHeavy: homeHeavy, homeRegion: homeRegion,
			stays: stays, departDay: departDay,
		}

		// Phone: everyone has one.
		addDevice(student.phone())
		// Laptop: nearly everyone.
		if rng.Float64() < 0.97 {
			addDevice(student.laptopOrDesktop(KindLaptop))
		}
		// Second machine for some.
		if rng.Float64() < 0.08 {
			addDevice(student.laptopOrDesktop(KindDesktop))
		}
		// IoT devices for a minority of rooms.
		if rng.Float64() < 0.10 {
			n := 1 + poisson(rng, 0.5)
			for i := 0; i < n; i++ {
				addDevice(student.iot())
			}
		}
		// Consoles.
		if ownsSwitch {
			addDevice(student.console(KindSwitch))
		}
		if rng.Float64() < 0.040 {
			addDevice(student.console(KindPlayStation))
		}
		if rng.Float64() < 0.025 {
			addDevice(student.console(KindXbox))
		}
	}

	// Brand-new Switches appearing during lock-down (§5.3.2: 40) — a
	// pandemic phenomenon, absent from the counterfactual.
	newSwitches := cfg.scaled(cfg.NewSwitchCount)
	if cfg.NoPandemic {
		newSwitches = 0
	}
	for i := 0; i < newSwitches; i++ {
		arrive := april1 + campus.Day(rng.Intn(45))
		st := studentDevices{rng: rng, cfg: cfg, stays: true, departDay: campus.NumDays}
		d := st.console(KindSwitch)
		d.ArriveDay = arrive
		addDevice(d)
	}

	// Short-lived visitor devices, to exercise the 14-day filter.
	for i := 0; i < cfg.scaled(int(float64(cfg.Students)*cfg.VisitorFraction)); i++ {
		arrive := campus.Day(1 + rng.Intn(int(breakDay)-9))
		span := campus.Day(2 + rng.Intn(7))
		st := studentDevices{rng: rng, cfg: cfg, stays: false, departDay: arrive + span}
		d := st.phone()
		d.ArriveDay = arrive
		addDevice(d)
	}

	return devices
}

// sampleDeparture draws a leaver's departure day: a trickle in February, an
// early wave after the state of emergency, the main exodus between the WHO
// declaration and the break, the rest during break or (rarely) April.
func sampleDeparture(rng *rand.Rand) campus.Day {
	seD, _ := campus.DayOf(campus.StateOfEmergency)  // day 32 (Mar 4)
	whoD, _ := campus.DayOf(campus.PandemicDeclared) // Mar 11
	breakD, _ := campus.DayOf(campus.BreakStart)     // Mar 22
	breakEndD, _ := campus.DayOf(campus.BreakEnd)    // Mar 30
	r := rng.Float64()
	switch {
	case r < 0.03: // February trickle
		return campus.Day(5 + rng.Intn(int(seD)-5))
	case r < 0.15: // Mar 4–10: leaving before classes went remote
		return seD + campus.Day(rng.Intn(int(whoD-seD)))
	case r < 0.72: // Mar 11–21: the main wave
		return whoD + campus.Day(rng.Intn(int(breakD-whoD)))
	case r < 0.97: // during break
		return breakD + campus.Day(rng.Intn(int(breakEndD-breakD)))
	default: // lingered into April
		return breakEndD + campus.Day(rng.Intn(20))
	}
}

// studentDevices shares one student's context across their devices.
type studentDevices struct {
	rng        *rand.Rand
	cfg        Config
	intl       bool
	homeHeavy  bool
	homeRegion string
	stays      bool
	departDay  campus.Day
}

// stealthRates: probability a device uses a randomized MAC and never shows
// a User-Agent. Higher among the staying population — which is what makes
// "unclassified" dominate Figure 1 after the shutdown while keeping the
// overall classifier accuracy near the paper's 84/100.
func (s *studentDevices) stealthP(kind Kind) float64 {
	switch kind {
	case KindPhone:
		if s.stays {
			return 0.52
		}
		return 0.16
	case KindLaptop, KindDesktop:
		if s.stays {
			return 0.42
		}
		return 0.10
	default:
		return 0
	}
}

func (s *studentDevices) base(kind Kind) *Device {
	v6 := false
	switch kind {
	case KindPhone, KindLaptop, KindDesktop:
		v6 = s.rng.Float64() < 0.5
	}
	return &Device{
		Kind:       kind,
		Intl:       s.intl,
		HomeHeavy:  s.homeHeavy,
		HomeRegion: s.homeRegion,
		ArriveDay:  0,
		DepartDay:  s.departDay,
		Intensity:  logNormal(s.rng, 0, 0.8),
		V6Capable:  v6,
	}
}

func (s *studentDevices) phone() *Device {
	d := s.base(KindPhone)
	d.Stealth = s.rng.Float64() < s.stealthP(KindPhone)
	model := phoneModels[pickWeighted(s.rng, weightsOfPhones())]
	d.MAC = mintMAC(s.rng, vendorOUI(s.rng, model.vendor), d.Stealth)
	if !d.Stealth {
		d.UserAgent = model.ua
	}
	// Social media usage (monthly-n calibration in profiles.go). Keyed on
	// the home-heavy trait: the distinctly "international" social pattern
	// belongs to students oriented toward home-country services — the
	// same students the midpoint method identifies. Moderate
	// international students pattern like domestic ones, so the
	// identified/unidentified split stays behaviorally coherent.
	fbP, igP := 0.72, 0.65
	if s.homeHeavy {
		fbP, igP = 0.85, 0.66
	}
	d.FacebookUser = s.rng.Float64() < fbP
	d.InstagramUser = s.rng.Float64() < igP
	d.TikTokAdoptMonth = sampleTikTokAdoption(s.rng, s.homeHeavy)
	// A few phones browse in desktop mode: affirmative misclassification
	// fodder (§3's 2/100). A third of those do it *exclusively* — every
	// User-Agent they ever show looks like a desktop, so the classifier
	// affirmatively gets them wrong.
	d.desktopModeBrowser = !d.Stealth && s.rng.Float64() < 0.05
	if d.desktopModeBrowser && s.rng.Float64() < 0.5 {
		d.UserAgent = desktopModeUA
	}
	return d
}

func (s *studentDevices) laptopOrDesktop(kind Kind) *Device {
	d := s.base(kind)
	d.Stealth = s.rng.Float64() < s.stealthP(kind)
	model := laptopModels[pickWeighted(s.rng, weightsOfLaptops())]
	d.MAC = mintMAC(s.rng, vendorOUI(s.rng, model.vendor), d.Stealth)
	if !d.Stealth {
		d.UserAgent = model.ua
	}
	// Steam monthly activity (Figure 7's n counts), keyed like social
	// behavior on the home-heavy trait.
	probs := steamMonthlyDomestic
	if s.homeHeavy {
		probs = steamMonthlyIntl
	}
	for m := campus.February; m < campus.NumMonths; m++ {
		d.SteamMonthly[m] = s.rng.Float64() < probs[m]
	}
	return d
}

func (s *studentDevices) iot() *Device {
	d := s.base(KindIoT)
	d.Intensity = logNormal(s.rng, 0, 1.5) // heavy tail: Figure 2's IoT mean ≫ median
	weights := make([]int, len(iotPlatforms))
	for i, p := range iotPlatforms {
		weights[i] = p.weight
	}
	p := iotPlatforms[pickWeighted(s.rng, weights)]
	d.IoTPlatform = p.platform
	vendor := p.vendor
	// A third of IoT hardware ships with no-name ODM radios whose OUIs
	// the registry does not know — for those devices the Saidi signature
	// is the only classification evidence, which is what makes the
	// threshold choice matter (§3).
	if s.rng.Float64() < 0.35 {
		vendor = "generic-odm"
	}
	d.MAC = mintMAC(s.rng, vendorOUI(s.rng, vendor), false)
	// Streaming boxes and TVs sometimes reveal a UA.
	if (p.platform == "roku" || p.platform == "samsung-tv" || p.platform == "lg-tv") && s.rng.Float64() < 0.5 {
		switch p.platform {
		case "roku":
			d.UserAgent = "Roku/DVP-9.21 (519.21E04111A)"
		case "samsung-tv":
			d.UserAgent = "Mozilla/5.0 (SMART-TV; Linux; Tizen 5.5) AppleWebKit/537.36"
		case "lg-tv":
			d.UserAgent = "Mozilla/5.0 (Web0S; Linux/SmartTV) AppleWebKit/537.36"
		}
	}
	return d
}

func (s *studentDevices) console(kind Kind) *Device {
	d := s.base(kind)
	vendor := map[Kind]string{
		KindSwitch:      "Nintendo",
		KindPlayStation: "Sony Interactive",
		KindXbox:        "Microsoft Xbox",
	}[kind]
	d.MAC = mintMAC(s.rng, vendorOUI(s.rng, vendor), false)
	if s.rng.Float64() < 0.3 {
		d.UserAgent = consoleUA[kind]
	}
	return d
}

func weightsOfPhones() []int {
	w := make([]int, len(phoneModels))
	for i, m := range phoneModels {
		w[i] = m.weight
	}
	return w
}

func weightsOfLaptops() []int {
	w := make([]int, len(laptopModels))
	for i, m := range laptopModels {
		w[i] = m.weight
	}
	return w
}

// poisson draws a Poisson variate by inversion (fine for small lambda).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 100 {
			return k
		}
	}
}

// logNormal draws exp(N(mu, sigma)).
func logNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
