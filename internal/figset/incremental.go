package figset

import (
	"fmt"

	"repro/internal/core"
)

// Sealer is the slice of core.Pipeline / core.ShardedPipeline the
// incremental maintainer drives: seal a day into a mergeable partial
// aggregate, then re-render only the devices that day touched on top of the
// previous copy-on-write snapshot.
type Sealer interface {
	SealDay(label string) *core.DayPartial
	SnapshotDelta(prev *core.Dataset, dp *core.DayPartial) *core.Dataset
}

// Epoch is one sealed day's output: the day's partial aggregate, the
// copy-on-write snapshot it produced, the figure set recomputed over that
// snapshot, and the per-figure timings for bench accounting.
type Epoch struct {
	Partial   *core.DayPartial
	Dataset   *core.Dataset
	Results   *Results
	FigMS     map[string]float64
	FigWallMS float64
}

// Incremental maintains the figure set across day seals. Each Seal costs
// O(devices touched that day) on the snapshot side — untouched devices'
// records are shared with the previous epoch, not re-rendered — plus one
// figure recompute; a full Snapshot re-renders every device every epoch.
//
// Every Seal also merges all partials sealed so far and requires the merge
// to reproduce the snapshot's cumulative stats exactly. The figures are
// therefore provably computed over state the merged partial aggregates
// account for — the check runs in production, not just in tests.
type Incremental struct {
	sealer   Sealer
	params   Params
	base     core.Stats
	prev     *core.Dataset
	partials []*core.DayPartial
}

// NewIncremental returns a maintainer over s. base is the pipeline's stats
// at construction time (zero for a fresh pipeline) — the anchor the
// merged-partials consistency check adds day deltas onto.
func NewIncremental(s Sealer, p Params, base core.Stats) *Incremental {
	return &Incremental{sealer: s, params: p, base: base}
}

// Seal closes the day under label and returns its epoch: partial, delta
// snapshot, and recomputed figures. It errors (leaving the snapshot chain
// unadvanced) if the merged partials disagree with the snapshot's stats.
func (inc *Incremental) Seal(label string) (*Epoch, error) {
	dp := inc.sealer.SealDay(label)
	ds := inc.sealer.SnapshotDelta(inc.prev, dp)
	merged, err := core.MergeDayPartials(append(inc.partials, dp))
	if err != nil {
		return nil, err
	}
	if got, want := inc.base.Add(merged.Stats), ds.Stats; got != want {
		return nil, fmt.Errorf("figset: merged day partials %+v != snapshot stats %+v", got, want)
	}
	res, figMS, figWallMS := Compute(ds, inc.params)
	inc.partials = append(inc.partials, dp)
	inc.prev = ds
	return &Epoch{Partial: dp, Dataset: ds, Results: res, FigMS: figMS, FigWallMS: figWallMS}, nil
}

// Partials returns the day partials sealed so far, in seal order.
func (inc *Incremental) Partials() []*core.DayPartial {
	return append([]*core.DayPartial(nil), inc.partials...)
}
