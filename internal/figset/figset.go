// Package figset computes and renders the full figure/report set from a
// finalized (or snapshotted) core.Dataset. It is the single source of
// truth for every CSV artifact and the ASCII report: the batch CLI writes
// them to disk and the daemon serves them over HTTP, and because both go
// through the same writers the bytes are identical for the same dataset.
package figset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/anonymize"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// Params configures Compute.
type Params struct {
	// Scale is the population scale the dataset was produced at; reports
	// extrapolate counts to paper scale with it.
	Scale float64
	// Seed drives the accuracy experiment's device sampling.
	Seed int64
	// Truth is the generator's ground-truth device typing for the accuracy
	// experiment and IoT threshold sweep; nil skips neither (they just
	// score zero devices).
	Truth map[anonymize.DeviceID]devclass.Type
	// Workers bounds the figure pool (0 = GOMAXPROCS). Every figure is an
	// independent pure function writing its own Results slot, so the pool
	// size changes scheduling only, never output bytes.
	Workers int
}

// Results bundles every computed experiment for rendering.
type Results struct {
	Scale float64
	Fig1  experiments.Fig1Result
	Fig2  experiments.Fig2Result
	Fig3  experiments.Fig3Result
	Fig4  experiments.Fig4Result
	Fig5  experiments.Fig5Result
	Fig6  experiments.Fig6Result
	Fig7  experiments.Fig7Result
	Fig8  experiments.Fig8Result
	Head  experiments.HeadlineResult
	Pop   experiments.PopulationResult
	Acc   experiments.AccuracyResult

	// YoY is optional (requires a counterfactual baseline run); the caller
	// sets it after Compute when available.
	YoY         *experiments.YearOverYearResult
	CDNAblate   experiments.CDNAblationResult
	IoTSweep    []experiments.IoTThresholdPoint
	WorkPlay    experiments.WorkLeisureResult
	ZoomWknd    experiments.ZoomWeekendResult
	Convergence experiments.DiurnalConvergenceResult

	Stats core.Stats
}

// Compute runs every experiment over ds on a bounded worker pool: each
// figure is an independent pure function over the sealed Dataset writing
// its own Results slot. It returns per-figure wall times in milliseconds
// and the pool's overall wall time (on a multi-core host the max lane,
// not the sum) for bench reports.
func Compute(ds *core.Dataset, p Params) (*Results, map[string]float64, float64) {
	r := &Results{Scale: p.Scale, Stats: ds.Stats}
	tasks := []obs.TimedTask{
		{Name: "fig1", Run: func() { r.Fig1 = experiments.Fig1(ds) }},
		{Name: "fig2", Run: func() { r.Fig2 = experiments.Fig2(ds) }},
		{Name: "fig3", Run: func() { r.Fig3 = experiments.Fig3(ds) }},
		{Name: "fig4", Run: func() { r.Fig4 = experiments.Fig4(ds) }},
		{Name: "fig5", Run: func() { r.Fig5 = experiments.Fig5(ds) }},
		{Name: "fig6", Run: func() { r.Fig6 = experiments.Fig6(ds) }},
		{Name: "fig7", Run: func() { r.Fig7 = experiments.Fig7(ds) }},
		{Name: "fig8", Run: func() { r.Fig8 = experiments.Fig8(ds) }},
		{Name: "headline", Run: func() { r.Head = experiments.Headline(ds) }},
		{Name: "population", Run: func() { r.Pop = experiments.Population(ds) }},
		{Name: "accuracy", Run: func() { r.Acc = experiments.Accuracy(ds, p.Truth, 100, p.Seed) }},
		{Name: "cdn_ablation", Run: func() { r.CDNAblate = experiments.CDNAblation(ds) }},
		{Name: "iot_sweep", Run: func() {
			r.IoTSweep = experiments.IoTThresholdSweep(ds, p.Truth, []float64{0.25, 0.5, 0.75, 1.0})
		}},
		{Name: "work_leisure", Run: func() { r.WorkPlay = experiments.WorkLeisure(ds) }},
		{Name: "zoom_weekend", Run: func() { r.ZoomWknd = experiments.ZoomWeekend(ds) }},
		{Name: "convergence", Run: func() { r.Convergence = experiments.DiurnalConvergence(ds) }},
	}
	figMS, figWallMS := obs.RunTimedParallel(p.Workers, tasks)
	return r, figMS, figWallMS
}

// figureOrder is the canonical artifact list: CSV file names in the order
// the batch CLI writes them and the daemon's index lists them.
var figureOrder = []string{
	"fig1_active_devices.csv",
	"fig2_bytes_per_device.csv",
	"fig3_hour_of_week.csv",
	"fig4_population_medians.csv",
	"fig5_zoom_daily.csv",
	"fig6_social_durations.csv",
	"fig7_steam.csv",
	"fig8_switch_gameplay.csv",
	"ext_work_leisure.csv",
	"ext_zoom_hourly.csv",
}

// FigureNames returns the CSV artifact names in canonical order.
func FigureNames() []string { return append([]string(nil), figureOrder...) }

// WriteCSVs writes every figure CSV into dir (created by the caller),
// byte-identical to serving each name through WriteFigure.
func (r *Results) WriteCSVs(dir string) error {
	for _, name := range figureOrder {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := r.WriteFigure(f, name); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure renders one named figure CSV to w. Unknown names error.
func (r *Results) WriteFigure(w io.Writer, name string) error {
	switch name {
	case "fig1_active_devices.csv":
		return r.writeFig1(w)
	case "fig2_bytes_per_device.csv":
		return r.writeFig2(w)
	case "fig3_hour_of_week.csv":
		return r.writeFig3(w)
	case "fig4_population_medians.csv":
		return r.writeFig4(w)
	case "fig5_zoom_daily.csv":
		return r.writeFig5(w)
	case "fig6_social_durations.csv":
		return r.writeFig6(w)
	case "fig7_steam.csv":
		return r.writeFig7(w)
	case "fig8_switch_gameplay.csv":
		return r.writeFig8(w)
	case "ext_work_leisure.csv":
		return r.writeWorkLeisure(w)
	case "ext_zoom_hourly.csv":
		return r.writeZoomHourly(w)
	default:
		return fmt.Errorf("figset: unknown figure %q", name)
	}
}
