package figset

import (
	"fmt"
	"io"
	"math"

	"repro/internal/appsig"
	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/viz"
)

func siBytes(v float64) string { return viz.SIBytes(v) }

func dayLabels() []string {
	labels := make([]string, campus.NumDays)
	for d := campus.Day(0); d < campus.NumDays; d++ {
		labels[d] = d.String()
	}
	return labels
}

var monthLabels = []string{"February", "March", "April", "May"}

// Figure 1: active devices per day by type.
func (r *Results) writeFig1(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, ty := range devclass.Types {
		series := make([]float64, campus.NumDays)
		for d, v := range r.Fig1.ByType[ty] {
			series[d] = float64(v)
		}
		cols[ty.String()] = series
		order = append(order, ty.String())
	}
	return viz.WriteCSV(w, "date", dayLabels(), cols, order)
}

// Figure 2: mean and median bytes per device per day by type.
func (r *Results) writeFig2(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, ty := range devclass.Types {
		cols["mean_"+ty.String()] = r.Fig2.Mean[ty]
		cols["median_"+ty.String()] = r.Fig2.Median[ty]
		order = append(order, "mean_"+ty.String(), "median_"+ty.String())
	}
	return viz.WriteCSV(w, "date", dayLabels(), cols, order)
}

// Figure 3: normalized hour-of-week medians.
func (r *Results) writeFig3(w io.Writer) error {
	hourLabels := make([]string, campus.HoursPerWeek)
	for h := range hourLabels {
		hourLabels[h] = fmt.Sprintf("h%03d", h)
	}
	cols := map[string][]float64{}
	var order []string
	for w2, label := range r.Fig3.WeekLabels {
		cols[label] = r.Fig3.Normalized[w2]
		order = append(order, label)
	}
	return viz.WriteCSV(w, "hour", hourLabels, cols, order)
}

// Figure 4: population × device-group medians.
func (r *Results) writeFig4(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, grp := range []string{"mobile-desktop", "unclassified"} {
			if series := r.Fig4.Median[pop][grp]; series != nil {
				name := pop + "_" + grp
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	return viz.WriteCSV(w, "date", dayLabels(), cols, order)
}

// Figure 5: daily aggregate Zoom.
func (r *Results) writeFig5(w io.Writer) error {
	return viz.WriteCSV(w, "date", dayLabels(),
		map[string][]float64{"zoom_bytes": r.Fig5.Bytes}, []string{"zoom_bytes"})
}

// Figure 6: monthly summaries per app/population.
func (r *Results) writeFig6(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, app := range appsig.SocialMediaApps {
		for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
			sums := r.Fig6.Summary[app][pop]
			for _, stat := range []string{"n", "p1", "q1", "median", "q3", "p95", "p99"} {
				name := fmt.Sprintf("%s_%s_%s", app, pop, stat)
				series := make([]float64, campus.NumMonths)
				for m := campus.February; m < campus.NumMonths; m++ {
					s := sums[m]
					switch stat {
					case "n":
						series[m] = float64(s.N)
					case "p1":
						series[m] = s.P1
					case "q1":
						series[m] = s.Q1
					case "median":
						series[m] = s.Median
					case "q3":
						series[m] = s.Q3
					case "p95":
						series[m] = s.P95
					case "p99":
						series[m] = s.P99
					}
				}
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	return viz.WriteCSV(w, "month", monthLabels, cols, order)
}

// Figure 7: steam bytes and connections summaries.
func (r *Results) writeFig7(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, metric := range []string{"bytes", "connections"} {
			sums := r.Fig7.Bytes[pop]
			if metric == "connections" {
				sums = r.Fig7.Connections[pop]
			}
			for _, stat := range []string{"n", "q1", "median", "q3", "p95"} {
				name := fmt.Sprintf("steam_%s_%s_%s", metric, pop, stat)
				series := make([]float64, campus.NumMonths)
				for m := campus.February; m < campus.NumMonths; m++ {
					s := sums[m]
					switch stat {
					case "n":
						series[m] = float64(s.N)
					case "q1":
						series[m] = s.Q1
					case "median":
						series[m] = s.Median
					case "q3":
						series[m] = s.Q3
					case "p95":
						series[m] = s.P95
					}
				}
				cols[name] = series
				order = append(order, name)
			}
		}
	}
	return viz.WriteCSV(w, "month", monthLabels, cols, order)
}

// Figure 8: switch gameplay moving average.
func (r *Results) writeFig8(w io.Writer) error {
	return viz.WriteCSV(w, "date", dayLabels(),
		map[string][]float64{
			"gameplay_raw":    r.Fig8.GameplayRaw,
			"gameplay_3d_avg": r.Fig8.GameplayAvg,
		}, []string{"gameplay_raw", "gameplay_3d_avg"})
}

// Extension: work/leisure category shares per month and population.
func (r *Results) writeWorkLeisure(w io.Writer) error {
	cols := map[string][]float64{}
	var order []string
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		shares := r.WorkPlay.Share[pop]
		for g := core.CategoryGroup(0); g < core.NumGroups; g++ {
			name := pop + "_" + g.String()
			series := make([]float64, campus.NumMonths)
			for m := campus.February; m < campus.NumMonths; m++ {
				series[m] = shares[m][g]
			}
			cols[name] = series
			order = append(order, name)
		}
	}
	return viz.WriteCSV(w, "month", monthLabels, cols, order)
}

// Extension: Zoom hour-of-day, weekday vs weekend (online term).
func (r *Results) writeZoomHourly(w io.Writer) error {
	hod := make([]string, 24)
	for h := range hod {
		hod[h] = fmt.Sprintf("%02d:00", h)
	}
	return viz.WriteCSV(w, "hour", hod,
		map[string][]float64{
			"weekday": r.ZoomWknd.WeekdayHourly[:],
			"weekend": r.ZoomWknd.WeekendHourly[:],
		}, []string{"weekday", "weekend"})
}

// Report renders the ASCII report.
func (r *Results) Report(w io.Writer) error {
	labels := dayLabels()
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	atScale := func(v float64) string {
		return fmt.Sprintf("%.0f (≈%.0f at paper scale)", v, v/r.Scale)
	}

	p("==============================================================")
	p(" Locked-In during Lock-Down — reproduction report (scale %.3g)", r.Scale)
	p("==============================================================")
	p("")
	p("Pipeline: %d flows processed, %d tap-dropped, %d unattributed, %d unlabeled",
		r.Stats.FlowsProcessed, r.Stats.FlowsTapDropped, r.Stats.FlowsUnattributed, r.Stats.FlowsUnlabeled)
	p("          %s total, %d DNS entries, %d leases, %d HTTP metadata entries",
		siBytes(float64(r.Stats.BytesProcessed)), r.Stats.DNSEntries, r.Stats.Leases, r.Stats.HTTPEntries)
	p("")

	p("— Figure 1: active devices per day by type —")
	p("  peak %s on %v (paper: 32,019); low %s on %v (paper: 4,973)",
		atScale(float64(r.Fig1.Peak)), r.Fig1.PeakDay, atScale(float64(r.Fig1.Low)), r.Fig1.LowDay)
	chart := viz.Chart{
		Title: "  active devices/day (all types)", Height: 10, Width: 60,
		Format: func(v float64) string { return fmt.Sprintf("%.0f", v) },
	}
	total := make([]float64, campus.NumDays)
	for d, v := range r.Fig1.Total {
		total[d] = float64(v)
	}
	mob := make([]float64, campus.NumDays)
	unc := make([]float64, campus.NumDays)
	for d := range mob {
		mob[d] = float64(r.Fig1.ByType[devclass.Mobile][d])
		unc[d] = float64(r.Fig1.ByType[devclass.Unknown][d])
	}
	if err := chart.Render(w, labels, map[string][]float64{"total": total, "mobile": mob, "unclassified": unc},
		[]string{"total", "mobile", "unclassified"}); err != nil {
		return err
	}
	p("")

	p("— Figure 2: bytes per active device (mid-February vs mid-May) —")
	febDay, mayDay := campus.Day(12), campus.FirstDay(campus.May)+5
	for _, ty := range devclass.Types {
		p("  %-18s Feb: mean %9s median %9s | May: mean %9s median %9s", ty.String(),
			siBytes(r.Fig2.Mean[ty][febDay]), siBytes(r.Fig2.Median[ty][febDay]),
			siBytes(r.Fig2.Mean[ty][mayDay]), siBytes(r.Fig2.Median[ty][mayDay]))
	}
	p("")

	p("— Figure 3: normalized median traffic per device per hour of week —")
	for wk, label := range r.Fig3.WeekLabels {
		peak := 0.0
		for _, v := range r.Fig3.Normalized[wk] {
			peak = math.Max(peak, v)
		}
		p("  %-18s devices=%5d peak=%5.1f×min", label, r.Fig3.Devices[wk], peak)
	}
	p("")

	p("— Figure 4: median daily bytes (excl. Zoom), post-shutdown users —")
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		for _, grp := range []string{"mobile-desktop", "unclassified"} {
			if series := r.Fig4.Median[pop][grp]; series != nil {
				p("  %-13s %-14s n=%4d Feb=%9s May=%9s", pop, grp, r.Fig4.N[pop][grp],
					siBytes(series[febDay]), siBytes(series[mayDay]))
			}
		}
	}
	p("")

	p("— Figure 5: daily aggregate Zoom traffic (post-shutdown users) —")
	p("  peak %s on %v (paper: ≈600 GB at full scale → %s at this scale)",
		siBytes(r.Fig5.Peak), r.Fig5.PeakDay, siBytes(600*(1<<30)*r.Scale))
	p("  online-term weekday mean %s vs weekend mean %s",
		siBytes(r.Fig5.WeekdayMean), siBytes(r.Fig5.WeekendMean))
	if err := (viz.Chart{Title: "  zoom bytes/day", Height: 8, Width: 60}).Render(w, labels,
		map[string][]float64{"zoom": r.Fig5.Bytes}, []string{"zoom"}); err != nil {
		return err
	}
	p("")

	p("— Figure 6: monthly mobile session hours (median [IQR], by population) —")
	for _, app := range appsig.SocialMediaApps {
		for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
			sums := r.Fig6.Summary[app][pop]
			line := fmt.Sprintf("  %-10s %-13s", app, pop)
			for m := campus.February; m < campus.NumMonths; m++ {
				s := sums[m]
				line += fmt.Sprintf(" | %s n=%-3d med=%5.2fh", m.String()[:3], s.N, s.Median)
			}
			p("%s", line)
		}
	}
	p("")

	p("— Figure 7: monthly Steam usage per device (by population) —")
	for _, pop := range []string{experiments.PopDomestic, experiments.PopInternational} {
		b, c := r.Fig7.Bytes[pop], r.Fig7.Connections[pop]
		line := fmt.Sprintf("  %-13s", pop)
		for m := campus.February; m < campus.NumMonths; m++ {
			line += fmt.Sprintf(" | %s n=%-3d %8s %4.0f conns", m.String()[:3], b[m].N, siBytes(b[m].Median), c[m].Median)
		}
		p("%s", line)
	}
	p("")

	p("— Figure 8: Nintendo Switch gameplay (3-day moving average) —")
	p("  switches pre-shutdown %s (paper: 1,097); post %s (paper: 267 + 40 new); new %s (paper: 40)",
		atScale(float64(r.Fig8.PreShutdown)), atScale(float64(r.Fig8.PostShutdown)), atScale(float64(r.Fig8.NewSwitches)))
	if err := (viz.Chart{Title: "  gameplay bytes/day (3d avg)", Height: 8, Width: 60}).Render(w, labels,
		map[string][]float64{"gameplay": r.Fig8.GameplayAvg}, []string{"gameplay"}); err != nil {
		return err
	}
	p("")

	p("— §4.1 headline results (post-shutdown users) —")
	p("  traffic growth Feb→Apr/May: %+.0f%% (paper: +58%%)", r.Head.TrafficGrowth*100)
	p("  distinct sites growth:      %+.0f%% (paper: +34%%)", r.Head.DistinctSiteGrowth*100)
	p("  weekend dip pre/post:       %.0f%% / %.0f%% (persist, unlike Feldmann et al.)",
		r.Head.WeekendDipPre*100, r.Head.WeekendDipPost*100)
	p("  post-shutdown users:        %s (paper: 6,522)", atScale(float64(r.Head.PostShutdownUsers)))
	p("")

	p("— §4.2 population split —")
	p("  international: %s (paper: 1,022); share of identified: %.0f%% (paper: 18%%)",
		atScale(float64(r.Pop.International)), r.Pop.IntlShare*100)
	p("")

	p("— §3 classifier accuracy (100 sampled devices vs ground truth) —")
	p("  correct %d, conservative omissions %d, affirmative errors %d (paper: 84/14/2)",
		r.Acc.Correct, r.Acc.Omissions, r.Acc.Affirmative)
	p("")

	p("— Ablations and extensions —")
	p("  CDN exclusion (§4.2): international %d with exclusion vs %d without; %d flipped domestic",
		r.CDNAblate.IntlExcluded, r.CDNAblate.IntlIncluded, r.CDNAblate.FlippedToDomestic)
	p("  Saidi threshold sweep (§3):")
	for _, pt := range r.IoTSweep {
		p("    threshold %.2f: %5d IoT devices, %d correct / %d omissions / %d affirmative",
			pt.Threshold, pt.IoTCount, pt.Correct, pt.Omissions, pt.Affirmative)
	}
	dom := r.WorkPlay.Share[experiments.PopDomestic]
	p("  work/leisure shares (domestic): Feb work %.1f%% video %.1f%% | Apr work %.1f%% video %.1f%%",
		dom[campus.February][core.GroupWork]*100, dom[campus.February][core.GroupVideo]*100,
		dom[campus.April][core.GroupWork]*100, dom[campus.April][core.GroupVideo]*100)
	p("  weekend Zoom peak at hour %d (§5.1's afternoon bump, \"not shown\" in the paper)",
		r.ZoomWknd.WeekendPeakHour)
	p("  diurnal convergence (§2 vs Feldmann et al.): similarities %v → converged=%v",
		fmtSims(r.Convergence.Similarity), r.Convergence.Converged)
	if r.YoY != nil {
		p("  year-over-year (counterfactual baseline): %+.0f%% (paper: +53%% vs 2019)", r.YoY.Growth*100)
	}
	return nil
}

func fmtSims(sims []float64) string {
	out := "["
	for i, s := range sims {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", s)
	}
	return out + "]"
}
