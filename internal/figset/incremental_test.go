package figset

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/universe"
)

var incTestKey = []byte("figset-incremental-key-012345678")

func incTestGen(t testing.TB, reg *universe.Registry) *trace.Generator {
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.02
	cfg.Seed = 1
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// renderAll renders every figure CSV plus the report into one byte slice —
// the full artifact surface two Results are compared on.
func renderAll(t testing.TB, r *Results) []byte {
	var buf bytes.Buffer
	for _, name := range FigureNames() {
		if err := r.WriteFigure(&buf, name); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Report(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalMatchesFullCompute pins the incremental maintainer's
// contract: at every day seal, the figures computed over the copy-on-write
// delta snapshot render byte-identically to figures computed over a full
// snapshot of the same pipeline — across the whole artifact surface (every
// CSV and the report).
func TestIncrementalMatchesFullCompute(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewPipeline(reg, core.Options{Key: incTestKey})
	if err != nil {
		t.Fatal(err)
	}
	g := incTestGen(t, reg)
	params := Params{Scale: 0.02, Seed: 1}
	inc := NewIncremental(pipe, params, core.Stats{})

	for day := campus.Day(40); day < 44; day++ {
		if err := g.RunDays(pipe, day, day+1); err != nil {
			t.Fatal(err)
		}
		ep, err := inc.Seal(fmt.Sprintf("day-%03d", day))
		if err != nil {
			t.Fatal(err)
		}
		full, _, _ := Compute(pipe.Snapshot(), params)
		if !bytes.Equal(renderAll(t, ep.Results), renderAll(t, full)) {
			t.Fatalf("day %d: incremental figures differ from full-snapshot figures", day)
		}
	}
	if got := len(inc.Partials()); got != 4 {
		t.Fatalf("maintainer holds %d partials, want 4", got)
	}
}

// benchmarkEpoch times one daemon epoch publish with realistic accumulated
// state (three days already ingested, the fourth just streamed in):
// full = Snapshot + Compute (the pre-incremental daemon's per-epoch cost),
// incremental = SealDay + SnapshotDelta + Compute.
func benchmarkEpoch(b *testing.B, incremental bool) {
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	params := Params{Scale: 0.02, Seed: 1}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pipe, err := core.NewPipeline(reg, core.Options{Key: incTestKey})
		if err != nil {
			b.Fatal(err)
		}
		g := incTestGen(b, reg)
		inc := NewIncremental(pipe, params, core.Stats{})
		for day := campus.Day(40); day < 43; day++ {
			if err := g.RunDays(pipe, day, day+1); err != nil {
				b.Fatal(err)
			}
			if incremental {
				if _, err := inc.Seal(fmt.Sprintf("day-%03d", day)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := g.RunDays(pipe, 43, 44); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if incremental {
			if _, err := inc.Seal("day-043"); err != nil {
				b.Fatal(err)
			}
		} else {
			Compute(pipe.Snapshot(), params)
		}
	}
}

func BenchmarkEpochFullSnapshot(b *testing.B) { benchmarkEpoch(b, false) }
func BenchmarkEpochIncremental(b *testing.B)  { benchmarkEpoch(b, true) }
