package zeeklog

import (
	"io"
	"net/netip"
	"strconv"

	"repro/internal/decodeerr"
	"repro/internal/flow"
)

// ConnSchema is the subset of Zeek's conn.log that the pipeline consumes.
var ConnSchema = Schema{
	Path: "conn",
	Fields: []Field{
		{"ts", "time"},
		{"id.orig_h", "addr"},
		{"id.orig_p", "port"},
		{"id.resp_h", "addr"},
		{"id.resp_p", "port"},
		{"proto", "enum"},
		{"service", "string"},
		{"conn_state", "string"},
		{"duration", "interval"},
		{"orig_bytes", "count"},
		{"resp_bytes", "count"},
		{"orig_pkts", "count"},
		{"resp_pkts", "count"},
	},
}

// ConnWriter writes flow records as a Zeek conn.log.
type ConnWriter struct {
	w *Writer
}

// NewConnWriter returns a conn.log writer on w.
func NewConnWriter(w io.Writer) *ConnWriter {
	return &ConnWriter{w: NewWriter(w, ConnSchema)}
}

// Write emits one flow record.
func (c *ConnWriter) Write(r flow.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	return c.w.Write([]string{
		FormatTime(r.Start),
		r.OrigAddr.String(),
		strconv.Itoa(int(r.OrigPort)),
		r.RespAddr.String(),
		strconv.Itoa(int(r.RespPort)),
		r.Proto.String(),
		FormatString(r.Service),
		r.State.String(),
		FormatInterval(r.Duration),
		FormatCount(r.OrigBytes),
		FormatCount(r.RespBytes),
		FormatCount(r.OrigPkts),
		FormatCount(r.RespPkts),
	})
}

// Count returns the number of records written.
func (c *ConnWriter) Count() int { return c.w.Count() }

// Close flushes the log.
func (c *ConnWriter) Close() error { return c.w.Close() }

// ConnReader reads a conn.log back into flow records.
type ConnReader struct {
	r *Reader
}

// NewConnReader validates the header of r and returns a reader.
func NewConnReader(r io.Reader) (*ConnReader, error) {
	rd, err := NewReader(r, ConnSchema)
	if err != nil {
		return nil, err
	}
	return &ConnReader{r: rd}, nil
}

// Next returns the next record or io.EOF. Failures are classified
// (*decodeerr.Error): bad literals are malformed, ports or counts outside
// their domain are out-of-range, and a record that parses but fails
// semantic validation is out-of-range too.
func (c *ConnReader) Next() (flow.Record, error) {
	values, err := c.r.Next()
	if err != nil {
		return flow.Record{}, err
	}
	line := c.r.Line()
	var rec flow.Record
	if rec.Start, err = ParseTime(values[0]); err != nil {
		return rec, err
	}
	if rec.OrigAddr, err = netip.ParseAddr(values[1]); err != nil {
		return rec, decodeerr.Newf(decodeerr.Malformed, "conn", line, "bad orig addr %q: %w", values[1], err)
	}
	op, err := strconv.ParseUint(values[2], 10, 16)
	if err != nil {
		return rec, decodeerr.Newf(decodeerr.NumericClass(err), "conn", line, "bad orig port %q: %w", values[2], err)
	}
	rec.OrigPort = uint16(op)
	if rec.RespAddr, err = netip.ParseAddr(values[3]); err != nil {
		return rec, decodeerr.Newf(decodeerr.Malformed, "conn", line, "bad resp addr %q: %w", values[3], err)
	}
	rp, err := strconv.ParseUint(values[4], 10, 16)
	if err != nil {
		return rec, decodeerr.Newf(decodeerr.NumericClass(err), "conn", line, "bad resp port %q: %w", values[4], err)
	}
	rec.RespPort = uint16(rp)
	if rec.Proto, err = flow.ParseProto(values[5]); err != nil {
		return rec, decodeerr.New(decodeerr.Malformed, "conn", line, err)
	}
	rec.Service = ParseString(values[6])
	rec.State = flow.ParseConnState(values[7])
	if rec.Duration, err = ParseInterval(values[8]); err != nil {
		return rec, err
	}
	if rec.OrigBytes, err = ParseCount(values[9]); err != nil {
		return rec, err
	}
	if rec.RespBytes, err = ParseCount(values[10]); err != nil {
		return rec, err
	}
	if rec.OrigPkts, err = ParseCount(values[11]); err != nil {
		return rec, err
	}
	if rec.RespPkts, err = ParseCount(values[12]); err != nil {
		return rec, err
	}
	return rec, decodeerr.New(decodeerr.OutOfRange, "conn", line, rec.Validate())
}

// Raw returns the data line behind the most recent Next.
func (c *ConnReader) Raw() string { return c.r.Raw() }

// Line returns the input line number of the most recent Next.
func (c *ConnReader) Line() int { return c.r.Line() }
