package zeeklog

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/decodeerr"
)

// testLogWith renders a valid header for testSchema followed by the given
// raw data rows.
func testLogWith(t *testing.T, rows ...string) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Splice the rows in before the #close trailer.
	out := buf.String()
	idx := strings.Index(out, "#close")
	if idx < 0 {
		t.Fatal("no #close trailer")
	}
	return out[:idx] + strings.Join(rows, "\n") + "\n" + out[idx:]
}

// TestRowArityClassification pins the decode-error taxonomy on the TSV
// layer: rows with too few values are truncated records, rows with too
// many are malformed, and empty fields are not errors at all (Zeek writes
// them as the empty string between tabs).
func TestRowArityClassification(t *testing.T) {
	valid := FormatTime(time.Date(2020, time.March, 11, 12, 0, 0, 0, time.UTC))
	cases := []struct {
		name      string
		row       string
		wantClass decodeerr.Class
		wantOK    bool
	}{
		{"short row", valid + "\talpha", decodeerr.Truncated, false},
		{"single field", valid, decodeerr.Truncated, false},
		{"long row", valid + "\talpha\t42\textra", decodeerr.Malformed, false},
		{"way too long", valid + "\talpha\t42\ta\tb\tc", decodeerr.Malformed, false},
		{"empty middle field", valid + "\t\t42", 0, true},
		{"all empty fields", "\t\t", 0, true},
		{"unset markers", "-\t-\t-", 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(strings.NewReader(testLogWith(t, tc.row)), testSchema)
			if err != nil {
				t.Fatal(err)
			}
			vals, err := r.Next()
			if tc.wantOK {
				if err != nil {
					t.Fatalf("Next: %v, want accepted row", err)
				}
				if len(vals) != len(testSchema.Fields) {
					t.Fatalf("got %d values, want %d", len(vals), len(testSchema.Fields))
				}
				return
			}
			if err == nil {
				t.Fatal("Next accepted a bad-arity row")
			}
			// The typed error carries the class, and the legacy sentinel
			// still matches so existing errors.Is callers keep working.
			class, ok := decodeerr.ClassOf(err)
			if !ok || class != tc.wantClass {
				t.Errorf("class = %v (typed %v), want %v", class, ok, tc.wantClass)
			}
			if !errors.Is(err, ErrFieldCount) {
				t.Errorf("err = %v, want wrapped ErrFieldCount", err)
			}
			// The raw line and its position survive for quarantine.
			if r.Raw() != tc.row {
				t.Errorf("Raw() = %q, want %q", r.Raw(), tc.row)
			}
			if r.Line() <= 0 {
				t.Errorf("Line() = %d, want positive", r.Line())
			}
			// The reader itself stays usable: the stream ends cleanly.
			if _, err := r.Next(); err != io.EOF {
				t.Errorf("after bad row: %v, want EOF", err)
			}
		})
	}
}

// TestNumericClassification pins the parse-helper taxonomy: garbage is
// malformed, out-of-range values are their own class (the oversized-field
// corruption shape), and valid values carry no error.
func TestNumericClassification(t *testing.T) {
	if _, err := ParseCount("not-a-number"); err == nil {
		t.Fatal("ParseCount accepted garbage")
	} else if class, _ := decodeerr.ClassOf(err); class != decodeerr.Malformed {
		t.Errorf("garbage count class = %v, want malformed", class)
	}
	if _, err := ParseCount("99999999999999999999999"); err == nil {
		t.Fatal("ParseCount accepted an out-of-range value")
	} else if class, _ := decodeerr.ClassOf(err); class != decodeerr.OutOfRange {
		t.Errorf("oversized count class = %v, want out_of_range", class)
	}
	if _, err := ParseTime("1583020800.notatime"); err == nil {
		t.Fatal("ParseTime accepted garbage")
	} else if class, _ := decodeerr.ClassOf(err); class != decodeerr.Malformed {
		t.Errorf("garbage time class = %v, want malformed", class)
	}
	if _, err := ParseCount("42"); err != nil {
		t.Fatalf("ParseCount(42): %v", err)
	}
}
