package zeeklog

import (
	"strings"
	"testing"
)

// FuzzConnReader feeds arbitrary text through the conn.log reader: it must
// never panic, and every record it accepts must validate.
func FuzzConnReader(f *testing.F) {
	valid := "#separator \\x09\n#path\tconn\n" +
		"#fields\tts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tproto\tservice\tconn_state\tduration\torig_bytes\tresp_bytes\torig_pkts\tresp_pkts\n" +
		"#types\ttime\taddr\tport\taddr\tport\tenum\tstring\tstring\tinterval\tcount\tcount\tcount\tcount\n" +
		"1583020800.000000\t10.0.0.1\t50000\t23.0.0.1\t443\ttcp\ttls\tSF\t1.500000\t100\t2000\t3\t4\n"
	f.Add(valid)
	f.Add("")
	f.Add("#fields\tonly")

	f.Fuzz(func(t *testing.T, input string) {
		r, err := NewConnReader(strings.NewReader(input))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			rec, err := r.Next()
			if err != nil {
				return
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("reader accepted invalid record: %v", err)
			}
		}
	})
}
