// Package zeeklog reads and writes Zeek-style tab-separated log files: a
// commented header declaring the path, field names and types, one record
// per line, and the Zeek conventions for unset ("-") and empty ("(empty)")
// values. The campus pipeline's inputs (conn, dhcp, dns, http logs) all use
// this envelope, mirroring the format the real measurement system consumed.
package zeeklog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/decodeerr"
)

// Zeek value conventions.
const (
	Separator = "\t"
	Unset     = "-"
	Empty     = "(empty)"
)

// Errors returned by the reader.
var (
	ErrBadHeader    = errors.New("zeeklog: malformed header")
	ErrFieldCount   = errors.New("zeeklog: wrong field count")
	ErrTypeMismatch = errors.New("zeeklog: header types do not match schema")
)

// Schema describes one log type: its Zeek path and ordered field
// name/type pairs.
type Schema struct {
	Path   string
	Fields []Field
}

// Field is one column.
type Field struct {
	Name string
	Type string // Zeek type name: time, interval, addr, port, count, int, string, bool, double
}

// Writer emits records under a schema.
type Writer struct {
	w      *bufio.Writer
	schema Schema
	wrote  bool
	count  int
}

// NewWriter returns a writer for the given schema. The header is written on
// the first record (or at Close for an empty log).
func NewWriter(w io.Writer, schema Schema) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), schema: schema}
}

func (w *Writer) writeHeader() error {
	names := make([]string, len(w.schema.Fields))
	types := make([]string, len(w.schema.Fields))
	for i, f := range w.schema.Fields {
		names[i], types[i] = f.Name, f.Type
	}
	var sb strings.Builder
	sb.WriteString("#separator \\x09\n")
	sb.WriteString("#set_separator\t,\n")
	sb.WriteString("#empty_field\t(empty)\n")
	sb.WriteString("#unset_field\t-\n")
	fmt.Fprintf(&sb, "#path\t%s\n", w.schema.Path)
	fmt.Fprintf(&sb, "#fields\t%s\n", strings.Join(names, Separator))
	fmt.Fprintf(&sb, "#types\t%s\n", strings.Join(types, Separator))
	w.wrote = true
	_, err := w.w.WriteString(sb.String())
	return err
}

// Write emits one record. values must match the schema arity; the caller is
// responsible for Zeek-encoding each value (see the Format helpers).
func (w *Writer) Write(values []string) error {
	if len(values) != len(w.schema.Fields) {
		return fmt.Errorf("%w: got %d values for %d fields", ErrFieldCount, len(values), len(w.schema.Fields))
	}
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	for i, v := range values {
		if i > 0 {
			if err := w.w.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := w.w.WriteString(v); err != nil {
			return err
		}
	}
	w.count++
	return w.w.WriteByte('\n')
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Close flushes the writer, emitting the header and a #close trailer.
func (w *Writer) Close() error {
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	if _, err := w.w.WriteString("#close\n"); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader consumes records under a schema, validating the header against it.
//
// Record-level failures are classified (*decodeerr.Error): a row with fewer
// fields than the schema is a truncated record (the tail was cut, typically
// by a torn write), a row with more is malformed. A failed Next does not
// poison the reader — the next call resumes at the following line, so a
// fault-tolerant caller can skip-and-count bad records.
type Reader struct {
	s      *bufio.Scanner
	schema Schema
	line   int
	raw    string
	// values is the reusable record buffer Next splits into; the slice
	// handed to the caller is borrowed and overwritten by the next call.
	values []string
}

// NewReader parses the header from r and validates it against schema.
func NewReader(r io.Reader, schema Schema) (*Reader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<20)
	rd := &Reader{s: s, schema: schema}
	var sawFields bool
	for s.Scan() {
		rd.line++
		line := s.Text()
		if !strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("%w: data before #fields at line %d", ErrBadHeader, rd.line)
		}
		parts := strings.Split(line, Separator)
		switch {
		case strings.HasPrefix(parts[0], "#fields"):
			if err := rd.checkColumns(parts[1:], func(f Field) string { return f.Name }); err != nil {
				return nil, err
			}
			sawFields = true
		case strings.HasPrefix(parts[0], "#types"):
			if err := rd.checkColumns(parts[1:], func(f Field) string { return f.Type }); err != nil {
				return nil, err
			}
			if !sawFields {
				return nil, fmt.Errorf("%w: #types before #fields", ErrBadHeader)
			}
			return rd, nil
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("%w: missing #fields/#types", ErrBadHeader)
}

func (r *Reader) checkColumns(got []string, sel func(Field) string) error {
	if len(got) != len(r.schema.Fields) {
		return fmt.Errorf("%w: %d columns, schema has %d", ErrTypeMismatch, len(got), len(r.schema.Fields))
	}
	for i, f := range r.schema.Fields {
		if got[i] != sel(f) {
			return fmt.Errorf("%w: column %d is %q, want %q", ErrTypeMismatch, i, got[i], sel(f))
		}
	}
	return nil
}

// Next returns the next record's raw values, or io.EOF. Comment lines
// (including #close) are skipped. A wrong-arity row yields a classified
// *decodeerr.Error wrapping ErrFieldCount — truncated when short (the
// record lost its tail), malformed when long — and leaves the reader
// positioned at the following line.
//
// The returned slice is borrowed: it is the Reader's reusable record
// buffer and the next Next call overwrites it. Callers must finish with
// (or copy) the values before advancing. The string elements themselves
// are ordinary immutable strings and safe to retain.
func (r *Reader) Next() ([]string, error) {
	for r.s.Scan() {
		r.line++
		line := r.s.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r.raw = line
		// Split into the reusable buffer: the per-record strings.Split
		// allocation was the last per-line allocation on the replay hot
		// path besides the line itself.
		values := r.values[:0]
		for {
			i := strings.IndexByte(line, '\t')
			if i < 0 {
				values = append(values, line)
				break
			}
			values = append(values, line[:i])
			line = line[i+1:]
		}
		r.values = values
		if len(values) != len(r.schema.Fields) {
			class := decodeerr.Malformed
			if len(values) < len(r.schema.Fields) {
				class = decodeerr.Truncated
			}
			return nil, decodeerr.Newf(class, "zeeklog", r.line,
				"%w: %d values for %d fields", ErrFieldCount, len(values), len(r.schema.Fields))
		}
		return values, nil
	}
	if err := r.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// Raw returns the data line behind the most recent Next (accepted or
// rejected) — the replay guard quarantines it and detects verbatim
// adjacent duplicates with it.
func (r *Reader) Raw() string { return r.raw }

// Line returns the 1-based input line number of the most recent Next.
func (r *Reader) Line() int { return r.line }

// FormatTime encodes a timestamp as Zeek epoch seconds with microsecond
// precision.
func FormatTime(t time.Time) string {
	return strconv.FormatFloat(float64(t.UnixMicro())/1e6, 'f', 6, 64)
}

// ParseTime decodes a Zeek epoch timestamp.
func ParseTime(s string) (time.Time, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, decodeerr.Newf(decodeerr.NumericClass(err), "zeeklog", 0,
			"bad time %q: %w", s, err)
	}
	return time.UnixMicro(int64(math.Round(f * 1e6))).UTC(), nil
}

// FormatInterval encodes a duration as fractional seconds.
func FormatInterval(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// ParseInterval decodes a fractional-seconds duration.
func ParseInterval(s string) (time.Duration, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, decodeerr.Newf(decodeerr.NumericClass(err), "zeeklog", 0,
			"bad interval %q: %w", s, err)
	}
	return time.Duration(f * float64(time.Second)), nil
}

// FormatCount encodes a non-negative integer.
func FormatCount(v int64) string { return strconv.FormatInt(v, 10) }

// ParseCount decodes a count field. An overflowing value is classified
// out-of-range (the oversized-field fault signature); other failures are
// malformed.
func ParseCount(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, decodeerr.Newf(decodeerr.NumericClass(err), "zeeklog", 0,
			"bad count %q: %w", s, err)
	}
	return v, nil
}

// FormatString encodes a string value, mapping "" to the empty marker and
// escaping embedded separators.
func FormatString(s string) string {
	if s == "" {
		return Empty
	}
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\t", "\\x09")
	s = strings.ReplaceAll(s, "\n", "\\x0a")
	return s
}

// ParseString decodes a string value.
func ParseString(s string) string {
	switch s {
	case Empty:
		return ""
	case Unset:
		return ""
	}
	s = strings.ReplaceAll(s, "\\x09", "\t")
	s = strings.ReplaceAll(s, "\\x0a", "\n")
	s = strings.ReplaceAll(s, "\\\\", "\\")
	return s
}
