package zeeklog

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/flow"
)

func randomRecord(rng *rand.Rand) flow.Record {
	protos := []flow.Proto{flow.ProtoTCP, flow.ProtoUDP}
	services := []string{"", "http", "tls", "dns"}
	states := []flow.ConnState{flow.StateOther, flow.StateSF, flow.StateS0, flow.StateRSTO}
	var o4, r4 [4]byte
	rng.Read(o4[:])
	rng.Read(r4[:])
	return flow.Record{
		Start:     time.Unix(1580000000+int64(rng.Intn(10000000)), int64(rng.Intn(1e6))*1000).UTC(),
		Duration:  time.Duration(rng.Intn(3600000)) * time.Millisecond,
		OrigAddr:  netip.AddrFrom4(o4),
		OrigPort:  uint16(rng.Intn(65536)),
		RespAddr:  netip.AddrFrom4(r4),
		RespPort:  uint16(rng.Intn(65536)),
		Proto:     protos[rng.Intn(2)],
		OrigBytes: int64(rng.Intn(1e9)),
		RespBytes: int64(rng.Intn(1e9)),
		OrigPkts:  int64(rng.Intn(1e6)),
		RespPkts:  int64(rng.Intn(1e6)),
		Service:   services[rng.Intn(len(services))],
		State:     states[rng.Intn(len(states))],
	}
}

func TestConnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var buf bytes.Buffer
	w := NewConnWriter(&buf)
	var want []flow.Record
	for i := 0; i < 300; i++ {
		r := randomRecord(rng)
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(want) {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewConnReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Start.Equal(exp.Start) {
			t.Errorf("record %d start %v != %v", i, got.Start, exp.Start)
		}
		// Durations round-trip through microsecond text encoding.
		diff := got.Duration - exp.Duration
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Errorf("record %d duration %v != %v", i, got.Duration, exp.Duration)
		}
		got.Start, got.Duration = exp.Start, exp.Duration
		if got != exp {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got, exp)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("trailing err = %v", err)
	}
}

func TestConnWriterRejectsInvalid(t *testing.T) {
	w := NewConnWriter(io.Discard)
	bad := flow.Record{Proto: 99}
	if err := w.Write(bad); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestConnReaderIPv6(t *testing.T) {
	var buf bytes.Buffer
	w := NewConnWriter(&buf)
	rec := flow.Record{
		Start:    time.Unix(1583020800, 0).UTC(),
		OrigAddr: netip.MustParseAddr("2001:db8::9"),
		OrigPort: 54321,
		RespAddr: netip.MustParseAddr("2606:4700::6810:1"),
		RespPort: 443,
		Proto:    flow.ProtoTCP,
		Service:  "tls",
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, err := NewConnReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.OrigAddr != rec.OrigAddr || got.RespAddr != rec.RespAddr || got.Service != "tls" {
		t.Errorf("got %+v", got)
	}
}

func BenchmarkConnWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	rec := randomRecord(rng)
	w := NewConnWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnRead(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w := NewConnWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Write(randomRecord(rng))
	}
	w.Close()
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewConnReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
