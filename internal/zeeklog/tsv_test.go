package zeeklog

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var testSchema = Schema{
	Path: "test",
	Fields: []Field{
		{"ts", "time"},
		{"name", "string"},
		{"n", "count"},
	},
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema)
	ts := time.Date(2020, time.March, 11, 12, 0, 0, 250000000, time.UTC)
	rows := [][]string{
		{FormatTime(ts), FormatString("alpha"), FormatCount(42)},
		{FormatTime(ts.Add(time.Second)), FormatString(""), FormatCount(0)},
		{FormatTime(ts.Add(2 * time.Second)), FormatString("tab\there"), FormatCount(7)},
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(rows) {
		t.Errorf("Count = %d", w.Count())
	}

	out := buf.String()
	for _, want := range []string{"#path\ttest", "#fields\tts\tname\tn", "#types\ttime\tstring\tcount", "#close"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	r, err := NewReader(strings.NewReader(out), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	got0, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTime(got0[0])
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ts) {
		t.Errorf("time round trip: %v != %v", back, ts)
	}
	if ParseString(got0[1]) != "alpha" || got0[2] != "42" {
		t.Errorf("row 0 = %v", got0)
	}
	got1, _ := r.Next()
	if ParseString(got1[1]) != "" {
		t.Errorf("empty string round trip = %q", ParseString(got1[1]))
	}
	got2, _ := r.Next()
	if ParseString(got2[1]) != "tab\there" {
		t.Errorf("escaped string round trip = %q", ParseString(got2[1]))
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestWriteWrongArity(t *testing.T) {
	w := NewWriter(io.Discard, testSchema)
	if err := w.Write([]string{"just-one"}); !errors.Is(err, ErrFieldCount) {
		t.Errorf("err = %v, want ErrFieldCount", err)
	}
}

func TestReaderSchemaMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema)
	w.Write([]string{FormatTime(time.Now()), "x", "1"})
	w.Close()
	other := Schema{Path: "test", Fields: []Field{{"ts", "time"}, {"name", "string"}}}
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("err = %v, want ErrTypeMismatch", err)
	}
	renamed := testSchema
	renamed.Fields = append([]Field(nil), testSchema.Fields...)
	renamed.Fields[1] = Field{"nom", "string"}
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), renamed); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("renamed field err = %v, want ErrTypeMismatch", err)
	}
}

func TestReaderMissingHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("no header at all\n"), testSchema); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
	if _, err := NewReader(strings.NewReader(""), testSchema); !errors.Is(err, ErrBadHeader) {
		t.Errorf("empty input err = %v, want ErrBadHeader", err)
	}
}

func TestReaderBadRowArity(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema)
	w.Write([]string{FormatTime(time.Now()), "x", "1"})
	w.Close()
	corrupted := strings.Replace(buf.String(), "x\t1", "x", 1)
	r, err := NewReader(strings.NewReader(corrupted), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrFieldCount) {
		t.Errorf("err = %v, want ErrFieldCount", err)
	}
}

func TestEmptyLogHasHeaderAndClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testSchema)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(sec int32, micros uint32) bool {
		ts := time.Unix(int64(sec)+1500000000, int64(micros%1000000)*1000).UTC()
		back, err := ParseTime(FormatTime(ts))
		return err == nil && back.Equal(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalRoundTripProperty(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms) * time.Millisecond
		back, err := ParseInterval(FormatInterval(d))
		if err != nil {
			return false
		}
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringEscapingProperty(t *testing.T) {
	f := func(s string) bool {
		enc := FormatString(s)
		if strings.ContainsAny(enc, "\t\n") {
			return false // encoded value must be TSV-safe
		}
		return ParseString(enc) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
