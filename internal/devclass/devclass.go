// Package devclass classifies on-campus devices as mobile, laptop/desktop,
// or IoT — the device-type dimension of Figures 1 and 2 — using the same
// evidence the paper's pipeline had (§3): User-Agent strings observed in
// cleartext HTTP metadata, organizationally unique identifiers (OUIs) from
// MAC addresses, and Saidi-et-al-style IoT detection over the set of
// backend domains a device contacts.
//
// The classifiers are deliberately conservative: devices with randomized
// MAC addresses and no observable User-Agent fall out as Unknown, which is
// why the paper's post-shutdown population is dominated by unclassified
// devices.
package devclass

// Type is the device class used throughout the analyses.
type Type int

// Device classes, matching Figure 1's legend (Unknown renders as
// "Unclassified").
const (
	Unknown Type = iota
	Mobile
	LaptopDesktop
	IoT
)

// String returns the figure-legend label.
func (t Type) String() string {
	switch t {
	case Mobile:
		return "Mobile"
	case LaptopDesktop:
		return "Laptop & Desktop"
	case IoT:
		return "IoT"
	default:
		return "Unclassified"
	}
}

// Types lists all classes in display order.
var Types = []Type{Mobile, LaptopDesktop, IoT, Unknown}
