package devclass

import (
	"bytes"
	"sort"

	"repro/internal/packet"
)

// Vendor is one OUI registry entry.
type Vendor struct {
	Name string
	// Hint is the device class this vendor's hardware most often is, or
	// Unknown when the vendor ships several classes (Apple sells both
	// phones and laptops, so an Apple OUI alone is not decisive).
	Hint Type
}

// ouiTable is the embedded slice of the IEEE registry the classifier
// needs: vendors common on a campus residential network. OUI values are
// synthetic but structured like real assignments.
var ouiTable = map[[3]byte]Vendor{
	// Mixed-portfolio vendors: OUI alone cannot decide.
	{0x00, 0x17, 0xf2}: {"Apple", Unknown},
	{0xac, 0xbc, 0x32}: {"Apple", Unknown},
	{0xf0, 0x18, 0x98}: {"Apple", Unknown},
	{0x00, 0x12, 0xfb}: {"Samsung", Unknown},
	{0x8c, 0x77, 0x12}: {"Samsung", Unknown},
	{0x00, 0x1a, 0x11}: {"Google", Unknown},

	// PC/laptop NIC vendors.
	{0x00, 0x1b, 0x21}: {"Intel", LaptopDesktop},
	{0x3c, 0xfd, 0xfe}: {"Intel", LaptopDesktop},
	{0x00, 0x14, 0x22}: {"Dell", LaptopDesktop},
	{0xd4, 0xbe, 0xd9}: {"Dell", LaptopDesktop},
	{0x00, 0x1f, 0x29}: {"HP", LaptopDesktop},
	{0x54, 0xee, 0x75}: {"Lenovo", LaptopDesktop},
	{0x00, 0x15, 0x5d}: {"Microsoft", LaptopDesktop},
	{0x00, 0x26, 0x82}: {"ASUS", LaptopDesktop},
	{0x1c, 0x1b, 0x0d}: {"Gigabyte", LaptopDesktop},

	// Phone radios.
	{0x28, 0x6c, 0x07}: {"Xiaomi", Mobile},
	{0xa4, 0xc4, 0x94}: {"Huawei", Mobile},
	{0x00, 0x26, 0x37}: {"Samsung Mobile", Mobile},
	{0x40, 0x4e, 0x36}: {"HTC", Mobile},
	{0x00, 0x0a, 0xd9}: {"Sony Ericsson", Mobile},
	{0x94, 0x65, 0x2d}: {"OnePlus", Mobile},
	{0x00, 0x24, 0x90}: {"Murata", Mobile},

	// Consoles and streaming boxes.
	{0x00, 0x1f, 0x32}: {"Nintendo", IoT},
	{0x7c, 0xbb, 0x8a}: {"Nintendo", IoT},
	{0x98, 0xb6, 0xe9}: {"Nintendo", IoT},
	{0x00, 0x13, 0xa9}: {"Sony Interactive", IoT},
	{0x28, 0x0d, 0xfc}: {"Sony Interactive", IoT},
	{0x7c, 0xed, 0x8d}: {"Microsoft Xbox", IoT},
	{0xb8, 0x3e, 0x59}: {"Roku", IoT},
	{0xd8, 0x31, 0x34}: {"Roku", IoT},

	// IoT silicon and appliance vendors.
	{0x24, 0x0a, 0xc4}: {"Espressif", IoT},
	{0x5c, 0xcf, 0x7f}: {"Espressif", IoT},
	{0xb8, 0x27, 0xeb}: {"Raspberry Pi", IoT},
	{0x50, 0xc7, 0xbf}: {"TP-Link", IoT},
	{0xec, 0x1a, 0x59}: {"Belkin Wemo", IoT},
	{0x44, 0x65, 0x0d}: {"Amazon Technologies", IoT},
	{0xfc, 0xa1, 0x83}: {"Amazon Technologies", IoT},
	{0x18, 0xb4, 0x30}: {"Nest Labs", IoT},
	{0x00, 0x17, 0x88}: {"Philips Hue", IoT},
	{0x5c, 0xaa, 0xfd}: {"Sonos", IoT},
	{0x00, 0x0d, 0x4b}: {"Ring", IoT},
	{0x2c, 0xaa, 0x8e}: {"Wyze", IoT},
	{0x68, 0x37, 0xe9}: {"Samsung TV", IoT},
	{0xcc, 0x2d, 0x8c}: {"LG TV", IoT},
}

// LookupOUI returns the registry entry for the MAC's OUI. Locally
// administered (randomized) addresses carry no vendor information and
// always miss: MAC randomization is one of the two reasons devices end up
// unclassified.
func LookupOUI(m packet.MAC) (Vendor, bool) {
	if m.LocallyAdministered() {
		return Vendor{}, false
	}
	v, ok := ouiTable[m.OUI()]
	return v, ok
}

// OUIs returns every registered OUI with the given hint, in stable byte
// order (for generators that need to mint realistic MACs
// deterministically). The slice is freshly allocated.
func OUIs(hint Type) [][3]byte {
	var out [][3]byte
	for oui, v := range ouiTable {
		if v.Hint == hint {
			out = append(out, oui)
		}
	}
	sortOUIs(out)
	return out
}

// VendorOUIs returns the OUIs registered to the named vendor, in stable
// byte order.
func VendorOUIs(name string) [][3]byte {
	var out [][3]byte
	for oui, v := range ouiTable {
		if v.Name == name {
			out = append(out, oui)
		}
	}
	sortOUIs(out)
	return out
}

func sortOUIs(ouis [][3]byte) {
	sort.Slice(ouis, func(i, j int) bool {
		return bytes.Compare(ouis[i][:], ouis[j][:]) < 0
	})
}
