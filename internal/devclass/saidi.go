package devclass

import (
	"sort"

	"repro/internal/universe"
)

// DefaultIoTThreshold is the signature-match threshold the paper uses with
// the Saidi et al. method (§3: "with a threshold of 0.5").
const DefaultIoTThreshold = 0.5

// IoTSignature is the destination-domain fingerprint of one IoT platform:
// the set of backend domains devices of that platform contact.
type IoTSignature struct {
	Platform string
	Domains  []string
}

// IoTDetector implements the detection idea of Saidi et al. ("A Haystack
// Full of Needles", IMC '20): a device is an IoT device when the fraction
// of one platform's signature domains it contacts reaches a threshold.
type IoTDetector struct {
	threshold  float64
	signatures []IoTSignature
	domainSet  map[string]int // domain -> signature index
}

// NewIoTDetector builds a detector from explicit signatures. A
// non-positive threshold takes the paper's default of 0.5.
func NewIoTDetector(threshold float64, sigs []IoTSignature) *IoTDetector {
	if threshold <= 0 {
		threshold = DefaultIoTThreshold
	}
	d := &IoTDetector{threshold: threshold, domainSet: make(map[string]int)}
	for _, s := range sigs {
		if len(s.Domains) == 0 {
			continue
		}
		idx := len(d.signatures)
		d.signatures = append(d.signatures, s)
		for _, dom := range s.Domains {
			d.domainSet[dom] = idx
		}
	}
	return d
}

// SignaturesFromRegistry derives one signature per IoT-category service in
// the universe (the stand-in for Saidi et al.'s measured signature corpus).
// By catalog convention an IoT service's first domain is the vendor's
// public website — humans browse it, devices do not — so the signature
// covers only the backend domains.
func SignaturesFromRegistry(reg *universe.Registry) []IoTSignature {
	var out []IoTSignature
	for _, s := range reg.Services() {
		if s.Category != universe.CatIoT {
			continue
		}
		domains := s.Domains
		if len(domains) > 1 {
			domains = domains[1:]
		}
		out = append(out, IoTSignature{Platform: s.Name, Domains: append([]string(nil), domains...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Platform < out[j].Platform })
	return out
}

// Score returns the best per-signature match fraction over the device's
// contacted-domain set, together with the matching platform.
func (d *IoTDetector) Score(domains map[string]bool) (float64, string) {
	if len(d.signatures) == 0 {
		return 0, ""
	}
	hits := make([]int, len(d.signatures))
	for dom := range domains {
		if idx, ok := d.domainSet[dom]; ok {
			hits[idx]++
		}
	}
	best, bestIdx := 0.0, -1
	for i, h := range hits {
		score := float64(h) / float64(len(d.signatures[i].Domains))
		if score > best {
			best, bestIdx = score, i
		}
	}
	if bestIdx < 0 {
		return 0, ""
	}
	return best, d.signatures[bestIdx].Platform
}

// IsIoT reports whether the device's contacted domains cross the threshold
// for any platform signature.
func (d *IoTDetector) IsIoT(domains map[string]bool) bool {
	score, _ := d.Score(domains)
	return score >= d.threshold
}

// Threshold returns the detector's configured threshold.
func (d *IoTDetector) Threshold() float64 { return d.threshold }
