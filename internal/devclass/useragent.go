package devclass

import "strings"

// UAInfo is the result of parsing one User-Agent string.
type UAInfo struct {
	Type Type
	OS   string
}

// uaRule maps a marker substring to a classification. Rules are evaluated
// in order; the first match wins, so more specific markers come first
// (an iPad UA also contains "Mac OS X").
var uaRules = []struct {
	marker string
	info   UAInfo
}{
	{"iPhone", UAInfo{Mobile, "ios"}},
	{"iPad", UAInfo{Mobile, "ipados"}},
	{"Android", UAInfo{Mobile, "android"}},
	{"Mobile Safari", UAInfo{Mobile, "ios"}},
	{"Windows Phone", UAInfo{Mobile, "windows-phone"}},

	{"SMART-TV", UAInfo{IoT, "tizen"}},
	{"SmartTV", UAInfo{IoT, "smart-tv"}},
	{"Tizen", UAInfo{IoT, "tizen"}},
	{"Web0S", UAInfo{IoT, "webos"}},
	{"Roku", UAInfo{IoT, "roku"}},
	{"PlayStation", UAInfo{IoT, "playstation"}},
	{"Nintendo", UAInfo{IoT, "nintendo"}},
	{"Xbox", UAInfo{IoT, "xbox"}},
	{"CrKey", UAInfo{IoT, "chromecast"}},
	{"AppleTV", UAInfo{IoT, "tvos"}},
	{"FireTV", UAInfo{IoT, "firetv"}},

	{"Windows NT", UAInfo{LaptopDesktop, "windows"}},
	{"Macintosh", UAInfo{LaptopDesktop, "macos"}},
	{"CrOS", UAInfo{LaptopDesktop, "chromeos"}},
	{"X11; Linux", UAInfo{LaptopDesktop, "linux"}},
	{"Ubuntu", UAInfo{LaptopDesktop, "linux"}},
}

// ParseUserAgent classifies a User-Agent string. Unrecognized strings
// return Unknown.
func ParseUserAgent(ua string) UAInfo {
	for _, r := range uaRules {
		if strings.Contains(ua, r.marker) {
			return r.info
		}
	}
	return UAInfo{Unknown, ""}
}
