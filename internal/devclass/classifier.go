package devclass

import (
	"repro/internal/packet"
)

// Evidence is everything the pipeline observed about one device that bears
// on its class.
type Evidence struct {
	// MAC is the device's hardware address (pre-anonymization the
	// classifier runs inside the privacy boundary, like the original
	// system).
	MAC packet.MAC
	// UserAgents are the distinct User-Agent strings seen in the device's
	// cleartext HTTP metadata. Empty for HTTPS-only devices.
	UserAgents []string
	// Domains is the set of destination domains the device contacted.
	Domains map[string]bool
}

// Classifier combines the three heuristics (§3): Saidi-style IoT
// signatures, User-Agent parsing, and OUI vendor hints, falling back to
// Unknown — deliberately conservative, per the paper's observation that
// the dominant error mode of their pipeline was conservative omission.
type Classifier struct {
	iot *IoTDetector
}

// NewClassifier returns a classifier using the given IoT detector.
func NewClassifier(iot *IoTDetector) *Classifier {
	return &Classifier{iot: iot}
}

// Classify returns the device's class and the evidence source that decided
// it ("iot-signature", "user-agent", "oui", or "none").
func (c *Classifier) Classify(ev Evidence) (Type, string) {
	// 1. IoT signature match on destination domains. Runs first because
	// IoT devices can present misleading User-Agents (smart TVs embed
	// browser UAs).
	if c.iot != nil && c.iot.IsIoT(ev.Domains) {
		return IoT, "iot-signature"
	}
	// 2. User-Agent majority vote across observed strings.
	votes := map[Type]int{}
	for _, ua := range ev.UserAgents {
		if info := ParseUserAgent(ua); info.Type != Unknown {
			votes[info.Type]++
		}
	}
	if best, n := argmaxVotes(votes); n > 0 {
		return best, "user-agent"
	}
	// 3. OUI vendor hint (unavailable for randomized MACs).
	if v, ok := LookupOUI(ev.MAC); ok && v.Hint != Unknown {
		return v.Hint, "oui"
	}
	return Unknown, "none"
}

// UAVote returns the majority-vote type across the given User-Agent
// strings (Unknown when none parse) — the classifier's second heuristic,
// exposed for threshold-sweep analyses.
func UAVote(uas []string) Type {
	votes := map[Type]int{}
	for _, ua := range uas {
		if info := ParseUserAgent(ua); info.Type != Unknown {
			votes[info.Type]++
		}
	}
	best, _ := argmaxVotes(votes)
	return best
}

// argmaxVotes returns the type with the most votes, breaking ties in favor
// of Mobile then LaptopDesktop then IoT (fixed order keeps results
// deterministic).
func argmaxVotes(votes map[Type]int) (Type, int) {
	best, n := Unknown, 0
	for _, t := range []Type{Mobile, LaptopDesktop, IoT} {
		if votes[t] > n {
			best, n = t, votes[t]
		}
	}
	return best, n
}
