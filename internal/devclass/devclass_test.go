package devclass

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/universe"
)

func TestParseUserAgent(t *testing.T) {
	cases := []struct {
		ua   string
		want Type
		os   string
	}{
		{"Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X) AppleWebKit/605.1.15", Mobile, "ios"},
		{"Mozilla/5.0 (iPad; CPU OS 13_3 like Mac OS X) AppleWebKit/605.1.15", Mobile, "ipados"},
		{"Mozilla/5.0 (Linux; Android 10; Pixel 3) AppleWebKit/537.36 Chrome/80.0", Mobile, "android"},
		{"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36", LaptopDesktop, "windows"},
		{"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3) AppleWebKit/605.1.15", LaptopDesktop, "macos"},
		{"Mozilla/5.0 (X11; Linux x86_64) Gecko/20100101 Firefox/73.0", LaptopDesktop, "linux"},
		{"Mozilla/5.0 (X11; CrOS x86_64 12871.102.0) AppleWebKit/537.36", LaptopDesktop, "chromeos"},
		{"Mozilla/5.0 (SMART-TV; Linux; Tizen 5.5) AppleWebKit/537.36", IoT, "tizen"},
		{"Roku/DVP-9.21 (519.21E04111A)", IoT, "roku"},
		{"Mozilla/5.0 (PlayStation 4 7.02) AppleWebKit/605.1.15", IoT, "playstation"},
		{"Mozilla/5.0 (Nintendo Switch; WebApplet) AppleWebKit/606.4", IoT, "nintendo"},
		{"curl/7.68.0", Unknown, ""},
		{"", Unknown, ""},
	}
	for _, c := range cases {
		got := ParseUserAgent(c.ua)
		if got.Type != c.want || got.OS != c.os {
			t.Errorf("ParseUserAgent(%.40q) = %v/%q, want %v/%q", c.ua, got.Type, got.OS, c.want, c.os)
		}
	}
}

func TestLookupOUI(t *testing.T) {
	// Intel OUI: decisive laptop hint.
	m := packet.MAC{0x00, 0x1b, 0x21, 0x01, 0x02, 0x03}
	v, ok := LookupOUI(m)
	if !ok || v.Name != "Intel" || v.Hint != LaptopDesktop {
		t.Errorf("Intel lookup = %+v, %v", v, ok)
	}
	// Apple OUI: present but indecisive.
	m = packet.MAC{0xac, 0xbc, 0x32, 0x01, 0x02, 0x03}
	v, ok = LookupOUI(m)
	if !ok || v.Name != "Apple" || v.Hint != Unknown {
		t.Errorf("Apple lookup = %+v, %v", v, ok)
	}
	// Randomized MAC: always misses even if the OUI bytes collide with a
	// registered one.
	m = packet.MAC{0x00 | 0x02, 0x1b, 0x21, 0x01, 0x02, 0x03}
	if _, ok := LookupOUI(m); ok {
		t.Error("locally administered MAC matched OUI registry")
	}
	// Unregistered OUI.
	m = packet.MAC{0xde, 0xad, 0x00, 0x01, 0x02, 0x03}
	if _, ok := LookupOUI(m); ok {
		t.Error("unregistered OUI matched")
	}
}

func TestOUIHelpersStable(t *testing.T) {
	a := OUIs(IoT)
	b := OUIs(IoT)
	if len(a) == 0 {
		t.Fatal("no IoT OUIs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("OUIs order unstable")
		}
	}
	n := VendorOUIs("Nintendo")
	if len(n) < 2 {
		t.Errorf("Nintendo OUIs = %d", len(n))
	}
}

func registryDetector(t testing.TB, threshold float64) (*IoTDetector, *universe.Registry) {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	return NewIoTDetector(threshold, SignaturesFromRegistry(reg)), reg
}

func TestIoTDetector(t *testing.T) {
	d, _ := registryDetector(t, 0)
	if d.Threshold() != DefaultIoTThreshold {
		t.Errorf("threshold = %v", d.Threshold())
	}
	// A Roku device contacting all three backend domains: full match.
	domains := map[string]bool{"api.roku.com": true, "logs.roku.com": true, "rokucdn.com": true, "netflix.com": true}
	score, platform := d.Score(domains)
	if score != 1 || platform != "roku" {
		t.Errorf("roku score = %v, %q", score, platform)
	}
	if !d.IsIoT(domains) {
		t.Error("roku device not detected")
	}
	// Two of three backends meets the 0.5 threshold.
	if !d.IsIoT(map[string]bool{"api.roku.com": true, "rokucdn.com": true}) {
		t.Error("2/3 signature at threshold 0.5 should match")
	}
	// One of three does not.
	if d.IsIoT(map[string]bool{"rokucdn.com": true}) {
		t.Error("1/3 signature should be below threshold 0.5")
	}
	// A laptop browsing the web — including the vendor's *website* —
	// matches nothing: the public site is not part of the signature.
	laptop := map[string]bool{"facebook.com": true, "zoom.us": true, "roku.com": true, "wikipedia.org": true}
	if d.IsIoT(laptop) {
		t.Error("laptop misdetected as IoT")
	}
	if score, _ := d.Score(nil); score != 0 {
		t.Errorf("empty domain set score = %v", score)
	}
}

func TestIoTThresholdSweep(t *testing.T) {
	// At a stricter threshold a 2/3 match no longer suffices.
	d, _ := registryDetector(t, 0.9)
	if d.IsIoT(map[string]bool{"api.roku.com": true, "rokucdn.com": true}) {
		t.Error("2/3 signature passed threshold 0.9")
	}
	if !d.IsIoT(map[string]bool{"api.roku.com": true, "logs.roku.com": true, "rokucdn.com": true}) {
		t.Error("full signature failed threshold 0.9")
	}
}

func TestClassifierPrecedence(t *testing.T) {
	d, _ := registryDetector(t, 0)
	c := NewClassifier(d)

	// IoT signature beats a desktop-looking UA (smart TVs embed browser UAs).
	ty, src := c.Classify(Evidence{
		MAC:        packet.MAC{0x68, 0x37, 0xe9, 1, 2, 3},
		UserAgents: []string{"Mozilla/5.0 (Windows NT 10.0) AppleWebKit"},
		Domains:    map[string]bool{"samsungcloudsolution.com": true, "samsungotn.net": true},
	})
	if ty != IoT || src != "iot-signature" {
		t.Errorf("smart TV = %v via %s", ty, src)
	}

	// UA beats OUI: an Intel-NIC machine with an iPhone UA (tethering
	// aside, UA is direct evidence).
	ty, src = c.Classify(Evidence{
		MAC:        packet.MAC{0x00, 0x1b, 0x21, 1, 2, 3},
		UserAgents: []string{"Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X)"},
		Domains:    map[string]bool{"facebook.com": true},
	})
	if ty != Mobile || src != "user-agent" {
		t.Errorf("UA precedence = %v via %s", ty, src)
	}

	// OUI fallback when no UA observed.
	ty, src = c.Classify(Evidence{
		MAC:     packet.MAC{0x00, 0x14, 0x22, 9, 9, 9},
		Domains: map[string]bool{"netflix.com": true},
	})
	if ty != LaptopDesktop || src != "oui" {
		t.Errorf("OUI fallback = %v via %s", ty, src)
	}

	// Randomized MAC + HTTPS only + generic browsing: Unknown.
	ty, src = c.Classify(Evidence{
		MAC:     packet.MAC{0x02, 0x34, 0x56, 9, 9, 9},
		Domains: map[string]bool{"netflix.com": true, "tiktok.com": true},
	})
	if ty != Unknown || src != "none" {
		t.Errorf("anonymous device = %v via %s", ty, src)
	}
}

func TestClassifierUAMajority(t *testing.T) {
	d, _ := registryDetector(t, 0)
	c := NewClassifier(d)
	ty, _ := c.Classify(Evidence{
		MAC: packet.MAC{0xac, 0xbc, 0x32, 1, 2, 3}, // Apple: indecisive
		UserAgents: []string{
			"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3)",
			"Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X)",
			"Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X)",
		},
		Domains: map[string]bool{"instagram.com": true},
	})
	if ty != Mobile {
		t.Errorf("majority vote = %v, want Mobile", ty)
	}
}

func TestTypeStrings(t *testing.T) {
	if Unknown.String() != "Unclassified" {
		t.Errorf("Unknown = %q", Unknown.String())
	}
	seen := map[string]bool{}
	for _, ty := range Types {
		s := ty.String()
		if seen[s] {
			t.Errorf("duplicate label %q", s)
		}
		seen[s] = true
	}
}

func BenchmarkClassify(b *testing.B) {
	reg, err := universe.New()
	if err != nil {
		b.Fatal(err)
	}
	c := NewClassifier(NewIoTDetector(0, SignaturesFromRegistry(reg)))
	ev := Evidence{
		MAC:        packet.MAC{0x00, 0x1b, 0x21, 1, 2, 3},
		UserAgents: []string{"Mozilla/5.0 (Windows NT 10.0; Win64; x64)"},
		Domains: map[string]bool{
			"facebook.com": true, "zoom.us": true, "steamcontent.com": true,
			"netflix.com": true, "nytimes.com": true,
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify(ev)
	}
}
