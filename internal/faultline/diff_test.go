package faultline_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campus"
	"repro/internal/core"
	"repro/internal/devclass"
	"repro/internal/experiments"
	"repro/internal/faultline"
	"repro/internal/logsink"
	"repro/internal/trace"
	"repro/internal/universe"
	"repro/internal/viz"
)

// The differential robustness harness: replaying a 5%-scale dataset with
// ≤0.1% injected corruption under the skip policy must agree with the
// clean run — headline Stats within the declared tolerances, figure CSVs
// with byte-identical shapes — and every dropped record must be accounted
// (accepted + drops == offered). Single and 4-shard pipelines are both
// held to it, and to each other exactly.

const (
	diffScale = 0.05
	diffSeed  = 1
	faultRate = 0.001 // 0.1% per-record corruption
	faultSeed = 7
)

// Declared tolerances. Volume counters may shift only by the corruption
// rate plus parse-side effects (a flipped digit changes a byte count
// without dropping the record) — well under 1%. Cut counters (tap,
// window, attribution, label) are small relative to volume and amplified
// by lease loss (one dropped lease unattributes a device's flows until
// renewal), so they are bounded in absolute terms as a fraction of total
// flow volume rather than relative to their own (near-zero) clean values.
const (
	volumeRelTol = 0.01  // 1% on FlowsProcessed, DNSEntries, HTTPEntries, Leases, BytesProcessed
	cutAbsFrac   = 0.005 // cut counters may move by ≤0.5% of clean FlowsProcessed
)

var diffKey = []byte("faultline-diff-key-0123456789abc")

func writeDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = diffScale
	cfg.Seed = diffSeed
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := logsink.NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// replay runs the dataset through a fresh pipeline (1 shard = single
// Pipeline, else ShardedPipeline) under opts and returns the dataset.
func replay(t *testing.T, dir string, shards int, opts logsink.ReplayOptions) *core.Dataset {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	var pipe interface {
		trace.Sink
		Finalize() *core.Dataset
	}
	if shards == 1 {
		pipe, err = core.NewPipeline(reg, core.Options{Key: diffKey})
	} else {
		pipe, err = core.NewShardedPipeline(reg, core.Options{Key: diffKey}, shards)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := logsink.ReplayWithOptions(dir, pipe, opts); err != nil {
		t.Fatal(err)
	}
	return pipe.Finalize()
}

// csvShape reduces a rendered CSV to its structure: the verbatim header
// line plus the field count of every row. Two runs whose CSVs have equal
// shapes chart the same figures with the same axes — only values differ.
func csvShape(t *testing.T, render func(w *bytes.Buffer)) string {
	t.Helper()
	var buf bytes.Buffer
	render(&buf)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	var b strings.Builder
	b.WriteString(lines[0])
	for _, l := range lines[1:] {
		fmt.Fprintf(&b, "|%d", strings.Count(l, ",")+1)
	}
	return b.String()
}

// figureShapes renders the fig1/fig2 CSVs exactly as cmd/lockdown does and
// returns their shapes.
func figureShapes(t *testing.T, ds *core.Dataset) []string {
	t.Helper()
	labels := make([]string, campus.NumDays)
	for d := campus.Day(0); d < campus.NumDays; d++ {
		labels[d] = d.String()
	}
	f1 := experiments.Fig1(ds)
	f2 := experiments.Fig2(ds)

	shape1 := csvShape(t, func(w *bytes.Buffer) {
		cols := map[string][]float64{}
		var order []string
		for _, ty := range devclass.Types {
			series := make([]float64, campus.NumDays)
			for d, v := range f1.ByType[ty] {
				series[d] = float64(v)
			}
			cols[ty.String()] = series
			order = append(order, ty.String())
		}
		if err := viz.WriteCSV(w, "date", labels, cols, order); err != nil {
			t.Fatal(err)
		}
	})
	shape2 := csvShape(t, func(w *bytes.Buffer) {
		cols := map[string][]float64{}
		var order []string
		for _, ty := range devclass.Types {
			name := ty.String()
			cols[name+"_mean"] = f2.Mean[ty]
			cols[name+"_median"] = f2.Median[ty]
			order = append(order, name+"_mean", name+"_median")
		}
		if err := viz.WriteCSV(w, "date", labels, cols, order); err != nil {
			t.Fatal(err)
		}
	})
	return []string{shape1, shape2}
}

// volumeFields are the Stats counters held to the relative tolerance; the
// remaining int64 fields are cut counters held to the absolute bound.
var volumeFields = map[string]bool{
	"FlowsProcessed": true, "DNSEntries": true, "HTTPEntries": true,
	"Leases": true, "BytesProcessed": true,
}

func compareStats(t *testing.T, label string, clean, faulted core.Stats) {
	t.Helper()
	cutAbsTol := cutAbsFrac * float64(clean.FlowsProcessed)
	cv, fv := reflect.ValueOf(clean), reflect.ValueOf(faulted)
	for i := 0; i < cv.NumField(); i++ {
		name := cv.Type().Field(i).Name
		c, f := cv.Field(i).Int(), fv.Field(i).Int()
		diff := math.Abs(float64(f - c))
		if volumeFields[name] {
			if tol := volumeRelTol * float64(c); diff > tol {
				t.Errorf("%s: Stats.%s clean %d vs faulted %d (|Δ|=%.0f > %.0f)", label, name, c, f, diff, tol)
			}
		} else if diff > cutAbsTol {
			t.Errorf("%s: Stats.%s clean %d vs faulted %d (|Δ|=%.0f > %.0f)", label, name, c, f, diff, cutAbsTol)
		}
	}
}

func TestDifferentialCorruptedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-percent-scale generate plus three replays")
	}
	dir := writeDataset(t)

	clean := replay(t, dir, 1, logsink.ReplayOptions{})
	if clean.Stats.FlowsProcessed == 0 || clean.Stats.Leases == 0 {
		t.Fatalf("degenerate clean run: %+v", clean.Stats)
	}

	inject := &faultline.Config{Seed: faultSeed, Rate: faultRate}
	guard := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
	faulted := replay(t, dir, 1, logsink.ReplayOptions{Guard: guard, Inject: inject})

	// Accounting: every record offered to the parsers is either accepted
	// or dropped into a per-class counter — nothing vanishes silently.
	if guard.Accepted()+guard.DropTotal() != guard.Offered() {
		t.Fatalf("accounting broken: accepted %d + drops %d != offered %d",
			guard.Accepted(), guard.DropTotal(), guard.Offered())
	}
	if guard.DropTotal() == 0 {
		t.Fatal("0.1% corruption dropped nothing — injector or guard inert")
	}
	t.Logf("single-shard guard: %s", guard.Summary())
	dropFrac := float64(guard.DropTotal()) / float64(guard.Offered())
	if dropFrac > 2*faultRate {
		t.Errorf("drop fraction %.5f implausibly high for %.4g corruption", dropFrac, faultRate)
	}

	compareStats(t, "single", clean.Stats, faulted.Stats)

	// Figure-CSV shape: corruption at this rate may nudge values but must
	// not change what gets charted — same header, same rows, same fields.
	cleanShapes := figureShapes(t, clean)
	faultedShapes := figureShapes(t, faulted)
	for i := range cleanShapes {
		if cleanShapes[i] != faultedShapes[i] {
			t.Errorf("fig%d CSV shape diverged under corruption", i+1)
		}
	}

	// The 4-shard pipeline must see the identical accepted stream and so
	// agree with the single-shard corrupted run exactly, field for field.
	guard4 := faultline.NewGuard(faultline.PolicySkip, 0, nil, nil)
	faulted4 := replay(t, dir, 4, logsink.ReplayOptions{Guard: guard4, Inject: inject})
	if guard4.Offered() != guard.Offered() || guard4.Drops() != guard.Drops() {
		t.Errorf("4-shard guard accounting diverged: %s vs %s", guard4.Summary(), guard.Summary())
	}
	sv, gv := reflect.ValueOf(faulted.Stats), reflect.ValueOf(faulted4.Stats)
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Interface() != gv.Field(i).Interface() {
			t.Errorf("Stats.%s: corrupted single %v, corrupted 4-shard %v",
				sv.Type().Field(i).Name, sv.Field(i).Interface(), gv.Field(i).Interface())
		}
	}
	shapes4 := figureShapes(t, faulted4)
	for i := range cleanShapes {
		if cleanShapes[i] != shapes4[i] {
			t.Errorf("fig%d CSV shape diverged under corruption (4-shard)", i+1)
		}
	}
}

// TestCorruptDatasetRoundTrip exercises the at-rest corruption path (the
// CI smoke job's tool of choice): corrupt the dataset on disk, replay it
// under quarantine, and check the sidecar accounts for every drop.
func TestCorruptDatasetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("five-percent-scale dataset on disk")
	}
	src := writeDataset(t)
	dst := t.TempDir()
	reports, err := faultline.CorruptDataset(src, dst, faultline.Config{Seed: 3, Rate: faultRate})
	if err != nil {
		t.Fatal(err)
	}
	var total faultline.Report
	for _, r := range reports {
		total.Merge(r)
	}
	if total.Total() == 0 {
		t.Fatal("CorruptDataset injected nothing")
	}

	var sidecar bytes.Buffer
	guard := faultline.NewGuard(faultline.PolicyQuarantine, 0, &sidecar, nil)
	ds := replay(t, dst, 1, logsink.ReplayOptions{Guard: guard})
	if ds.Stats.FlowsProcessed == 0 {
		t.Fatal("corrupted replay produced no flows")
	}
	if guard.Accepted()+guard.DropTotal() != guard.Offered() {
		t.Fatalf("accounting broken: %s", guard.Summary())
	}
	if lines := int64(strings.Count(sidecar.String(), "\n")); lines != guard.DropTotal() {
		t.Fatalf("sidecar has %d lines, guard dropped %d", lines, guard.DropTotal())
	}
	t.Logf("dataset corruption: %s; guard: %s", total, guard.Summary())
}
