package faultline

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/decodeerr"
	"repro/internal/obs"
)

// Policy selects how the replay path treats a record that fails to decode.
type Policy uint8

const (
	// PolicyStrict propagates the first decode error and stops the replay —
	// the pre-fault-layer behavior, and the default.
	PolicyStrict Policy = iota
	// PolicySkip drops the record, counts it per class, and continues.
	PolicySkip
	// PolicyQuarantine is PolicySkip plus a copy of every rejected raw
	// record to a sidecar writer for offline inspection.
	PolicyQuarantine
	// PolicyAbort is PolicySkip until the drop fraction exceeds the
	// configured budget, then stops with ErrBudgetExceeded — corruption
	// this widespread means the input, not the odd record, is bad.
	PolicyAbort
)

var policyNames = map[Policy]string{
	PolicyStrict:     "strict",
	PolicySkip:       "skip",
	PolicyQuarantine: "quarantine",
	PolicyAbort:      "abort",
}

// String returns the policy's flag spelling.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return "unknown"
}

// ParsePolicy parses a -fault-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	for p, n := range policyNames {
		if n == s {
			return p, nil
		}
	}
	return PolicyStrict, fmt.Errorf("faultline: unknown policy %q (want strict, skip, quarantine or abort)", s)
}

// ErrBudgetExceeded is returned (wrapped) by Guard.Reject under PolicyAbort
// once drops/offered exceeds the budget.
var ErrBudgetExceeded = errors.New("faultline: decode-error budget exceeded")

// Guard applies a fault policy to a replay's decode errors and keeps the
// accounting that makes degradation auditable: every record is either
// accepted or dropped into a per-class counter, so at the end
// Accepted() + DropTotal() == Offered(). A nil *Guard is valid and behaves
// as PolicyStrict with zero overhead, mirroring the nil-*Metrics idiom.
type Guard struct {
	policy Policy
	// budget is the tolerated drops/offered fraction under PolicyAbort.
	budget float64
	om     *obs.Metrics

	mu         sync.Mutex
	quarantine io.Writer
	offered    int64
	accepted   int64
	drops      [decodeerr.NumClasses]int64
}

// NewGuard builds a guard. quarantine may be nil (required only for
// PolicyQuarantine to be useful); om may be nil; budget only matters under
// PolicyAbort.
func NewGuard(policy Policy, budget float64, quarantine io.Writer, om *obs.Metrics) *Guard {
	return &Guard{policy: policy, budget: budget, quarantine: quarantine, om: om}
}

// Policy returns the guard's policy (PolicyStrict for a nil guard).
func (g *Guard) Policy() Policy {
	if g == nil {
		return PolicyStrict
	}
	return g.policy
}

// Accept records one successfully decoded record.
func (g *Guard) Accept() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.offered++
	g.accepted++
	g.mu.Unlock()
}

// Reject handles one failed record. Under PolicyStrict (or a nil guard) it
// returns err unchanged, stopping the replay as before. Under the lenient
// policies it counts the drop by decode class (threading it into obs),
// optionally quarantines the raw record, and returns nil — except under
// PolicyAbort past budget, where it returns ErrBudgetExceeded wrapping err.
//
// Only classified errors (*decodeerr.Error) are skippable: an error with no
// decode class is a stream-level failure — a scanner overflow, an I/O error —
// after which the reader cannot make progress, so skipping it would loop
// forever on the same error. Those propagate under every policy.
func (g *Guard) Reject(source, raw string, err error) error {
	if g == nil || g.policy == PolicyStrict {
		return err
	}
	class, ok := decodeerr.ClassOf(err)
	if !ok {
		return err
	}
	g.mu.Lock()
	g.offered++
	g.drops[class]++
	drops := g.dropTotalLocked()
	offered := g.offered
	q := g.quarantine
	g.mu.Unlock()
	g.om.DecodeDrop(class)
	if q != nil && g.policy == PolicyQuarantine {
		// One quarantined record per line: class, source, error, then the
		// raw record with tabs intact so it can be replayed in isolation.
		fmt.Fprintf(q, "%s\t%s\t%s\t%s\n", class, source, strings.ReplaceAll(err.Error(), "\n", " "), raw)
	}
	if g.policy == PolicyAbort && float64(drops) > g.budget*float64(offered) {
		return fmt.Errorf("%w: %d/%d records dropped (budget %.4g): %v", ErrBudgetExceeded, drops, offered, g.budget, err)
	}
	return nil
}

// RejectDuplicate is Reject for a record detected as an adjacent duplicate
// (the one decode-fault class the parsers cannot see on their own).
func (g *Guard) RejectDuplicate(source string, line int, raw string) error {
	return g.Reject(source, raw, decodeerr.Newf(decodeerr.Duplicate, source, line, "duplicate of previous record"))
}

// Offered returns the number of records presented to the guard.
func (g *Guard) Offered() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.offered
}

// Accepted returns the number of records that decoded cleanly.
func (g *Guard) Accepted() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.accepted
}

// Drops returns the per-class dropped-record counts.
func (g *Guard) Drops() [decodeerr.NumClasses]int64 {
	if g == nil {
		return [decodeerr.NumClasses]int64{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.drops
}

// DropTotal returns the total dropped-record count.
func (g *Guard) DropTotal() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropTotalLocked()
}

func (g *Guard) dropTotalLocked() int64 {
	var n int64
	for _, d := range g.drops {
		n += d
	}
	return n
}

// Summary renders the guard's accounting for an end-of-run status line,
// e.g. "policy=skip offered=102400 accepted=102311 dropped=89 [truncated=41 malformed=48]".
func (g *Guard) Summary() string {
	if g == nil {
		// A nil guard is PolicyStrict with nothing offered; render the
		// full accounting shape so status-line consumers always see a
		// complete audit line.
		return "policy=strict offered=0 accepted=0 dropped=0 []"
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var parts []string
	for c, n := range g.drops {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", decodeerr.Class(c), n))
		}
	}
	return fmt.Sprintf("policy=%s offered=%d accepted=%d dropped=%d [%s]",
		g.policy, g.offered, g.accepted, g.dropTotalLocked(), strings.Join(parts, " "))
}
