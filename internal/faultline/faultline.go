// Package faultline is the ingest fault-injection and fault-policy layer.
//
// The paper's pipeline ran unattended for four months against live campus
// traffic, where truncated Zeek logs, malformed wire data and mid-rotation
// corruption are routine. This package makes that failure surface testable
// and survivable:
//
//   - a deterministic, seeded corruption injector (Reader, CorruptDataset)
//     that applies configurable fault classes — byte flips, mid-record
//     truncation, duplicated and reordered records, oversized fields,
//     invalid UTF-8, torn writes at rotation boundaries — to any replayed
//     log stream at a given rate;
//   - an event-level trace.Sink wrapper (WrapSink) applying the structural
//     faults (drop / duplicate / reorder) to live generation streams;
//   - a Guard implementing the error-budget policies (skip-and-count,
//     quarantine-to-sidecar, abort-above-threshold) over the typed
//     decode errors (internal/decodeerr) the hardened parsers return,
//     with per-class drop counters threaded through internal/obs.
//
// Everything is deterministic under (Seed, Rate, Classes): the same input
// produces byte-identical corruption regardless of read chunking, so the
// differential robustness harness is a regression test, not a dice roll.
package faultline

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

// Class is one corruption fault class.
type Class uint8

// Fault classes. The first six are drawn per record at Config.Rate; torn
// tails are positional (they model a write cut off at a rotation boundary)
// and applied to the final record when Config.TornTail is set.
const (
	// FaultByteFlip flips one bit of one byte of the record.
	FaultByteFlip Class = iota
	// FaultTruncate cuts the record mid-way, losing its tail.
	FaultTruncate
	// FaultDuplicate writes the record twice back to back — the doubled
	// write a crash-looping logger produces around rotation.
	FaultDuplicate
	// FaultReorder swaps the record with its successor.
	FaultReorder
	// FaultOversize inflates a numeric field beyond its type's range (or,
	// with no numeric field, pads the record with a 4 KiB tail).
	FaultOversize
	// FaultBadUTF8 splices invalid UTF-8 bytes into the record.
	FaultBadUTF8
	// FaultTornTail cuts the final record mid-way and drops its newline —
	// a torn write at the end of a rotated file.
	FaultTornTail
	NumFaults
)

var faultNames = [NumFaults]string{
	"byte_flip", "truncate", "duplicate", "reorder",
	"oversize", "bad_utf8", "torn_tail",
}

// String returns the fault class's snake_case name.
func (c Class) String() string {
	if int(c) < len(faultNames) {
		return faultNames[c]
	}
	return "unknown"
}

// AllClasses is the default per-record fault mix (everything except the
// positional torn tail).
var AllClasses = []Class{
	FaultByteFlip, FaultTruncate, FaultDuplicate,
	FaultReorder, FaultOversize, FaultBadUTF8,
}

// Config parameterizes an injector. The zero Rate disables per-record
// faults (useful to apply only a torn tail).
type Config struct {
	// Seed drives all fault decisions; equal seeds replay identical
	// corruption on identical input.
	Seed int64
	// Rate is the per-record fault probability (0.001 = 0.1%).
	Rate float64
	// Classes is the fault mix drawn from at Rate; nil means AllClasses.
	Classes []Class
	// TornTail additionally cuts the final record mid-way (torn write).
	TornTail bool
}

// Sub derives a stream-specific config so every file of a dataset is
// corrupted independently but reproducibly.
func (c Config) Sub(name string) Config {
	h := fnv.New64a()
	_, _ = io.WriteString(h, name)
	c.Seed ^= int64(h.Sum64() &^ (1 << 63))
	return c
}

// Report accounts what an injector did: how many records it read, how many
// it emitted (duplicates add one), and the faults applied per class.
type Report struct {
	Records int64 // records read from the source
	Emitted int64 // records emitted (Records + duplicates)
	Faults  [NumFaults]int64
}

// Total returns the number of faults applied across all classes.
func (r Report) Total() int64 {
	var n int64
	for _, f := range r.Faults {
		n += f
	}
	return n
}

// Merge folds another report into r.
func (r *Report) Merge(o Report) {
	r.Records += o.Records
	r.Emitted += o.Emitted
	for i := range r.Faults {
		r.Faults[i] += o.Faults[i]
	}
}

// String renders the report compactly for status lines.
func (r Report) String() string {
	var parts []string
	for c, n := range r.Faults {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Class(c), n))
		}
	}
	return fmt.Sprintf("%d/%d records faulted [%s]", r.Total(), r.Records, strings.Join(parts, " "))
}

// Reader streams a Zeek-style log through the corruption injector: header
// and comment lines pass verbatim (a corrupted header would kill the whole
// file, which is abort-policy territory, not graceful degradation), data
// records are faulted per Config. Corruption is line-deterministic — the
// caller's Read chunk sizes do not change the output.
type Reader struct {
	s    *bufio.Scanner
	rng  *rand.Rand
	cfg  Config
	out  bytes.Buffer
	held []byte // record awaiting a reorder swap
	// Under TornTail, output lags the input by one line (deferred/haveDef)
	// so the physical last line is still in hand at EOF to tear.
	deferred []byte
	haveDef  bool
	rep      Report
	eof      bool
}

// NewReader wraps src with a corruption injector under cfg.
func NewReader(src io.Reader, cfg Config) *Reader {
	if cfg.Classes == nil {
		cfg.Classes = AllClasses
	}
	s := bufio.NewScanner(src)
	s.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{s: s, rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Report returns the injector's accounting so far (complete after EOF).
func (r *Reader) Report() Report { return r.rep }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for r.out.Len() == 0 && !r.eof {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	if r.out.Len() == 0 {
		return 0, io.EOF
	}
	return r.out.Read(p)
}

// fill advances one input line, appending its (possibly corrupted) output.
func (r *Reader) fill() error {
	if !r.s.Scan() {
		if err := r.s.Err(); err != nil {
			return err
		}
		r.finish()
		r.eof = true
		return nil
	}
	line := r.s.Text()
	if line == "" || strings.HasPrefix(line, "#") {
		// Structure lines pass through; flush a pending swap first so a
		// held record never crosses a #close trailer.
		r.flushHeld()
		r.write([]byte(line))
		return nil
	}
	r.rep.Records++
	if r.held != nil {
		// Complete the reorder: successor first, held record after. The
		// successor is emitted verbatim — structural faults don't stack.
		r.emit([]byte(line))
		r.flushHeld()
		return nil
	}
	if r.cfg.Rate <= 0 || r.rng.Float64() >= r.cfg.Rate {
		r.emit([]byte(line))
		return nil
	}
	r.corrupt([]byte(line))
	return nil
}

// emit writes one record line.
func (r *Reader) emit(line []byte) {
	r.rep.Emitted++
	r.write(line)
}

// write appends one output line. Under TornTail it lags one line behind so
// finish still holds the file's physical last line.
func (r *Reader) write(line []byte) {
	if !r.cfg.TornTail {
		r.out.Write(line)
		r.out.WriteByte('\n')
		return
	}
	if r.haveDef {
		r.out.Write(r.deferred)
		r.out.WriteByte('\n')
	}
	r.deferred = append(r.deferred[:0], line...)
	r.haveDef = true
}

func (r *Reader) flushHeld() {
	if r.held != nil {
		h := r.held
		r.held = nil
		r.emit(h)
	}
}

// finish handles EOF: flush a dangling reorder, then tear the deferred
// physical last line mid-way and drop its newline — a torn write cuts the
// end of the file regardless of what the final line is (a torn #close is
// invisible to parsers; a torn record surfaces exactly one truncation).
func (r *Reader) finish() {
	r.flushHeld()
	if !r.cfg.TornTail || !r.haveDef {
		return
	}
	r.haveDef = false
	if len(r.deferred) < 2 {
		r.out.Write(r.deferred)
		return
	}
	cut := 1 + r.rng.Intn(len(r.deferred)-1)
	r.out.Write(r.deferred[:cut])
	r.rep.Faults[FaultTornTail]++
}

// corrupt applies one randomly chosen fault class to the record.
func (r *Reader) corrupt(line []byte) {
	class := r.cfg.Classes[r.rng.Intn(len(r.cfg.Classes))]
	switch class {
	case FaultByteFlip:
		r.emit(r.flip(line))
	case FaultTruncate:
		if len(line) < 2 {
			r.emit(line)
			return
		}
		r.emit(line[:1+r.rng.Intn(len(line)-1)])
	case FaultDuplicate:
		r.emit(line)
		r.rep.Records++ // the copy is offered to the parser as its own record
		r.emit(line)
	case FaultReorder:
		r.held = append([]byte(nil), line...)
	case FaultOversize:
		r.emit(oversize(line))
	case FaultBadUTF8:
		pos := r.rng.Intn(len(line) + 1)
		bad := append(append(append([]byte(nil), line[:pos]...), 0xff, 0xfe, 0xfd), line[pos:]...)
		r.emit(bad)
	default:
		r.emit(line)
	}
	r.rep.Faults[class]++
}

// flip flips one bit of one byte, steering clear of byte values that would
// change the record count ('\n' splits a record; a leading '#' turns it
// into a comment) — those shapes are covered by the truncate/torn classes.
func (r *Reader) flip(line []byte) []byte {
	out := append([]byte(nil), line...)
	pos := r.rng.Intn(len(out))
	b := out[pos] ^ (1 << uint(r.rng.Intn(8)))
	if b == '\n' || (pos == 0 && b == '#') {
		b = out[pos] ^ 0x01
		if b == '\n' || (pos == 0 && b == '#') {
			b = 'X'
		}
	}
	out[pos] = b
	return out
}

// oversize pushes the record's first integer field out of int64 range; a
// record with no such field gets a 4 KiB tail instead (stress, not parse
// failure — string fields have no declared bound).
func oversize(line []byte) []byte {
	fields := bytes.Split(append([]byte(nil), line...), []byte("\t"))
	for i, f := range fields {
		if len(f) == 0 || !allDigits(f) {
			continue
		}
		fields[i] = append(f, []byte("9999999999999999999999")...)
		return bytes.Join(fields, []byte("\t"))
	}
	return append(line, bytes.Repeat([]byte("A"), 4096)...)
}

func allDigits(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// CorruptFile streams src through an injector into dst.
func CorruptFile(dst io.Writer, src io.Reader, cfg Config) (Report, error) {
	r := NewReader(src, cfg)
	if _, err := io.Copy(dst, r); err != nil {
		return r.Report(), err
	}
	return r.Report(), nil
}

// CorruptDataset copies a dataset directory (flat or day-rotated), passing
// every .log file through the injector — each under a sub-seed derived from
// its relative path, so the corruption of one file is independent of the
// others but the whole dataset is reproducible. Non-log files are copied
// verbatim. It returns per-file reports keyed by relative path.
func CorruptDataset(srcDir, dstDir string, cfg Config) (map[string]Report, error) {
	reports := make(map[string]Report)
	err := filepath.Walk(srcDir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(srcDir, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dstDir, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		src, err := os.Open(path)
		if err != nil {
			return err
		}
		defer src.Close()
		dst, err := os.Create(target)
		if err != nil {
			return err
		}
		if filepath.Ext(rel) == ".log" {
			rep, cerr := CorruptFile(dst, src, cfg.Sub(rel))
			if cerr != nil {
				dst.Close()
				return cerr
			}
			reports[rel] = rep
		} else if _, err := io.Copy(dst, src); err != nil {
			dst.Close()
			return err
		}
		return dst.Close()
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}
