package faultline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
)

// recordSink captures delivered DNS queries in order.
type recordSink struct{ got []string }

func (r *recordSink) Flow(flow.Record)       {}
func (r *recordSink) DNS(e dnssim.Entry)     { r.got = append(r.got, e.Query) }
func (r *recordSink) HTTPMeta(httplog.Entry) {}
func (r *recordSink) Lease(dhcp.Lease)       {}

func driveSink(seed int64, rate float64, n int) ([]string, Report) {
	rec := &recordSink{}
	fs := WrapSink(rec, seed, rate)
	for i := 0; i < n; i++ {
		fs.DNS(dnssim.Entry{Query: fmt.Sprintf("q%04d.example.edu", i)})
	}
	fs.Flush()
	return rec.got, fs.Report()
}

func TestFaultSinkPassthrough(t *testing.T) {
	got, rep := driveSink(1, 0, 100)
	if len(got) != 100 {
		t.Fatalf("delivered %d events, want 100", len(got))
	}
	for i, q := range got {
		if q != fmt.Sprintf("q%04d.example.edu", i) {
			t.Fatalf("event %d out of order: %s", i, q)
		}
	}
	if rep.Total() != 0 {
		t.Fatalf("zero rate injected %d faults", rep.Total())
	}
}

func TestFaultSinkDeterministicAccounting(t *testing.T) {
	a, repA := driveSink(42, 0.1, 2000)
	b, repB := driveSink(42, 0.1, 2000)
	if !reflect.DeepEqual(a, b) || repA != repB {
		t.Fatal("same seed produced different delivery")
	}
	if repA.Total() == 0 {
		t.Fatal("10% rate over 2000 events injected nothing")
	}
	// Delivery accounting: every offered event is delivered once, except
	// dropped ones (0×) and duplicated ones (2×).
	want := 2000 - int(repA.Faults[FaultTruncate]) + int(repA.Faults[FaultDuplicate])
	if len(a) != want {
		t.Fatalf("delivered %d events, want %d (drops %d, dups %d)",
			len(a), want, repA.Faults[FaultTruncate], repA.Faults[FaultDuplicate])
	}
	if repA.Emitted != int64(want) {
		t.Fatalf("Report.Emitted = %d, want %d", repA.Emitted, want)
	}
	c, _ := driveSink(43, 0.1, 2000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical delivery")
	}
}

func TestFaultSinkReorderStaysLocal(t *testing.T) {
	got, rep := driveSink(7, 0.05, 1000)
	if rep.Faults[FaultReorder] == 0 {
		t.Skip("seed injected no reorders")
	}
	// Each event may move at most one position relative to a neighbor, so
	// every delivered index must be within 1 of sorted order once drops and
	// duplicates are ignored — verify no event jumped more than one slot
	// against its predecessor.
	prev := ""
	inversions := 0
	for _, q := range got {
		if prev != "" && q < prev {
			inversions++
		}
		prev = q
	}
	if int64(inversions) > rep.Faults[FaultReorder] {
		t.Fatalf("%d inversions exceed %d reorder faults", inversions, rep.Faults[FaultReorder])
	}
}
