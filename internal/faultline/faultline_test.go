package faultline

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// sampleLog builds a small Zeek-style log with n tab-separated records.
func sampleLog(n int) string {
	var b strings.Builder
	b.WriteString("#separator \\x09\n#fields\tts\tid\thost\tbytes\n#types\ttime\tstring\tstring\tcount\n")
	for i := 0; i < n; i++ {
		b.WriteString("1583020800.")
		b.WriteByte(byte('0' + i%10))
		b.WriteString("\tC")
		b.WriteByte(byte('a' + i%26))
		b.WriteString("\texample.edu\t")
		b.WriteByte(byte('1' + i%9))
		b.WriteString("00\n")
	}
	b.WriteString("#close 2020-03-01\n")
	return b.String()
}

func corrupt(t *testing.T, input string, cfg Config) (string, Report) {
	t.Helper()
	var out bytes.Buffer
	rep, err := CorruptFile(&out, strings.NewReader(input), cfg)
	if err != nil {
		t.Fatalf("CorruptFile: %v", err)
	}
	return out.String(), rep
}

func TestReaderDeterministic(t *testing.T) {
	in := sampleLog(500)
	cfg := Config{Seed: 42, Rate: 0.05}
	a, repA := corrupt(t, in, cfg)
	b, repB := corrupt(t, in, cfg)
	if a != b {
		t.Fatal("same seed produced different corruption")
	}
	if repA != repB {
		t.Fatalf("same seed produced different reports: %v vs %v", repA, repB)
	}
	if repA.Total() == 0 {
		t.Fatal("5% rate over 500 records injected nothing")
	}
	c, _ := corrupt(t, in, Config{Seed: 43, Rate: 0.05})
	if a == c {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestReaderChunkInvariance pins the property the differential harness
// rests on: corruption depends only on (input, config), not on how the
// consumer chunks its reads.
func TestReaderChunkInvariance(t *testing.T) {
	in := sampleLog(200)
	whole, _ := corrupt(t, in, Config{Seed: 7, Rate: 0.1})

	r := NewReader(strings.NewReader(in), Config{Seed: 7, Rate: 0.1})
	var byByte bytes.Buffer
	buf := make([]byte, 1)
	for {
		n, err := r.Read(buf)
		byByte.Write(buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
	}
	if whole != byByte.String() {
		t.Fatal("1-byte reads produced different output than io.Copy")
	}
}

// TestReaderAccounting verifies the invariants that keep guard accounting
// sound: header/comment lines pass verbatim, no fault splits or merges
// records, and the emitted data-line count equals Report.Emitted.
func TestReaderAccounting(t *testing.T) {
	in := sampleLog(1000)
	out, rep := corrupt(t, in, Config{Seed: 3, Rate: 0.2})

	var inHeaders, outHeaders, outData int64
	for _, l := range strings.Split(in, "\n") {
		if strings.HasPrefix(l, "#") {
			inHeaders++
		}
	}
	for _, l := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(l, "#"):
			outHeaders++
		case l != "":
			outData++
		}
	}
	if inHeaders != outHeaders {
		t.Fatalf("header lines changed: in %d, out %d", inHeaders, outHeaders)
	}
	if outData != rep.Emitted {
		t.Fatalf("emitted %d data lines, report says %d", outData, rep.Emitted)
	}
	if want := int64(1000) + rep.Faults[FaultDuplicate]; rep.Records != want {
		t.Fatalf("Records = %d, want %d (1000 input + %d duplicates)", rep.Records, want, rep.Faults[FaultDuplicate])
	}
	// Only duplication changes the line count; everything else is 1:1.
	if rep.Emitted != rep.Records {
		t.Fatalf("Emitted %d != Records %d", rep.Emitted, rep.Records)
	}
}

func TestReaderZeroRatePassthrough(t *testing.T) {
	in := sampleLog(50)
	out, rep := corrupt(t, in, Config{Seed: 9})
	if out != in {
		t.Fatal("zero rate altered the stream")
	}
	if rep.Total() != 0 {
		t.Fatalf("zero rate injected %d faults", rep.Total())
	}
}

func TestTornTail(t *testing.T) {
	in := sampleLog(20)
	// Strip the #close trailer so the last line is a data record — torn
	// writes happen to files that never got their clean close.
	in = strings.TrimSuffix(in, "#close 2020-03-01\n")
	lines := strings.Split(strings.TrimSuffix(in, "\n"), "\n")
	lastFull := lines[len(lines)-1]

	out, rep := corrupt(t, in, Config{Seed: 11, TornTail: true})
	if rep.Faults[FaultTornTail] != 1 {
		t.Fatalf("torn_tail faults = %d, want 1", rep.Faults[FaultTornTail])
	}
	if strings.HasSuffix(out, "\n") {
		t.Fatal("torn output still ends with a newline")
	}
	outLines := strings.Split(out, "\n")
	torn := outLines[len(outLines)-1]
	if !strings.HasPrefix(lastFull, torn) || len(torn) >= len(lastFull) || torn == "" {
		t.Fatalf("torn record %q is not a strict non-empty prefix of %q", torn, lastFull)
	}
}

func TestSubSeedIndependence(t *testing.T) {
	cfg := Config{Seed: 5, Rate: 0.1}
	a := cfg.Sub("conn.log")
	b := cfg.Sub("dns.log")
	if a.Seed == b.Seed {
		t.Fatal("different file names derived the same sub-seed")
	}
	if a.Seed != cfg.Sub("conn.log").Seed {
		t.Fatal("sub-seed derivation is not stable")
	}
}
