package faultline

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/decodeerr"
	"repro/internal/obs"
)

func truncErr() error {
	return decodeerr.Newf(decodeerr.Truncated, "conn", 7, "3 values for 10 fields")
}

func TestGuardNilIsStrict(t *testing.T) {
	var g *Guard
	err := truncErr()
	if got := g.Reject("conn", "raw", err); got != err {
		t.Fatalf("nil guard Reject = %v, want the error back", got)
	}
	g.Accept() // must not panic
	if g.Offered() != 0 || g.DropTotal() != 0 {
		t.Fatal("nil guard reported nonzero counters")
	}
	if g.Policy() != PolicyStrict {
		t.Fatalf("nil guard policy = %v, want strict", g.Policy())
	}
}

func TestGuardStrict(t *testing.T) {
	g := NewGuard(PolicyStrict, 0, nil, nil)
	err := truncErr()
	if got := g.Reject("conn", "raw", err); got != err {
		t.Fatalf("strict Reject = %v, want the error back", got)
	}
}

// TestGuardUnclassifiedIsFatal pins the skippability boundary: an error with
// no decode class is a stream-level failure, not a bad record, and must
// propagate even under lenient policies — skipping it would retry the same
// wedged reader forever.
func TestGuardUnclassifiedIsFatal(t *testing.T) {
	g := NewGuard(PolicySkip, 0, nil, nil)
	err := errors.New("bufio.Scanner: token too long")
	if got := g.Reject("conn", "raw", err); got != err {
		t.Fatalf("skip Reject(unclassified) = %v, want the error back", got)
	}
	if g.Offered() != 0 || g.DropTotal() != 0 {
		t.Fatalf("fatal rejection still counted: %s", g.Summary())
	}
}

func TestGuardSkipAccounting(t *testing.T) {
	m := obs.NewMetrics()
	g := NewGuard(PolicySkip, 0, nil, m)
	for i := 0; i < 90; i++ {
		g.Accept()
	}
	for i := 0; i < 7; i++ {
		if err := g.Reject("conn", "raw", truncErr()); err != nil {
			t.Fatalf("skip Reject returned %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := g.RejectDuplicate("dns", 12, "raw"); err != nil {
			t.Fatalf("RejectDuplicate returned %v", err)
		}
	}
	if g.Offered() != 100 || g.Accepted() != 90 || g.DropTotal() != 10 {
		t.Fatalf("offered/accepted/drops = %d/%d/%d, want 100/90/10",
			g.Offered(), g.Accepted(), g.DropTotal())
	}
	if g.Accepted()+g.DropTotal() != g.Offered() {
		t.Fatal("accounting invariant violated")
	}
	drops := g.Drops()
	if drops[decodeerr.Truncated] != 7 || drops[decodeerr.Duplicate] != 3 {
		t.Fatalf("per-class drops = %v", drops)
	}
	// The same counts must have reached obs.
	od := m.DecodeDrops()
	if od[decodeerr.Truncated] != 7 || od[decodeerr.Duplicate] != 3 {
		t.Fatalf("obs decode drops = %v", od)
	}
	if s := g.Summary(); !strings.Contains(s, "truncated=7") || !strings.Contains(s, "duplicate=3") {
		t.Fatalf("Summary missing class counts: %s", s)
	}
}

func TestGuardQuarantine(t *testing.T) {
	var side bytes.Buffer
	g := NewGuard(PolicyQuarantine, 0, &side, nil)
	raw := "1583020800.0\tCx\texample.edu"
	if err := g.Reject("conn", raw, truncErr()); err != nil {
		t.Fatalf("quarantine Reject returned %v", err)
	}
	line := side.String()
	if !strings.HasPrefix(line, "truncated\tconn\t") || !strings.HasSuffix(line, raw+"\n") {
		t.Fatalf("sidecar line = %q", line)
	}
}

func TestGuardAbortBudget(t *testing.T) {
	// Budget 10%: drops must stop the replay once they exceed 1 in 10.
	g := NewGuard(PolicyAbort, 0.10, nil, nil)
	for i := 0; i < 97; i++ {
		g.Accept()
	}
	for i := 0; i < 10; i++ {
		if err := g.Reject("conn", "", truncErr()); err != nil {
			t.Fatalf("drop %d within budget aborted: %v", i+1, err)
		}
	}
	// 11 drops / 108 offered > 10%.
	err := g.Reject("conn", "", truncErr())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget Reject = %v, want ErrBudgetExceeded", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]Policy{
		"strict": PolicyStrict, "skip": PolicySkip,
		"quarantine": PolicyQuarantine, "abort": PolicyAbort,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("Policy(%v).String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParsePolicy("lenient"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}
