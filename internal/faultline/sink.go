package faultline

import (
	"math/rand"
	"sync"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
)

// FaultSink wraps any trace.Sink with event-level structural faults —
// drops, duplicates and adjacent reorders — applied deterministically at a
// seeded rate. Content faults (byte flips, truncation, …) don't exist at
// this layer: typed in-memory events have no bytes to corrupt; those
// classes belong to the log-replay injector (Reader). Call Flush at end of
// stream to deliver a held reordered event.
type FaultSink struct {
	mu   sync.Mutex
	sink trace.Sink
	rng  *rand.Rand
	rate float64
	held *trace.Event
	rep  Report
}

// Event-fault classes drawn uniformly by FaultSink (a subset of the
// injector classes, reusing their Report slots).
var sinkClasses = [...]Class{FaultTruncate, FaultDuplicate, FaultReorder}

// WrapSink wraps sink with structural event faults at the given per-event
// rate under seed. FaultTruncate at this layer means the event is lost
// entirely (the in-memory analogue of an unparseable record).
func WrapSink(sink trace.Sink, seed int64, rate float64) *FaultSink {
	return &FaultSink{sink: sink, rng: rand.New(rand.NewSource(seed)), rate: rate}
}

// Report returns the sink's fault accounting (complete after Flush).
func (f *FaultSink) Report() Report {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rep
}

// Flow implements trace.Sink.
func (f *FaultSink) Flow(r flow.Record) { f.deliver(trace.Event{Kind: trace.EventFlow, Flow: r}) }

// DNS implements trace.Sink.
func (f *FaultSink) DNS(e dnssim.Entry) { f.deliver(trace.Event{Kind: trace.EventDNS, DNS: e}) }

// HTTPMeta implements trace.Sink.
func (f *FaultSink) HTTPMeta(e httplog.Entry) {
	f.deliver(trace.Event{Kind: trace.EventHTTP, HTTP: e})
}

// Lease implements trace.Sink.
func (f *FaultSink) Lease(l dhcp.Lease) { f.deliver(trace.Event{Kind: trace.EventLease, Lease: l}) }

// Flush delivers a pending reordered event. FaultSink intentionally does
// not implement trace.BatchSink: presenting only the per-event interface
// forces producers onto the path where faults apply uniformly.
func (f *FaultSink) Flush() {
	f.mu.Lock()
	held := f.held
	f.held = nil
	f.mu.Unlock()
	if held != nil {
		f.forward(*held)
	}
}

func (f *FaultSink) deliver(ev trace.Event) {
	f.mu.Lock()
	f.rep.Records++
	if h := f.held; h != nil {
		// Complete a reorder: this event first, the held one after.
		f.held = nil
		f.mu.Unlock()
		f.forward(ev)
		f.forward(*h)
		return
	}
	if f.rate <= 0 || f.rng.Float64() >= f.rate {
		f.mu.Unlock()
		f.forward(ev)
		return
	}
	class := sinkClasses[f.rng.Intn(len(sinkClasses))]
	f.rep.Faults[class]++
	switch class {
	case FaultTruncate: // event lost
		f.mu.Unlock()
	case FaultDuplicate:
		f.rep.Records++
		f.mu.Unlock()
		f.forward(ev)
		f.forward(ev)
	case FaultReorder:
		held := ev
		f.held = &held
		f.mu.Unlock()
	default:
		f.mu.Unlock()
		f.forward(ev)
	}
}

func (f *FaultSink) forward(ev trace.Event) {
	f.mu.Lock()
	f.rep.Emitted++
	f.mu.Unlock()
	switch ev.Kind {
	case trace.EventFlow:
		f.sink.Flow(ev.Flow)
	case trace.EventDNS:
		f.sink.DNS(ev.DNS)
	case trace.EventHTTP:
		f.sink.HTTPMeta(ev.HTTP)
	case trace.EventLease:
		f.sink.Lease(ev.Lease)
	}
}
