package obs

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunTimedParallelRunsEveryTaskOnce: every task executes exactly once
// regardless of worker count, and every task gets a timing entry.
func TestRunTimedParallelRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			const n = 23
			var counts [n]atomic.Int64
			tasks := make([]TimedTask, n)
			for i := range tasks {
				i := i
				tasks[i] = TimedTask{
					Name: fmt.Sprintf("task-%02d", i),
					Run:  func() { counts[i].Add(1) },
				}
			}
			perTask, wallMS := RunTimedParallel(workers, tasks)
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("task %d ran %d times", i, got)
				}
			}
			if len(perTask) != n {
				t.Errorf("got %d timing entries, want %d", len(perTask), n)
			}
			for name, ms := range perTask {
				if ms < 0 {
					t.Errorf("task %s has negative timing %v", name, ms)
				}
			}
			if wallMS < 0 {
				t.Errorf("negative wall time %v", wallMS)
			}
		})
	}
}

// TestRunTimedParallelConcurrent: with more than one worker, tasks that
// block until a peer arrives must still complete — proof two tasks really
// run concurrently (a serial executor would deadlock; the test would hang
// and time out).
func TestRunTimedParallelConcurrent(t *testing.T) {
	rendezvous := make(chan struct{}, 2)
	meet := func() {
		rendezvous <- struct{}{}
		for len(rendezvous) < 2 { // both arrived
			time.Sleep(time.Millisecond)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunTimedParallel(2, []TimedTask{
			{Name: "a", Run: meet},
			{Name: "b", Run: meet},
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("two tasks never overlapped: pool is not concurrent")
	}
}

// TestRunTimedParallelEmpty: zero tasks is a no-op, not a hang.
func TestRunTimedParallelEmpty(t *testing.T) {
	perTask, wallMS := RunTimedParallel(4, nil)
	if len(perTask) != 0 || wallMS != 0 {
		t.Fatalf("empty run: (%v, %v)", perTask, wallMS)
	}
}

// TestRunTimedParallelTimings: a deliberately slow task's entry reflects
// its cost, and the fan-out wall time is bounded below by the slowest task.
func TestRunTimedParallelTimings(t *testing.T) {
	const sleep = 20 * time.Millisecond
	perTask, wallMS := RunTimedParallel(4, []TimedTask{
		{Name: "fast", Run: func() {}},
		{Name: "slow", Run: func() { time.Sleep(sleep) }},
	})
	slowMS := perTask["slow"]
	if slowMS < float64(sleep.Milliseconds())/2 {
		t.Errorf("slow task recorded %vms, expected ≳%v", slowMS, sleep)
	}
	if wallMS < slowMS/2 {
		t.Errorf("wall %vms below slowest task %vms", wallMS, slowMS)
	}
	if perTask["fast"] > perTask["slow"] {
		t.Errorf("fast (%vms) timed above slow (%vms)", perTask["fast"], perTask["slow"])
	}
}
