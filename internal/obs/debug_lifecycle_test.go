package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestDebugServerDoubleClose: repeated and concurrent Close calls must all
// complete with the same result — a signal handler's shutdown racing the
// main goroutine's defer must not double-close the listener.
func TestDebugServerDoubleClose(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = d.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close %d returned %v, Close 0 returned %v", i, err, errs[0])
		}
	}
	if err := d.Close(); err != errs[0] {
		t.Fatalf("late Close returned %v, want %v", err, errs[0])
	}
}

// TestDebugServerCloseRacingStart closes servers immediately after (and
// concurrently with) their first requests: shutdown must always be clean
// regardless of where startup had progressed.
func TestDebugServerCloseRacingStart(t *testing.T) {
	for i := 0; i < 20; i++ {
		d, err := ServeDebug("127.0.0.1:0", NewMetrics())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// The request may win or lose the race with Close; either
			// outcome is fine, it just must not trip the race detector or
			// hang.
			resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", d.Addr()))
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			_ = d.Close()
		}()
		wg.Wait()
	}
}

// TestDebugServerRestartSameAddr: after Close the address is released and
// a new server can bind it — restart is safe, and the expvar hook follows
// the newest Metrics.
func TestDebugServerRestartSameAddr(t *testing.T) {
	d1, err := ServeDebug("127.0.0.1:0", NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	addr := d1.Addr()
	if err := d1.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	d2, err := ServeDebug(addr, NewMetrics())
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer d2.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted server: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"obs"`) {
		t.Fatalf("restarted /debug/vars lacks obs variable: %s", body)
	}
}

// TestServeDebugMuxRoutes: an application handler shares the port with the
// debug endpoints — /debug/ goes to expvar/pprof, the rest to the handler.
func TestServeDebugMuxRoutes(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	d, err := ServeDebugMux("127.0.0.1:0", NewMetrics(), mux)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/v1/ping"); code != http.StatusOK || body != "pong" {
		t.Fatalf("/v1/ping: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, `"obs"`) {
		t.Fatalf("/debug/vars: %d %q", code, body)
	}
}
