// Package obs is the pipeline observability layer: low-overhead atomic
// counters and sampled timing histograms for every ingest stage, a periodic
// progress reporter with text and JSON emitters, an optional expvar +
// net/http/pprof debug endpoint, and the machine-readable bench report
// (BENCH_<date>.json) that CI diffs across runs.
//
// Every method on *Metrics is safe on a nil receiver and becomes a no-op:
// the pipeline holds a possibly-nil *Metrics and pays only a nil check when
// observability is disabled. The disabled path allocates nothing (verified
// by TestNilMetricsZeroAlloc and BenchmarkMetricsDisabled).
//
// All counters are atomics, so one Metrics may be shared by every shard of
// a core.ShardedPipeline and snapshotted concurrently from a Progress
// goroutine or the debug endpoint.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decodeerr"
)

// Stage identifies one step of the ingest path. StageIngest is the generic
// event-intake stage every sink event passes through; the rest mirror the
// pipeline's processing order.
type Stage uint8

// Pipeline stages, in processing order.
const (
	StageIngest        Stage = iota // every sink event (flows carry bytes)
	StageTapFilter                  // tap exclusion + capture-window trim
	StageDHCPNormalize              // IP→MAC attribution + pseudonymization
	StageDNSLabel                   // IP→domain join
	StageAppsigMatch                // application signature matching
	StageSessionStitch              // social-app session stitching
	StageAggregate                  // per-device/day/app accumulation
	NumStages
)

var stageNames = [NumStages]string{
	"ingest", "tap_filter", "dhcp_normalize", "dns_label",
	"appsig_match", "session_stitch", "aggregate",
}

// String returns the stage's snake_case name (used in JSON output).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// histBuckets is the number of log2 nanosecond buckets: bucket b holds
// durations in [2^(b-1), 2^b) ns, covering 1 ns up to ~9 minutes.
const histBuckets = 40

// sampleEvery is the timing sample rate: one in sampleEvery events gets a
// full per-stage timing lap. Counters are exact; only timings are sampled.
const sampleEvery = 64

// stageCounters accumulates one stage's exact counts and sampled timings.
type stageCounters struct {
	events     atomic.Int64 // events the stage accepted
	drops      atomic.Int64 // events the stage filtered out
	bytes      atomic.Int64 // payload bytes through the stage (where meaningful)
	timedNanos atomic.Int64
	timedCount atomic.Int64
	hist       [histBuckets]atomic.Int64
}

func (c *stageCounters) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	c.timedNanos.Add(ns)
	c.timedCount.Add(1)
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	c.hist[b].Add(1)
}

// bucketValue is the representative duration (ns) for histogram bucket b.
func bucketValue(b int) int64 {
	switch b {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 3 << (uint(b) - 2) // midpoint of [2^(b-1), 2^b)
	}
}

// percentile returns the approximate p-quantile (0 < p < 1) in nanoseconds.
func (c *stageCounters) percentile(p float64) int64 {
	total := c.timedCount.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += c.hist[b].Load()
		if seen > rank {
			return bucketValue(b)
		}
	}
	return bucketValue(histBuckets - 1)
}

// Metrics is the shared counter set. The zero value is not usable; call
// NewMetrics. A nil *Metrics is valid everywhere and does nothing.
type Metrics struct {
	stages  [NumStages]stageCounters
	sampleC atomic.Int64

	// decodeDrops counts records the replay guard rejected, one counter
	// per decode-fault class (truncated / malformed / out_of_range /
	// duplicate). Together with the guard's accepted count these satisfy
	// the robustness invariant drops + accepted == offered.
	decodeDrops [decodeerr.NumClasses]atomic.Int64

	// shards tracks per-shard dispatch counts for the sharded pipeline
	// (nil for single-pipeline runs); depthFn polls live queue depths,
	// ringFn polls per-shard transport ring gauges, and queueCap is the
	// per-shard upper bound on the queue-depth gauge (events) — the
	// denominator consumers should report depths against.
	shards   atomic.Pointer[[]atomic.Int64]
	depthFn  atomic.Pointer[func() []int]
	ringFn   atomic.Pointer[func() []RingState]
	queueCap atomic.Int64

	// Epoch-snapshot counters for the sharded pipeline's shared join
	// tables: epochsPublished counts dispatcher seals, epochPins counts
	// shard batches resolved against a pinned snapshot, snapshotBytes is
	// a gauge of the shared tables' approximate retained size. Epoch
	// publications are bookkeeping, not events — they must never feed the
	// stage counters, the dispatch counters, or the queue-depth gauge.
	epochsPublished atomic.Int64
	epochPins       atomic.Int64
	snapshotBytes   atomic.Int64

	// Stage-cache counters (populated only when a run uses
	// internal/stagecache): verified entry reuses, recomputes, misses
	// caused by a changed key, and entries rejected by checksum/version
	// verification. hits + misses == stage lookups; verify failures are a
	// subset of misses.
	cacheHits           atomic.Int64
	cacheMisses         atomic.Int64
	cacheInvalidations  atomic.Int64
	cacheVerifyFailures atomic.Int64

	mu sync.Mutex // serializes SetShards
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// Add counts one accepted event (with payload bytes, 0 when not
// meaningful) into a stage.
func (m *Metrics) Add(s Stage, bytes int64) {
	if m == nil {
		return
	}
	m.stages[s].events.Add(1)
	if bytes != 0 {
		m.stages[s].bytes.Add(bytes)
	}
}

// AddN counts n accepted events (with their combined payload bytes, 0 when
// not meaningful) into a stage in one pair of atomic updates — the
// batch-transport counterpart of Add. n <= 0 is a no-op.
func (m *Metrics) AddN(s Stage, n, bytes int64) {
	if m == nil || n <= 0 {
		return
	}
	m.stages[s].events.Add(n)
	if bytes != 0 {
		m.stages[s].bytes.Add(bytes)
	}
}

// DropN counts n filtered-out events in one atomic update.
func (m *Metrics) DropN(s Stage, n int64) {
	if m == nil || n <= 0 {
		return
	}
	m.stages[s].drops.Add(n)
}

// Drop counts one event the stage filtered out.
func (m *Metrics) Drop(s Stage) {
	if m == nil {
		return
	}
	m.stages[s].drops.Add(1)
}

// DecodeDrop counts one record rejected with the given decode-fault class.
func (m *Metrics) DecodeDrop(c decodeerr.Class) {
	if m == nil || c >= decodeerr.NumClasses {
		return
	}
	m.decodeDrops[c].Add(1)
}

// DecodeDrops returns the per-class rejected-record counters.
func (m *Metrics) DecodeDrops() [decodeerr.NumClasses]int64 {
	var out [decodeerr.NumClasses]int64
	if m == nil {
		return out
	}
	for i := range m.decodeDrops {
		out[i] = m.decodeDrops[i].Load()
	}
	return out
}

// Now starts a sampled timing lap: it returns the current time for one in
// sampleEvery calls and the zero Time otherwise (or when m is nil). Pass
// the result to Lap at each stage boundary.
func (m *Metrics) Now() time.Time {
	if m == nil {
		return time.Time{}
	}
	if m.sampleC.Add(1)%sampleEvery != 0 {
		return time.Time{}
	}
	return time.Now()
}

// Lap records the time since t into the stage's histogram and returns the
// new lap start. A zero t (unsampled event, nil m) passes through untouched,
// so laps chain without branches at the call site.
func (m *Metrics) Lap(s Stage, t time.Time) time.Time {
	if m == nil || t.IsZero() {
		return t
	}
	now := time.Now()
	m.stages[s].observe(now.Sub(t))
	return now
}

// Observe records one explicit stage duration (bypassing sampling).
func (m *Metrics) Observe(s Stage, d time.Duration) {
	if m == nil {
		return
	}
	m.stages[s].observe(d)
}

// SetShards sizes the per-shard dispatch counters (called once by the
// sharded pipeline before ingest starts).
func (m *Metrics) SetShards(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := make([]atomic.Int64, n)
	m.shards.Store(&s)
}

// Dispatch counts one flow routed to shard i.
func (m *Metrics) Dispatch(i int) {
	if m == nil {
		return
	}
	m.DispatchN(i, 1)
}

// DispatchN counts n flows routed to shard i in one atomic update — used
// by the batched dispatcher, which settles its dispatch counts once per
// batch flush instead of once per flow.
func (m *Metrics) DispatchN(i int, n int64) {
	if m == nil || n <= 0 {
		return
	}
	p := m.shards.Load()
	if p == nil || i < 0 || i >= len(*p) {
		return
	}
	(*p)[i].Add(n)
}

// EpochPublish counts one sealed epoch of the shared join tables (a
// dispatcher publishing its pending broadcast delta at a batch boundary).
func (m *Metrics) EpochPublish() {
	if m == nil {
		return
	}
	m.epochsPublished.Add(1)
}

// EpochPin counts one shard batch resolved against a pinned snapshot of
// the shared join tables.
func (m *Metrics) EpochPin() {
	if m == nil {
		return
	}
	m.epochPins.Add(1)
}

// SetSnapshotBytes updates the shared join tables' retained-size gauge.
func (m *Metrics) SetSnapshotBytes(n int64) {
	if m == nil {
		return
	}
	m.snapshotBytes.Store(n)
}

// EpochsPublished returns the number of sealed join-table epochs.
func (m *Metrics) EpochsPublished() int64 {
	if m == nil {
		return 0
	}
	return m.epochsPublished.Load()
}

// EpochPins returns the number of shard batches pinned to a snapshot.
func (m *Metrics) EpochPins() int64 {
	if m == nil {
		return 0
	}
	return m.epochPins.Load()
}

// SnapshotBytes returns the shared join tables' retained-size gauge.
func (m *Metrics) SnapshotBytes() int64 {
	if m == nil {
		return 0
	}
	return m.snapshotBytes.Load()
}

// SetQueueDepthFunc registers a live queue-depth poll (per-shard pending
// event counts), sampled at snapshot time.
func (m *Metrics) SetQueueDepthFunc(f func() []int) {
	if m == nil {
		return
	}
	m.depthFn.Store(&f)
}

// RingState is one shard transport ring's gauges at a point in time:
// occupancy and capacity are denominated in batches (the ring's publication
// unit), stalls counts producer full-ring episodes, waits consumer
// empty-ring episodes.
type RingState struct {
	Batches  int
	Capacity int
	Stalls   int64
	Waits    int64
}

// SetRingStateFunc registers a live per-shard transport ring poll, sampled
// at snapshot time.
func (m *Metrics) SetRingStateFunc(f func() []RingState) {
	if m == nil {
		return
	}
	m.ringFn.Store(&f)
}

// SetQueueCapacity records the per-shard queue-depth bound in events: the
// maximum value any QueueDepthFunc entry can reach (ring slots plus
// in-hand-off batches, times the batch capacity). Snapshot exposes it so
// depth gauges are read against the right denominator — ring occupancy is
// denominated in batches, the depth gauge in events, and conflating the
// two was exactly the bug this field exists to prevent.
func (m *Metrics) SetQueueCapacity(events int) {
	if m == nil {
		return
	}
	m.queueCap.Store(int64(events))
}

// QueueCapacity returns the per-shard queue-depth bound in events (0 when
// never set).
func (m *Metrics) QueueCapacity() int {
	if m == nil {
		return 0
	}
	return int(m.queueCap.Load())
}

// CacheHit counts one verified stage-cache reuse.
func (m *Metrics) CacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Add(1)
}

// CacheMiss counts one stage-cache lookup that fell through to a
// recompute.
func (m *Metrics) CacheMiss() {
	if m == nil {
		return
	}
	m.cacheMisses.Add(1)
}

// CacheInvalidation counts one miss on a stage that had committed entries
// under a different key — an input moved since the last run.
func (m *Metrics) CacheInvalidation() {
	if m == nil {
		return
	}
	m.cacheInvalidations.Add(1)
}

// CacheVerifyFailure counts one cache entry rejected by checksum, size,
// manifest or version verification (corruption detected and contained).
func (m *Metrics) CacheVerifyFailure() {
	if m == nil {
		return
	}
	m.cacheVerifyFailures.Add(1)
}

// CacheHits returns the verified stage-cache reuse count.
func (m *Metrics) CacheHits() int64 {
	if m == nil {
		return 0
	}
	return m.cacheHits.Load()
}

// CacheMisses returns the stage-cache miss count.
func (m *Metrics) CacheMisses() int64 {
	if m == nil {
		return 0
	}
	return m.cacheMisses.Load()
}

// CacheInvalidations returns the changed-key miss count.
func (m *Metrics) CacheInvalidations() int64 {
	if m == nil {
		return 0
	}
	return m.cacheInvalidations.Load()
}

// CacheVerifyFailures returns the rejected-entry count.
func (m *Metrics) CacheVerifyFailures() int64 {
	if m == nil {
		return 0
	}
	return m.cacheVerifyFailures.Load()
}

// StageCounters returns one stage's current counts (for tests and ad-hoc
// inspection; Snapshot covers the full set).
func (m *Metrics) StageCounters(s Stage) StageSnapshot {
	if m == nil {
		return StageSnapshot{Stage: s.String()}
	}
	return m.stageSnapshot(s)
}

func (m *Metrics) stageSnapshot(s Stage) StageSnapshot {
	c := &m.stages[s]
	ss := StageSnapshot{
		Stage:      s.String(),
		Events:     c.events.Load(),
		Drops:      c.drops.Load(),
		Bytes:      c.bytes.Load(),
		TimedCount: c.timedCount.Load(),
	}
	if ss.TimedCount > 0 {
		ss.MeanNanos = c.timedNanos.Load() / ss.TimedCount
		ss.P50Nanos = c.percentile(0.50)
		ss.P99Nanos = c.percentile(0.99)
	}
	return ss
}

// Events returns the total event count (StageIngest accepts).
func (m *Metrics) Events() int64 {
	if m == nil {
		return 0
	}
	return m.stages[StageIngest].events.Load()
}

// Bytes returns the total payload bytes seen at intake.
func (m *Metrics) Bytes() int64 {
	if m == nil {
		return 0
	}
	return m.stages[StageIngest].bytes.Load()
}

// Snapshot captures a point-in-time copy of every active counter. Safe to
// call concurrently with ingest; counters are read individually, so the
// snapshot is consistent per counter, not across counters.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	s.Events = m.Events()
	s.Bytes = m.Bytes()
	for st := Stage(0); st < NumStages; st++ {
		ss := m.stageSnapshot(st)
		if ss.Events == 0 && ss.Drops == 0 {
			continue
		}
		s.Stages = append(s.Stages, ss)
	}
	for c := decodeerr.Class(0); c < decodeerr.NumClasses; c++ {
		if n := m.decodeDrops[c].Load(); n > 0 {
			s.DecodeDrops = append(s.DecodeDrops, DecodeDropSnapshot{
				Class: c.String(), Drops: n,
			})
		}
	}
	if p := m.shards.Load(); p != nil {
		var depths []int
		if f := m.depthFn.Load(); f != nil {
			depths = (*f)()
		}
		var rings []RingState
		if f := m.ringFn.Load(); f != nil {
			rings = (*f)()
		}
		s.QueueCapacity = int(m.queueCap.Load())
		var sum, max int64
		for i := range *p {
			sh := ShardSnapshot{Dispatched: (*p)[i].Load()}
			if i < len(depths) {
				sh.QueueDepth = depths[i]
			}
			if i < len(rings) {
				r := rings[i]
				sh.RingBatches = r.Batches
				sh.RingCapacity = r.Capacity
				sh.RingStalls = r.Stalls
				sh.RingWaits = r.Waits
			}
			sum += sh.Dispatched
			if sh.Dispatched > max {
				max = sh.Dispatched
			}
			s.Shards = append(s.Shards, sh)
		}
		if sum > 0 {
			mean := float64(sum) / float64(len(*p))
			s.Imbalance = float64(max) / mean
		}
	}
	s.EpochsPublished = m.epochsPublished.Load()
	s.EpochPins = m.epochPins.Load()
	s.SnapshotBytes = m.snapshotBytes.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMisses.Load()
	s.CacheInvalidations = m.cacheInvalidations.Load()
	s.CacheVerifyFailures = m.cacheVerifyFailures.Load()
	return s
}
