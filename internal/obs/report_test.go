package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func goldenSnapshot() Snapshot {
	return Snapshot{
		Label:            "ingest",
		ElapsedSeconds:   12,
		Events:           1234567,
		Bytes:            4560000000,
		EventsPerSec:     102880.58,
		BytesPerSec:      380000000,
		InstEventsPerSec: 99000,
		InstBytesPerSec:  360000000,
		Done:             42,
		Total:            121,
		ETASeconds:       22.6,
		Stages: []StageSnapshot{
			{Stage: "ingest", Events: 1234567, Bytes: 4560000000},
			{Stage: "tap_filter", Events: 1200000, Drops: 34567},
		},
		Shards:    []ShardSnapshot{{Dispatched: 617000, QueueDepth: 3}, {Dispatched: 617567, QueueDepth: 0}},
		Imbalance: 1.0004591571313708,
	}
}

// TestJSONReporterGolden pins the exact wire format of the JSON emitter.
func TestJSONReporterGolden(t *testing.T) {
	var b strings.Builder
	r := &JSONReporter{W: &b}
	if err := r.Report(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `{"label":"ingest","elapsed_s":12,"events":1234567,"bytes":4560000000,` +
		`"events_per_sec":102880.58,"bytes_per_sec":380000000,` +
		`"inst_events_per_sec":99000,"inst_bytes_per_sec":360000000,` +
		`"done":42,"total":121,"eta_s":22.6,` +
		`"stages":[{"stage":"ingest","events":1234567,"bytes":4560000000},` +
		`{"stage":"tap_filter","events":1200000,"drops":34567}],` +
		`"shards":[{"dispatched":617000,"queue_depth":3},{"dispatched":617567,"queue_depth":0}],` +
		`"dispatch_imbalance":1.0004591571313708}` + "\n"
	if b.String() != want {
		t.Errorf("JSON output mismatch:\n got: %s\nwant: %s", b.String(), want)
	}
	// And it must round-trip.
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if s.Events != 1234567 || s.Imbalance == 0 {
		t.Errorf("round-trip lost fields: %+v", s)
	}
}

// TestTextReporterGolden pins the human-readable line format.
func TestTextReporterGolden(t *testing.T) {
	var b strings.Builder
	r := &TextReporter{W: &b}
	if err := r.Report(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	const want = "ingest 12.0s  1.23M ev (102.9k/s)  4.56 GB (380.0 MB/s)  42/121  eta 23s  shards q=[3 0] imb 1.00\n"
	if b.String() != want {
		t.Errorf("text output mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestTextReporterVerbose(t *testing.T) {
	var b strings.Builder
	r := &TextReporter{W: &b, Verbose: true}
	if err := r.Report(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tap_filter") || !strings.Contains(b.String(), "34567 drop") {
		t.Errorf("verbose output missing stage table: %q", b.String())
	}
}

// collectReporter captures snapshots for assertions.
type collectReporter struct {
	mu   sync.Mutex
	snap []Snapshot
}

func (c *collectReporter) Report(s Snapshot) error {
	c.mu.Lock()
	c.snap = append(c.snap, s)
	c.mu.Unlock()
	return nil
}

func TestProgressLoop(t *testing.T) {
	m := NewMetrics()
	c := &collectReporter{}
	p := NewProgress(m, c, 10*time.Millisecond)
	p.SetLabel("test")
	p.SetTotal(10)
	p.Start()
	for i := 1; i <= 10; i++ {
		m.Add(StageIngest, 1000)
		p.SetDone(int64(i))
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if len(c.snap) < 2 {
		t.Fatalf("got %d snapshots, want ≥2 (ticks + final)", len(c.snap))
	}
	last := c.snap[len(c.snap)-1]
	if last.Events != 10 || last.Bytes != 10000 {
		t.Errorf("final snapshot = %d ev / %d B, want 10 / 10000", last.Events, last.Bytes)
	}
	if last.Done != 10 || last.Total != 10 {
		t.Errorf("final done/total = %d/%d, want 10/10", last.Done, last.Total)
	}
	if last.ETASeconds != 0 {
		t.Errorf("final snapshot should omit ETA, got %v", last.ETASeconds)
	}
	if last.Label != "test" {
		t.Errorf("label = %q", last.Label)
	}
	// Mid-run ticks with done<total must carry an ETA.
	sawETA := false
	for _, s := range c.snap[:len(c.snap)-1] {
		if s.ETASeconds > 0 {
			sawETA = true
		}
	}
	if !sawETA {
		t.Error("no mid-run snapshot carried an ETA")
	}
}

func TestServeDebug(t *testing.T) {
	m := NewMetrics()
	m.Add(StageIngest, 42)
	d, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars["obs"]
	if !ok {
		t.Fatalf("/debug/vars missing obs key; have %d keys", len(vars))
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Events != 1 || s.Bytes != 42 {
		t.Errorf("obs var = %+v, want 1 event / 42 bytes", s)
	}
	// pprof index must be mounted too.
	resp2, err := http.Get("http://" + d.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp2.StatusCode)
	}
	if _, err := ServeDebug("127.0.0.1:0", nil); err == nil {
		t.Error("ServeDebug(nil) should fail")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := []struct{ got, want string }{
		{siCount(999), "999"},
		{siCount(1500), "1.5k"},
		{siCount(2.5e6), "2.50M"},
		{siCount(3.2e9), "3.20G"},
		{siBytes(512), "512 B"},
		{siBytes(2048), "2.0 KB"},
		{siBytes(3.5e6), "3.5 MB"},
		{siBytes(4.2e9), "4.20 GB"},
		{siBytes(1.5e12), "1.50 TB"},
		{fmtETA(72), "72s"},
		{fmtETA(150), "2m30s"},
		{fmtETA(3900), "1h05m"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
