package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Reporter consumes periodic snapshots. The two built-in implementations
// are TextReporter (human-readable lines, one per interval) and
// JSONReporter (one JSON object per line, for machine consumption).
type Reporter interface {
	Report(Snapshot) error
}

// TextReporter writes one compact progress line per snapshot.
type TextReporter struct {
	W io.Writer
	// Verbose appends the per-stage counter table to every line.
	Verbose bool
}

// Report renders s as a single line, e.g.
//
//	ingest 12.0s  1.23M ev (102.9k/s)  4.56 GB (389.1 MB/s)  42/121  eta 23s  shards q=[0 3] imb 1.04
func (r *TextReporter) Report(s Snapshot) error {
	var b strings.Builder
	if s.Label != "" {
		fmt.Fprintf(&b, "%s ", s.Label)
	}
	fmt.Fprintf(&b, "%.1fs  %s ev (%s/s)  %s (%s/s)",
		s.ElapsedSeconds, siCount(float64(s.Events)), siCount(s.EventsPerSec),
		siBytes(float64(s.Bytes)), siBytes(s.BytesPerSec))
	if s.Total > 0 {
		fmt.Fprintf(&b, "  %d/%d", s.Done, s.Total)
	}
	if s.ETASeconds > 0 {
		fmt.Fprintf(&b, "  eta %s", fmtETA(s.ETASeconds))
	}
	if len(s.DecodeDrops) > 0 {
		parts := make([]string, len(s.DecodeDrops))
		for i, d := range s.DecodeDrops {
			parts[i] = fmt.Sprintf("%s=%d", d.Class, d.Drops)
		}
		fmt.Fprintf(&b, "  faults[%s]", strings.Join(parts, " "))
	}
	if len(s.Shards) > 0 {
		depths := make([]string, len(s.Shards))
		for i, sh := range s.Shards {
			depths[i] = fmt.Sprintf("%d", sh.QueueDepth)
		}
		fmt.Fprintf(&b, "  shards q=[%s] imb %.2f", strings.Join(depths, " "), s.Imbalance)
	}
	if r.Verbose {
		for _, st := range s.Stages {
			fmt.Fprintf(&b, "\n    %-14s %12d ev %10d drop %14d B", st.Stage, st.Events, st.Drops, st.Bytes)
			if st.TimedCount > 0 {
				fmt.Fprintf(&b, "  p50 %s p99 %s",
					time.Duration(st.P50Nanos), time.Duration(st.P99Nanos))
			}
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(r.W, b.String())
	return err
}

// JSONReporter writes one JSON-encoded Snapshot per line (JSONL).
type JSONReporter struct {
	W io.Writer
}

// Report marshals s compactly and appends a newline.
func (r *JSONReporter) Report(s Snapshot) error {
	enc, err := json.Marshal(s)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = r.W.Write(enc)
	return err
}

// Progress periodically snapshots a Metrics and hands the result to a
// Reporter. All methods are safe on a nil *Progress (no-ops), so callers
// can hold a nil Progress when reporting is disabled.
type Progress struct {
	m        *Metrics
	r        Reporter
	interval time.Duration
	label    string

	done  atomic.Int64
	total atomic.Int64

	start time.Time

	prevMu     sync.Mutex // guards the inst-rate baseline below
	prevT      time.Time
	prevEvents int64
	prevBytes  int64

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// NewProgress builds a reporter loop over m emitting to r every interval.
// Call Start to begin and Stop to emit the final snapshot and shut down.
func NewProgress(m *Metrics, r Reporter, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Progress{m: m, r: r, interval: interval, stop: make(chan struct{})}
}

// SetLabel names the run phase in every snapshot (e.g. "ingest").
func (p *Progress) SetLabel(l string) {
	if p != nil {
		p.label = l
	}
}

// SetTotal declares the number of work units (enables ETA).
func (p *Progress) SetTotal(n int64) {
	if p != nil {
		p.total.Store(n)
	}
}

// SetDone records completed work units.
func (p *Progress) SetDone(n int64) {
	if p != nil {
		p.done.Store(n)
	}
}

// Start launches the reporting goroutine.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.start = time.Now()
	p.prevT = p.start
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.emit(false)
			case <-p.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and emits one final snapshot (without ETA).
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		p.wg.Wait()
		p.emit(true)
	})
}

// Snapshot returns the current snapshot with rates and ETA filled in.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	return p.build(true)
}

func (p *Progress) emit(final bool) {
	if p.r == nil {
		return
	}
	_ = p.r.Report(p.build(final))
}

func (p *Progress) build(final bool) Snapshot {
	s := p.m.Snapshot()
	s.Label = p.label
	elapsed := time.Since(p.start)
	s.ElapsedSeconds = elapsed.Seconds()
	if sec := elapsed.Seconds(); sec > 0 {
		s.EventsPerSec = float64(s.Events) / sec
		s.BytesPerSec = float64(s.Bytes) / sec
	}
	now := time.Now()
	p.prevMu.Lock()
	if dt := now.Sub(p.prevT).Seconds(); dt > 0 && !p.prevT.Equal(p.start) {
		s.InstEventsPerSec = float64(s.Events-p.prevEvents) / dt
		s.InstBytesPerSec = float64(s.Bytes-p.prevBytes) / dt
	}
	p.prevT, p.prevEvents, p.prevBytes = now, s.Events, s.Bytes
	p.prevMu.Unlock()
	done, total := p.done.Load(), p.total.Load()
	if total > 0 {
		s.Done, s.Total = done, total
		if !final && done > 0 && done < total {
			s.ETASeconds = elapsed.Seconds() / float64(done) * float64(total-done)
		}
	}
	return s
}
