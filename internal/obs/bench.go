package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// IngestBench summarizes the streaming ingest phase of one harness run.
type IngestBench struct {
	Events      int64   `json:"events"`
	Flows       int64   `json:"flows"`
	Bytes       int64   `json:"bytes"`
	Seconds     float64 `json:"seconds"`
	FlowsPerSec float64 `json:"flows_per_sec"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	// Epoch-snapshot counters (sharded runs only; zero and omitted for a
	// single pipeline). Reports written before these fields existed simply
	// lack them — CompareBench skips metrics absent (≤ 0) on either side,
	// so old baselines keep diffing cleanly.
	EpochsPublished int64 `json:"epochs_published,omitempty"`
	SnapshotBytes   int64 `json:"snapshot_bytes,omitempty"`
	// Scaling reference rates (written by -measure-scaling runs; omitted
	// otherwise, with the same ≤0-skip compatibility as the epoch fields):
	// the same recorded event window replayed through a fresh single
	// pipeline and a fresh sharded pipeline, events per second each, and
	// their quotient normalized by the shard count:
	//
	//	scaling_efficiency = sharded ev/s ÷ single ev/s ÷ shards
	//
	// 1.0 is perfect linear scaling; 0.4 at 4 shards means 1.6× over the
	// single pipeline. Only meaningful when MaxProcs ≥ shards — on fewer
	// cores the shards time-slice one processor and the quotient measures
	// scheduling overhead, not scaling (benchdiff skips its floor gate in
	// that case).
	SingleRefEventsPerSec  float64 `json:"single_ref_events_per_sec,omitempty"`
	ShardedRefEventsPerSec float64 `json:"sharded_ref_events_per_sec,omitempty"`
	ScalingEfficiency      float64 `json:"scaling_efficiency,omitempty"`
}

// CacheBench summarizes the stage cache's accounting for one run (runs
// with -cache-dir only; omitted otherwise, with the same ≤0-skip
// baseline compatibility as the optional ingest fields).
type CacheBench struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Invalidations  int64 `json:"invalidations,omitempty"`
	VerifyFailures int64 `json:"verify_failures,omitempty"`
}

// BenchReport is the machine-readable record one `cmd/lockdown -bench-json`
// run writes (BENCH_<date>.json). CI archives these and diffs consecutive
// runs with cmd/benchdiff to catch throughput and per-figure regressions.
type BenchReport struct {
	Date      string `json:"date"` // YYYY-MM-DD (UTC)
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// MaxProcs is runtime.GOMAXPROCS at run time — the parallelism the run
	// actually had, as opposed to CPUs (the machine's count). Zero in
	// reports written before the field existed.
	MaxProcs int     `json:"maxprocs,omitempty"`
	Scale    float64 `json:"scale"`
	Shards   int     `json:"shards"`
	Seed     int64   `json:"seed"`

	WallSeconds float64     `json:"wall_seconds"`
	Ingest      IngestBench `json:"ingest"`
	// FiguresMS maps each figure/experiment name to its compute time; the
	// entries sum to roughly the serial cost. FiguresWallMS is what the
	// run actually paid for the figure phase — smaller than the sum when
	// the parallel finalization pool overlaps figures on spare cores.
	FiguresMS     map[string]float64 `json:"figures_ms"`
	FiguresWallMS float64            `json:"figures_wall_ms,omitempty"`
	// SealMS and MergeMS time the incremental-stats machinery: the total
	// cost of sealing per-day partial aggregates, and of merging them for
	// the merged-vs-monolithic consistency check. Written by runs that take
	// the per-day checkpoint path (-cache-dir over a rotated dataset);
	// omitted otherwise, with the usual ≤0-skip baseline compatibility.
	SealMS  float64         `json:"seal_ms,omitempty"`
	MergeMS float64         `json:"merge_ms,omitempty"`
	Stages  []StageSnapshot `json:"stages,omitempty"`
	// Cache is the stage-cache accounting (runs with -cache-dir only).
	Cache *CacheBench `json:"cache,omitempty"`
}

// BenchPath resolves where a bench report lands: a path ending in .json is
// used verbatim; anything else is treated as a directory receiving
// BENCH_<date>.json.
func BenchPath(arg, date string) string {
	if strings.HasSuffix(arg, ".json") {
		return arg
	}
	return filepath.Join(arg, "BENCH_"+date+".json")
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	return os.WriteFile(path, enc, 0o644)
}

// LoadBench reads a report written by WriteFile.
func LoadBench(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	return &r, nil
}

// BenchDelta is one compared metric. Ratio is new/old; for throughput
// higher is better, for timings lower is better — Regressed folds the
// direction in.
type BenchDelta struct {
	Metric    string
	Old, New  float64
	Ratio     float64
	Regressed bool
}

// CompareBench diffs two reports (old baseline vs cur run). maxRegress is the tolerated fractional
// slowdown (0.10 = 10%): throughput may drop and timings may grow by at
// most that factor before a delta is marked regressed. Metrics present in
// only one report are skipped (figures come and go across PRs).
func CompareBench(old, cur *BenchReport, maxRegress float64) []BenchDelta {
	var out []BenchDelta
	compare := func(metric string, o, n float64, higherBetter bool) {
		if o <= 0 || n <= 0 {
			return
		}
		d := BenchDelta{Metric: metric, Old: o, New: n, Ratio: n / o}
		if higherBetter {
			d.Regressed = d.Ratio < 1-maxRegress
		} else {
			d.Regressed = d.Ratio > 1+maxRegress
		}
		out = append(out, d)
	}
	compare("ingest.flows_per_sec", old.Ingest.FlowsPerSec, cur.Ingest.FlowsPerSec, true)
	compare("ingest.bytes_per_sec", old.Ingest.BytesPerSec, cur.Ingest.BytesPerSec, true)
	compare("ingest.snapshot_bytes",
		float64(old.Ingest.SnapshotBytes), float64(cur.Ingest.SnapshotBytes), false)
	compare("ingest.scaling_efficiency",
		old.Ingest.ScalingEfficiency, cur.Ingest.ScalingEfficiency, true)
	compare("wall_seconds", old.WallSeconds, cur.WallSeconds, false)
	compare("figures_wall_ms", old.FiguresWallMS, cur.FiguresWallMS, false)
	compare("seal_ms", old.SealMS, cur.SealMS, false)
	compare("merge_ms", old.MergeMS, cur.MergeMS, false)
	var figs []string
	for name := range old.FiguresMS {
		if _, ok := cur.FiguresMS[name]; ok {
			figs = append(figs, name)
		}
	}
	sort.Strings(figs)
	for _, name := range figs {
		compare("figures."+name, old.FiguresMS[name], cur.FiguresMS[name], false)
	}
	return out
}
