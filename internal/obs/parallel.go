package obs

import (
	"runtime"
	"sync"
	"time"
)

// TimedTask is one named unit of finalization work — a figure, experiment,
// or CSV render. Run must be safe to execute concurrently with every other
// task in the same batch: the figure computations are pure functions over
// the sealed Dataset, each writing a distinct result slot, which is exactly
// what makes the fan-out legal.
type TimedTask struct {
	Name string
	Run  func()
}

// RunTimedParallel executes tasks over a bounded worker pool and returns
// each task's wall time in milliseconds, keyed by name, plus the wall time
// of the whole fan-out. The per-task times answer "which analysis got
// slower" (they sum to roughly the serial cost); the fan-out wall time is
// what the run actually paid — on a multi-core host it is the max lane, not
// the sum. workers ≤ 0 selects GOMAXPROCS; a single worker degrades to the
// serial loop this replaces, same timings, same order.
//
// This lives in obs rather than next to the experiments because timing is
// wall-clock observability: the analysis packages themselves are
// deterministic by policy (no time.Now in internal/experiments — enforced
// by the determinism analyzer), and the pool is the one place allowed to
// hold the stopwatch.
func RunTimedParallel(workers int, tasks []TimedTask) (perTaskMS map[string]float64, wallMS float64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	perTaskMS = make(map[string]float64, len(tasks))
	if len(tasks) == 0 {
		return perTaskMS, 0
	}
	start := time.Now()
	// Results land in a per-task slot (no lock on the hot path); the map is
	// assembled after the pool drains.
	elapsed := make([]time.Duration, len(tasks))
	if workers == 1 {
		for i, t := range tasks {
			t0 := time.Now()
			t.Run()
			elapsed[i] = time.Since(t0)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					t0 := time.Now()
					tasks[i].Run()
					elapsed[i] = time.Since(t0)
				}
			}()
		}
		for i := range tasks {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, t := range tasks {
		perTaskMS[t.Name] = float64(elapsed[i].Nanoseconds()) / 1e6
	}
	return perTaskMS, float64(time.Since(start).Nanoseconds()) / 1e6
}
