package obs

import (
	"fmt"
	"time"
)

// StageSnapshot is one stage's counters at a point in time. Timing fields
// come from the 1-in-64 sampled laps and are approximate (log2 buckets).
type StageSnapshot struct {
	Stage      string `json:"stage"`
	Events     int64  `json:"events"`
	Drops      int64  `json:"drops,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
	TimedCount int64  `json:"timed_count,omitempty"`
	MeanNanos  int64  `json:"mean_ns,omitempty"`
	P50Nanos   int64  `json:"p50_ns,omitempty"`
	P99Nanos   int64  `json:"p99_ns,omitempty"`
}

// DecodeDropSnapshot is one decode-fault class's rejected-record count
// (records the replay guard dropped under a fault policy).
type DecodeDropSnapshot struct {
	Class string `json:"class"`
	Drops int64  `json:"drops"`
}

// ShardSnapshot is one shard's dispatch count, live queue depth, and
// transport-ring gauges. QueueDepth is denominated in events (bounded by
// Snapshot.QueueCapacity); RingBatches/RingCapacity are denominated in
// batches — the ring publishes whole batches, so the two use different
// units on purpose.
type ShardSnapshot struct {
	Dispatched int64 `json:"dispatched"`
	QueueDepth int   `json:"queue_depth"`
	// Ring transport gauges: current occupancy and depth in batches,
	// producer full-ring stall episodes, consumer empty-ring waits.
	RingBatches  int   `json:"ring_batches,omitempty"`
	RingCapacity int   `json:"ring_capacity,omitempty"`
	RingStalls   int64 `json:"ring_stalls,omitempty"`
	RingWaits    int64 `json:"ring_waits,omitempty"`
}

// Snapshot is a point-in-time view of the whole ingest: cumulative totals,
// rates, progress toward a known total (days of the study window), and the
// per-stage / per-shard breakdowns. Progress fills the rate and ETA fields;
// Metrics.Snapshot fills the counters.
type Snapshot struct {
	Label          string  `json:"label,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_s"`
	Events         int64   `json:"events"`
	Bytes          int64   `json:"bytes"`
	// Cumulative rates since Start; Inst* cover the last report interval.
	EventsPerSec     float64 `json:"events_per_sec"`
	BytesPerSec      float64 `json:"bytes_per_sec"`
	InstEventsPerSec float64 `json:"inst_events_per_sec,omitempty"`
	InstBytesPerSec  float64 `json:"inst_bytes_per_sec,omitempty"`
	// Done/Total are work units (study days for cmd/lockdown); ETA is the
	// linear extrapolation of Elapsed over the remaining units.
	Done       int64           `json:"done,omitempty"`
	Total      int64           `json:"total,omitempty"`
	ETASeconds float64         `json:"eta_s,omitempty"`
	Stages     []StageSnapshot `json:"stages,omitempty"`
	// QueueCapacity is the per-shard bound on ShardSnapshot.QueueDepth in
	// events (sharded ingest only).
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// DecodeDrops break rejected input records down by decode-fault class
	// (populated only when a fault policy dropped records).
	DecodeDrops []DecodeDropSnapshot `json:"decode_drops,omitempty"`
	Shards      []ShardSnapshot      `json:"shards,omitempty"`
	// Imbalance is max/mean of per-shard dispatch counts (1.0 = perfect).
	Imbalance float64 `json:"dispatch_imbalance,omitempty"`
	// Epoch-snapshot counters for the shared join tables (sharded ingest
	// only): sealed epochs, pinned shard batches, and the tables'
	// approximate retained bytes.
	EpochsPublished int64 `json:"epochs_published,omitempty"`
	EpochPins       int64 `json:"epoch_pins,omitempty"`
	SnapshotBytes   int64 `json:"snapshot_bytes,omitempty"`
	// Stage-cache counters (runs with -cache-dir only); verify failures
	// are entries rejected by checksum/version verification.
	CacheHits           int64 `json:"cache_hits,omitempty"`
	CacheMisses         int64 `json:"cache_misses,omitempty"`
	CacheInvalidations  int64 `json:"cache_invalidations,omitempty"`
	CacheVerifyFailures int64 `json:"cache_verify_failures,omitempty"`
}

// siCount formats an event count or rate with k/M/G suffixes.
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// siBytes formats a byte count or rate with decimal KB/MB/GB/TB suffixes.
func siBytes(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2f TB", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// fmtETA renders an ETA compactly (72s, 3m12s, 1h04m).
func fmtETA(sec float64) string {
	d := time.Duration(sec * float64(time.Second)).Round(time.Second)
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= 2*time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}
