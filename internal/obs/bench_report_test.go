package obs

import (
	"path/filepath"
	"testing"
)

func sampleReport(fps float64, fig1 float64) *BenchReport {
	return &BenchReport{
		Date: "2026-08-05", GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		CPUs: 8, Scale: 0.05, Shards: 1, Seed: 1,
		WallSeconds: 20.5,
		Ingest: IngestBench{
			Events: 2000000, Flows: 1500000, Bytes: 9e9,
			Seconds: 18.2, FlowsPerSec: fps, BytesPerSec: 4.9e8,
		},
		FiguresMS: map[string]float64{"fig1": fig1, "fig5": 2.5, "headline": 11.0},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := BenchPath(dir, "2026-08-05")
	if want := filepath.Join(dir, "BENCH_2026-08-05.json"); path != want {
		t.Fatalf("BenchPath dir = %q, want %q", path, want)
	}
	if got := BenchPath("custom.json", "2026-08-05"); got != "custom.json" {
		t.Fatalf("BenchPath file = %q", got)
	}
	r := sampleReport(82000, 4.2)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ingest.FlowsPerSec != 82000 || r2.FiguresMS["fig1"] != 4.2 || r2.Date != "2026-08-05" {
		t.Errorf("round-trip mismatch: %+v", r2)
	}
}

func TestCompareBench(t *testing.T) {
	old := sampleReport(100000, 10)
	cur := sampleReport(95000, 10.5) // -5% throughput, +5% fig1: within 10%
	deltas := CompareBench(old, cur, 0.10)
	for _, d := range deltas {
		if d.Regressed {
			t.Errorf("%s unexpectedly regressed (ratio %.3f)", d.Metric, d.Ratio)
		}
	}

	cur = sampleReport(80000, 13) // -20% throughput, +30% fig1: both regress
	deltas = CompareBench(old, cur, 0.10)
	regressed := map[string]bool{}
	for _, d := range deltas {
		if d.Regressed {
			regressed[d.Metric] = true
		}
	}
	if !regressed["ingest.flows_per_sec"] || !regressed["figures.fig1"] {
		t.Errorf("expected flows_per_sec and fig1 regressions, got %v", regressed)
	}

	// A figure present only in one report is skipped, not regressed.
	delete(cur.FiguresMS, "fig5")
	for _, d := range CompareBench(old, cur, 0.10) {
		if d.Metric == "figures.fig5" {
			t.Error("fig5 should be skipped when missing from the new report")
		}
	}
}

// TestCompareBenchOldBaselineWithoutEpochFields pins forward compatibility
// of the baseline format: a baseline written before the epoch-snapshot
// fields existed (epochs_published, snapshot_bytes zero after decode) must
// compare cleanly against a current report that carries them — the
// missing metrics are skipped, never reported as regressions, and the
// rest of the comparison still runs.
func TestCompareBenchOldBaselineWithoutEpochFields(t *testing.T) {
	old := sampleReport(100000, 10) // pre-epoch baseline: zero-valued new fields
	cur := sampleReport(99000, 10)
	cur.Ingest.EpochsPublished = 75
	cur.Ingest.SnapshotBytes = 48 << 20

	for _, d := range CompareBench(old, cur, 0.10) {
		if d.Metric == "ingest.snapshot_bytes" {
			t.Errorf("snapshot_bytes compared against a baseline that lacks it (ratio %.3f)", d.Ratio)
		}
		if d.Regressed {
			t.Errorf("%s unexpectedly regressed (ratio %.3f)", d.Metric, d.Ratio)
		}
	}

	// Once both sides carry the gauge it participates like any metric: a
	// snapshot that balloons past the threshold regresses.
	old.Ingest.SnapshotBytes = 32 << 20
	cur.Ingest.SnapshotBytes = 64 << 20
	var saw bool
	for _, d := range CompareBench(old, cur, 0.10) {
		if d.Metric == "ingest.snapshot_bytes" {
			saw = true
			if !d.Regressed {
				t.Errorf("doubled snapshot_bytes not flagged (ratio %.3f)", d.Ratio)
			}
		}
	}
	if !saw {
		t.Error("snapshot_bytes missing from comparison when present in both reports")
	}
}

func TestLoadBenchErrors(t *testing.T) {
	if _, err := LoadBench(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := (&BenchReport{}).WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(bad); err != nil {
		t.Errorf("empty report should still parse: %v", err)
	}
}
