package obs

import (
	"sync"
	"testing"
	"time"
)

// TestCounters checks exact event/drop/byte accounting from many
// goroutines — run under -race this is the layer's core safety claim.
func TestCounters(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(StageIngest, 100)
				m.Add(StageAggregate, 100)
				if i%4 == 0 {
					m.Drop(StageTapFilter)
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Events(); got != workers*per {
		t.Errorf("Events = %d, want %d", got, workers*per)
	}
	if got := m.Bytes(); got != workers*per*100 {
		t.Errorf("Bytes = %d, want %d", got, workers*per*100)
	}
	agg := m.StageCounters(StageAggregate)
	if agg.Events != workers*per || agg.Bytes != workers*per*100 {
		t.Errorf("aggregate = %+v, want %d events / %d bytes", agg, workers*per, workers*per*100)
	}
	if got := m.StageCounters(StageTapFilter).Drops; got != workers*per/4 {
		t.Errorf("tap drops = %d, want %d", got, workers*per/4)
	}
}

// TestSnapshotDuringIngest exercises concurrent Snapshot vs ingest (the
// Progress goroutine's access pattern) for the race detector.
func TestSnapshotDuringIngest(t *testing.T) {
	m := NewMetrics()
	m.SetShards(4)
	m.SetQueueDepthFunc(func() []int { return []int{1, 2, 3, 4} })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				m.Add(StageIngest, 1)
				m.Dispatch(i % 4)
				m.Lap(StageAggregate, m.Now())
			}
		}
	}()
	for i := 0; i < 100; i++ {
		s := m.Snapshot()
		if len(s.Shards) != 4 {
			t.Fatalf("shards = %d, want 4", len(s.Shards))
		}
	}
	close(stop)
	wg.Wait()
	s := m.Snapshot()
	var dispatched int64
	for _, sh := range s.Shards {
		dispatched += sh.Dispatched
	}
	if dispatched != s.Events {
		t.Errorf("dispatched sum %d != events %d", dispatched, s.Events)
	}
	if s.Shards[2].QueueDepth != 3 {
		t.Errorf("queue depth = %d, want 3", s.Shards[2].QueueDepth)
	}
}

// TestNilMetricsNoOp: every method must be callable on a nil receiver.
func TestNilMetricsNoOp(t *testing.T) {
	var m *Metrics
	m.Add(StageIngest, 10)
	m.Drop(StageTapFilter)
	m.Observe(StageAggregate, time.Millisecond)
	m.Dispatch(0)
	m.SetShards(4)
	m.SetQueueDepthFunc(func() []int { return nil })
	if ts := m.Now(); !ts.IsZero() {
		t.Error("nil Now() should return zero time")
	}
	if ts := m.Lap(StageAggregate, time.Time{}); !ts.IsZero() {
		t.Error("nil Lap() should pass zero time through")
	}
	if m.Events() != 0 || m.Bytes() != 0 {
		t.Error("nil counters should read 0")
	}
	if s := m.Snapshot(); s.Events != 0 || len(s.Stages) != 0 {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
	var p *Progress
	p.SetLabel("x")
	p.SetTotal(1)
	p.SetDone(1)
	p.Start()
	p.Stop()
	if s := p.Snapshot(); s.Events != 0 {
		t.Error("nil Progress snapshot should be zero")
	}
}

// TestNilMetricsZeroAlloc is the disabled-path contract: the hot-path call
// sequence on a nil Metrics allocates nothing.
func TestNilMetricsZeroAlloc(t *testing.T) {
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		ts := m.Now()
		m.Add(StageIngest, 1500)
		ts = m.Lap(StageTapFilter, ts)
		m.Add(StageDHCPNormalize, 0)
		ts = m.Lap(StageDHCPNormalize, ts)
		m.Drop(StageDNSLabel)
		m.Dispatch(3)
		m.Lap(StageAggregate, ts)
	})
	if allocs != 0 {
		t.Errorf("nil-path allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkMetricsDisabled measures the nil fast path (must report 0 B/op).
func BenchmarkMetricsDisabled(b *testing.B) {
	var m *Metrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := m.Now()
		m.Add(StageIngest, 1500)
		ts = m.Lap(StageTapFilter, ts)
		m.Add(StageAggregate, 1500)
		m.Lap(StageAggregate, ts)
	}
}

// BenchmarkMetricsEnabled measures the instrumented path for reference.
func BenchmarkMetricsEnabled(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := m.Now()
		m.Add(StageIngest, 1500)
		ts = m.Lap(StageTapFilter, ts)
		m.Add(StageAggregate, 1500)
		m.Lap(StageAggregate, ts)
	}
}

func TestTimingHistogram(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 1000; i++ {
		m.Observe(StageDNSLabel, 100*time.Microsecond)
	}
	m.Observe(StageDNSLabel, 50*time.Millisecond)
	ss := m.StageCounters(StageDNSLabel)
	if ss.TimedCount != 1001 {
		t.Fatalf("timed count = %d, want 1001", ss.TimedCount)
	}
	// p50 should land in the 100µs log2 bucket [65.5µs, 131µs); p99 too.
	if ss.P50Nanos < 50_000 || ss.P50Nanos > 200_000 {
		t.Errorf("p50 = %dns, want ≈100µs", ss.P50Nanos)
	}
	if ss.MeanNanos < 100_000 {
		t.Errorf("mean = %dns, want ≥100µs", ss.MeanNanos)
	}
}

func TestSampledLaps(t *testing.T) {
	m := NewMetrics()
	sampled := 0
	for i := 0; i < 10*sampleEvery; i++ {
		ts := m.Now()
		if !ts.IsZero() {
			sampled++
		}
		m.Lap(StageAggregate, ts)
	}
	if sampled != 10 {
		t.Errorf("sampled %d of %d, want 10", sampled, 10*sampleEvery)
	}
	if got := m.StageCounters(StageAggregate).TimedCount; got != 10 {
		t.Errorf("timed count = %d, want 10", got)
	}
}

func TestStageString(t *testing.T) {
	if StageDHCPNormalize.String() != "dhcp_normalize" {
		t.Errorf("got %q", StageDHCPNormalize.String())
	}
	if Stage(250).String() != "unknown" {
		t.Errorf("out-of-range stage should be unknown")
	}
}
