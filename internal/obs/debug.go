package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
	"sync/atomic"
)

// debugMetrics is the Metrics the expvar "obs" variable reads. A process
// hosts one debug metrics set at a time (expvar names are global).
var (
	debugMetrics atomic.Pointer[Metrics]
	publishOnce  sync.Once
)

// DebugServer is a running expvar + pprof endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
	// done closes when the serve goroutine exits; Close waits on it so
	// shutdown is complete, not merely requested (the goroutineowner
	// contract for long-lived packages).
	done chan struct{}
	// closeOnce makes Close idempotent and race-safe: concurrent and
	// repeated Close calls all observe one complete shutdown and the same
	// error, so a caller's teardown can race a signal handler's without a
	// double-close on the listener.
	closeOnce sync.Once
	closeErr  error
}

// ServeDebug exposes m as the expvar variable "obs" (under /debug/vars)
// together with the standard net/http/pprof handlers on addr (e.g.
// "localhost:6060"; ":0" picks a free port — see Addr). It returns
// immediately; the server runs until Close.
//
// The endpoint is unauthenticated: bind it to localhost unless the network
// is trusted.
func ServeDebug(addr string, m *Metrics) (*DebugServer, error) {
	return ServeDebugMux(addr, m, nil)
}

// ServeDebugMux is ServeDebug with an application handler mounted on the
// same port: requests under /debug/ go to the process-wide
// net/http.DefaultServeMux (expvar + pprof), everything else to handler.
// A nil handler serves DefaultServeMux alone. The server may be restarted
// on the same address after Close: the listener is released before Close
// returns.
func ServeDebugMux(addr string, m *Metrics, handler http.Handler) (*DebugServer, error) {
	if m == nil {
		return nil, fmt.Errorf("obs: ServeDebug requires non-nil Metrics")
	}
	debugMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			mm := debugMetrics.Load()
			if mm == nil {
				return nil
			}
			return mm.Snapshot()
		}))
	})
	root := http.Handler(http.DefaultServeMux)
	if handler != nil {
		mux := http.NewServeMux()
		mux.Handle("/debug/", http.DefaultServeMux)
		mux.Handle("/", handler)
		root = mux
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: root},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to
// exit, so no request handling races the caller's teardown. Close is
// idempotent: every call (including concurrent ones) returns after the
// shutdown is complete, with the error of the one close that ran.
func (d *DebugServer) Close() error {
	d.closeOnce.Do(func() {
		d.closeErr = d.srv.Close()
		<-d.done
	})
	return d.closeErr
}
