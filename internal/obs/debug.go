package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
	"sync/atomic"
)

// debugMetrics is the Metrics the expvar "obs" variable reads. A process
// hosts one debug metrics set at a time (expvar names are global).
var (
	debugMetrics atomic.Pointer[Metrics]
	publishOnce  sync.Once
)

// DebugServer is a running expvar + pprof endpoint.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
	// done closes when the serve goroutine exits; Close waits on it so
	// shutdown is complete, not merely requested (the goroutineowner
	// contract for long-lived packages).
	done chan struct{}
}

// ServeDebug exposes m as the expvar variable "obs" (under /debug/vars)
// together with the standard net/http/pprof handlers on addr (e.g.
// "localhost:6060"; ":0" picks a free port — see Addr). It returns
// immediately; the server runs until Close.
//
// The endpoint is unauthenticated: bind it to localhost unless the network
// is trusted.
func ServeDebug(addr string, m *Metrics) (*DebugServer, error) {
	if m == nil {
		return nil, fmt.Errorf("obs: ServeDebug requires non-nil Metrics")
	}
	debugMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			mm := debugMetrics.Load()
			if mm == nil {
				return nil
			}
			return mm.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: http.DefaultServeMux},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to
// exit, so no request handling races the caller's teardown.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	return err
}
