package anonymize

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/campus"
	"repro/internal/packet"
)

func testKey() []byte {
	return []byte("0123456789abcdef0123456789abcdef")
}

func TestPseudonymizerKeyLength(t *testing.T) {
	if _, err := NewPseudonymizer([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewPseudonymizer(testKey()); err != nil {
		t.Error(err)
	}
}

func TestPseudonymStableAndKeyed(t *testing.T) {
	p1, _ := NewPseudonymizer(testKey())
	p2, _ := NewPseudonymizer(testKey())
	p3, _ := NewPseudonymizer([]byte("a different key a different key!"))
	m := packet.MustParseMAC("00:11:22:33:44:55")
	if p1.Device(m) != p2.Device(m) {
		t.Error("same key produced different pseudonyms")
	}
	if p1.Device(m) == p3.Device(m) {
		t.Error("different keys produced same pseudonym")
	}
}

func TestPseudonymInjectiveInPractice(t *testing.T) {
	p, _ := NewPseudonymizer(testKey())
	seen := make(map[DeviceID]packet.MAC)
	for i := 0; i < 100000; i++ {
		m := packet.MAC{byte(i >> 16), byte(i >> 8), byte(i), 0xaa, 0xbb, 0xcc}
		id := p.Device(m)
		if prev, dup := seen[id]; dup {
			t.Fatalf("collision: %v and %v -> %v", prev, m, id)
		}
		seen[id] = m
	}
}

func TestMACAndAddrDomainsSeparated(t *testing.T) {
	// A MAC and an IP with identical raw bytes must not share pseudonyms
	// (domain separation).
	p, _ := NewPseudonymizer(testKey())
	m := packet.MAC{1, 2, 3, 4, 5, 6}
	a := netip.AddrFrom4([4]byte{1, 2, 3, 4})
	if uint64(p.Device(m)) == p.Addr(a) {
		t.Error("cross-domain pseudonym collision")
	}
}

func TestDeviceIDString(t *testing.T) {
	if s := DeviceID(0xdeadbeef).String(); s != "00000000deadbeef" {
		t.Errorf("String = %q", s)
	}
}

func TestRandomPseudonymizerUnlinkable(t *testing.T) {
	p1, err := NewRandomPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewRandomPseudonymizer()
	if err != nil {
		t.Fatal(err)
	}
	m := packet.MustParseMAC("02:00:00:00:00:01")
	if p1.Device(m) == p2.Device(m) {
		t.Error("two random pseudonymizers agree — keys not random")
	}
}

func TestSuppress(t *testing.T) {
	if !Suppress(0) || !Suppress(MinGroupSize-1) {
		t.Error("small groups not suppressed")
	}
	if Suppress(MinGroupSize) || Suppress(1000) {
		t.Error("large groups suppressed")
	}
}

func TestPresenceVisitorFilter(t *testing.T) {
	tr := NewPresenceTracker()
	visitor := DeviceID(1)
	resident := DeviceID(2)
	for d := campus.Day(0); d < 5; d++ {
		tr.Observe(visitor, d)
	}
	for d := campus.Day(0); d < 20; d++ {
		tr.Observe(resident, d)
	}
	if tr.Resident(visitor) {
		t.Error("5-day visitor passed the filter")
	}
	if !tr.Resident(resident) {
		t.Error("20-day resident failed the filter")
	}
	if tr.DaysSeen(visitor) != 5 || tr.DaysSeen(resident) != 20 {
		t.Errorf("days = %d, %d", tr.DaysSeen(visitor), tr.DaysSeen(resident))
	}
	if tr.Devices() != 2 || tr.CountResidents() != 1 {
		t.Errorf("devices=%d residents=%d", tr.Devices(), tr.CountResidents())
	}
}

func TestPresenceIdempotent(t *testing.T) {
	tr := NewPresenceTracker()
	for i := 0; i < 100; i++ {
		tr.Observe(7, campus.Day(3))
	}
	if tr.DaysSeen(7) != 1 {
		t.Errorf("DaysSeen = %d after repeated observations", tr.DaysSeen(7))
	}
	if !tr.ActiveOn(7, 3) || tr.ActiveOn(7, 4) {
		t.Error("ActiveOn wrong")
	}
}

func TestPostShutdownUser(t *testing.T) {
	tr := NewPresenceTracker()
	breakDay, _ := campus.DayOf(campus.BreakStart)

	// Device A: resident who left before break — not post-shutdown.
	for d := campus.Day(0); d < breakDay-1; d++ {
		tr.Observe(1, d)
	}
	// Device B: resident present through May — post-shutdown.
	for d := campus.Day(0); d < campus.NumDays; d += 2 {
		tr.Observe(2, d)
	}
	// Device C: appears only after break, 20 days — post-shutdown.
	for d := breakDay; d < breakDay+20; d++ {
		tr.Observe(3, d)
	}
	// Device D: brief visitor after break — filtered.
	for d := breakDay; d < breakDay+3; d++ {
		tr.Observe(4, d)
	}
	if tr.PostShutdownUser(1) {
		t.Error("pre-break leaver counted as post-shutdown")
	}
	if !tr.PostShutdownUser(2) {
		t.Error("staying resident not post-shutdown")
	}
	if !tr.PostShutdownUser(3) {
		t.Error("late-arriving resident not post-shutdown")
	}
	if tr.PostShutdownUser(4) {
		t.Error("post-break visitor counted")
	}
	if got := tr.CountPostShutdown(); got != 2 {
		t.Errorf("CountPostShutdown = %d, want 2", got)
	}
}

func TestPresenceOutOfRangeDaysIgnored(t *testing.T) {
	tr := NewPresenceTracker()
	tr.Observe(9, campus.Day(-1))
	tr.Observe(9, campus.Day(campus.NumDays))
	tr.Observe(9, campus.Day(1000))
	if tr.DaysSeen(9) != 0 {
		t.Errorf("out-of-range days counted: %d", tr.DaysSeen(9))
	}
}

func TestDayBitmapProperty(t *testing.T) {
	f := func(days []uint8) bool {
		tr := NewPresenceTracker()
		want := map[campus.Day]bool{}
		for _, raw := range days {
			d := campus.Day(int(raw) % campus.NumDays)
			tr.Observe(42, d)
			want[d] = true
		}
		if tr.DaysSeen(42) != len(want) {
			return false
		}
		for d := campus.Day(0); d < campus.NumDays; d++ {
			if tr.ActiveOn(42, d) != want[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPseudonymizeDevice(b *testing.B) {
	p, _ := NewPseudonymizer(testKey())
	m := packet.MustParseMAC("00:11:22:33:44:55")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Device(m)
	}
}

func BenchmarkPresenceObserve(b *testing.B) {
	tr := NewPresenceTracker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(DeviceID(i%30000), campus.Day(i%campus.NumDays))
	}
}
