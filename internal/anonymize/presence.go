package anonymize

import (
	"sort"

	"repro/internal/campus"
)

// MinResidentDays is the presence threshold separating residents from
// campus visitors: the study discards devices that appear on the network
// for fewer than 14 days (§3).
const MinResidentDays = 14

// PresenceTracker records which days each device was active, supporting
// the visitor filter and the post-shutdown-user definition.
type PresenceTracker struct {
	days map[DeviceID]*dayBitmap
}

// dayBitmap is a bitset over the study's days (121 < 128 bits).
type dayBitmap struct {
	bits [2]uint64
}

func (b *dayBitmap) set(d campus.Day) {
	if d < 0 || int(d) >= campus.NumDays {
		return
	}
	b.bits[d/64] |= 1 << (uint(d) % 64)
}

func (b *dayBitmap) get(d campus.Day) bool {
	if d < 0 || int(d) >= campus.NumDays {
		return false
	}
	return b.bits[d/64]&(1<<(uint(d)%64)) != 0
}

func (b *dayBitmap) count() int {
	return popcount(b.bits[0]) + popcount(b.bits[1])
}

func (b *dayBitmap) anyAtOrAfter(d campus.Day) bool {
	if d < 0 {
		d = 0
	}
	if int(d) >= campus.NumDays {
		return false
	}
	word := int(d) / 64
	bit := uint(d) % 64
	if b.bits[word]>>bit != 0 {
		return true
	}
	for w := word + 1; w < len(b.bits); w++ {
		if b.bits[w] != 0 {
			return true
		}
	}
	return false
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// NewPresenceTracker returns an empty tracker.
func NewPresenceTracker() *PresenceTracker {
	return &PresenceTracker{days: make(map[DeviceID]*dayBitmap)}
}

// Observe marks the device active on the given study day.
func (p *PresenceTracker) Observe(dev DeviceID, day campus.Day) {
	b := p.days[dev]
	if b == nil {
		b = &dayBitmap{}
		p.days[dev] = b
	}
	b.set(day)
}

// DaysSeen returns the number of distinct days the device was active.
func (p *PresenceTracker) DaysSeen(dev DeviceID) int {
	if b := p.days[dev]; b != nil {
		return b.count()
	}
	return 0
}

// ActiveOn reports whether the device was active on the given day.
func (p *PresenceTracker) ActiveOn(dev DeviceID, day campus.Day) bool {
	if b := p.days[dev]; b != nil {
		return b.get(day)
	}
	return false
}

// Resident reports whether the device passes the visitor filter (present at
// least MinResidentDays distinct days).
func (p *PresenceTracker) Resident(dev DeviceID) bool {
	return p.DaysSeen(dev) >= MinResidentDays
}

// PostShutdownUser reports whether the device is in the paper's analysis
// population: a resident that remained active into the online term (§4:
// "6,522 devices in total remained on campus after the shutdown"). Devices
// whose owners left during the academic break are not post-shutdown users —
// they did not remain on campus.
func (p *PresenceTracker) PostShutdownUser(dev DeviceID) bool {
	b := p.days[dev]
	if b == nil {
		return false
	}
	onlineDay, _ := campus.DayOf(campus.BreakEnd)
	return b.count() >= MinResidentDays && b.anyAtOrAfter(onlineDay)
}

// Devices returns the number of devices tracked.
func (p *PresenceTracker) Devices() int { return len(p.days) }

// CountResidents returns how many devices pass the visitor filter.
func (p *PresenceTracker) CountResidents() int {
	n := 0
	for _, b := range p.days {
		if b.count() >= MinResidentDays {
			n++
		}
	}
	return n
}

// PresenceRecord is one device's externalized day bitmap (two 64-bit
// words cover the study's 121 days).
type PresenceRecord struct {
	Device DeviceID
	Days   [2]uint64
}

// Export returns every device's bitmap in ascending pseudonym order.
func (p *PresenceTracker) Export() []PresenceRecord {
	devs := make([]DeviceID, 0, len(p.days))
	for dev := range p.days {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	out := make([]PresenceRecord, 0, len(devs))
	for _, dev := range devs {
		out = append(out, PresenceRecord{Device: dev, Days: p.days[dev].bits})
	}
	return out
}

// Restore reinstates bitmaps exported by Export into an empty tracker
// (panics otherwise).
func (p *PresenceTracker) Restore(recs []PresenceRecord) {
	if len(p.days) != 0 {
		panic("anonymize: Restore on a PresenceTracker with state")
	}
	for _, r := range recs {
		p.days[r.Device] = &dayBitmap{bits: r.Days}
	}
}

// CountPostShutdown returns the size of the post-shutdown population.
func (p *PresenceTracker) CountPostShutdown() int {
	onlineDay, _ := campus.DayOf(campus.BreakEnd)
	n := 0
	for _, b := range p.days {
		if b.count() >= MinResidentDays && b.anyAtOrAfter(onlineDay) {
			n++
		}
	}
	return n
}
