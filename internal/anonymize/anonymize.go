// Package anonymize implements the privacy controls the study operated
// under (§3): device and client addresses are pseudonymized with a keyed
// hash before analysis, raw identifiers are discarded, devices that appear
// only briefly (campus visitors) are dropped, and aggregate results are
// suppressed below a minimum group size.
package anonymize

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/netip"

	"repro/internal/packet"
)

// DeviceID is the stable pseudonym for one device (a keyed hash of its MAC
// address). It is the only device identifier analyses ever see.
type DeviceID uint64

// String renders the pseudonym as fixed-width hex.
func (d DeviceID) String() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(d))
	return hex.EncodeToString(b[:])
}

// Pseudonymizer maps raw identifiers to stable pseudonyms under a secret
// key. The same key yields the same pseudonyms (so multi-pass analyses
// agree); destroying the key unlinks the dataset from real identifiers.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer returns a pseudonymizer with the given key. An empty key
// is rejected — that would make pseudonyms trivially recomputable.
func NewPseudonymizer(key []byte) (*Pseudonymizer, error) {
	if len(key) < 16 {
		return nil, fmt.Errorf("anonymize: key must be at least 16 bytes, have %d", len(key))
	}
	return &Pseudonymizer{key: append([]byte(nil), key...)}, nil
}

// NewRandomPseudonymizer draws a fresh random key, the production
// configuration: nobody retains the key, so the mapping is one-way.
func NewRandomPseudonymizer() (*Pseudonymizer, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("anonymize: generating key: %w", err)
	}
	return NewPseudonymizer(key)
}

// Key returns a copy of the pseudonymization key, for constructing
// additional pseudonymizers that must agree (e.g. pipeline shards).
func (p *Pseudonymizer) Key() []byte {
	return append([]byte(nil), p.key...)
}

func (p *Pseudonymizer) hash(domain string, data []byte) uint64 {
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(domain))
	mac.Write([]byte{0})
	mac.Write(data)
	sum := mac.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// Device pseudonymizes a MAC address.
func (p *Pseudonymizer) Device(m packet.MAC) DeviceID {
	return DeviceID(p.hash("mac", m[:]))
}

// Addr pseudonymizes a client IP address (used when retaining per-client
// DNS context without the raw address).
func (p *Pseudonymizer) Addr(a netip.Addr) uint64 {
	b := a.As16()
	return p.hash("addr", b[:])
}

// MinGroupSize is the aggregate-reporting floor: results about fewer
// devices than this are suppressed, matching the study's
// aggregate-results-only IRB condition.
const MinGroupSize = 10

// Suppress reports whether an aggregate over n devices is too small to
// release.
func Suppress(n int) bool { return n < MinGroupSize }
