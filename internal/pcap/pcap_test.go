package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Date(2020, time.February, 1, 8, 0, 0, 123456000, time.UTC)
	frames := [][]byte{
		[]byte("frame-one"),
		bytes.Repeat([]byte{0x42}, 1500),
		{}, // empty frame is legal
	}
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(frames) {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type = %d", r.LinkType())
	}
	for i, f := range frames {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, f) {
			t.Errorf("record %d data mismatch", i)
		}
		want := base.Add(time.Duration(i) * time.Second)
		if !rec.Time.Equal(want) {
			t.Errorf("record %d time = %v, want %v", i, rec.Time, want)
		}
		if rec.OrigLen != len(f) {
			t.Errorf("record %d origlen = %d", i, rec.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last record err = %v, want EOF", err)
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestBigEndianFilesAccepted(t *testing.T) {
	var buf bytes.Buffer
	var hdr [globalHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicMicroseconds)
	binary.BigEndian.PutUint16(hdr[4:6], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:8], versionMinor)
	binary.BigEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [recordHeaderLen]byte
	binary.BigEndian.PutUint32(rec[0:4], 1580544000)
	binary.BigEndian.PutUint32(rec[4:8], 500000)
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec[:])
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte{1, 2, 3}) {
		t.Errorf("data = %v", got.Data)
	}
	if got.Time.Unix() != 1580544000 || got.Time.Nanosecond() != 500000000 {
		t.Errorf("time = %v", got.Time)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewReader(make([]byte, globalHeaderLen))
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewReader([]byte{0xd4, 0xc3})
	if _, err := NewReader(buf); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(time.Now(), []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrRecordShort) {
		t.Errorf("err = %v, want ErrRecordShort", err)
	}
}

func TestOversizeRecordRejectedOnWrite(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WritePacket(time.Now(), make([]byte, MaxSnapLen+1)); !errors.Is(err, ErrRecordHuge) {
		t.Errorf("err = %v, want ErrRecordHuge", err)
	}
}

func TestOversizeRecordRejectedOnRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WritePacket(time.Now(), []byte("ok"))
	w.Flush()
	raw := buf.Bytes()
	// Corrupt the inclLen field of the first record to a huge value.
	binary.LittleEndian.PutUint32(raw[globalHeaderLen+8:globalHeaderLen+12], MaxSnapLen+100)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrRecordHuge) {
		t.Errorf("err = %v, want ErrRecordHuge", err)
	}
}

func TestManyRecordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 2000
	sizes := make([]int, n)
	base := time.Unix(1583000000, 0).UTC()
	for i := range sizes {
		sizes[i] = rng.Intn(1600)
		frame := make([]byte, sizes[i])
		rng.Read(frame)
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), frame); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Data) != sizes[count] {
			t.Fatalf("record %d size = %d, want %d", count, len(rec.Data), sizes[count])
		}
		count++
	}
	if count != n {
		t.Errorf("read %d records, want %d", count, n)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	frame := bytes.Repeat([]byte{0x55}, 1200)
	w := NewWriter(io.Discard)
	ts := time.Unix(1583000000, 0)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(ts, frame); err != nil {
			b.Fatal(err)
		}
	}
}
