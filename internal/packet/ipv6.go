package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv6HeaderLen is the length of the fixed IPv6 header.
const IPv6HeaderLen = 40

// IPv6 is the fixed IPv6 header. Extension headers are not interpreted;
// a packet whose NextHeader is not TCP or UDP decodes with an opaque
// payload.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	NextHeader   uint8
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr

	payload []byte
}

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < IPv6HeaderLen {
		return fmt.Errorf("%w: ipv6 needs %d bytes, have %d", ErrTruncated, IPv6HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 6 {
		return fmt.Errorf("%w: version %d in IPv6 decoder", ErrBadVersion, v)
	}
	vtf := binary.BigEndian.Uint32(data[0:4])
	ip.TrafficClass = uint8(vtf >> 20)
	ip.FlowLabel = vtf & 0xfffff
	payloadLen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	var src, dst [16]byte
	copy(src[:], data[8:24])
	copy(dst[:], data[24:40])
	ip.Src = netip.AddrFrom16(src)
	ip.Dst = netip.AddrFrom16(dst)
	if IPv6HeaderLen+payloadLen > len(data) {
		return fmt.Errorf("%w: ipv6 payload length %d exceeds frame", ErrTruncated, payloadLen)
	}
	ip.payload = data[IPv6HeaderLen : IPv6HeaderLen+payloadLen]
	return nil
}

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType {
	switch ip.NextHeader {
	case ProtoTCP:
		return LayerTypeTCP
	case ProtoUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// AppendTo implements Layer.
func (ip *IPv6) AppendTo(b []byte) ([]byte, error) {
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return nil, fmt.Errorf("%w: IPv6 layer with non-v6 addresses", ErrBadHeader)
	}
	if len(b) > 0xffff {
		return nil, fmt.Errorf("%w: payload too large for IPv6 (%d bytes)", ErrBadHeader, len(b))
	}
	hdr := make([]byte, IPv6HeaderLen, IPv6HeaderLen+len(b))
	binary.BigEndian.PutUint32(hdr[0:4], 6<<28|uint32(ip.TrafficClass)<<20|ip.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(b)))
	hdr[6] = ip.NextHeader
	hop := ip.HopLimit
	if hop == 0 {
		hop = 64
	}
	hdr[7] = hop
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(hdr[8:24], src[:])
	copy(hdr[24:40], dst[:])
	return append(hdr, b...), nil
}
