package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// internetChecksum computes the RFC 1071 ones-complement checksum over the
// given byte groups, treating them as one contiguous big-endian stream.
func internetChecksum(initial uint32, groups ...[]byte) uint16 {
	sum := initial
	for _, data := range groups {
		for len(data) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(data))
			data = data[2:]
		}
		if len(data) == 1 {
			sum += uint32(data[0]) << 8
		}
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial checksum of the IPv4 or IPv6
// pseudo-header for a transport segment of the given protocol and length.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
	}
	s, d := src.AsSlice(), dst.AsSlice()
	add(s)
	add(d)
	sum += uint32(proto)
	sum += uint32(length>>16) & 0xffff
	sum += uint32(length) & 0xffff
	return sum
}

// transportChecksum computes the TCP/UDP checksum of segment (with its
// checksum field zeroed by the caller or included as zero) under the given
// IP layer.
func transportChecksum(segment []byte, ipv4 *IPv4, ipv6 *IPv6, proto uint8) (uint16, error) {
	var src, dst netip.Addr
	switch {
	case ipv4 != nil:
		src, dst = ipv4.Src, ipv4.Dst
	case ipv6 != nil:
		src, dst = ipv6.Src, ipv6.Dst
	default:
		return 0, fmt.Errorf("%w: transport layer without IP layer", ErrBadHeader)
	}
	initial := pseudoHeaderSum(src, dst, proto, len(segment))
	return internetChecksum(initial, segment), nil
}

// verifyTransportChecksum checks a received transport checksum. rawBytes is
// the full segment as received (checksum field included), so a correct
// segment sums to zero under the pseudo-header.
func verifyTransportChecksum(got uint16, rawBytes []byte, ipv4 *IPv4, ipv6 *IPv6, proto uint8) error {
	want, err := transportChecksum(rawBytes, ipv4, ipv6, proto)
	if err != nil {
		return err
	}
	// Including the transmitted checksum in the sum yields 0 (whose
	// ones-complement encoding from internetChecksum is 0x0000 here).
	if want != 0 {
		return fmt.Errorf("%w: proto %d checksum 0x%04x invalid", ErrBadChecksum, proto, got)
	}
	return nil
}
