package packet

import (
	"net/netip"
	"testing"
)

// FuzzDecode exercises the strict decoder against arbitrary frames. The
// invariant: never panic, and any frame that decodes cleanly re-serializes
// without error.
func FuzzDecode(f *testing.F) {
	// Seed with real frames of each shape.
	tcp4, _ := Serialize([]byte("seed payload"),
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("23.0.0.1"), Protocol: ProtoTCP},
		&TCP{SrcPort: 1234, DstPort: 443, Flags: FlagACK})
	udp6, _ := Serialize([]byte{1, 2, 3},
		&Ethernet{EtherType: EtherTypeIPv6},
		&IPv6{Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"), NextHeader: ProtoUDP},
		&UDP{SrcPort: 53, DstPort: 53})
	vlan, _ := Serialize(nil, &Ethernet{EtherType: EtherTypeARP, VLAN: 100})
	f.Add(tcp4)
	f.Add(udp6)
	f.Add(vlan)
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := Decode(frame, true)
		if err != nil {
			return
		}
		// A cleanly decoded packet exposes consistent layers.
		for _, l := range p.Layers {
			if l.LayerType() == 0 {
				t.Fatal("layer with zero type")
			}
		}
	})
}
