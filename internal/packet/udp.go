package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP datagram header.
type UDP struct {
	SrcPort uint16
	DstPort uint16

	checksum uint16
	rawBytes []byte
	payload  []byte
	ipv4     *IPv4
	ipv6     *IPv6
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, UDPHeaderLen, len(data))
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < UDPHeaderLen || length > len(data) {
		return fmt.Errorf("%w: udp length %d outside [%d,%d]", ErrBadHeader, length, UDPHeaderLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.checksum = binary.BigEndian.Uint16(data[6:8])
	u.rawBytes = data[:length]
	u.payload = data[UDPHeaderLen:length]
	return nil
}

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// Checksum returns the checksum observed on the wire (valid after decode).
func (u *UDP) Checksum() uint16 { return u.checksum }

// AppendTo implements Layer.
func (u *UDP) AppendTo(b []byte) ([]byte, error) {
	length := UDPHeaderLen + len(b)
	if length > 0xffff {
		return nil, fmt.Errorf("%w: udp datagram too large (%d bytes)", ErrBadHeader, length)
	}
	seg := make([]byte, UDPHeaderLen, length)
	binary.BigEndian.PutUint16(seg[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], u.DstPort)
	binary.BigEndian.PutUint16(seg[4:6], uint16(length))
	seg = append(seg, b...)
	sum, err := transportChecksum(seg, u.ipv4, u.ipv6, ProtoUDP)
	if err != nil {
		return nil, err
	}
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(seg[6:8], sum)
	return seg, nil
}
