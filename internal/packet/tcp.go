package packet

import (
	"encoding/binary"
	"fmt"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// TCP is a TCP segment header.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	Options []byte

	checksum uint16
	rawBytes []byte // full segment as received, for checksum verification
	payload  []byte
	ipv4     *IPv4 // set by Serialize for pseudo-header computation
	ipv6     *IPv6
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, TCPHeaderLen, len(data))
	}
	dataOff := int(data[12]>>4) * 4
	if dataOff < TCPHeaderLen {
		return fmt.Errorf("%w: tcp data offset %d below minimum", ErrBadHeader, dataOff)
	}
	if len(data) < dataOff {
		return fmt.Errorf("%w: tcp header claims %d bytes, have %d", ErrTruncated, dataOff, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[TCPHeaderLen:dataOff]
	t.rawBytes = data
	t.payload = data[dataOff:]
	return nil
}

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// Checksum returns the checksum observed on the wire (valid after decode).
func (t *TCP) Checksum() uint16 { return t.checksum }

// AppendTo implements Layer. The options slice, if any, must be a multiple
// of four bytes.
func (t *TCP) AppendTo(b []byte) ([]byte, error) {
	if len(t.Options)%4 != 0 {
		return nil, fmt.Errorf("%w: tcp options length %d not a multiple of 4", ErrBadHeader, len(t.Options))
	}
	hdrLen := TCPHeaderLen + len(t.Options)
	if hdrLen > 60 {
		return nil, fmt.Errorf("%w: tcp header length %d exceeds 60", ErrBadHeader, hdrLen)
	}
	seg := make([]byte, hdrLen, hdrLen+len(b))
	binary.BigEndian.PutUint16(seg[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], t.DstPort)
	binary.BigEndian.PutUint32(seg[4:8], t.Seq)
	binary.BigEndian.PutUint32(seg[8:12], t.Ack)
	seg[12] = uint8(hdrLen/4) << 4
	seg[13] = t.Flags
	binary.BigEndian.PutUint16(seg[14:16], t.Window)
	binary.BigEndian.PutUint16(seg[18:20], t.Urgent)
	copy(seg[TCPHeaderLen:], t.Options)
	seg = append(seg, b...)
	sum, err := transportChecksum(seg, t.ipv4, t.ipv6, ProtoTCP)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint16(seg[16:18], sum)
	return seg, nil
}
