package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func buildTCP4(t *testing.T, payload []byte) []byte {
	t.Helper()
	frame, err := Serialize(payload,
		&Ethernet{Dst: MustParseMAC("02:00:00:00:00:02"), Src: MustParseMAC("00:11:22:33:44:55"), EtherType: EtherTypeIPv4},
		&IPv4{Src: mustAddr(t, "10.1.2.3"), Dst: mustAddr(t, "93.184.216.34"), Protocol: ProtoTCP, TTL: 64},
		&TCP{SrcPort: 49152, DstPort: 443, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535},
	)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestTCP4RoundTrip(t *testing.T) {
	payload := []byte("hello over tls, hypothetically")
	frame := buildTCP4(t, payload)

	p, err := Decode(frame, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers) != 3 {
		t.Fatalf("decoded %d layers, want 3", len(p.Layers))
	}
	eth := p.Layer(LayerTypeEthernet).(*Ethernet)
	if eth.Src.String() != "00:11:22:33:44:55" || eth.EtherType != EtherTypeIPv4 {
		t.Errorf("ethernet mismatch: %+v", eth)
	}
	ip := p.Layer(LayerTypeIPv4).(*IPv4)
	if ip.Src.String() != "10.1.2.3" || ip.Dst.String() != "93.184.216.34" || ip.Protocol != ProtoTCP {
		t.Errorf("ipv4 mismatch: %+v", ip)
	}
	tcp := p.Layer(LayerTypeTCP).(*TCP)
	if tcp.SrcPort != 49152 || tcp.DstPort != 443 || tcp.Seq != 1000 || tcp.Flags != FlagACK|FlagPSH {
		t.Errorf("tcp mismatch: %+v", tcp)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload mismatch: %q", p.Payload)
	}
}

func TestUDP6RoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	frame, err := Serialize(payload,
		&Ethernet{Dst: Broadcast, Src: MustParseMAC("aa:bb:cc:dd:ee:ff"), EtherType: EtherTypeIPv6},
		&IPv6{Src: mustAddr(t, "2001:db8::1"), Dst: mustAddr(t, "2001:db8::53"), NextHeader: ProtoUDP},
		&UDP{SrcPort: 5353, DstPort: 53},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(frame, true)
	if err != nil {
		t.Fatal(err)
	}
	ip := p.Layer(LayerTypeIPv6).(*IPv6)
	if ip.Src.String() != "2001:db8::1" {
		t.Errorf("ipv6 src = %v", ip.Src)
	}
	udp := p.Layer(LayerTypeUDP).(*UDP)
	if udp.SrcPort != 5353 || udp.DstPort != 53 {
		t.Errorf("udp ports = %d,%d", udp.SrcPort, udp.DstPort)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload mismatch")
	}
}

func TestChecksumCorruptionDetected(t *testing.T) {
	frame := buildTCP4(t, []byte("payload bytes here"))
	// Flip a payload byte: TCP checksum must catch it.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Decode(bad, true); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted payload: err = %v, want ErrBadChecksum", err)
	}
	// Flip an IP header byte: IPv4 header checksum must catch it.
	bad2 := append([]byte(nil), frame...)
	bad2[EthernetHeaderLen+8] ^= 0xff // TTL
	if _, err := Decode(bad2, true); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted IP header: err = %v, want ErrBadChecksum", err)
	}
	// Without verification the payload corruption passes.
	if _, err := Decode(bad, false); err != nil {
		t.Errorf("verification off: err = %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	frame := buildTCP4(t, []byte("a longer payload to truncate into the headers"))
	for cut := 0; cut < EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen; cut++ {
		if _, err := Decode(frame[:cut], false); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		Decode(buf, true) // must not panic; errors are fine
	}
}

func TestVersionMismatch(t *testing.T) {
	frame := buildTCP4(t, nil)
	// Claim IPv6 in the EtherType while carrying IPv4.
	frame[12], frame[13] = 0x86, 0xdd
	if _, err := Decode(frame, false); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestIPv4FragmentOpaque(t *testing.T) {
	ip := &IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Protocol: ProtoTCP, FragOff: 100}
	frame, err := Serialize([]byte("fragment data"),
		&Ethernet{EtherType: EtherTypeIPv4}, ip)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(frame, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Layer(LayerTypeTCP) != nil {
		t.Error("non-first fragment decoded a TCP layer")
	}
}

func TestUDPZeroChecksumSkipsVerification(t *testing.T) {
	frame, err := Serialize([]byte("x"),
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Protocol: ProtoUDP},
		&UDP{SrcPort: 1, DstPort: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out the UDP checksum (offset: eth 14 + ip 20 + 6).
	frame[14+20+6], frame[14+20+7] = 0, 0
	if _, err := Decode(frame, true); err != nil {
		t.Errorf("zero UDP checksum rejected: %v", err)
	}
}

func TestMACParsing(t *testing.T) {
	m, err := ParseMAC("02:1a:2b:3c:4d:5e")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "02:1a:2b:3c:4d:5e" {
		t.Errorf("round trip = %q", m.String())
	}
	if !m.LocallyAdministered() {
		t.Error("0x02 first octet should be locally administered")
	}
	if m.Multicast() {
		t.Error("unicast flagged multicast")
	}
	if got := m.OUI(); got != [3]byte{0x02, 0x1a, 0x2b} {
		t.Errorf("OUI = %v", got)
	}
	for _, bad := range []string{"", "02:1a:2b:3c:4d", "02:1a:2b:3c:4d:5e:6f", "zz:00:00:00:00:00", "021a:2b:3c:4d:5e"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", bad)
		}
	}
}

func TestMACRoundTripProperty(t *testing.T) {
	f := func(raw [6]byte) bool {
		m := MAC(raw)
		back, err := ParseMAC(m.String())
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCPRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, window uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame, err := Serialize(payload,
			&Ethernet{EtherType: EtherTypeIPv4},
			&IPv4{Src: netip.MustParseAddr("172.16.0.9"), Dst: netip.MustParseAddr("8.8.8.8"), Protocol: ProtoTCP},
			&TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: FlagACK, Window: window},
		)
		if err != nil {
			return false
		}
		p, err := Decode(frame, true)
		if err != nil {
			return false
		}
		tcp, ok := p.Layer(LayerTypeTCP).(*TCP)
		if !ok {
			return false
		}
		return tcp.SrcPort == srcPort && tcp.DstPort == dstPort &&
			tcp.Seq == seq && tcp.Ack == ack && tcp.Window == window &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001f203f4f5f6f7 → checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(0, data); got != 0x220d {
		t.Errorf("checksum = 0x%04x, want 0x220d", got)
	}
}

func BenchmarkDecodeTCP4(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 1200)
	frame, err := Serialize(payload,
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Protocol: ProtoTCP},
		&TCP{SrcPort: 40000, DstPort: 443, Flags: FlagACK},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeTCP4(b *testing.B) {
	payload := bytes.Repeat([]byte{0xcd}, 1200)
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	ip := &IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Protocol: ProtoTCP}
	tcp := &TCP{SrcPort: 40000, DstPort: 443, Flags: FlagACK}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Serialize(payload, eth, ip, tcp); err != nil {
			b.Fatal(err)
		}
	}
}
