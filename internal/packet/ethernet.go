package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherType values for the network protocols the tap carries.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86dd
	EtherTypeARP  uint16 = 0x0806
	// EtherTypeVLAN is the 802.1Q tag protocol identifier. Mirror ports
	// on campus switches commonly deliver tagged frames.
	EtherTypeVLAN uint16 = 0x8100
)

// EthernetHeaderLen is the length of an Ethernet II header (no 802.1Q tag).
const EthernetHeaderLen = 14

// Ethernet is an Ethernet II frame header, with optional 802.1Q tag
// support: a tagged frame decodes transparently, exposing the VLAN ID and
// the inner EtherType.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	// VLAN is the 802.1Q VLAN identifier, or 0 for untagged frames. Set
	// before serializing to emit a tagged frame (VLAN 0 emits untagged).
	VLAN uint16
	// Priority is the 802.1p priority code point of a tagged frame.
	Priority uint8

	payload []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, EthernetHeaderLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	rest := data[14:]
	e.VLAN, e.Priority = 0, 0
	if e.EtherType == EtherTypeVLAN {
		if len(rest) < 4 {
			return fmt.Errorf("%w: 802.1Q tag needs 4 bytes, have %d", ErrTruncated, len(rest))
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		e.Priority = uint8(tci >> 13)
		e.VLAN = tci & 0x0fff
		e.EtherType = binary.BigEndian.Uint16(rest[2:4])
		rest = rest[4:]
	}
	e.payload = rest
	return nil
}

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// AppendTo implements Layer: it prepends the Ethernet header (and an
// 802.1Q tag when VLAN is nonzero) to b.
func (e *Ethernet) AppendTo(b []byte) ([]byte, error) {
	hdrLen := EthernetHeaderLen
	if e.VLAN != 0 {
		hdrLen += 4
	}
	hdr := make([]byte, hdrLen, hdrLen+len(b))
	copy(hdr[0:6], e.Dst[:])
	copy(hdr[6:12], e.Src[:])
	if e.VLAN != 0 {
		if e.VLAN > 0x0fff {
			return nil, fmt.Errorf("packet: VLAN id %d exceeds 12 bits", e.VLAN)
		}
		binary.BigEndian.PutUint16(hdr[12:14], EtherTypeVLAN)
		binary.BigEndian.PutUint16(hdr[14:16], uint16(e.Priority&0x7)<<13|e.VLAN)
		binary.BigEndian.PutUint16(hdr[16:18], e.EtherType)
	} else {
		binary.BigEndian.PutUint16(hdr[12:14], e.EtherType)
	}
	return append(hdr, b...), nil
}
