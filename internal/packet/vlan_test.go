package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestVLANRoundTrip(t *testing.T) {
	payload := []byte("tagged traffic")
	frame, err := Serialize(payload,
		&Ethernet{
			Dst: MustParseMAC("00:00:5e:00:01:01"), Src: MustParseMAC("00:1b:21:00:00:01"),
			EtherType: EtherTypeIPv4, VLAN: 120, Priority: 3,
		},
		&IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("23.0.0.1"), Protocol: ProtoTCP},
		&TCP{SrcPort: 40000, DstPort: 443, Flags: FlagACK},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(frame, true)
	if err != nil {
		t.Fatal(err)
	}
	eth := p.Layer(LayerTypeEthernet).(*Ethernet)
	if eth.VLAN != 120 || eth.Priority != 3 {
		t.Errorf("tag = vlan %d prio %d", eth.VLAN, eth.Priority)
	}
	if eth.EtherType != EtherTypeIPv4 {
		t.Errorf("inner ethertype = 0x%04x", eth.EtherType)
	}
	if p.Layer(LayerTypeTCP) == nil {
		t.Error("TCP not decoded through the tag")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Error("payload mismatch")
	}
}

func TestVLANZeroEmitsUntagged(t *testing.T) {
	frame, err := Serialize(nil, &Ethernet{EtherType: EtherTypeARP})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != EthernetHeaderLen {
		t.Errorf("untagged frame length = %d", len(frame))
	}
}

func TestVLANIDOutOfRange(t *testing.T) {
	if _, err := Serialize(nil, &Ethernet{EtherType: EtherTypeARP, VLAN: 5000}); err == nil {
		t.Error("13-bit VLAN accepted")
	}
}

func TestVLANTruncatedTag(t *testing.T) {
	frame, _ := Serialize([]byte{1, 2, 3, 4}, &Ethernet{EtherType: EtherTypeIPv4, VLAN: 5})
	// Cut inside the 802.1Q tag.
	if _, err := Decode(frame[:15], false); err == nil {
		t.Error("truncated tag accepted")
	}
}

func TestVLANRoundTripProperty(t *testing.T) {
	f := func(vlan uint16, prio uint8) bool {
		vlan = vlan%4094 + 1 // 1..4094
		prio &= 0x7
		frame, err := Serialize([]byte("x"),
			&Ethernet{EtherType: EtherTypeIPv4, VLAN: vlan, Priority: prio},
			&IPv4{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Protocol: ProtoUDP},
			&UDP{SrcPort: 1, DstPort: 2},
		)
		if err != nil {
			return false
		}
		p, err := Decode(frame, true)
		if err != nil {
			return false
		}
		eth := p.Layer(LayerTypeEthernet).(*Ethernet)
		return eth.VLAN == vlan && eth.Priority == prio && p.Layer(LayerTypeUDP) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
