package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IP protocol numbers.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header. Options are preserved on decode but not
// interpreted; serialization always emits an option-less header.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte

	payload []byte
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, IPv4HeaderLen, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: version %d in IPv4 decoder", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return fmt.Errorf("%w: IHL %d below minimum", ErrBadHeader, ihl)
	}
	if len(data) < ihl {
		return fmt.Errorf("%w: ipv4 header claims %d bytes, have %d", ErrTruncated, ihl, len(data))
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ihl || totalLen > len(data) {
		return fmt.Errorf("%w: total length %d outside [%d,%d]", ErrBadHeader, totalLen, ihl, len(data))
	}
	if internetChecksum(0, data[:ihl]) != 0 {
		return fmt.Errorf("%w: ipv4 header checksum", ErrBadChecksum)
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	frag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	var src, dst [4]byte
	copy(src[:], data[12:16])
	copy(dst[:], data[16:20])
	ip.Src = netip.AddrFrom4(src)
	ip.Dst = netip.AddrFrom4(dst)
	ip.Options = data[IPv4HeaderLen:ihl]
	ip.payload = data[ihl:totalLen]
	return nil
}

// NextLayerType implements Layer.
func (ip *IPv4) NextLayerType() LayerType {
	if ip.FragOff != 0 {
		// Non-first fragments carry no transport header.
		return LayerTypePayload
	}
	switch ip.Protocol {
	case ProtoTCP:
		return LayerTypeTCP
	case ProtoUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// AppendTo implements Layer.
func (ip *IPv4) AppendTo(b []byte) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("%w: IPv4 layer with non-v4 addresses", ErrBadHeader)
	}
	totalLen := IPv4HeaderLen + len(b)
	if totalLen > 0xffff {
		return nil, fmt.Errorf("%w: payload too large for IPv4 (%d bytes)", ErrBadHeader, totalLen)
	}
	hdr := make([]byte, IPv4HeaderLen, totalLen)
	hdr[0] = 4<<4 | IPv4HeaderLen/4
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	hdr[8] = ttl
	hdr[9] = ip.Protocol
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], internetChecksum(0, hdr))
	return append(hdr, b...), nil
}
