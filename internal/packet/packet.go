// Package packet implements from-scratch encoding and decoding of the link,
// network, and transport layers the campus tap observes: Ethernet II, IPv4,
// IPv6, TCP, and UDP.
//
// The design follows the layer model popularized by gopacket: a Packet is a
// byte slice decoded into a stack of Layers, each of which knows its own
// header fields, its payload, and which layer type follows it. Decoding is
// strict — truncated or internally inconsistent headers produce errors
// rather than best-effort results — because the downstream flow assembler
// must never account bytes against a mis-parsed five-tuple.
package packet

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType int

// Layer types understood by this package.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the protocol of this layer.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from data, which begins at this
	// layer's first header byte and extends to the end of the packet.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports the type of the layer carried in this layer's
	// payload, or LayerTypePayload if opaque.
	NextLayerType() LayerType
	// LayerPayload returns the bytes following this layer's header.
	LayerPayload() []byte
	// AppendTo serializes the layer header followed by payload to b.
	// Fields that depend on the payload (lengths, checksums) are computed
	// during serialization.
	AppendTo(b []byte) ([]byte, error)
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated header")
	ErrBadVersion  = errors.New("packet: IP version mismatch")
	ErrBadHeader   = errors.New("packet: malformed header")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
)

// Packet is a fully decoded frame: an ordered stack of layers from the link
// layer inward, plus the innermost opaque payload.
type Packet struct {
	Layers  []Layer
	Payload []byte
}

// Decode parses an Ethernet frame into its layer stack. Transport checksums
// are verified when verifyChecksums is true.
func Decode(frame []byte, verifyChecksums bool) (*Packet, error) {
	p := &Packet{}
	data := frame
	next := LayerTypeEthernet
	var ipv4 *IPv4
	var ipv6 *IPv6
	for next != LayerTypePayload {
		var l Layer
		switch next {
		case LayerTypeEthernet:
			l = &Ethernet{}
		case LayerTypeIPv4:
			l = &IPv4{}
		case LayerTypeIPv6:
			l = &IPv6{}
		case LayerTypeTCP:
			l = &TCP{}
		case LayerTypeUDP:
			l = &UDP{}
		default:
			return nil, fmt.Errorf("packet: cannot decode layer type %v", next)
		}
		if err := l.DecodeFromBytes(data); err != nil {
			return nil, fmt.Errorf("decoding %v: %w", next, err)
		}
		switch v := l.(type) {
		case *IPv4:
			ipv4 = v
		case *IPv6:
			ipv6 = v
		case *TCP:
			if verifyChecksums {
				if err := verifyTransportChecksum(v.checksum, v.rawBytes, ipv4, ipv6, 6); err != nil {
					return nil, err
				}
			}
		case *UDP:
			if verifyChecksums && v.checksum != 0 {
				if err := verifyTransportChecksum(v.checksum, v.rawBytes, ipv4, ipv6, 17); err != nil {
					return nil, err
				}
			}
		}
		p.Layers = append(p.Layers, l)
		data = l.LayerPayload()
		next = l.NextLayerType()
	}
	p.Payload = data
	return p, nil
}

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Serialize encodes a stack of layers (outermost first) followed by payload
// into a wire-format frame. Length and checksum fields are computed
// automatically; IP layers must precede their transport layer so pseudo-
// header checksums can be formed.
func Serialize(payload []byte, layers ...Layer) ([]byte, error) {
	// Serialize from the innermost layer outward so each layer sees its
	// completed payload.
	buf := append([]byte(nil), payload...)
	var ipv4 *IPv4
	var ipv6 *IPv6
	for _, l := range layers {
		switch v := l.(type) {
		case *IPv4:
			ipv4 = v
		case *IPv6:
			ipv6 = v
		}
	}
	for i := len(layers) - 1; i >= 0; i-- {
		switch v := layers[i].(type) {
		case *TCP:
			v.ipv4, v.ipv6 = ipv4, ipv6
		case *UDP:
			v.ipv4, v.ipv6 = ipv4, ipv6
		}
		out, err := layers[i].AppendTo(buf)
		if err != nil {
			return nil, fmt.Errorf("serializing %v: %w", layers[i].LayerType(), err)
		}
		buf = out
	}
	return buf, nil
}
