// Package geo implements the population-split methodology of §4.2: a
// prefix-based IP geolocation database, the byte-weighted spherical
// midpoint of each device's destinations, and the United-States containment
// test that labels a device domestic or international.
package geo

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/universe"
)

// Location is one geolocated point.
type Location struct {
	Lat float64
	Lon float64
}

// Entry is one geolocation database row.
type Entry struct {
	Prefix netip.Prefix
	Loc    Location
	// US reports whether the location falls inside the United States.
	US bool
	// CDNExcluded marks prefixes the midpoint computation must skip
	// (Akamai, AWS, Cloudfront, Optimizely per §4.2: they reveal the
	// user's location, not the visited site's).
	CDNExcluded bool
	// Owner names the hosting service, for diagnostics.
	Owner string
}

// DB is an immutable prefix-to-location database, the stand-in for the
// commercial geolocation feeds the paper used. Lookups are safe for
// concurrent use.
type DB struct {
	entries []Entry // sorted by prefix base address
}

// FromRegistry builds the database from the universe's address plan. Each
// prefix is placed at its hosting region's metro with a small deterministic
// per-prefix offset, the way real datacenter prefixes scatter around a
// region.
func FromRegistry(reg *universe.Registry) *DB {
	infos := reg.Prefixes()
	entries := make([]Entry, 0, len(infos))
	for _, pi := range infos {
		jlat, jlon := jitter(pi.Prefix)
		entries = append(entries, Entry{
			Prefix:      pi.Prefix,
			Loc:         Location{Lat: pi.Region.Lat + jlat, Lon: pi.Region.Lon + jlon},
			US:          pi.Region.US,
			CDNExcluded: pi.GeoExcluded,
			Owner:       pi.Owner,
		})
	}
	return NewDB(entries)
}

// jitter derives a deterministic offset in [-1.5, 1.5) degrees from the
// prefix bytes (any address family).
func jitter(p netip.Prefix) (lat, lon float64) {
	var h uint32 = 2166136261
	for _, b := range p.Addr().AsSlice() {
		h = (h ^ uint32(b)) * 16777619
	}
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	lat = (float64(h&0xffff)/65536 - 0.5) * 3
	lon = (float64(h>>16)/65536 - 0.5) * 3
	return lat, lon
}

// NewDB indexes the given entries. Prefixes are assumed disjoint (the
// universe's plan guarantees this); overlapping entries resolve to the one
// with the greater base address.
func NewDB(entries []Entry) *DB {
	es := append([]Entry(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		return es[i].Prefix.Addr().Compare(es[j].Prefix.Addr()) < 0
	})
	return &DB{entries: es}
}

// Lookup returns the database entry covering addr.
func (db *DB) Lookup(addr netip.Addr) (Entry, bool) {
	i := sort.Search(len(db.entries), func(i int) bool {
		return db.entries[i].Prefix.Addr().Compare(addr) > 0
	})
	if i == 0 {
		return Entry{}, false
	}
	if e := db.entries[i-1]; e.Prefix.Contains(addr) {
		return e, true
	}
	return Entry{}, false
}

// Size returns the number of prefixes indexed.
func (db *DB) Size() int { return len(db.entries) }

// String summarizes the database.
func (db *DB) String() string {
	return fmt.Sprintf("geo.DB{%d prefixes}", len(db.entries))
}
