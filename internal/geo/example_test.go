package geo_test

import (
	"fmt"

	"repro/internal/geo"
)

// ExampleMidpoint reproduces §4.2's core computation: the byte-weighted
// spherical midpoint of a device's destinations decides its population.
func ExampleMidpoint() {
	var m geo.Midpoint
	m.Add(geo.Location{Lat: 31.23, Lon: 121.47}, 8<<30)  // Shanghai video
	m.Add(geo.Location{Lat: 37.35, Lon: -121.95}, 1<<30) // US-west CDN
	loc, _ := m.Result()
	fmt.Printf("midpoint east of the date line: %v; inside the US: %v\n",
		loc.Lon > 100, geo.InUS(loc))
	// Output: midpoint east of the date line: true; inside the US: false
}

func ExampleInUS() {
	fmt.Println(geo.InUS(geo.Location{Lat: 32.88, Lon: -117.23})) // La Jolla
	fmt.Println(geo.InUS(geo.Location{Lat: 32.51, Lon: -117.04})) // Tijuana
	// Output:
	// true
	// false
}
