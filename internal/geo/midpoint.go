package geo

import (
	"math"
	"net/netip"
	"sort"
)

// Midpoint computes the weighted geographic midpoint of a set of locations:
// each point is mapped to a unit vector on the sphere, vectors are averaged
// with the given weights, and the mean vector is projected back to
// latitude/longitude. This is the computation §4.2 runs over each device's
// February destinations, weighting each connection by its bytes.
type Midpoint struct {
	x, y, z float64
	weight  float64
	n       int
}

// Add folds one location with the given weight (e.g. flow bytes).
// Non-positive weights are ignored.
func (m *Midpoint) Add(loc Location, weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	latR := loc.Lat * math.Pi / 180
	lonR := loc.Lon * math.Pi / 180
	cosLat := math.Cos(latR)
	m.x += weight * cosLat * math.Cos(lonR)
	m.y += weight * cosLat * math.Sin(lonR)
	m.z += weight * math.Sin(latR)
	m.weight += weight
	m.n++
}

// N returns the number of points folded in.
func (m *Midpoint) N() int { return m.n }

// Weight returns the total weight folded in.
func (m *Midpoint) Weight() float64 { return m.weight }

// Result returns the weighted midpoint. ok is false when no points were
// added or the weighted vectors cancel (antipodal inputs), in which case
// the midpoint is undefined.
func (m *Midpoint) Result() (Location, bool) {
	if m.weight <= 0 {
		return Location{}, false
	}
	x, y, z := m.x/m.weight, m.y/m.weight, m.z/m.weight
	norm := math.Sqrt(x*x + y*y + z*z)
	if norm < 1e-9 {
		return Location{}, false
	}
	lat := math.Asin(z/norm) * 180 / math.Pi
	lon := math.Atan2(y, x) * 180 / math.Pi
	return Location{Lat: lat, Lon: lon}, true
}

// Classification is the population label derived from a device's midpoint.
type Classification int

// Population labels.
const (
	// Unknown means the device had no geolocatable traffic.
	Unknown Classification = iota
	// Domestic means the weighted midpoint fell inside the United States.
	Domestic
	// International means the midpoint fell outside the United States.
	International
)

// String returns the label name.
func (c Classification) String() string {
	switch c {
	case Domestic:
		return "domestic"
	case International:
		return "international"
	default:
		return "unknown"
	}
}

// Classifier accumulates per-device midpoints from flows and classifies
// each device, implementing §4.2 end to end: CDN prefixes are excluded,
// each destination is weighted by bytes, and a midpoint outside the US
// marks the device international.
type Classifier struct {
	db *DB
	// IncludeCDNs disables the CDN exclusion (ablation only — §4.2
	// explains why production keeps it on: CDN answers are near the user,
	// not the visited site, dragging every midpoint toward campus).
	IncludeCDNs bool

	points map[uint64]*Midpoint
}

// NewClassifier returns a classifier over the database.
func NewClassifier(db *DB) *Classifier {
	return &Classifier{db: db, points: make(map[uint64]*Midpoint)}
}

// AddFlow folds one flow: the device's pseudonymous ID, the server address,
// and the flow's byte count.
func (c *Classifier) AddFlow(device uint64, server netip.Addr, bytes int64) {
	e, ok := c.db.Lookup(server)
	if !ok {
		return
	}
	if e.CDNExcluded && !c.IncludeCDNs {
		return
	}
	mp := c.points[device]
	if mp == nil {
		mp = &Midpoint{}
		c.points[device] = mp
	}
	mp.Add(e.Loc, float64(bytes))
}

// Classify returns the device's population label.
func (c *Classifier) Classify(device uint64) Classification {
	mp := c.points[device]
	if mp == nil {
		return Unknown
	}
	loc, ok := mp.Result()
	if !ok {
		return Unknown
	}
	if InUS(loc) {
		return Domestic
	}
	return International
}

// MidpointOf exposes the raw midpoint for a device (diagnostics, examples).
func (c *Classifier) MidpointOf(device uint64) (Location, bool) {
	mp := c.points[device]
	if mp == nil {
		return Location{}, false
	}
	return mp.Result()
}

// Devices returns the number of devices with at least one geolocated flow.
func (c *Classifier) Devices() int { return len(c.points) }

// MidpointRecord is one device's raw accumulator state. The vector
// components are transported as exact float64 values (checkpoint codecs
// persist their bit patterns), so a restored classifier reproduces every
// later Classify verdict bit-for-bit.
type MidpointRecord struct {
	Device  uint64
	X, Y, Z float64
	Weight  float64
	N       int
}

// Export returns every device's accumulator in ascending device order.
func (c *Classifier) Export() []MidpointRecord {
	devs := make([]uint64, 0, len(c.points))
	for dev := range c.points {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	out := make([]MidpointRecord, 0, len(devs))
	for _, dev := range devs {
		mp := c.points[dev]
		out = append(out, MidpointRecord{Device: dev, X: mp.x, Y: mp.y, Z: mp.z, Weight: mp.weight, N: mp.n})
	}
	return out
}

// Restore reinstates accumulators exported by Export into an empty
// classifier (panics otherwise).
func (c *Classifier) Restore(recs []MidpointRecord) {
	if len(c.points) != 0 {
		panic("geo: Restore on a Classifier with state")
	}
	for _, r := range recs {
		c.points[r.Device] = &Midpoint{x: r.X, y: r.Y, z: r.Z, weight: r.Weight, n: r.N}
	}
}
