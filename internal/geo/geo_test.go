package geo

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/universe"
)

func testDB(t testing.TB) (*DB, *universe.Registry) {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	return FromRegistry(reg), reg
}

func TestLookupEveryPlannedAddress(t *testing.T) {
	db, reg := testDB(t)
	if db.Size() == 0 {
		t.Fatal("empty database")
	}
	for _, s := range reg.Services() {
		for _, d := range s.Domains {
			for _, ip := range reg.DomainIPs(d) {
				e, ok := db.Lookup(ip)
				if !ok {
					t.Fatalf("no geo entry for %v (%s)", ip, d)
				}
				info, _ := reg.LookupAddr(ip)
				if e.US != info.Region.US {
					t.Fatalf("geo US=%v for %v, region %s says %v", e.US, ip, info.Region.Code, info.Region.US)
				}
			}
		}
	}
}

func TestLookupIPv6Addresses(t *testing.T) {
	db, reg := testDB(t)
	for _, domain := range []string{"facebook.com", "hdslb.com", "naver.com"} {
		ip, ok := reg.ResolveIPv6(domain, 1)
		if !ok {
			t.Fatalf("no AAAA for %s", domain)
		}
		e, ok := db.Lookup(ip)
		if !ok {
			t.Fatalf("geo DB misses AAAA %v (%s)", ip, domain)
		}
		info, _ := reg.LookupAddr(ip)
		if e.US != info.Region.US {
			t.Errorf("%s v6 geo US=%v, region says %v", domain, e.US, info.Region.US)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	db, _ := testDB(t)
	for _, s := range []string{"10.1.2.3", "192.0.2.1", "8.8.8.8", "0.0.0.1", "255.255.255.254"} {
		if e, ok := db.Lookup(netip.MustParseAddr(s)); ok {
			t.Errorf("unplanned address %s matched %s", s, e.Owner)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	db, _ := testDB(t)
	for _, e := range db.entries {
		if math.Abs(e.Loc.Lat) > 90 || math.Abs(e.Loc.Lon) > 180 {
			t.Errorf("entry %s has invalid location %+v", e.Owner, e.Loc)
		}
	}
}

func TestUSContainment(t *testing.T) {
	cases := []struct {
		name string
		loc  Location
		want bool
	}{
		{"San Diego", Location{32.72, -117.16}, true},
		{"San Jose", Location{37.35, -121.95}, true},
		{"Ashburn VA", Location{39.04, -77.49}, true},
		{"Kansas City", Location{39.10, -94.58}, true},
		{"Anchorage", Location{61.22, -149.90}, true},
		{"Honolulu", Location{21.31, -157.86}, true},
		{"Shanghai", Location{31.23, 121.47}, false},
		{"Seoul", Location{37.57, 126.98}, false},
		{"Tokyo", Location{35.68, 139.69}, false},
		{"Frankfurt", Location{50.11, 8.68}, false},
		{"Mumbai", Location{19.08, 72.88}, false},
		{"São Paulo", Location{-23.55, -46.63}, false},
		{"Mexico City", Location{19.43, -99.13}, false},
		{"Toronto", Location{43.70, -79.42}, false},
		{"Vancouver", Location{49.28, -123.12}, false},
		{"Tijuana", Location{32.51, -117.04}, false},
		{"mid-Atlantic", Location{35.0, -50.0}, false},
		{"mid-Pacific", Location{30.0, -150.0}, false},
	}
	for _, c := range cases {
		if got := InUS(c.loc); got != c.want {
			t.Errorf("InUS(%s %+v) = %v, want %v", c.name, c.loc, got, c.want)
		}
	}
}

func TestRegionCentersClassify(t *testing.T) {
	// Every region's center must classify according to its US flag, or the
	// midpoint test would be meaningless.
	for _, r := range universe.Regions {
		if got := InUS(Location{r.Lat, r.Lon}); got != r.US {
			t.Errorf("region %s center classifies InUS=%v, want %v", r.Code, got, r.US)
		}
	}
}

func TestMidpointSinglePoint(t *testing.T) {
	var m Midpoint
	m.Add(Location{32.88, -117.23}, 100)
	loc, ok := m.Result()
	if !ok {
		t.Fatal("no result")
	}
	if math.Abs(loc.Lat-32.88) > 1e-9 || math.Abs(loc.Lon+117.23) > 1e-9 {
		t.Errorf("midpoint of one point = %+v", loc)
	}
}

func TestMidpointWeighting(t *testing.T) {
	// Heavy weight on Shanghai, light on San Diego → midpoint nearer
	// Shanghai (and outside the US).
	var m Midpoint
	m.Add(Location{31.23, 121.47}, 1000)
	m.Add(Location{32.88, -117.23}, 10)
	loc, ok := m.Result()
	if !ok {
		t.Fatal("no result")
	}
	if InUS(loc) {
		t.Errorf("midpoint %+v should be outside the US", loc)
	}
	// Flip weights → inside the US.
	var m2 Midpoint
	m2.Add(Location{31.23, 121.47}, 10)
	m2.Add(Location{32.88, -117.23}, 1000)
	loc2, _ := m2.Result()
	if !InUS(loc2) {
		t.Errorf("midpoint %+v should be inside the US", loc2)
	}
}

func TestMidpointMixPullsInland(t *testing.T) {
	// The conservativeness mechanism: a balanced US/China mix lands the
	// midpoint in the north Pacific (not US), while a US-dominated mix —
	// spanning both US coasts, as real browsing does — pulls it inland.
	mix := func(usW, cnW float64) bool {
		var m Midpoint
		m.Add(Location{37.35, -121.95}, usW/2) // US west coast
		m.Add(Location{39.04, -77.49}, usW/2)  // US east coast
		m.Add(Location{31.23, 121.47}, cnW)    // Shanghai
		loc, ok := m.Result()
		return ok && InUS(loc)
	}
	if mix(1, 1) {
		t.Error("50/50 split should not be domestic (falls in Pacific)")
	}
	if !mix(6, 1) {
		t.Error("heavily-US mix should be domestic")
	}
}

func TestMidpointDegenerate(t *testing.T) {
	var m Midpoint
	if _, ok := m.Result(); ok {
		t.Error("empty midpoint produced result")
	}
	// Antipodal cancellation.
	m.Add(Location{0, 0}, 1)
	m.Add(Location{0, 180}, 1)
	if _, ok := m.Result(); ok {
		t.Error("cancelled midpoint produced result")
	}
	// Invalid weights ignored.
	var m2 Midpoint
	m2.Add(Location{10, 10}, 0)
	m2.Add(Location{10, 10}, -5)
	m2.Add(Location{10, 10}, math.NaN())
	m2.Add(Location{10, 10}, math.Inf(1))
	if m2.N() != 0 {
		t.Errorf("invalid weights accepted: n=%d", m2.N())
	}
}

func TestMidpointInvariantToScale(t *testing.T) {
	f := func(w1, w2 uint16) bool {
		a, b := float64(w1)+1, float64(w2)+1
		var m1, m2 Midpoint
		m1.Add(Location{40, -100}, a)
		m1.Add(Location{35, 135}, b)
		m2.Add(Location{40, -100}, a*1000)
		m2.Add(Location{35, 135}, b*1000)
		l1, ok1 := m1.Result()
		l2, ok2 := m2.Result()
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(l1.Lat-l2.Lat) < 1e-9 && math.Abs(l1.Lon-l2.Lon) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	db, reg := testDB(t)
	c := NewClassifier(db)

	fb, _ := reg.ResolveIP("facebook.com", 1)
	bili, _ := reg.ResolveIP("bilibili.com", 1)
	wechat, _ := reg.ResolveIP("weixin.qq.com", 1)

	// Device 1: overwhelmingly US traffic → domestic.
	c.AddFlow(1, fb, 1<<30)
	c.AddFlow(1, bili, 1<<20)
	// Device 2: overwhelmingly Chinese traffic → international.
	c.AddFlow(2, bili, 1<<30)
	c.AddFlow(2, wechat, 1<<30)
	c.AddFlow(2, fb, 1<<20)
	// Device 3: nothing.

	if got := c.Classify(1); got != Domestic {
		t.Errorf("device 1 = %v", got)
	}
	if got := c.Classify(2); got != International {
		t.Errorf("device 2 = %v", got)
	}
	if got := c.Classify(3); got != Unknown {
		t.Errorf("device 3 = %v", got)
	}
	if c.Devices() != 2 {
		t.Errorf("devices = %d", c.Devices())
	}
}

func TestClassifierConservativeOnMixedTraffic(t *testing.T) {
	// An international student who also watches Netflix (US) can land
	// inside the US: the paper calls the method conservative. Verify the
	// mechanism exists: moderate US admixture flips the label.
	db, reg := testDB(t)
	c := NewClassifier(db)
	bili, _ := reg.ResolveIP("bilibili.com", 1)
	ytb, _ := reg.ResolveIP("googlevideo.com", 1) // US west
	hulu, _ := reg.ResolveIP("hulustream.com", 1) // US east
	c.AddFlow(1, bili, 1<<28)
	c.AddFlow(1, ytb, 3<<28)
	c.AddFlow(1, hulu, 3<<28)
	if got := c.Classify(1); got != Domestic {
		t.Errorf("mixed-traffic device = %v, want Domestic (conservative undercount)", got)
	}
}

func TestClassifierCDNExclusion(t *testing.T) {
	db, reg := testDB(t)
	// nytimes is hosted on fastly (not excluded); cnn on akamai
	// (excluded). A device talking only to akamai must stay Unknown.
	c := NewClassifier(db)
	cnn, _ := reg.ResolveIP("cnn.com", 1)
	c.AddFlow(1, cnn, 1<<30)
	if got := c.Classify(1); got != Unknown {
		t.Errorf("akamai-only device = %v, want Unknown (CDN excluded)", got)
	}
	// Ablation: including CDNs classifies it domestic (akamai is US).
	c2 := NewClassifier(db)
	c2.IncludeCDNs = true
	c2.AddFlow(1, cnn, 1<<30)
	if got := c2.Classify(1); got != Domestic {
		t.Errorf("ablation = %v, want Domestic", got)
	}
}

func TestClassificationString(t *testing.T) {
	if Domestic.String() != "domestic" || International.String() != "international" || Unknown.String() != "unknown" {
		t.Error("label names wrong")
	}
}

func BenchmarkLookup(b *testing.B) {
	db, reg := testDB(b)
	ip, _ := reg.ResolveIP("facebook.com", 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(ip)
	}
}

func BenchmarkMidpointAdd(b *testing.B) {
	var m Midpoint
	loc := Location{31.23, 121.47}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add(loc, 1500)
	}
}
