package geo

// conus is a coarse polygon of the contiguous United States (lon, lat
// vertex pairs, counter-clockwise). Precision requirements are mild: the
// test only needs to separate US datacenter metros from foreign ones, with
// borders far from any catalog coordinate.
var conus = []Location{
	{Lat: 48.9, Lon: -124.7}, // NW: Washington coast
	{Lat: 46.2, Lon: -124.2},
	{Lat: 42.0, Lon: -124.5},
	{Lat: 38.9, Lon: -123.8},
	{Lat: 36.5, Lon: -122.0},
	{Lat: 34.4, Lon: -120.7},
	{Lat: 32.5, Lon: -117.3}, // San Diego
	{Lat: 32.6, Lon: -114.8},
	{Lat: 31.3, Lon: -111.0},
	{Lat: 31.7, Lon: -106.5}, // El Paso
	{Lat: 29.7, Lon: -104.5},
	{Lat: 25.8, Lon: -99.2},
	{Lat: 25.9, Lon: -97.1}, // Brownsville
	{Lat: 29.5, Lon: -94.6},
	{Lat: 29.2, Lon: -89.4}, // Mississippi delta
	{Lat: 30.1, Lon: -84.3},
	{Lat: 27.8, Lon: -82.7},
	{Lat: 24.9, Lon: -81.0}, // Florida Keys
	{Lat: 26.8, Lon: -79.9},
	{Lat: 31.9, Lon: -80.9},
	{Lat: 35.2, Lon: -75.4}, // Cape Hatteras
	{Lat: 38.9, Lon: -74.9},
	{Lat: 40.5, Lon: -73.9}, // New York
	{Lat: 41.2, Lon: -69.9},
	{Lat: 44.7, Lon: -66.9}, // easternmost Maine
	{Lat: 47.4, Lon: -69.2},
	{Lat: 45.0, Lon: -71.5},
	{Lat: 45.0, Lon: -74.7},
	{Lat: 44.1, Lon: -76.5},
	{Lat: 43.6, Lon: -79.2}, // Niagara
	{Lat: 42.3, Lon: -82.9}, // Detroit
	{Lat: 46.1, Lon: -83.2},
	{Lat: 48.2, Lon: -88.4}, // Lake Superior
	{Lat: 49.0, Lon: -95.2}, // Northwest Angle
	{Lat: 49.0, Lon: -123.0},
}

// box is an axis-aligned latitude/longitude rectangle.
type box struct {
	latMin, latMax float64
	lonMin, lonMax float64
}

func (b box) contains(l Location) bool {
	return l.Lat >= b.latMin && l.Lat <= b.latMax && l.Lon >= b.lonMin && l.Lon <= b.lonMax
}

// Alaska and Hawaii, as bounding boxes (no catalog coordinates are near
// their borders).
var (
	alaska = box{latMin: 52.0, latMax: 71.5, lonMin: -169.5, lonMax: -130.0}
	hawaii = box{latMin: 18.5, latMax: 22.5, lonMin: -160.5, lonMax: -154.5}
)

// InUS reports whether the location falls inside the United States
// (contiguous states, Alaska, or Hawaii).
func InUS(l Location) bool {
	if alaska.contains(l) || hawaii.contains(l) {
		return true
	}
	return pointInPolygon(l, conus)
}

// pointInPolygon runs the even-odd ray-casting test with a ray toward
// increasing longitude. Adequate for polygons that do not cross the
// antimeridian.
func pointInPolygon(p Location, poly []Location) bool {
	inside := false
	n := len(poly)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := poly[i], poly[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			lonAt := vj.Lon + (p.Lat-vj.Lat)/(vi.Lat-vj.Lat)*(vi.Lon-vj.Lon)
			if p.Lon < lonAt {
				inside = !inside
			}
		}
	}
	return inside
}
