// Package httplog carries the cleartext HTTP metadata side channel of the
// capture: for the minority of flows that are plain HTTP, the tap records
// the Host header and User-Agent string. This is the pipeline's only source
// of User-Agent evidence for device classification (§3) — HTTPS-only
// devices never appear here, which is one reason many devices stay
// unclassified.
package httplog

import (
	"io"
	"net/netip"
	"time"

	"repro/internal/decodeerr"
	"repro/internal/zeeklog"
)

// Entry is one observed HTTP request's metadata.
type Entry struct {
	Time      time.Time
	Client    netip.Addr
	Host      string
	UserAgent string
}

// Schema is the Zeek-style envelope (a subset of Zeek's http.log).
var Schema = zeeklog.Schema{
	Path: "http",
	Fields: []zeeklog.Field{
		{Name: "ts", Type: "time"},
		{Name: "id.orig_h", Type: "addr"},
		{Name: "host", Type: "string"},
		{Name: "user_agent", Type: "string"},
	},
}

// Writer persists entries as a Zeek-style http log.
type Writer struct {
	w *zeeklog.Writer
}

// NewWriter returns an http log writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: zeeklog.NewWriter(w, Schema)}
}

// Write emits one entry.
func (lw *Writer) Write(e Entry) error {
	return lw.w.Write([]string{
		zeeklog.FormatTime(e.Time),
		e.Client.String(),
		zeeklog.FormatString(e.Host),
		zeeklog.FormatString(e.UserAgent),
	})
}

// Close flushes the log.
func (lw *Writer) Close() error { return lw.w.Close() }

// Reader reads entries back.
type Reader struct {
	r *zeeklog.Reader
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	rd, err := zeeklog.NewReader(r, Schema)
	if err != nil {
		return nil, err
	}
	return &Reader{r: rd}, nil
}

// Next returns the next entry or io.EOF. Failures are classified
// (*decodeerr.Error) so a fault-tolerant replay can skip-and-count them.
func (lr *Reader) Next() (Entry, error) {
	values, err := lr.r.Next()
	if err != nil {
		return Entry{}, err
	}
	line := lr.r.Line()
	var e Entry
	if e.Time, err = zeeklog.ParseTime(values[0]); err != nil {
		return e, err
	}
	if e.Client, err = netip.ParseAddr(values[1]); err != nil {
		return e, decodeerr.Newf(decodeerr.Malformed, "http", line, "bad client %q: %w", values[1], err)
	}
	e.Host = zeeklog.ParseString(values[2])
	e.UserAgent = zeeklog.ParseString(values[3])
	return e, nil
}

// Raw returns the data line behind the most recent Next.
func (lr *Reader) Raw() string { return lr.r.Raw() }

// Line returns the input line number of the most recent Next.
func (lr *Reader) Line() int { return lr.r.Line() }
