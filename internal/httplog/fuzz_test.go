// The fuzz target lives in an external test package so the seed corpus can
// be built with faultline, which imports trace and therefore httplog.
package httplog_test

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/decodeerr"
	"repro/internal/faultline"
	"repro/internal/httplog"
	"repro/internal/logsink"
	"repro/internal/trace"
	"repro/internal/universe"
)

// genHTTPLog renders one tiny-scale generated day's http.log, trimmed to
// keep the checked-in corpus small.
func genHTTPLog(f *testing.F) string {
	f.Helper()
	dir := f.TempDir()
	reg, err := universe.New()
	if err != nil {
		f.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.002
	g, err := trace.New(cfg, reg)
	if err != nil {
		f.Fatal(err)
	}
	w, err := logsink.NewWriter(dir)
	if err != nil {
		f.Fatal(err)
	}
	if err := g.RunDays(w, 10, 11); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, logsink.HTTPFile))
	if err != nil {
		f.Fatal(err)
	}
	return firstLines(string(data), 64)
}

func firstLines(s string, n int) string {
	lines := strings.SplitAfterN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "")
}

func corruptVariant(f *testing.F, clean string, seed int64) string {
	f.Helper()
	r := faultline.NewReader(strings.NewReader(clean), faultline.Config{Seed: seed, Rate: 0.3})
	out, err := io.ReadAll(r)
	if err != nil {
		f.Fatal(err)
	}
	return string(out)
}

// FuzzHTTPEntry feeds arbitrary text through the http metadata reader under
// the same contract as FuzzLeaseLine: no panics, every record-level failure
// classified for the replay guard, the reader usable after a classified
// failure, and accepted entries carrying a valid client address and
// tab-free decoded strings (a tab surviving decode would mean the TSV
// framing itself leaked through).
func FuzzHTTPEntry(f *testing.F) {
	clean := genHTTPLog(f)
	f.Add(clean)
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(corruptVariant(f, clean, seed))
	}
	f.Add("")
	f.Add("#fields\tts\tid.orig_h\thost\tuser_agent")

	f.Fuzz(func(t *testing.T, input string) {
		lr, err := httplog.NewReader(strings.NewReader(input))
		if err != nil {
			return
		}
		for i := 0; i < 2000; i++ {
			e, err := lr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if _, ok := decodeerr.ClassOf(err); ok {
					continue
				}
				if errors.Is(err, bufio.ErrTooLong) {
					return
				}
				t.Fatalf("unclassified decode error: %v", err)
			}
			if !e.Client.IsValid() {
				t.Fatalf("reader accepted an entry with invalid client: %+v", e)
			}
			if strings.ContainsRune(e.Host, '\t') || strings.ContainsRune(e.UserAgent, '\t') {
				t.Fatalf("decoded string leaked TSV framing: %+v", e)
			}
		}
	})
}
