package httplog

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Entry{
		{
			Time:      time.Date(2020, time.February, 5, 9, 30, 0, 0, time.UTC),
			Client:    netip.MustParseAddr("10.4.5.6"),
			Host:      "detectportal.firefox.com",
			UserAgent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) Firefox/73.0",
		},
		{
			Time:      time.Date(2020, time.February, 5, 9, 31, 0, 0, time.UTC),
			Client:    netip.MustParseAddr("10.4.5.7"),
			Host:      "", // host header absent
			UserAgent: "Roku/DVP-9.21",
		},
	}
	for _, e := range want {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Time.Equal(exp.Time) || got.Client != exp.Client ||
			got.Host != exp.Host || got.UserAgent != exp.UserAgent {
			t.Errorf("entry %d: got %+v want %+v", i, got, exp)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("trailing err = %v", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("garbage\n"))); err == nil {
		t.Error("garbage header accepted")
	}
}
