package stagecache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// StoreVersion is the on-disk layout version. A store written by a
// different version reads as a verify failure (and a recompute), never as
// data.
const StoreVersion = 1

// Mode controls what the store is allowed to do.
type Mode uint8

const (
	// ModeOff disables the cache entirely.
	ModeOff Mode = iota
	// ModeRead serves hits but never writes (useful for proving a
	// populated cache is sufficient, and for read-only cache volumes).
	ModeRead
	// ModeReadWrite serves hits and persists misses — the default.
	ModeReadWrite
)

var modeNames = map[Mode]string{ModeOff: "off", ModeRead: "read", ModeReadWrite: "readwrite"}

// String returns the mode's flag spelling.
func (m Mode) String() string {
	if n, ok := modeNames[m]; ok {
		return n
	}
	return "unknown"
}

// ParseMode parses a -cache-mode flag value.
func ParseMode(s string) (Mode, error) {
	for m, n := range modeNames {
		if n == s {
			return m, nil
		}
	}
	return ModeOff, fmt.Errorf("stagecache: unknown mode %q (want off, read or readwrite)", s)
}

// ErrCorrupt marks a cache entry that failed verification (checksum
// mismatch, truncation, manifest damage, version skew). Callers treat it
// as a miss; the store has already counted the verify failure.
var ErrCorrupt = errors.New("stagecache: entry failed verification")

// manifest describes one committed cache entry. It is written last inside
// the staging directory, so an entry directory without a well-formed
// manifest is by construction a torn write and reads as a plain miss.
type manifest struct {
	Version int    `json:"version"`
	Stage   string `json:"stage"`
	Key     string `json:"key"`
	// Inputs records the digests the key was derived from, for humans
	// debugging an invalidation ("which input moved?").
	Inputs map[string]string `json:"inputs,omitempty"`
	Files  []fileEntry       `json:"files"`
}

type fileEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// index is the per-stage manifest of committed keys. Latest distinguishes
// an invalidation (the stage has an entry, just not for this key) from a
// cold miss.
type index struct {
	Version int      `json:"version"`
	Latest  string   `json:"latest"`
	Entries []string `json:"entries"`
}

// Counters is a point-in-time snapshot of the store's accounting.
type Counters struct {
	Hits           int64
	Misses         int64
	Invalidations  int64
	VerifyFailures int64
}

// Store is the on-disk cache. All methods are safe on a nil receiver
// (ModeOff semantics), mirroring the nil-*Metrics idiom, so callers thread
// a possibly-nil *Store without branching.
type Store struct {
	dir  string
	mode Mode
	om   *obs.Metrics

	hits           atomic.Int64
	misses         atomic.Int64
	invalidations  atomic.Int64
	verifyFailures atomic.Int64
}

// Open prepares a store rooted at dir. ModeOff returns a nil store.
// Opening in a writable mode sweeps leftover staging directories from
// torn runs — they were never committed, so removing them is always safe.
func Open(dir string, mode Mode, om *obs.Metrics) (*Store, error) {
	if mode == ModeOff {
		return nil, nil
	}
	s := &Store{dir: dir, mode: mode, om: om}
	if mode == ModeReadWrite {
		if err := os.MkdirAll(s.tmpDir(), 0o755); err != nil {
			return nil, err
		}
		entries, err := os.ReadDir(s.tmpDir())
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			os.RemoveAll(filepath.Join(s.tmpDir(), e.Name()))
		}
	}
	return s, nil
}

// Dir returns the store root ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Mode returns the store's mode (ModeOff for a nil store).
func (s *Store) Mode() Mode {
	if s == nil {
		return ModeOff
	}
	return s.mode
}

func (s *Store) tmpDir() string               { return filepath.Join(s.dir, "tmp") }
func (s *Store) stageDir(stage string) string { return filepath.Join(s.dir, filepath.FromSlash(stage)) }
func (s *Store) entryDir(stage string, key Digest) string {
	return filepath.Join(s.stageDir(stage), string(key))
}

// Counters returns the store's accounting so far.
func (s *Store) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return Counters{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Invalidations:  s.invalidations.Load(),
		VerifyFailures: s.verifyFailures.Load(),
	}
}

// noteHit / noteMiss / noteVerifyFailure keep the store's counters and the
// shared obs metrics in lockstep.
func (s *Store) noteHit() {
	s.hits.Add(1)
	s.om.CacheHit()
}

func (s *Store) noteMiss(stage string, key Digest) {
	s.misses.Add(1)
	s.om.CacheMiss()
	// An invalidation is a miss on a stage that has committed entries,
	// just not this key: some input moved since the last run.
	if idx, err := s.readIndex(stage); err == nil && idx.Latest != "" && idx.Latest != string(key) {
		s.invalidations.Add(1)
		s.om.CacheInvalidation()
	}
}

func (s *Store) noteVerifyFailure() {
	s.verifyFailures.Add(1)
	s.om.CacheVerifyFailure()
}

// readIndex loads a stage's index (zero value when absent).
func (s *Store) readIndex(stage string) (index, error) {
	var idx index
	data, err := os.ReadFile(filepath.Join(s.stageDir(stage), "index.json"))
	if err != nil {
		return idx, err
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		return idx, err
	}
	return idx, nil
}

// loadManifest reads and structurally verifies an entry's manifest.
// A missing manifest is a plain miss (torn write); a damaged or
// version-skewed one is ErrCorrupt.
func (s *Store) loadManifest(stage string, key Digest) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.entryDir(stage, key), "manifest.json"))
	if err != nil {
		return nil, err // fs.ErrNotExist → plain miss
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: bad manifest: %v", ErrCorrupt, err)
	}
	if m.Version != StoreVersion {
		return nil, fmt.Errorf("%w: store version %d, want %d", ErrCorrupt, m.Version, StoreVersion)
	}
	if m.Stage != stage || m.Key != string(key) {
		return nil, fmt.Errorf("%w: manifest names %s/%s, want %s/%s", ErrCorrupt, m.Stage, m.Key, stage, key)
	}
	return &m, nil
}

// verifyFile checks one payload against its manifest entry and returns
// its content.
func verifyFile(dir string, fe fileEntry) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, filepath.FromSlash(fe.Name)))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, fe.Name, err)
	}
	if int64(len(b)) != fe.Size {
		return nil, fmt.Errorf("%w: %s: size %d, want %d", ErrCorrupt, fe.Name, len(b), fe.Size)
	}
	if sum := sha256.Sum256(b); hex.EncodeToString(sum[:]) != fe.SHA256 {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, fe.Name)
	}
	return b, nil
}

// GetBytes fetches and fully verifies an entry, returning its payloads by
// name. validate, when non-nil, runs after the checksum pass and may
// reject the payloads (a payload-codec version skew the store's own
// checksums cannot see) — its error counts as a verify failure, so the
// hit/miss/verify accounting always reflects what the caller actually
// used. ok is false on a miss and on any verification failure (counted).
func (s *Store) GetBytes(stage string, key Digest, validate func(map[string][]byte) error) (map[string][]byte, bool) {
	if s == nil {
		return nil, false
	}
	m, err := s.loadManifest(stage, key)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.noteVerifyFailure()
		}
		s.noteMiss(stage, key)
		return nil, false
	}
	dir := s.entryDir(stage, key)
	files := make(map[string][]byte, len(m.Files))
	for _, fe := range m.Files {
		b, err := verifyFile(dir, fe)
		if err != nil {
			s.noteVerifyFailure()
			s.noteMiss(stage, key)
			return nil, false
		}
		files[fe.Name] = b
	}
	if validate != nil {
		if err := validate(files); err != nil {
			s.noteVerifyFailure()
			s.noteMiss(stage, key)
			return nil, false
		}
	}
	s.noteHit()
	return files, true
}

// GetDir fetches an entry whose payload is a file tree, verifying every
// file while streaming it into dstDir (created if needed). On any
// verification failure the partial copy is removed and ok is false.
func (s *Store) GetDir(stage string, key Digest, dstDir string) bool {
	if s == nil {
		return false
	}
	m, err := s.loadManifest(stage, key)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			s.noteVerifyFailure()
		}
		s.noteMiss(stage, key)
		return false
	}
	srcDir := s.entryDir(stage, key)
	if err := copyVerified(srcDir, dstDir, m.Files); err != nil {
		os.RemoveAll(dstDir)
		if errors.Is(err, ErrCorrupt) {
			s.noteVerifyFailure()
		}
		s.noteMiss(stage, key)
		return false
	}
	s.noteHit()
	return true
}

func copyVerified(srcDir, dstDir string, files []fileEntry) error {
	for _, fe := range files {
		src := filepath.Join(srcDir, filepath.FromSlash(fe.Name))
		dst := filepath.Join(dstDir, filepath.FromSlash(fe.Name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		in, err := os.Open(src)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, fe.Name, err)
		}
		out, err := os.Create(dst)
		if err != nil {
			in.Close()
			return err
		}
		h := sha256.New()
		n, err := io.Copy(io.MultiWriter(out, h), in)
		in.Close()
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if n != fe.Size {
			return fmt.Errorf("%w: %s: size %d, want %d", ErrCorrupt, fe.Name, n, fe.Size)
		}
		if hex.EncodeToString(h.Sum(nil)) != fe.SHA256 {
			return fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, fe.Name)
		}
	}
	return nil
}

// Writable reports whether Put calls will persist.
func (s *Store) Writable() bool { return s != nil && s.mode == ModeReadWrite }

// PutBytes commits an entry with in-memory payloads. The entry is staged
// under tmp/ and renamed into place in one step: a crash at any point
// leaves either no entry or a complete, verifiable one. Not writable
// modes are a no-op.
func (s *Store) PutBytes(stage string, key Digest, inputs map[string]Digest, files map[string][]byte) error {
	if !s.Writable() {
		return nil
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	return s.commit(stage, key, inputs, names, func(dst string, name string) (int64, string, error) {
		b := files[name]
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			return 0, "", err
		}
		sum := sha256.Sum256(b)
		return int64(len(b)), hex.EncodeToString(sum[:]), nil
	})
}

// PutDir commits an entry whose payload is the file tree rooted at
// srcDir (every regular file, relative slash-separated names).
func (s *Store) PutDir(stage string, key Digest, inputs map[string]Digest, srcDir string) error {
	if !s.Writable() {
		return nil
	}
	var names []string
	err := filepath.WalkDir(srcDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			rel, err := filepath.Rel(srcDir, path)
			if err != nil {
				return err
			}
			names = append(names, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(names)
	return s.commit(stage, key, inputs, names, func(dst string, name string) (int64, string, error) {
		in, err := os.Open(filepath.Join(srcDir, filepath.FromSlash(name)))
		if err != nil {
			return 0, "", err
		}
		defer in.Close()
		out, err := os.Create(dst)
		if err != nil {
			return 0, "", err
		}
		h := sha256.New()
		n, err := io.Copy(io.MultiWriter(out, h), in)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, "", err
		}
		return n, hex.EncodeToString(h.Sum(nil)), nil
	})
}

// commit stages the entry (payloads first, manifest last), renames it into
// place, and updates the stage index.
func (s *Store) commit(stage string, key Digest, inputs map[string]Digest, names []string, write func(dst, name string) (int64, string, error)) error {
	staging, err := os.MkdirTemp(s.tmpDir(), "put-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(staging)
	m := &manifest{Version: StoreVersion, Stage: stage, Key: string(key)}
	if len(inputs) > 0 {
		m.Inputs = make(map[string]string, len(inputs))
		for k, v := range inputs {
			m.Inputs[k] = string(v)
		}
	}
	for _, name := range names {
		dst := filepath.Join(staging, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		size, sum, err := write(dst, name)
		if err != nil {
			return err
		}
		m.Files = append(m.Files, fileEntry{Name: name, Size: size, SHA256: sum})
	}
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(staging, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return err
	}
	final := s.entryDir(stage, key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	// Replace any existing (possibly corrupt) entry wholesale; the rename
	// is the commit point.
	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(staging, final); err != nil {
		return err
	}
	return s.updateIndex(stage, key)
}

// updateIndex records key as the stage's latest entry (written via a
// temp file + rename so the index is never seen half-written).
func (s *Store) updateIndex(stage string, key Digest) error {
	idx, _ := s.readIndex(stage)
	idx.Version = StoreVersion
	idx.Latest = string(key)
	found := false
	for _, e := range idx.Entries {
		if e == string(key) {
			found = true
			break
		}
	}
	if !found {
		idx.Entries = append(idx.Entries, string(key))
		sort.Strings(idx.Entries)
	}
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.tmpDir(), "index-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(b, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(name)
		return werr
	}
	return os.Rename(name, filepath.Join(s.stageDir(stage), "index.json"))
}

// Summary renders the store's accounting for an end-of-run status line,
// e.g. "dir=cache mode=readwrite hits=2 misses=0 invalidations=0 verify_failures=0".
func (s *Store) Summary() string {
	if s == nil {
		return "mode=off"
	}
	c := s.Counters()
	return fmt.Sprintf("dir=%s mode=%s hits=%d misses=%d invalidations=%d verify_failures=%d",
		s.dir, s.mode, c.Hits, c.Misses, c.Invalidations, c.VerifyFailures)
}
