// Package stagecache is a content-addressed on-disk cache over the
// pipeline DAG (generate → ingest → stats → figures), borrowing the
// dagger/buildkit model: every stage output is persisted under a key that
// digests the stage's inputs, its configuration, and the code version, so
// a rerun skips any stage whose key is unchanged and recomputes exactly
// the stages whose inputs moved.
//
// Soundness rests on two properties the repository already enforces:
// the pipeline is deterministic (lintlock's determinism analyzer bans
// wall-clock and unseeded randomness from every analysis package), and
// sharded output is byte-identical to single-pipeline output (the
// faultline differential harness) — so the shard count deliberately does
// NOT enter any key. Keys are conservative in the other direction: the
// code version is a digest of the whole running binary, so any rebuild
// invalidates everything. Over-invalidation costs time; under-invalidation
// would cost correctness.
//
// The store never trusts what it reads back: every payload is verified
// against the manifest's per-file checksum on the read path, and any
// mismatch — corruption, truncation, version skew, a torn write — is
// surfaced as a miss plus a verify-failure counter, never as data. A
// corrupt cache can only cost a recompute.
package stagecache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/universe"
)

// Digest is a sha256 content digest in lowercase hex.
type Digest string

// sumDigest renders a sha256 sum as a Digest.
func sumDigest(h hash.Hash) Digest { return Digest(hex.EncodeToString(h.Sum(nil))) }

// Hasher accumulates named, typed, length-prefixed fields into a stage
// key. Every field write is unambiguous on the wire (name length, name,
// type tag, value length where variable), so no two distinct field
// sequences collide by concatenation, and the domain string separates key
// spaces of different stages.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a key in the given domain (e.g. "lockdown/stats").
func NewHasher(domain string) *Hasher {
	h := &Hasher{h: sha256.New()}
	io.WriteString(h.h, "stagecache/v1\x00")
	h.raw('D', []byte(domain))
	return h
}

func (h *Hasher) raw(tag byte, val []byte) {
	var buf [binary.MaxVarintLen64]byte
	h.h.Write([]byte{tag})
	n := binary.PutUvarint(buf[:], uint64(len(val)))
	h.h.Write(buf[:n])
	h.h.Write(val)
}

func (h *Hasher) field(name string, tag byte, val []byte) {
	h.raw('N', []byte(name))
	h.raw(tag, val)
}

// String adds a string field.
func (h *Hasher) String(name, v string) { h.field(name, 'S', []byte(v)) }

// Bytes adds a raw byte field (nil and empty hash identically).
func (h *Hasher) Bytes(name string, v []byte) { h.field(name, 'B', v) }

// Int adds a signed integer field.
func (h *Hasher) Int(name string, v int64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	h.field(name, 'I', buf[:])
}

// Bool adds a boolean field.
func (h *Hasher) Bool(name string, v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.field(name, 'T', []byte{b})
}

// Float adds a float64 field (exact bit pattern).
func (h *Hasher) Float(name string, v float64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
	h.field(name, 'F', buf[:])
}

// Digest adds another stage's key or a content digest as an input field —
// the edge of the DAG.
func (h *Hasher) Digest(name string, d Digest) { h.field(name, 'G', []byte(d)) }

// Sum finalizes the key. The Hasher must not be used afterwards.
func (h *Hasher) Sum() Digest { return sumDigest(h.h) }

// ContentDigest digests a payload directly (for content-chained inputs:
// a stage keyed on the bytes it consumes rather than on how they were
// produced shares entries across configs that happen to emit identical
// payloads).
func ContentDigest(b []byte) Digest {
	sum := sha256.Sum256(b)
	return Digest(hex.EncodeToString(sum[:]))
}

var codeOnce struct {
	sync.Once
	d   Digest
	err error
}

// CodeDigest returns the digest of the running executable. It stands in
// for "code version" in every stage key: any code change produces a new
// binary and therefore new keys for everything, which over-invalidates
// (a comment-only rebuild flushes the cache) but can never reuse an entry
// produced by different logic. Go builds are reproducible for identical
// inputs, so the digest is stable across processes of the same build.
func CodeDigest() (Digest, error) {
	codeOnce.Do(func() {
		exe, err := os.Executable()
		if err != nil {
			codeOnce.err = err
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			codeOnce.err = err
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			codeOnce.err = err
			return
		}
		codeOnce.d = sumDigest(h)
	})
	return codeOnce.d, codeOnce.err
}

// RulesDigest digests the analysis rule surface that lives in data rather
// than in control flow: the appsig signature tables (pass
// appsig.TableRows()) and the universe registry's service catalog, address
// plan and resolver. These are compile-time constants today — flipping one
// already changes CodeDigest — but digesting them explicitly keeps the key
// honest if they ever become loadable, and gives tests a direct lever to
// prove single-entry sensitivity without a rebuild.
func RulesDigest(reg *universe.Registry, appsigRows []string) Digest {
	h := NewHasher("rules")
	for _, r := range appsigRows {
		h.String("appsig_row", r)
	}
	for _, s := range reg.Services() {
		h.String("service", fmt.Sprintf("%s|%d|%s|%v|%s|%d|%t|%t",
			s.Name, s.Category, s.Region.Code, s.Domains, s.CDN, s.Prefixes16, s.TapExcluded, s.GeoExcludedCDN))
	}
	for _, p := range reg.Prefixes() {
		h.String("prefix", fmt.Sprintf("%s|%s|%s|%t|%t|%t",
			p.Prefix, p.Owner, p.Region.Code, p.CDN, p.GeoExcluded, p.TapExcluded))
	}
	h.String("resolver", reg.ResolverAddr().String())
	return h.Sum()
}

// TreeDigest digests a dataset directory: every regular file's relative
// path, size and content, in sorted path order. Flipping any single input
// byte, renaming a file, or adding/removing one changes the digest. The
// second return is the total byte count (for status lines).
func TreeDigest(dir string) (Digest, int64, error) {
	h := sha256.New()
	io.WriteString(h, "stagecache/tree/v1\x00")
	var total int64
	var paths []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return "", 0, err
	}
	sort.Strings(paths)
	for _, path := range paths {
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return "", 0, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return "", 0, err
		}
		f, err := os.Open(path)
		if err != nil {
			return "", 0, err
		}
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], uint64(len(rel)))
		h.Write(buf[:n])
		io.WriteString(h, filepath.ToSlash(rel))
		n = binary.PutUvarint(buf[:], uint64(fi.Size()))
		h.Write(buf[:n])
		sz, err := io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", 0, err
		}
		if sz != fi.Size() {
			return "", 0, fmt.Errorf("stagecache: %s changed while hashing", path)
		}
		total += sz
	}
	return sumDigest(h), total, nil
}
