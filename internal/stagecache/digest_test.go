package stagecache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/appsig"
	"repro/internal/universe"
)

// TestHasherDeterminism pins the basic contract: the same field sequence
// always produces the same digest, in this process and (because the
// encoding has no pointers, maps or time in it) in any other.
func TestHasherDeterminism(t *testing.T) {
	mk := func() Digest {
		h := NewHasher("test/stage")
		h.String("name", "value")
		h.Int("count", 42)
		h.Bool("flag", true)
		h.Float("scale", 0.05)
		h.Bytes("key", []byte{1, 2, 3})
		h.Digest("input", "abc123")
		return h.Sum()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same field sequence produced %s and %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not sha256 hex", a)
	}
}

// TestHasherFieldSeparation proves no two distinct field sequences collide
// by concatenation: every variation below — shifting a byte between a name
// and a value, splitting one field into two, changing a type tag or the
// domain — must land on a distinct digest.
func TestHasherFieldSeparation(t *testing.T) {
	variants := map[string]func() Digest{
		"base": func() Digest {
			h := NewHasher("d")
			h.String("ab", "cd")
			return h.Sum()
		},
		"name/value boundary shifted": func() Digest {
			h := NewHasher("d")
			h.String("abc", "d")
			return h.Sum()
		},
		"one field split into two": func() Digest {
			h := NewHasher("d")
			h.String("a", "b")
			h.String("c", "d")
			return h.Sum()
		},
		"field order swapped": func() Digest {
			h := NewHasher("d")
			h.String("c", "d")
			h.String("a", "b")
			return h.Sum()
		},
		"string vs bytes tag": func() Digest {
			h := NewHasher("d")
			h.Bytes("ab", []byte("cd"))
			return h.Sum()
		},
		"string vs digest tag": func() Digest {
			h := NewHasher("d")
			h.Digest("ab", "cd")
			return h.Sum()
		},
		"different domain": func() Digest {
			h := NewHasher("d2")
			h.String("ab", "cd")
			return h.Sum()
		},
		"domain/field boundary shifted": func() Digest {
			h := NewHasher("dab")
			h.String("", "cd")
			return h.Sum()
		},
		"int 1": func() Digest {
			h := NewHasher("d")
			h.Int("ab", 1)
			return h.Sum()
		},
		"bool true": func() Digest {
			h := NewHasher("d")
			h.Bool("ab", true)
			return h.Sum()
		},
		"float 1": func() Digest {
			h := NewHasher("d")
			h.Float("ab", 1)
			return h.Sum()
		},
		"empty": func() Digest {
			return NewHasher("d").Sum()
		},
	}
	seen := make(map[Digest]string, len(variants))
	for name, mk := range variants {
		d := mk()
		if prev, ok := seen[d]; ok {
			t.Errorf("%q and %q collide on %s", name, prev, d)
		}
		seen[d] = name
	}
}

// TestHasherNilEmptyBytes pins the documented exception: a nil byte slice
// and an empty one hash identically (there is no observable difference
// between the two for key material).
func TestHasherNilEmptyBytes(t *testing.T) {
	mk := func(v []byte) Digest {
		h := NewHasher("d")
		h.Bytes("k", v)
		return h.Sum()
	}
	if mk(nil) != mk([]byte{}) {
		t.Error("nil and empty byte fields hash differently")
	}
}

// TestTreeDigest builds a small tree and checks the digest moves on every
// kind of input change — a flipped byte, a renamed file, an added file —
// and nowhere else (an identical tree under a different root matches).
func TestTreeDigest(t *testing.T) {
	write := func(dir, name, content string) {
		t.Helper()
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mkTree := func() string {
		dir := t.TempDir()
		write(dir, "conn.log", "flow 1\nflow 2\n")
		write(dir, "sub/dns.log", "query a\n")
		return dir
	}

	base := mkTree()
	baseDigest, baseBytes, err := TreeDigest(base)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len("flow 1\nflow 2\n") + len("query a\n")); baseBytes != want {
		t.Errorf("total bytes = %d, want %d", baseBytes, want)
	}

	same, _, err := TreeDigest(mkTree())
	if err != nil {
		t.Fatal(err)
	}
	if same != baseDigest {
		t.Error("identical tree under a different root digests differently")
	}

	flipped := mkTree()
	write(flipped, "conn.log", "flow 1\nflow 3\n") // one byte differs
	if d, _, _ := TreeDigest(flipped); d == baseDigest {
		t.Error("single flipped byte did not change the tree digest")
	}

	renamed := mkTree()
	if err := os.Rename(filepath.Join(renamed, "conn.log"), filepath.Join(renamed, "conn2.log")); err != nil {
		t.Fatal(err)
	}
	if d, _, _ := TreeDigest(renamed); d == baseDigest {
		t.Error("renamed file did not change the tree digest")
	}

	extra := mkTree()
	write(extra, "http.log", "")
	if d, _, _ := TreeDigest(extra); d == baseDigest {
		t.Error("added (empty) file did not change the tree digest")
	}

	// Moving a byte from one file's tail to another's head must not
	// cancel out — the per-file length framing prevents concatenation
	// ambiguity.
	shifted := mkTree()
	write(shifted, "conn.log", "flow 1\nflow 2\nq")
	write(shifted, "sub/dns.log", "uery a\n")
	if d, _, _ := TreeDigest(shifted); d == baseDigest {
		t.Error("byte moved across a file boundary did not change the tree digest")
	}
}

// TestRulesDigestRowSensitivity drives RulesDigest over the full appsig
// signature surface: flipping any single table row — every row the tables
// expose — must change the digest, and dropping a row must too.
func TestRulesDigestRowSensitivity(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	rows := appsig.TableRows()
	if len(rows) == 0 {
		t.Fatal("appsig.TableRows returned no rows")
	}
	base := RulesDigest(reg, rows)
	if base == RulesDigest(reg, rows[:len(rows)-1]) {
		t.Error("dropping a signature row did not change the rules digest")
	}
	for i, row := range rows {
		mutated := make([]string, len(rows))
		copy(mutated, rows)
		mutated[i] = row + "x"
		if RulesDigest(reg, mutated) == base {
			t.Errorf("mutating appsig row %d (%q) did not change the rules digest", i, row)
		}
	}
}

// TestCodeDigestStable checks the process-wide code digest is computed
// once, is well-formed, and is obviously the digest of this binary (it
// matches a direct hash of os.Executable).
func TestCodeDigestStable(t *testing.T) {
	a, err := CodeDigest()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CodeDigest()
	if err != nil {
		t.Fatal(err)
	}
	if a != b || len(a) != 64 {
		t.Fatalf("CodeDigest unstable or malformed: %s vs %s", a, b)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(exe)
	if err != nil {
		t.Fatal(err)
	}
	if ContentDigest(content) != a {
		t.Error("CodeDigest does not match a direct hash of the executable")
	}
}
