package stagecache

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testStore(t *testing.T, mode Mode) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantCounters(t *testing.T, s *Store, want Counters) {
	t.Helper()
	if got := s.Counters(); got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}

const testKey = Digest("0000000000000000000000000000000000000000000000000000000000000001")
const otherKey = Digest("0000000000000000000000000000000000000000000000000000000000000002")

func testFiles() map[string][]byte {
	return map[string][]byte{
		"dataset.bin": []byte("columnar payload bytes"),
		"truth.bin":   []byte("truth payload"),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	if err := s.PutBytes("stats", testKey, map[string]Digest{"code": "abc"}, testFiles()); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetBytes("stats", testKey, nil)
	if !ok {
		t.Fatal("round trip missed")
	}
	want := testFiles()
	if len(got) != len(want) {
		t.Fatalf("got %d files, want %d", len(got), len(want))
	}
	for name, b := range want {
		if string(got[name]) != string(b) {
			t.Errorf("%s = %q, want %q", name, got[name], b)
		}
	}
	wantCounters(t, s, Counters{Hits: 1})
}

func TestMissAndInvalidation(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	// A miss on a stage with no committed entries is cold, not an
	// invalidation.
	if _, ok := s.GetBytes("stats", testKey, nil); ok {
		t.Fatal("empty store served a hit")
	}
	wantCounters(t, s, Counters{Misses: 1})
	if err := s.PutBytes("stats", testKey, nil, testFiles()); err != nil {
		t.Fatal(err)
	}
	// A miss on a different key for the same stage means an input moved:
	// that is an invalidation.
	if _, ok := s.GetBytes("stats", otherKey, nil); ok {
		t.Fatal("wrong key served a hit")
	}
	wantCounters(t, s, Counters{Misses: 2, Invalidations: 1})
}

func TestValidateRejectionCountsAsVerifyFailure(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	if err := s.PutBytes("stats", testKey, nil, testFiles()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBytes("stats", testKey, func(map[string][]byte) error {
		return errors.New("payload codec skew")
	}); ok {
		t.Fatal("rejected payload still counted as a hit")
	}
	wantCounters(t, s, Counters{Misses: 1, VerifyFailures: 1})
	// The entry itself is intact: a permissive reader still hits.
	if _, ok := s.GetBytes("stats", testKey, nil); !ok {
		t.Fatal("entry lost after validate rejection")
	}
}

// TestCorruptionMatrix damages a committed entry every way the ISSUE
// names — payload bit flip, truncation, deletion, manifest damage, store
// version skew, manifest/key mismatch — and requires each to read as a
// verify failure (counted) plus a miss, after which a recompute (re-Put)
// fully heals the entry.
func TestCorruptionMatrix(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, entryDir string)
	}{
		{"payload bit flip", func(t *testing.T, dir string) {
			p := filepath.Join(dir, "dataset.bin")
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0x40
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload truncation", func(t *testing.T, dir string) {
			p := filepath.Join(dir, "truth.bin")
			if err := os.Truncate(p, 3); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload deleted", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "dataset.bin")); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest not JSON", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{torn"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"store version skew", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *manifest) { m.Version = StoreVersion + 1 })
		}},
		{"manifest names another key", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *manifest) { m.Key = string(otherKey) })
		}},
		{"manifest checksum edited", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *manifest) {
				m.Files[0].SHA256 = strings.Repeat("0", 64)
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testStore(t, ModeReadWrite)
			if err := s.PutBytes("stats", testKey, nil, testFiles()); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(s.Dir(), "stats", string(testKey)))
			if _, ok := s.GetBytes("stats", testKey, nil); ok {
				t.Fatal("corrupted entry served as a hit")
			}
			c := s.Counters()
			if c.VerifyFailures != 1 || c.Misses != 1 || c.Hits != 0 {
				t.Fatalf("corruption accounting = %+v, want 1 verify failure + 1 miss", c)
			}
			// Recompute path: a fresh Put replaces the damaged entry and
			// the next read hits and round-trips the new payload.
			if err := s.PutBytes("stats", testKey, nil, testFiles()); err != nil {
				t.Fatalf("re-put over corrupt entry: %v", err)
			}
			got, ok := s.GetBytes("stats", testKey, nil)
			if !ok {
				t.Fatal("entry not healed by recompute")
			}
			if string(got["dataset.bin"]) != string(testFiles()["dataset.bin"]) {
				t.Error("healed entry returned wrong payload")
			}
		})
	}
}

func rewriteManifest(t *testing.T, entryDir string, mutate func(*manifest)) {
	t.Helper()
	p := filepath.Join(entryDir, "manifest.json")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	mutate(&m)
	out, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTornWriteIsInvisible plants the two artifacts a crash mid-Put can
// leave — an entry directory without a manifest, and a staging directory
// under tmp/ — and requires the first to read as a plain miss (no verify
// failure: nothing claimed to be valid) and the second to be swept on the
// next writable Open.
func TestTornWriteIsInvisible(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	entry := filepath.Join(s.Dir(), "stats", string(testKey))
	if err := os.MkdirAll(entry, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(entry, "dataset.bin"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetBytes("stats", testKey, nil); ok {
		t.Fatal("manifest-less entry served as a hit")
	}
	wantCounters(t, s, Counters{Misses: 1})

	staging := filepath.Join(s.Dir(), "tmp", "put-leftover")
	if err := os.MkdirAll(staging, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staging, "dataset.bin"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(s.Dir(), ModeReadWrite, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(staging); !errors.Is(err, os.ErrNotExist) {
		t.Error("writable Open did not sweep the torn staging directory")
	}
}

func TestModeRead(t *testing.T) {
	rw := testStore(t, ModeReadWrite)
	if err := rw.PutBytes("stats", testKey, nil, testFiles()); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(rw.Dir(), ModeRead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Writable() {
		t.Error("read-only store claims to be writable")
	}
	if _, ok := ro.GetBytes("stats", testKey, nil); !ok {
		t.Error("read-only store missed a committed entry")
	}
	if err := ro.PutBytes("stats", otherKey, nil, testFiles()); err != nil {
		t.Fatalf("read-only Put should be a silent no-op, got %v", err)
	}
	if _, ok := ro.GetBytes("stats", otherKey, nil); ok {
		t.Error("read-only Put persisted an entry")
	}
}

func TestParseMode(t *testing.T) {
	for spelling, want := range map[string]Mode{"off": ModeOff, "read": ModeRead, "readwrite": ModeReadWrite} {
		got, err := ParseMode(spelling)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", spelling, got, err)
		}
	}
	if _, err := ParseMode("rw"); err == nil {
		t.Error("ParseMode accepted an unknown spelling")
	}
}

func TestOpenModeOffIsNilStore(t *testing.T) {
	s, err := Open(t.TempDir(), ModeOff, nil)
	if err != nil || s != nil {
		t.Fatalf("Open(ModeOff) = %v, %v; want nil, nil", s, err)
	}
}

// TestNilStore pins the nil-receiver contract: every method is safe and
// behaves as ModeOff.
func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.GetBytes("stats", testKey, nil); ok {
		t.Error("nil store served a hit")
	}
	if s.GetDir("dataset", testKey, t.TempDir()) {
		t.Error("nil store served a dir hit")
	}
	if err := s.PutBytes("stats", testKey, nil, testFiles()); err != nil {
		t.Error("nil store PutBytes errored")
	}
	if err := s.PutDir("dataset", testKey, nil, t.TempDir()); err != nil {
		t.Error("nil store PutDir errored")
	}
	if s.Writable() || s.Mode() != ModeOff || s.Dir() != "" {
		t.Error("nil store is not ModeOff-shaped")
	}
	if s.Counters() != (Counters{}) {
		t.Error("nil store has nonzero counters")
	}
	if s.Summary() != "mode=off" {
		t.Errorf("nil store summary = %q", s.Summary())
	}
}

func TestPutDirGetDir(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	src := t.TempDir()
	files := map[string]string{
		"conn.log":     "flow 1\nflow 2\n",
		"sub/dns.log":  "query a\n",
		"sub/http.log": "",
	}
	for name, content := range files {
		p := filepath.Join(src, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutDir("dataset", testKey, nil, src); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "restored")
	if !s.GetDir("dataset", testKey, dst) {
		t.Fatal("GetDir missed a committed tree")
	}
	for name, content := range files {
		b, err := os.ReadFile(filepath.Join(dst, filepath.FromSlash(name)))
		if err != nil {
			t.Fatalf("restored tree missing %s: %v", name, err)
		}
		if string(b) != content {
			t.Errorf("%s = %q, want %q", name, b, content)
		}
	}
	wantCounters(t, s, Counters{Hits: 1})

	// Corrupt one cached payload: GetDir must fail verification, remove
	// the partial copy, and count the failure.
	cached := filepath.Join(s.Dir(), "dataset", string(testKey), "conn.log")
	if err := os.WriteFile(cached, []byte("flow 1\nflow X\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst2 := filepath.Join(t.TempDir(), "restored2")
	if s.GetDir("dataset", testKey, dst2) {
		t.Fatal("GetDir served a corrupted tree")
	}
	if _, err := os.Stat(dst2); !errors.Is(err, os.ErrNotExist) {
		t.Error("GetDir left a partial copy behind after verification failure")
	}
	c := s.Counters()
	if c.VerifyFailures != 1 {
		t.Errorf("verify failures = %d, want 1", c.VerifyFailures)
	}
}

func TestSummaryShape(t *testing.T) {
	s := testStore(t, ModeReadWrite)
	s.GetBytes("stats", testKey, nil)
	sum := s.Summary()
	for _, frag := range []string{"mode=readwrite", "hits=0", "misses=1", "invalidations=0", "verify_failures=0"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary %q missing %q", sum, frag)
		}
	}
}
