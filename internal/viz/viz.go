// Package viz renders experiment results as CSV files (for external
// plotting) and compact ASCII charts (for terminal reports). It is the
// output layer of the cmd/lockdown harness and the examples.
package viz

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits a header row followed by columnar series. All columns must
// share the rows' length; the label column supplies row names (dates,
// months, hours).
func WriteCSV(w io.Writer, labelHeader string, labels []string, columns map[string][]float64, order []string) error {
	cw := csv.NewWriter(w)
	header := append([]string{labelHeader}, order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, col := range order {
		if len(columns[col]) != len(labels) {
			return fmt.Errorf("viz: column %q has %d rows, labels have %d", col, len(columns[col]), len(labels))
		}
	}
	row := make([]string, len(header))
	for i, label := range labels {
		row[0] = label
		for j, col := range order {
			row[j+1] = strconv.FormatFloat(columns[col][i], 'g', 8, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Chart renders one or more series as an ASCII line chart. Each series is
// drawn with its own glyph; values are scaled into height rows.
type Chart struct {
	Title  string
	Height int // default 12
	Width  int // downsampled point count; default len(series)
	// Format renders axis values; defaults to SIBytes.
	Format func(float64) string
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render(w io.Writer, labels []string, series map[string][]float64, order []string) error {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	n := 0
	for _, name := range order {
		if len(series[name]) > n {
			n = len(series[name])
		}
	}
	if n == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return err
	}
	width := c.Width
	if width <= 0 || width > n {
		width = n
	}
	// Downsample each series to width points by averaging buckets.
	ds := make(map[string][]float64, len(order))
	maxVal := 0.0
	for _, name := range order {
		src := series[name]
		out := make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(src) / width
			hi := (i + 1) * len(src) / width
			if hi <= lo {
				hi = lo + 1
			}
			var sum float64
			cnt := 0
			for j := lo; j < hi && j < len(src); j++ {
				sum += src[j]
				cnt++
			}
			if cnt > 0 {
				out[i] = sum / float64(cnt)
			}
			if out[i] > maxVal {
				maxVal = out[i]
			}
		}
		ds[name] = out
	}
	if maxVal <= 0 {
		maxVal = 1
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range order {
		g := glyphs[si%len(glyphs)]
		for x, v := range ds[name] {
			if v <= 0 {
				continue
			}
			r := int(math.Round(v / maxVal * float64(height-1)))
			if r > height-1 {
				r = height - 1
			}
			grid[height-1-r][x] = g
		}
	}
	format := c.Format
	if format == nil {
		format = SIBytes
	}
	for r, rowBytes := range grid {
		val := maxVal * float64(height-1-r) / float64(height-1)
		sb.WriteString(fmt.Sprintf("%10s |%s|\n", format(val), rowBytes))
	}
	// X-axis labels: first, middle, last.
	if len(labels) > 0 {
		first := labels[0]
		mid := labels[len(labels)/2]
		last := labels[len(labels)-1]
		axis := fmt.Sprintf("%10s  %-*s", "", width, "")
		_ = axis
		sb.WriteString(fmt.Sprintf("%10s  %s%s%s\n", "",
			pad(first, width/3), pad(mid, width/3), last))
	}
	for si, name := range order {
		sb.WriteString(fmt.Sprintf("%10s  [%c] %s\n", "", glyphs[si%len(glyphs)], name))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SIBytes formats a byte count with binary SI suffixes.
func SIBytes(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1<<40:
		return fmt.Sprintf("%.1fTB", v/(1<<40))
	case abs >= 1<<30:
		return fmt.Sprintf("%.1fGB", v/(1<<30))
	case abs >= 1<<20:
		return fmt.Sprintf("%.1fMB", v/(1<<20))
	case abs >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// BoxRow renders one box-and-whisker line on a log scale between lo and hi:
// percentile markers for P1, Q1, median, Q3, P95.
func BoxRow(label string, p1, q1, med, q3, p95, lo, hi float64, width int) string {
	if width <= 10 {
		width = 40
	}
	pos := func(v float64) int {
		if v <= lo {
			return 0
		}
		if v >= hi {
			return width - 1
		}
		return int(math.Log(v/lo) / math.Log(hi/lo) * float64(width-1))
	}
	row := []byte(strings.Repeat(" ", width))
	for i := pos(q1); i <= pos(q3) && i < width; i++ {
		row[i] = '='
	}
	set := func(v float64, ch byte) {
		p := pos(v)
		if p >= 0 && p < width {
			row[p] = ch
		}
	}
	set(p1, '|')
	set(p95, '|')
	set(med, 'M')
	return fmt.Sprintf("%-28s [%s]", label, row)
}
