package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "day",
		[]string{"2020-02-01", "2020-02-02"},
		map[string][]float64{"a": {1, 2}, "b": {3.5, 4.5}},
		[]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "day,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "2020-02-01,1,3.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteCSVLengthMismatch(t *testing.T) {
	err := WriteCSV(&bytes.Buffer{}, "day",
		[]string{"a", "b"},
		map[string][]float64{"x": {1}},
		[]string{"x"})
	if err == nil {
		t.Error("mismatched column accepted")
	}
}

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{Title: "test chart", Height: 6, Width: 30}
	series := map[string][]float64{
		"up":   make([]float64, 100),
		"down": make([]float64, 100),
	}
	for i := 0; i < 100; i++ {
		series["up"][i] = float64(i)
		series["down"][i] = float64(100 - i)
	}
	labels := make([]string, 100)
	for i := range labels {
		labels[i] = "L"
	}
	if err := c.Render(&buf, labels, series, []string{"up", "down"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "[*] up") || !strings.Contains(out, "[o] down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.ContainsAny(out, "*o") {
		t.Error("no data glyphs plotted")
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{Title: "empty"}).Render(&buf, nil, map[string][]float64{}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart = %q", buf.String())
	}
}

func TestSIBytes(t *testing.T) {
	cases := map[float64]string{
		0:       "0B",
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
		2 << 40: "2.0TB",
	}
	for v, want := range cases {
		if got := SIBytes(v); got != want {
			t.Errorf("SIBytes(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestBoxRow(t *testing.T) {
	row := BoxRow("label", 0.01, 0.1, 1, 10, 100, 0.001, 1000, 60)
	if !strings.Contains(row, "label") {
		t.Error("missing label")
	}
	if !strings.Contains(row, "M") {
		t.Error("missing median marker")
	}
	if !strings.Contains(row, "=") {
		t.Error("missing IQR box")
	}
	if strings.Count(row, "|") < 2 {
		t.Error("missing whiskers")
	}
	// Median position should be mid-scale (log center of 0.001..1000 is 1).
	idx := strings.IndexByte(row, 'M')
	open := strings.IndexByte(row, '[')
	rel := float64(idx-open-1) / 60
	if rel < 0.4 || rel > 0.6 {
		t.Errorf("median at relative position %.2f, want ≈0.5", rel)
	}
}

func TestBoxRowClamping(t *testing.T) {
	// Values outside [lo, hi] clamp to the edges without panicking.
	row := BoxRow("x", 1e-9, 1e-6, 1, 1e6, 1e9, 0.001, 1000, 40)
	if len(row) == 0 {
		t.Error("empty row")
	}
}
