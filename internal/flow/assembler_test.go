package flow

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
)

var (
	client = netip.MustParseAddr("10.9.8.7")
	server = netip.MustParseAddr("151.101.1.140")
	t0     = time.Date(2020, time.February, 3, 10, 0, 0, 0, time.UTC)
)

func pkt(at time.Duration, src, dst netip.Addr, sp, dp uint16, proto Proto, payload int, flags uint8) PacketInfo {
	return PacketInfo{
		Time: t0.Add(at), Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
		Proto: proto, Payload: payload, TCPFlags: flags,
	}
}

func collect() (*[]Record, func(Record)) {
	out := &[]Record{}
	return out, func(r Record) { *out = append(*out, r) }
}

func TestSimpleTCPConnection(t *testing.T) {
	out, emit := collect()
	a := NewAssembler(Config{}, emit)

	mustAdd := func(p PacketInfo) {
		t.Helper()
		if err := a.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(pkt(0, client, server, 50000, 443, ProtoTCP, 0, packet.FlagSYN))
	mustAdd(pkt(10*time.Millisecond, server, client, 443, 50000, ProtoTCP, 0, packet.FlagSYN|packet.FlagACK))
	mustAdd(pkt(20*time.Millisecond, client, server, 50000, 443, ProtoTCP, 500, packet.FlagACK))
	mustAdd(pkt(30*time.Millisecond, server, client, 443, 50000, ProtoTCP, 4000, packet.FlagACK))
	mustAdd(pkt(40*time.Millisecond, client, server, 50000, 443, ProtoTCP, 0, packet.FlagFIN|packet.FlagACK))
	mustAdd(pkt(50*time.Millisecond, server, client, 443, 50000, ProtoTCP, 0, packet.FlagFIN|packet.FlagACK))
	a.Flush()

	if len(*out) != 1 {
		t.Fatalf("emitted %d records, want 1", len(*out))
	}
	r := (*out)[0]
	if r.OrigAddr != client || r.RespAddr != server || r.OrigPort != 50000 || r.RespPort != 443 {
		t.Errorf("orientation wrong: %v", r)
	}
	if r.OrigBytes != 500 || r.RespBytes != 4000 {
		t.Errorf("bytes = %d/%d, want 500/4000", r.OrigBytes, r.RespBytes)
	}
	if r.OrigPkts != 3 || r.RespPkts != 3 {
		t.Errorf("pkts = %d/%d, want 3/3", r.OrigPkts, r.RespPkts)
	}
	if r.Duration != 50*time.Millisecond {
		t.Errorf("duration = %v", r.Duration)
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOrientationByLocalNet(t *testing.T) {
	// First observed packet is server→client (capture started mid-flow),
	// but LocalNets orients the record correctly.
	out, emit := collect()
	a := NewAssembler(Config{LocalNets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}, emit)
	a.Add(pkt(0, server, client, 443, 50001, ProtoTCP, 1400, packet.FlagACK))
	a.Add(pkt(time.Millisecond, client, server, 50001, 443, ProtoTCP, 100, packet.FlagACK))
	a.Flush()
	if len(*out) != 1 {
		t.Fatalf("emitted %d records", len(*out))
	}
	r := (*out)[0]
	if r.OrigAddr != client {
		t.Errorf("originator = %v, want campus client %v", r.OrigAddr, client)
	}
	if r.OrigBytes != 100 || r.RespBytes != 1400 {
		t.Errorf("bytes = %d/%d", r.OrigBytes, r.RespBytes)
	}
}

func TestFINCloseEmitsAfterLinger(t *testing.T) {
	out, emit := collect()
	a := NewAssembler(Config{CloseLinger: 2 * time.Second}, emit)
	a.Add(pkt(0, client, server, 50002, 80, ProtoTCP, 10, packet.FlagSYN))
	a.Add(pkt(time.Second, client, server, 50002, 80, ProtoTCP, 0, packet.FlagFIN))
	if len(*out) != 0 {
		t.Fatal("emitted before linger expired")
	}
	// A later packet on another connection advances the clock past linger.
	a.Add(pkt(10*time.Second, client, server, 50003, 80, ProtoTCP, 1, 0))
	if len(*out) != 1 {
		t.Fatalf("emitted %d records after linger, want 1", len(*out))
	}
	if (*out)[0].RespPort != 80 || (*out)[0].OrigPort != 50002 {
		t.Errorf("wrong flow emitted: %v", (*out)[0])
	}
}

func TestUDPIdleTimeout(t *testing.T) {
	out, emit := collect()
	a := NewAssembler(Config{UDPIdleTimeout: 30 * time.Second}, emit)
	a.Add(pkt(0, client, server, 5000, 53, ProtoUDP, 60, 0))
	a.Add(pkt(5*time.Millisecond, server, client, 53, 5000, ProtoUDP, 300, 0))
	a.Add(pkt(time.Minute, client, server, 5001, 53, ProtoUDP, 60, 0))
	if len(*out) != 1 {
		t.Fatalf("emitted %d records, want 1 (idle eviction)", len(*out))
	}
	r := (*out)[0]
	if r.Proto != ProtoUDP || r.OrigBytes != 60 || r.RespBytes != 300 {
		t.Errorf("record = %v", r)
	}
}

func TestConcurrentConnectionsIndependent(t *testing.T) {
	out, emit := collect()
	a := NewAssembler(Config{}, emit)
	const n = 100
	for i := 0; i < n; i++ {
		a.Add(pkt(time.Duration(i)*time.Millisecond, client, server, uint16(40000+i), 443, ProtoTCP, i, packet.FlagACK))
	}
	for i := 0; i < n; i++ {
		a.Add(pkt(time.Second+time.Duration(i)*time.Millisecond, server, client, 443, uint16(40000+i), ProtoTCP, 2*i, packet.FlagACK))
	}
	a.Flush()
	if len(*out) != n {
		t.Fatalf("emitted %d records, want %d", len(*out), n)
	}
	seen := map[uint16]Record{}
	for _, r := range *out {
		seen[r.OrigPort] = r
	}
	for i := 0; i < n; i++ {
		r, ok := seen[uint16(40000+i)]
		if !ok {
			t.Fatalf("missing flow for port %d", 40000+i)
		}
		if r.OrigBytes != int64(i) || r.RespBytes != int64(2*i) {
			t.Errorf("port %d: bytes %d/%d, want %d/%d", 40000+i, r.OrigBytes, r.RespBytes, i, 2*i)
		}
	}
}

func TestFlushDeterministicOrder(t *testing.T) {
	run := func() []Record {
		out, emit := collect()
		a := NewAssembler(Config{}, emit)
		rng := rand.New(rand.NewSource(4))
		ports := rng.Perm(50)
		for i, p := range ports {
			a.Add(pkt(time.Duration(i)*time.Microsecond, client, server, uint16(41000+p), 443, ProtoTCP, 1, 0))
		}
		a.Flush()
		return *out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].OrigPort != b[i].OrigPort {
			t.Fatalf("flush order differs at %d: %d vs %d", i, a[i].OrigPort, b[i].OrigPort)
		}
	}
}

func TestByteConservationProperty(t *testing.T) {
	// Total payload fed in equals total bytes across emitted records,
	// regardless of how packets interleave across connections.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		out, emit := collect()
		a := NewAssembler(Config{}, emit)
		var want int64
		now := time.Duration(0)
		for i := 0; i < 500; i++ {
			now += time.Duration(rng.Intn(2000)) * time.Millisecond
			port := uint16(42000 + rng.Intn(20))
			payload := rng.Intn(1500)
			want += int64(payload)
			if rng.Intn(2) == 0 {
				a.Add(pkt(now, client, server, port, 443, ProtoTCP, payload, packet.FlagACK))
			} else {
				a.Add(pkt(now, server, client, 443, port, ProtoTCP, payload, packet.FlagACK))
			}
		}
		a.Flush()
		var got int64
		for _, r := range *out {
			got += r.TotalBytes()
			if err := r.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		if got != want {
			t.Fatalf("trial %d: %d bytes emitted, %d fed", trial, got, want)
		}
		if a.Pending() != 0 {
			t.Fatalf("pending connections after flush: %d", a.Pending())
		}
	}
}

func TestInfoFromPacket(t *testing.T) {
	frame, err := packet.Serialize([]byte("0123456789"),
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{Src: client, Dst: server, Protocol: packet.ProtoTCP},
		&packet.TCP{SrcPort: 55555, DstPort: 443, Flags: packet.FlagPSH | packet.FlagACK},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(frame, true)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := InfoFromPacket(t0, p)
	if !ok {
		t.Fatal("no transport info extracted")
	}
	if info.Src != client || info.Dst != server || info.SrcPort != 55555 || info.DstPort != 443 {
		t.Errorf("info = %+v", info)
	}
	if info.Payload != 10 || info.Proto != ProtoTCP || info.TCPFlags&packet.FlagPSH == 0 {
		t.Errorf("info = %+v", info)
	}

	// Non-IP frame yields ok=false.
	arp, _ := packet.Serialize([]byte{0, 1}, &packet.Ethernet{EtherType: packet.EtherTypeARP})
	p2, err := packet.Decode(arp, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := InfoFromPacket(t0, p2); ok {
		t.Error("ARP frame produced transport info")
	}
}

func TestRecordValidate(t *testing.T) {
	good := Record{
		Start: t0, OrigAddr: client, RespAddr: server,
		OrigPort: 1, RespPort: 2, Proto: ProtoTCP,
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.Duration = -time.Second
	if bad.Validate() == nil {
		t.Error("negative duration accepted")
	}
	bad = good
	bad.OrigBytes = -1
	if bad.Validate() == nil {
		t.Error("negative bytes accepted")
	}
	bad = good
	bad.Proto = 99
	if bad.Validate() == nil {
		t.Error("bogus proto accepted")
	}
	bad = good
	bad.OrigAddr = netip.Addr{}
	if bad.Validate() == nil {
		t.Error("zero address accepted")
	}
}

func TestProtoParse(t *testing.T) {
	for _, p := range []Proto{ProtoTCP, ProtoUDP} {
		got, err := ParseProto(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseProto("icmp"); err == nil {
		t.Error("icmp accepted")
	}
}

func BenchmarkAssemblerAdd(b *testing.B) {
	a := NewAssembler(Config{}, func(Record) {})
	base := t0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(PacketInfo{
			Time: base.Add(time.Duration(i) * time.Microsecond),
			Src:  client, Dst: server,
			SrcPort: uint16(40000 + i%1000), DstPort: 443,
			Proto: ProtoTCP, Payload: 1200, TCPFlags: packet.FlagACK,
		})
	}
}
