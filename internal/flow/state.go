package flow

import "repro/internal/packet"

// ConnState summarizes how a TCP connection progressed, following Zeek's
// conn_state vocabulary (the subset a unidirectionally-complete tap can
// distinguish).
type ConnState uint8

// Connection states.
const (
	// StateOther is the default for UDP and indeterminate TCP histories.
	StateOther ConnState = iota
	// StateS0: connection attempt seen, no reply.
	StateS0
	// StateS1: connection established, not terminated while tracked.
	StateS1
	// StateSF: normal establishment and termination.
	StateSF
	// StateREJ: connection attempt rejected (SYN answered by RST).
	StateREJ
	// StateRSTO: established, then aborted by the originator.
	StateRSTO
	// StateRSTR: established, then aborted by the responder.
	StateRSTR
)

// String returns the Zeek-style state code.
func (s ConnState) String() string {
	switch s {
	case StateS0:
		return "S0"
	case StateS1:
		return "S1"
	case StateSF:
		return "SF"
	case StateREJ:
		return "REJ"
	case StateRSTO:
		return "RSTO"
	case StateRSTR:
		return "RSTR"
	default:
		return "OTH"
	}
}

// ParseConnState parses a Zeek-style state code ("SF", "S0", ...).
func ParseConnState(s string) ConnState {
	switch s {
	case "S0":
		return StateS0
	case "S1":
		return StateS1
	case "SF":
		return StateSF
	case "REJ":
		return StateREJ
	case "RSTO":
		return StateRSTO
	case "RSTR":
		return StateRSTR
	default:
		return StateOther
	}
}

// stateTracker accumulates the flag history needed to derive a ConnState.
type stateTracker struct {
	synOrig  bool
	synAck   bool
	finOrig  bool
	finResp  bool
	rstOrig  bool
	rstResp  bool
	dataResp bool
}

// observe folds one TCP packet's flags into the history.
func (st *stateTracker) observe(fromOrig bool, flags uint8, payload int) {
	syn := flags&packet.FlagSYN != 0
	fin := flags&packet.FlagFIN != 0
	rst := flags&packet.FlagRST != 0
	ack := flags&packet.FlagACK != 0
	if fromOrig {
		if syn {
			st.synOrig = true
		}
		if fin {
			st.finOrig = true
		}
		if rst {
			st.rstOrig = true
		}
	} else {
		if syn && ack {
			st.synAck = true
		}
		if fin {
			st.finResp = true
		}
		if rst {
			st.rstResp = true
		}
		if payload > 0 {
			st.dataResp = true
		}
	}
}

// state derives the final ConnState.
func (st *stateTracker) state() ConnState {
	established := st.synAck || st.dataResp
	switch {
	case st.synOrig && st.rstResp && !established:
		return StateREJ
	case established && st.rstOrig:
		return StateRSTO
	case established && st.rstResp:
		return StateRSTR
	case established && st.finOrig && st.finResp:
		return StateSF
	case st.synOrig && !established && !st.rstResp:
		return StateS0
	case established:
		return StateS1
	default:
		return StateOther
	}
}

// DetectService guesses the application protocol of a flow from its
// responder port and (when available) the first payload bytes — the role
// Zeek's protocol analyzers play for the conn.log service column.
func DetectService(respPort uint16, proto Proto, firstPayload []byte) string {
	// Payload evidence beats port numbers.
	if len(firstPayload) >= 3 {
		// TLS record: handshake (0x16) with version 0x03 0x0X.
		if firstPayload[0] == 0x16 && firstPayload[1] == 0x03 && firstPayload[2] <= 0x04 {
			return "tls"
		}
		if isHTTPVerb(firstPayload) {
			return "http"
		}
	}
	switch {
	case respPort == 53:
		return "dns"
	case respPort == 443 && proto == ProtoTCP:
		return "tls"
	case respPort == 443 && proto == ProtoUDP:
		return "quic"
	case respPort == 80:
		return "http"
	case respPort == 123 && proto == ProtoUDP:
		return "ntp"
	case respPort == 22:
		return "ssh"
	default:
		return ""
	}
}

var httpVerbs = [][]byte{
	[]byte("GET "), []byte("POST"), []byte("PUT "), []byte("HEAD"),
	[]byte("DELE"), []byte("OPTI"), []byte("PATC"), []byte("CONN"),
}

func isHTTPVerb(b []byte) bool {
	if len(b) < 4 {
		return false
	}
	for _, v := range httpVerbs {
		if b[0] == v[0] && b[1] == v[1] && b[2] == v[2] && b[3] == v[3] {
			return true
		}
	}
	return false
}
