// Package flow defines the bidirectional flow record that the entire
// pipeline operates on — the equivalent of a Zeek conn.log entry — and the
// assembler that builds such records from raw packets.
//
// A flow is one transport connection between an on-network client device
// (the originator) and a remote server (the responder): the 5-tuple, the
// start time and duration, and byte/packet counts in each direction. The
// campus measurement system extracts these with Zeek; internal/flow plays
// that role here.
package flow

import (
	"fmt"
	"net/netip"
	"time"
)

// Proto is the transport protocol of a flow.
type Proto uint8

// Transport protocols distinguished by the pipeline.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String returns the Zeek-style lowercase protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// ParseProto parses the Zeek-style protocol name.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp":
		return ProtoTCP, nil
	case "udp":
		return ProtoUDP, nil
	default:
		return 0, fmt.Errorf("flow: unknown protocol %q", s)
	}
}

// Record is one bidirectional flow, oriented so that Orig is the campus
// device that initiated the connection and Resp is the remote endpoint.
type Record struct {
	Start    time.Time
	Duration time.Duration

	OrigAddr netip.Addr
	OrigPort uint16
	RespAddr netip.Addr
	RespPort uint16
	Proto    Proto

	OrigBytes int64 // application bytes device → server
	RespBytes int64 // application bytes server → device
	OrigPkts  int64
	RespPkts  int64

	// Service is an optional application-layer hint populated by protocol
	// detection ("http", "tls", "dns", ...). Empty when unknown.
	Service string
	// State summarizes the connection's TCP history (Zeek conn_state).
	State ConnState
}

// TotalBytes returns the two-directional application byte count.
func (r Record) TotalBytes() int64 { return r.OrigBytes + r.RespBytes }

// End returns the time the flow's last packet was observed.
func (r Record) End() time.Time { return r.Start.Add(r.Duration) }

// Validate reports structural problems that would corrupt downstream
// accounting: invalid addresses, negative counters, or a negative duration.
func (r Record) Validate() error {
	if !r.OrigAddr.IsValid() || !r.RespAddr.IsValid() {
		return fmt.Errorf("flow: invalid address in record %v", r)
	}
	if r.Duration < 0 {
		return fmt.Errorf("flow: negative duration %v", r.Duration)
	}
	if r.OrigBytes < 0 || r.RespBytes < 0 || r.OrigPkts < 0 || r.RespPkts < 0 {
		return fmt.Errorf("flow: negative counter in record")
	}
	if r.Proto != ProtoTCP && r.Proto != ProtoUDP {
		return fmt.Errorf("flow: unsupported protocol %d", r.Proto)
	}
	return nil
}

// String formats the record compactly for logs and debugging.
func (r Record) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d %s dur=%v orig=%dB resp=%dB",
		r.Start.Format(time.RFC3339), r.OrigAddr, r.OrigPort, r.RespAddr, r.RespPort,
		r.Proto, r.Duration, r.OrigBytes, r.RespBytes)
}
