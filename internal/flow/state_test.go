package flow

import (
	"testing"
	"time"

	"repro/internal/packet"
)

func TestConnStateStringsRoundTrip(t *testing.T) {
	for _, s := range []ConnState{StateOther, StateS0, StateS1, StateSF, StateREJ, StateRSTO, StateRSTR} {
		if ParseConnState(s.String()) != s {
			t.Errorf("round trip failed for %v", s)
		}
	}
	if ParseConnState("garbage") != StateOther {
		t.Error("garbage did not parse to OTH")
	}
}

// driveTCP runs a flag sequence through the assembler and returns the
// emitted record.
func driveTCP(t *testing.T, seq []struct {
	fromOrig bool
	flags    uint8
	payload  int
}) Record {
	t.Helper()
	var out []Record
	a := NewAssembler(Config{}, func(r Record) { out = append(out, r) })
	for i, s := range seq {
		info := pkt(time.Duration(i)*10*time.Millisecond, client, server, 51000, 443, ProtoTCP, s.payload, s.flags)
		if !s.fromOrig {
			info = pkt(time.Duration(i)*10*time.Millisecond, server, client, 443, 51000, ProtoTCP, s.payload, s.flags)
		}
		if err := a.Add(info); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	if len(out) != 1 {
		t.Fatalf("emitted %d records", len(out))
	}
	return out[0]
}

func TestConnStateDerivation(t *testing.T) {
	type step = struct {
		fromOrig bool
		flags    uint8
		payload  int
	}
	cases := []struct {
		name string
		seq  []step
		want ConnState
	}{
		{"normal close", []step{
			{true, packet.FlagSYN, 0},
			{false, packet.FlagSYN | packet.FlagACK, 0},
			{true, packet.FlagACK | packet.FlagPSH, 100},
			{false, packet.FlagACK | packet.FlagPSH, 4000},
			{true, packet.FlagFIN | packet.FlagACK, 0},
			{false, packet.FlagFIN | packet.FlagACK, 0},
		}, StateSF},
		{"unanswered SYN", []step{
			{true, packet.FlagSYN, 0},
			{true, packet.FlagSYN, 0},
		}, StateS0},
		{"rejected", []step{
			{true, packet.FlagSYN, 0},
			{false, packet.FlagRST | packet.FlagACK, 0},
		}, StateREJ},
		{"client abort", []step{
			{true, packet.FlagSYN, 0},
			{false, packet.FlagSYN | packet.FlagACK, 0},
			{true, packet.FlagACK, 0},
			{true, packet.FlagRST, 0},
		}, StateRSTO},
		{"server abort", []step{
			{true, packet.FlagSYN, 0},
			{false, packet.FlagSYN | packet.FlagACK, 0},
			{false, packet.FlagRST, 0},
		}, StateRSTR},
		{"established still open", []step{
			{true, packet.FlagSYN, 0},
			{false, packet.FlagSYN | packet.FlagACK, 0},
			{true, packet.FlagACK, 50},
		}, StateS1},
	}
	for _, c := range cases {
		if got := driveTCP(t, c.seq).State; got != c.want {
			t.Errorf("%s: state = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUDPStateIsOther(t *testing.T) {
	var out []Record
	a := NewAssembler(Config{}, func(r Record) { out = append(out, r) })
	a.Add(pkt(0, client, server, 5000, 53, ProtoUDP, 60, 0))
	a.Flush()
	if out[0].State != StateOther {
		t.Errorf("udp state = %v", out[0].State)
	}
}

func TestDetectService(t *testing.T) {
	cases := []struct {
		port    uint16
		proto   Proto
		payload string
		want    string
	}{
		{443, ProtoTCP, "\x16\x03\x01\x02\x00\x01\x00\x01", "tls"},
		{8443, ProtoTCP, "\x16\x03\x03abc", "tls"}, // payload beats odd port
		{80, ProtoTCP, "GET / HT", "http"},
		{8080, ProtoTCP, "POST /ap", "http"},
		{443, ProtoTCP, "", "tls"},  // port fallback
		{443, ProtoUDP, "", "quic"}, // QUIC on UDP/443
		{53, ProtoUDP, "", "dns"},
		{123, ProtoUDP, "", "ntp"},
		{22, ProtoTCP, "", "ssh"},
		{9999, ProtoTCP, "binary??", ""},
	}
	for _, c := range cases {
		if got := DetectService(c.port, c.proto, []byte(c.payload)); got != c.want {
			t.Errorf("DetectService(%d, %v, %q) = %q, want %q", c.port, c.proto, c.payload, got, c.want)
		}
	}
}

func TestAssemblerDetectsServiceFromPayload(t *testing.T) {
	var out []Record
	a := NewAssembler(Config{}, func(r Record) { out = append(out, r) })
	info := pkt(0, client, server, 52000, 8080, ProtoTCP, 15, packet.FlagACK|packet.FlagPSH)
	info.Head = []byte("GET /index")
	a.Add(info)
	a.Flush()
	if out[0].Service != "http" {
		t.Errorf("service = %q, want http", out[0].Service)
	}
}
