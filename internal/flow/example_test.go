package flow_test

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/flow"
	"repro/internal/packet"
)

// ExampleAssembler shows the Zeek role: packets in, one bidirectional flow
// record out, oriented so the campus device is the originator.
func ExampleAssembler() {
	asm := flow.NewAssembler(flow.Config{
		LocalNets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
	}, func(r flow.Record) {
		fmt.Printf("%v:%d -> %v:%d %s %s orig=%dB resp=%dB\n",
			r.OrigAddr, r.OrigPort, r.RespAddr, r.RespPort, r.Proto, r.State, r.OrigBytes, r.RespBytes)
	})

	t0 := time.Date(2020, time.February, 3, 9, 0, 0, 0, time.UTC)
	client := netip.MustParseAddr("10.1.2.3")
	server := netip.MustParseAddr("23.0.7.9")
	add := func(dt time.Duration, src, dst netip.Addr, sp, dp uint16, flags uint8, n int) {
		asm.Add(flow.PacketInfo{
			Time: t0.Add(dt), Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
			Proto: flow.ProtoTCP, TCPFlags: flags, Payload: n,
		})
	}
	add(0, client, server, 50000, 443, packet.FlagSYN, 0)
	add(10*time.Millisecond, server, client, 443, 50000, packet.FlagSYN|packet.FlagACK, 0)
	add(20*time.Millisecond, client, server, 50000, 443, packet.FlagACK|packet.FlagPSH, 300)
	add(40*time.Millisecond, server, client, 443, 50000, packet.FlagACK|packet.FlagPSH, 5000)
	add(60*time.Millisecond, client, server, 50000, 443, packet.FlagFIN|packet.FlagACK, 0)
	add(70*time.Millisecond, server, client, 443, 50000, packet.FlagFIN|packet.FlagACK, 0)
	asm.Flush()
	// Output: 10.1.2.3:50000 -> 23.0.7.9:443 tcp SF orig=300B resp=5000B
}
