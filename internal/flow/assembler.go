package flow

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/packet"
)

// PacketInfo is the distilled view of one captured packet that the
// assembler needs: when it was seen, its transport 5-tuple, and how many
// application payload bytes it carried.
type PacketInfo struct {
	Time     time.Time
	Src      netip.Addr
	Dst      netip.Addr
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	Payload  int   // application payload bytes
	TCPFlags uint8 // valid for TCP only
	// Head holds the first few payload bytes (service detection). May be
	// nil; only valid until the next packet is decoded.
	Head []byte
}

// InfoFromPacket extracts PacketInfo from a decoded frame. It returns
// ok=false for frames that carry no TCP or UDP transport layer (ARP,
// ICMP-only, non-first fragments, ...), which the tap ignores.
func InfoFromPacket(ts time.Time, p *packet.Packet) (PacketInfo, bool) {
	info := PacketInfo{Time: ts}
	switch ip := p.Layer(packet.LayerTypeIPv4).(type) {
	case *packet.IPv4:
		info.Src, info.Dst = ip.Src, ip.Dst
	default:
		ip6, ok := p.Layer(packet.LayerTypeIPv6).(*packet.IPv6)
		if !ok {
			return PacketInfo{}, false
		}
		info.Src, info.Dst = ip6.Src, ip6.Dst
	}
	switch tl := p.Layer(packet.LayerTypeTCP).(type) {
	case *packet.TCP:
		info.Proto = ProtoTCP
		info.SrcPort, info.DstPort = tl.SrcPort, tl.DstPort
		info.TCPFlags = tl.Flags
		payload := tl.LayerPayload()
		info.Payload = len(payload)
		info.Head = head(payload)
	default:
		udp, ok := p.Layer(packet.LayerTypeUDP).(*packet.UDP)
		if !ok {
			return PacketInfo{}, false
		}
		info.Proto = ProtoUDP
		info.SrcPort, info.DstPort = udp.SrcPort, udp.DstPort
		payload := udp.LayerPayload()
		info.Payload = len(payload)
		info.Head = head(payload)
	}
	return info, true
}

func head(payload []byte) []byte {
	if len(payload) > 8 {
		return payload[:8]
	}
	return payload
}

// connKey canonically identifies a connection regardless of direction.
type connKey struct {
	loAddr netip.Addr
	hiAddr netip.Addr
	loPort uint16
	hiPort uint16
	proto  Proto
}

// keyFor builds the canonical key and reports whether (src,srcPort) sorts
// as the "lo" endpoint.
func keyFor(info PacketInfo) (connKey, bool) {
	srcFirst := info.Src.Compare(info.Dst) < 0 ||
		(info.Src.Compare(info.Dst) == 0 && info.SrcPort <= info.DstPort)
	if srcFirst {
		return connKey{info.Src, info.Dst, info.SrcPort, info.DstPort, info.Proto}, true
	}
	return connKey{info.Dst, info.Src, info.DstPort, info.SrcPort, info.Proto}, false
}

type connState struct {
	rec       Record
	lastSeen  time.Time
	origIsLo  bool // the flow originator is the key's "lo" endpoint
	sawFINRST bool
	tracker   stateTracker
}

// finalize stamps the derived connection state onto the record.
func (st *connState) finalize() Record {
	r := st.rec
	if r.Proto == ProtoTCP {
		r.State = st.tracker.state()
	}
	return r
}

// Config tunes assembler behavior. The zero value is usable; unset fields
// take the defaults below.
type Config struct {
	// TCPIdleTimeout evicts TCP connections with no traffic for this long
	// (default 5m, matching Zeek's tcp_inactivity_timeout).
	TCPIdleTimeout time.Duration
	// UDPIdleTimeout evicts idle UDP "connections" (default 1m).
	UDPIdleTimeout time.Duration
	// CloseLinger keeps a FIN/RST-terminated TCP connection around this
	// long to absorb retransmissions before emitting (default 5s).
	CloseLinger time.Duration
	// LocalNets identifies on-campus client networks; the endpoint inside
	// one of these prefixes is recorded as the flow originator. When
	// empty, the sender of the first observed packet is the originator.
	LocalNets []netip.Prefix
}

func (c *Config) defaults() {
	if c.TCPIdleTimeout == 0 {
		c.TCPIdleTimeout = 5 * time.Minute
	}
	if c.UDPIdleTimeout == 0 {
		c.UDPIdleTimeout = time.Minute
	}
	if c.CloseLinger == 0 {
		c.CloseLinger = 5 * time.Second
	}
}

// Assembler aggregates packets into bidirectional flow records, emitting a
// record when its connection ends (TCP FIN/RST plus linger) or idles out.
// Packets must be fed in non-decreasing time order; the assembler is not
// safe for concurrent use.
type Assembler struct {
	cfg    Config
	conns  map[connKey]*connState
	emit   func(Record)
	clock  time.Time
	sweepT time.Time
}

// NewAssembler returns an assembler that calls emit for each completed
// flow. Emission order follows completion, not flow start.
func NewAssembler(cfg Config, emit func(Record)) *Assembler {
	cfg.defaults()
	return &Assembler{cfg: cfg, conns: make(map[connKey]*connState), emit: emit}
}

func (a *Assembler) isLocal(addr netip.Addr) bool {
	for _, p := range a.cfg.LocalNets {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// Add accounts one packet. Out-of-order timestamps (earlier than the
// assembler's clock) are tolerated but clamped for timeout purposes.
func (a *Assembler) Add(info PacketInfo) error {
	if info.Proto != ProtoTCP && info.Proto != ProtoUDP {
		return fmt.Errorf("flow: unsupported protocol %d", info.Proto)
	}
	if info.Time.After(a.clock) {
		a.clock = info.Time
	}
	key, srcIsLo := keyFor(info)
	st, ok := a.conns[key]
	if !ok {
		origIsLo := srcIsLo
		if len(a.cfg.LocalNets) > 0 {
			// Prefer explicit local-network orientation when configured.
			switch {
			case a.isLocal(info.Src) && !a.isLocal(info.Dst):
				origIsLo = srcIsLo
			case a.isLocal(info.Dst) && !a.isLocal(info.Src):
				origIsLo = !srcIsLo
			}
		}
		st = &connState{origIsLo: origIsLo}
		st.rec.Start = info.Time
		st.rec.Proto = info.Proto
		if origIsLo == srcIsLo {
			st.rec.OrigAddr, st.rec.OrigPort = info.Src, info.SrcPort
			st.rec.RespAddr, st.rec.RespPort = info.Dst, info.DstPort
		} else {
			st.rec.OrigAddr, st.rec.OrigPort = info.Dst, info.DstPort
			st.rec.RespAddr, st.rec.RespPort = info.Src, info.SrcPort
		}
		a.conns[key] = st
	}
	fromOrig := info.Src == st.rec.OrigAddr && info.SrcPort == st.rec.OrigPort
	if fromOrig {
		st.rec.OrigBytes += int64(info.Payload)
		st.rec.OrigPkts++
	} else {
		st.rec.RespBytes += int64(info.Payload)
		st.rec.RespPkts++
	}
	if info.Proto == ProtoTCP {
		st.tracker.observe(fromOrig, info.TCPFlags, info.Payload)
	}
	if st.rec.Service == "" && info.Payload > 0 {
		st.rec.Service = DetectService(st.rec.RespPort, st.rec.Proto, info.Head)
	}
	if info.Time.After(st.lastSeen) {
		st.lastSeen = info.Time
	}
	if d := st.lastSeen.Sub(st.rec.Start); d > st.rec.Duration {
		st.rec.Duration = d
	}
	if info.Proto == ProtoTCP && info.TCPFlags&(packet.FlagFIN|packet.FlagRST) != 0 {
		st.sawFINRST = true
	}
	a.maybeSweep()
	return nil
}

// maybeSweep runs an eviction pass at most once per second of stream time,
// amortizing the scan.
func (a *Assembler) maybeSweep() {
	if a.sweepT.IsZero() {
		a.sweepT = a.clock
		return
	}
	if a.clock.Sub(a.sweepT) < time.Second {
		return
	}
	a.sweepT = a.clock
	a.sweep()
}

func (a *Assembler) sweep() {
	for key, st := range a.conns {
		idle := a.clock.Sub(st.lastSeen)
		var done bool
		switch {
		case st.sawFINRST && idle >= a.cfg.CloseLinger:
			done = true
		case st.rec.Proto == ProtoTCP && idle >= a.cfg.TCPIdleTimeout:
			done = true
		case st.rec.Proto == ProtoUDP && idle >= a.cfg.UDPIdleTimeout:
			done = true
		}
		if done {
			a.emit(st.finalize())
			delete(a.conns, key)
		}
	}
}

// Pending returns the number of connections still being tracked.
func (a *Assembler) Pending() int { return len(a.conns) }

// Flush emits every tracked connection regardless of timeouts, in flow
// start order (ties broken by the 5-tuple) so output is deterministic. Use
// it at end of capture.
func (a *Assembler) Flush() {
	states := make([]*connState, 0, len(a.conns))
	for _, st := range a.conns {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool {
		if !states[i].rec.Start.Equal(states[j].rec.Start) {
			return states[i].rec.Start.Before(states[j].rec.Start)
		}
		ri, rj := states[i].rec, states[j].rec
		if c := ri.OrigAddr.Compare(rj.OrigAddr); c != 0 {
			return c < 0
		}
		if ri.OrigPort != rj.OrigPort {
			return ri.OrigPort < rj.OrigPort
		}
		if c := ri.RespAddr.Compare(rj.RespAddr); c != 0 {
			return c < 0
		}
		return ri.RespPort < rj.RespPort
	})
	for _, st := range states {
		a.emit(st.finalize())
	}
	a.conns = make(map[connKey]*connState)
}
