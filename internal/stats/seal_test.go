package stats

import (
	"fmt"
	"sync"
	"testing"
)

// fillHLL inserts n distinct items derived from tag.
func fillHLL(h *HyperLogLog, tag string, n int) {
	for i := 0; i < n; i++ {
		h.AddString(fmt.Sprintf("%s-%d", tag, i))
	}
}

func TestSealedMergeRefused(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(12)
	fillHLL(a, "a", 500)
	fillHLL(b, "b", 500)
	a.Seal()
	before := a.Estimate()
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge into sealed HLL succeeded; want error")
	}
	if got := a.Estimate(); got != before {
		t.Fatalf("sealed HLL mutated by refused Merge: estimate %v -> %v", before, got)
	}
}

func TestSealedAddAndResetPanic(t *testing.T) {
	h, _ := NewHyperLogLog(12)
	h.Seal()
	if !h.Sealed() {
		t.Fatal("Sealed() = false after Seal")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on sealed HLL did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Add", func() { h.AddString("x") })
	mustPanic("Reset", func() { h.Reset() })
}

func TestMergedCombinesWithoutMutating(t *testing.T) {
	a, _ := NewHyperLogLog(10)
	b, _ := NewHyperLogLog(10)
	u, _ := NewHyperLogLog(10)
	for i := 0; i < 2000; i++ {
		s := fmt.Sprintf("item-%d", i)
		if i%2 == 0 {
			a.AddString(s)
		} else {
			b.AddString(s)
		}
		u.AddString(s)
	}
	a.Seal()
	b.Seal()
	aBefore, bBefore := a.Estimate(), b.Estimate()
	m, err := a.Merged(b)
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	if m.Sealed() {
		t.Fatal("Merged result is sealed; want unsealed working copy")
	}
	if got, want := m.Estimate(), u.Estimate(); got != want {
		t.Fatalf("Merged estimate %v, union-built estimate %v", got, want)
	}
	if a.Estimate() != aBefore || b.Estimate() != bBefore {
		t.Fatal("Merged mutated an input estimator")
	}

	c, _ := NewHyperLogLog(11)
	if _, err := a.Merged(c); err == nil {
		t.Fatal("Merged across precisions succeeded; want error")
	}
}

// TestSealedSnapshotConcurrentReaders is the -race regression for the
// epoch-publication model: many readers estimate a sealed snapshot while
// another goroutine repeatedly folds it into fresh working copies via
// Merged. Before clone-on-merge, the equivalent fold (Merge with the
// snapshot as receiver) wrote the shared registers under the readers.
func TestSealedSnapshotConcurrentReaders(t *testing.T) {
	snap, _ := NewHyperLogLog(12)
	fillHLL(snap, "epoch", 5000)
	snap.Seal()
	want := snap.Estimate()

	other, _ := NewHyperLogLog(12)
	fillHLL(other, "next", 5000)

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := snap.Estimate(); got != want {
					t.Errorf("sealed snapshot estimate changed: %v -> %v", want, got)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := snap.Merged(other); err != nil {
				t.Errorf("Merged: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestHourMatrixCloneIsolation(t *testing.T) {
	m := NewHourMatrix()
	m.Add(1, 10, 5)
	m.Add(2, 20, 7)
	c := m.Clone()
	m.Add(1, 10, 100)
	m.Add(3, 30, 1)
	if c.Devices() != 2 {
		t.Fatalf("clone devices = %d, want 2", c.Devices())
	}
	if got := c.Totals()[10]; got != 5 {
		t.Fatalf("clone bucket 10 = %v after mutating original, want 5", got)
	}
	c.Add(2, 20, 50)
	if got := m.Totals()[20]; got != 7 {
		t.Fatalf("original bucket 20 = %v after mutating clone, want 7", got)
	}
}

func TestReservoirSnapshotIsolation(t *testing.T) {
	r := NewReservoir[int](4, 1)
	for i := 0; i < 4; i++ {
		r.Offer(i)
	}
	snap := r.Snapshot()
	for i := 100; i < 400; i++ {
		r.Offer(i)
	}
	for i, v := range snap {
		if v != i {
			t.Fatalf("snapshot[%d] = %d after later Offers, want %d", i, v, i)
		}
	}
}
