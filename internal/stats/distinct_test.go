package stats

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The distinct-site counting ablation from DESIGN.md: the pipeline counts
// distinct domains per device with exact bitmaps (possible because the
// domain universe is closed); HyperLogLog is the open-world alternative.
// These tests and benchmarks quantify the trade: HLL costs fixed memory per
// device regardless of universe size, at a bounded relative error.

// TestHLLvsExactOnDomainWorkload feeds both counters a realistic per-device
// domain stream (Zipf-ish popularity, ~160 distinct of 300) and compares.
func TestHLLvsExactOnDomainWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	zipf := rand.NewZipf(rng, 1.3, 1.0, 299)

	for trial := 0; trial < 10; trial++ {
		exact := map[uint64]bool{}
		hll, err := NewHyperLogLog(12) // 4 KiB per device
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			d := zipf.Uint64()
			exact[d] = true
			hll.AddString(fmt.Sprintf("domain-%d.example", d))
		}
		got := hll.Estimate()
		want := float64(len(exact))
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("trial %d: HLL %.0f vs exact %.0f (rel err %.3f)", trial, got, want, rel)
		}
	}
}

// TestDistinctGrowthRatioPreservedByHLL checks the §4.1 use case: the
// Feb→Apr/May distinct-site growth *ratio* survives HLL estimation.
func TestDistinctGrowthRatioPreservedByHLL(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	febZipf := rand.NewZipf(rng, 1.4, 1.0, 299)
	postZipf := rand.NewZipf(rng, 1.2, 1.0, 299) // broader browsing

	febExact, postExact := map[uint64]bool{}, map[uint64]bool{}
	febHLL, _ := NewHyperLogLog(12)
	postHLL, _ := NewHyperLogLog(12)
	for i := 0; i < 4000; i++ {
		d := febZipf.Uint64()
		febExact[d] = true
		febHLL.AddUint64(d)
	}
	for i := 0; i < 8000; i++ {
		d := postZipf.Uint64()
		postExact[d] = true
		postHLL.AddUint64(d)
	}
	exactRatio := float64(len(postExact)) / float64(len(febExact))
	hllRatio := postHLL.Estimate() / febHLL.Estimate()
	if math.Abs(hllRatio-exactRatio)/exactRatio > 0.12 {
		t.Errorf("growth ratio: exact %.3f vs HLL %.3f", exactRatio, hllRatio)
	}
}

func BenchmarkDistinctExact(b *testing.B) {
	domains := make([]string, 300)
	for i := range domains {
		domains[i] = fmt.Sprintf("domain-%d.example", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	set := map[string]bool{}
	for i := 0; i < b.N; i++ {
		set[domains[i%300]] = true
	}
}

func BenchmarkDistinctHLL(b *testing.B) {
	domains := make([]string, 300)
	for i := range domains {
		domains[i] = fmt.Sprintf("domain-%d.example", i)
	}
	hll, _ := NewHyperLogLog(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hll.AddString(domains[i%300])
	}
}
