package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleSummarize() {
	durations := []float64{0.5, 1.2, 0.8, 3.0, 0.9, 1.1, 14.0, 0.7}
	s := stats.Summarize(durations)
	fmt.Printf("n=%d median=%.2f q3=%.2f\n", s.N, s.Median, s.Q3)
	// Output: n=8 median=1.00 q3=1.65
}

func ExampleMovingAverage() {
	daily := []float64{10, 20, 30, 40, 50}
	fmt.Println(stats.MovingAverage(daily, 3))
	// Output: [10 15 20 30 40]
}

func ExampleHyperLogLog() {
	hll, _ := stats.NewHyperLogLog(14)
	for i := 0; i < 1000; i++ {
		hll.AddString(fmt.Sprintf("site-%d.example", i%250)) // 250 distinct
	}
	fmt.Printf("estimate within 5%%: %v\n", hll.Estimate() > 237 && hll.Estimate() < 263)
	// Output: estimate within 5%: true
}

func ExampleKSTwoSample() {
	domestic := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 6}
	international := []float64{4, 5, 5, 6, 6, 7, 7, 8, 9, 10}
	r := stats.KSTwoSample(domestic, international)
	fmt.Printf("D=%.2f different=%v\n", r.D, r.P < 0.05)
	// Output: D=0.70 different=true
}
