package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestHLLPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{0, 3, 19, 200} {
		if _, err := NewHyperLogLog(p); err == nil {
			t.Errorf("precision %d accepted", p)
		}
	}
	for _, p := range []uint8{4, 14, 18} {
		if _, err := NewHyperLogLog(p); err != nil {
			t.Errorf("precision %d rejected: %v", p, err)
		}
	}
}

func TestHLLAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(14)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 10, 100, 1000, 50000, 500000} {
		h.Reset()
		for i := 0; i < n; i++ {
			h.AddString(fmt.Sprintf("site-%d.example.com", i))
		}
		est := h.Estimate()
		if n == 0 {
			if est != 0 {
				t.Errorf("empty HLL estimate = %v", est)
			}
			continue
		}
		relErr := math.Abs(est-float64(n)) / float64(n)
		// p=14 has ~0.8% standard error; allow 5 sigma.
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", n, est, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h, _ := NewHyperLogLog(12)
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			h.AddUint64(uint64(i))
		}
	}
	est := h.Estimate()
	if math.Abs(est-500)/500 > 0.1 {
		t.Errorf("estimate after duplicate floods = %v, want ≈500", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(12)
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			a.AddUint64(uint64(i))
		} else {
			b.AddUint64(uint64(i))
		}
	}
	// Overlap: both see 2000 common extra items.
	for i := 10000; i < 12000; i++ {
		a.AddUint64(uint64(i))
		b.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := a.Estimate()
	if math.Abs(est-12000)/12000 > 0.06 {
		t.Errorf("merged estimate = %v, want ≈12000", est)
	}
}

func TestHLLMergePrecisionMismatch(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(13)
	if err := a.Merge(b); err == nil {
		t.Error("precision mismatch accepted")
	}
}

func TestHLLMergeEqualsUnionProperty(t *testing.T) {
	// Estimate(merge(A,B)) == Estimate(HLL fed A∪B) exactly, register by
	// register, because merge takes the max of registers.
	a, _ := NewHyperLogLog(10)
	b, _ := NewHyperLogLog(10)
	u, _ := NewHyperLogLog(10)
	for i := 0; i < 5000; i++ {
		v := uint64(i * 2654435761)
		switch i % 3 {
		case 0:
			a.AddUint64(v)
			u.AddUint64(v)
		case 1:
			b.AddUint64(v)
			u.AddUint64(v)
		default:
			a.AddUint64(v)
			b.AddUint64(v)
			u.AddUint64(v)
		}
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Errorf("merge estimate %v != union estimate %v", a.Estimate(), u.Estimate())
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h, _ := NewHyperLogLog(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AddUint64(uint64(i))
	}
}

func BenchmarkHLLAddString(b *testing.B) {
	h, _ := NewHyperLogLog(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AddString("www.example-service.com")
	}
}
