package stats

import "fmt"

// Partial is one day's (or one site's) mergeable stats aggregate: flat
// flow/byte counters, a distinct-device HyperLogLog, a mergeable flow-size
// sketch, and an optional hour-of-week matrix. Partials are the unit the
// incremental pipeline seals at each UTC day rollover and the unit a
// multi-vantage federation would ship between sites — merging N days and
// merging N sites is the same code path.
//
// Merge contract, field by field:
//
//   - Flows/Bytes: int64 addition — associative and commutative, exact.
//   - Devices: HyperLogLog register max via the existing Merged
//     clone-on-merge semantics — associative, commutative, idempotent;
//     inputs (which may be sealed snapshots) are never mutated.
//   - FlowSize: LogHist bucket addition — associative and commutative,
//     exact.
//   - Hours: float64 row addition. Float addition is commutative exactly
//     but associative only up to rounding, so callers that need
//     bit-for-bit reproducibility merge Hours in a fixed order; the
//     pipeline merges day partials in day order (and shard partials in
//     shard order), which pins the result.
//
// The zero-valued/nil-fielded Partial is the merge identity.
type Partial struct {
	// Flows and Bytes count attributed flows and their byte volume.
	Flows int64
	Bytes int64
	// Devices estimates the distinct devices seen (nil = none).
	Devices *HyperLogLog
	// FlowSize is the mergeable flow-size sketch (nil = none).
	FlowSize *LogHist
	// Hours is the optional per-device hour-of-week volume matrix
	// (nil = not tracked).
	Hours *HourMatrix
}

// NewPartial returns an empty partial with a device estimator at the
// given HLL precision and a flow-size sketch allocated.
func NewPartial(p uint8) (*Partial, error) {
	hll, err := NewHyperLogLog(p)
	if err != nil {
		return nil, err
	}
	return &Partial{Devices: hll, FlowSize: NewLogHist()}, nil
}

// Observe records one attributed flow for a device.
func (p *Partial) Observe(device uint64, bytes int64) {
	p.Flows++
	p.Bytes += bytes
	if p.Devices != nil {
		p.Devices.AddUint64(device)
	}
	if p.FlowSize != nil {
		p.FlowSize.Observe(bytes)
	}
}

// Merge folds other into p and returns the receiver. Counter and sketch
// fields merge exactly in any order; Hours merges in call order (see the
// type comment). Devices merges via HyperLogLog.Merged, so other — which
// may be a sealed published snapshot — is never mutated.
func (p *Partial) Merge(other *Partial) error {
	if other == nil {
		return nil
	}
	p.Flows += other.Flows
	p.Bytes += other.Bytes
	if other.Devices != nil {
		if p.Devices == nil {
			p.Devices = other.Devices.Clone()
		} else {
			m, err := p.Devices.Merged(other.Devices)
			if err != nil {
				return fmt.Errorf("stats: partial merge: %w", err)
			}
			p.Devices = m
		}
	}
	if other.FlowSize != nil {
		if p.FlowSize == nil {
			p.FlowSize = other.FlowSize.Clone()
		} else {
			p.FlowSize.Merge(other.FlowSize)
		}
	}
	if other.Hours != nil {
		if p.Hours == nil {
			p.Hours = other.Hours.Clone()
		} else {
			p.Hours.Merge(other.Hours)
		}
	}
	return nil
}

// MergePartials reduces parts left to right into a fresh Partial, never
// mutating any input — the Finalize([]Partial) reduction: feeding every
// event into one partial and merging per-day partials yield identical
// counters and sketches (and identical Hours when merged in day order).
func MergePartials(parts []*Partial) (*Partial, error) {
	out := &Partial{}
	for _, part := range parts {
		if err := out.Merge(part); err != nil {
			return nil, err
		}
	}
	return out, nil
}
