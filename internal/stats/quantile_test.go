package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnownValues(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.125, 1.5}, // interpolation between 1 and 2
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%.3f) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestQuantileSingle(t *testing.T) {
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile([7], %v) = %v", q, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	// Shuffle: Summarize must not require sorted input.
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })

	s := Summarize(vals)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Median-50.5) > 1e-9 {
		t.Errorf("median = %v", s.Median)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Q1-25.75) > 1e-9 || math.Abs(s.Q3-75.25) > 1e-9 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if s.P95 < s.Q3 || s.P99 < s.P95 || s.P1 > s.Q1 {
		t.Errorf("percentile ordering broken: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Median) || !math.IsNaN(s.Mean) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("input mutated")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			// Constrain to the magnitudes the pipeline produces (byte
			// counts, durations) — finite and far from overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		ordered := s.Min <= s.P1 && s.P1 <= s.Q1 && s.Q1 <= s.Median &&
			s.Median <= s.Q3 && s.Q3 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
		return ordered && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMedianMatchesSortDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if got := Median(vals); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: median %v, want %v", n, got, want)
		}
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty mean/median not NaN")
	}
}
