package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	r := KSTwoSample(a, a)
	if r.D != 0 {
		t.Errorf("D = %v for identical samples", r.D)
	}
	if r.P < 0.99 {
		t.Errorf("P = %v for identical samples", r.P)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	r := KSTwoSample(a, b)
	if r.D != 1 {
		t.Errorf("D = %v for disjoint samples, want 1", r.D)
	}
	if r.P > 1e-6 {
		t.Errorf("P = %v for disjoint samples", r.P)
	}
}

func TestKSEmpty(t *testing.T) {
	r := KSTwoSample(nil, []float64{1, 2})
	if r.D != 0 || r.P != 1 {
		t.Errorf("empty sample: %+v", r)
	}
}

func TestKSSameDistribution(t *testing.T) {
	// Samples from the same lognormal: the test should rarely reject.
	rejections := 0
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		a := make([]float64, 200)
		b := make([]float64, 200)
		for i := range a {
			a[i] = math.Exp(rng.NormFloat64())
		}
		for i := range b {
			b[i] = math.Exp(rng.NormFloat64())
		}
		if KSTwoSample(a, b).P < 0.05 {
			rejections++
		}
	}
	// Expected false-positive rate 5%; allow up to 7 of 50.
	if rejections > 7 {
		t.Errorf("rejected %d/50 same-distribution pairs", rejections)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	// A modest location shift must be detected at n=300.
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	r := KSTwoSample(a, b)
	if r.P > 0.01 {
		t.Errorf("shift undetected: %+v", r)
	}
}

func TestKSKnownValue(t *testing.T) {
	// Hand-computable case: a={1,2,3,4}, b={3,4,5,6}. The max CDF gap is
	// at x∈[2,3): F_a=0.5, F_b=0 → D=0.5.
	r := KSTwoSample([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if math.Abs(r.D-0.5) > 1e-12 {
		t.Errorf("D = %v, want 0.5", r.D)
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if kolmogorovQ(0) != 1 || kolmogorovQ(-1) != 1 {
		t.Error("Q(≤0) != 1")
	}
	if q := kolmogorovQ(10); q > 1e-12 {
		t.Errorf("Q(10) = %v", q)
	}
	// Known reference: Q(1.36) ≈ 0.049 (the classic 5% critical value).
	if q := kolmogorovQ(1.36); math.Abs(q-0.049) > 0.003 {
		t.Errorf("Q(1.36) = %v, want ≈0.049", q)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q > prev {
			t.Fatalf("Q not monotone at λ=%.1f", l)
		}
		prev = q
	}
}

func BenchmarkKSTwoSample(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()+0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSTwoSample(x, y)
	}
}
