package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the supremum distance between the two empirical CDFs.
	D float64
	// P is the asymptotic two-sided p-value (small P → the samples come
	// from different distributions).
	P  float64
	N1 int
	N2 int
}

// KSTwoSample runs the two-sample Kolmogorov–Smirnov test, the tool the
// reproduction uses to quantify the paper's claims that sub-populations
// behave differently (e.g. Figure 6's domestic vs international session
// distributions). Empty samples yield D=0, P=1.
//
// Determinism contract (audited for the incremental-stats refactor): the
// inputs are copied and sorted before use, so the result is independent
// of input order — samples assembled from merged per-day partials score
// identically to samples from a monolithic pass regardless of assembly
// order (TestKSTwoSampleOrderIndependent).
func KSTwoSample(a, b []float64) KSResult {
	r := KSResult{N1: len(a), N2: len(b), P: 1}
	if len(a) == 0 || len(b) == 0 {
		return r
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var i, j int
	var d float64
	for i < len(as) && j < len(bs) {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if diff > d {
			d = diff
		}
	}
	r.D = d

	// Asymptotic p-value with the Stephens small-sample correction.
	n := float64(len(as)) * float64(len(bs)) / float64(len(as)+len(bs))
	sqrtN := math.Sqrt(n)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	r.P = kolmogorovQ(lambda)
	return r
}

// kolmogorovQ is the survival function of the Kolmogorov distribution:
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
