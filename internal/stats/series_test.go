package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMovingAverage(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(in, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageK1Identity(t *testing.T) {
	in := []float64{5, -3, 8, 0}
	got := MovingAverage(in, 1)
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("k=1 not identity at %d", i)
		}
	}
	// Non-positive k behaves as k=1 rather than panicking.
	got = MovingAverage(in, 0)
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("k=0 not identity at %d", i)
		}
	}
}

func TestMovingAverageEmpty(t *testing.T) {
	if got := MovingAverage(nil, 3); len(got) != 0 {
		t.Errorf("len = %d", len(got))
	}
}

func TestMovingAverageConstantInvariant(t *testing.T) {
	in := make([]float64, 50)
	for i := range in {
		in[i] = 7.5
	}
	for _, k := range []int{1, 2, 3, 7, 50, 100} {
		for i, v := range MovingAverage(in, k) {
			if math.Abs(v-7.5) > 1e-12 {
				t.Fatalf("k=%d out[%d]=%v", k, i, v)
			}
		}
	}
}

func TestNormalizeByMin(t *testing.T) {
	a := []float64{2, 4, 8}
	b := []float64{0, 6, 10}
	norm, div := NormalizeByMin(a, b)
	if div != 2 {
		t.Fatalf("divisor = %v", div)
	}
	if norm[0][0] != 1 || norm[0][2] != 4 || norm[1][1] != 3 {
		t.Errorf("normalized = %v", norm)
	}
	// Originals untouched.
	if a[0] != 2 || b[0] != 0 {
		t.Error("inputs mutated")
	}
}

func TestNormalizeByMinAllZero(t *testing.T) {
	norm, div := NormalizeByMin([]float64{0, 0})
	if div != 1 || norm[0][0] != 0 {
		t.Errorf("all-zero normalization: %v, %v", norm, div)
	}
}

func TestReservoirExactFill(t *testing.T) {
	r := NewReservoir[int](10, 1)
	for i := 0; i < 5; i++ {
		r.Offer(i)
	}
	if len(r.Sample()) != 5 || r.Seen() != 5 {
		t.Errorf("sample = %v, seen = %d", r.Sample(), r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Offer 0..999 into a 100-slot reservoir many times; each item should
	// be selected ≈ trials*100/1000 times.
	const (
		n      = 1000
		k      = 100
		trials = 400
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, int64(trial))
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		if len(r.Sample()) != k {
			t.Fatalf("sample size %d", len(r.Sample()))
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n // 40
	for i, c := range counts {
		// Binomial(400, 0.1): sd ≈ 6; allow 6 sigma.
		if math.Abs(float64(c)-want) > 36 {
			t.Errorf("item %d selected %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestReservoirDeterministicForSeed(t *testing.T) {
	run := func() []int {
		r := NewReservoir[int](7, 42)
		for i := 0; i < 500; i++ {
			r.Offer(i)
		}
		return append([]int(nil), r.Sample()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("empty Welford not NaN")
	}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		w.Add(v)
	}
	if w.N() != len(vals) {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-9 {
		t.Errorf("variance = %v", w.Variance())
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var w Welford
	var vals []float64
	for i := 0; i < 10000; i++ {
		v := rng.NormFloat64()*3 + 10
		vals = append(vals, v)
		w.Add(v)
	}
	if math.Abs(w.Mean()-Mean(vals)) > 1e-9 {
		t.Errorf("welford mean %v != direct %v", w.Mean(), Mean(vals))
	}
}

func TestHourMatrix(t *testing.T) {
	m := NewHourMatrix()
	if med := m.Medians(); med[0] != 0 {
		t.Error("empty matrix median nonzero")
	}
	// Three devices; hour 10: volumes 1, 3, 5 → median 3. Hour 20: only
	// device 1 has traffic (2); others contribute 0 → median 0.
	m.Add(1, 10, 1)
	m.Add(2, 10, 3)
	m.Add(3, 10, 2)
	m.Add(3, 10, 3) // accumulate: device 3 hour 10 = 5
	m.Add(1, 20, 2)
	if m.Devices() != 3 {
		t.Errorf("devices = %d", m.Devices())
	}
	med := m.Medians()
	if med[10] != 3 {
		t.Errorf("median[10] = %v, want 3", med[10])
	}
	if med[20] != 0 {
		t.Errorf("median[20] = %v, want 0", med[20])
	}
	tot := m.Totals()
	if tot[10] != 9 || tot[20] != 2 {
		t.Errorf("totals = %v, %v", tot[10], tot[20])
	}
	// Out-of-range hours ignored.
	m.Add(9, -1, 100)
	m.Add(9, 168, 100)
	if m.Devices() != 3 {
		t.Error("out-of-range hour created a device")
	}
}

func BenchmarkHourMatrixAdd(b *testing.B) {
	m := NewHourMatrix()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Add(uint64(i%5000), i%168, 1234)
	}
}

func BenchmarkSummarize10k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.ExpFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(vals)
	}
}
