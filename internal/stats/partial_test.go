package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// randPartial builds a partial from a seeded stream; hour values are small
// integers so float sums are exact and associativity can be asserted
// bit-for-bit.
func randPartial(seed int64, events int) *Partial {
	rng := rand.New(rand.NewSource(seed))
	p, err := NewPartial(12)
	if err != nil {
		panic(err)
	}
	p.Hours = NewHourMatrix()
	for i := 0; i < events; i++ {
		dev := uint64(rng.Intn(200))
		bytes := int64(rng.Intn(1 << 20))
		p.Observe(dev, bytes)
		p.Hours.Add(dev, rng.Intn(HoursPerWeek), float64(rng.Intn(1000)))
	}
	return p
}

// clonePartial deep-copies a partial so merge inputs can be checked for
// mutation afterwards.
func clonePartial(p *Partial) *Partial {
	cp := &Partial{Flows: p.Flows, Bytes: p.Bytes}
	if p.Devices != nil {
		cp.Devices = p.Devices.Clone()
	}
	if p.FlowSize != nil {
		cp.FlowSize = p.FlowSize.Clone()
	}
	if p.Hours != nil {
		cp.Hours = p.Hours.Clone()
	}
	return cp
}

func samePartial(a, b *Partial) bool {
	if a.Flows != b.Flows || a.Bytes != b.Bytes {
		return false
	}
	ar, br := []uint8(nil), []uint8(nil)
	if a.Devices != nil {
		ar = a.Devices.regs
	}
	if b.Devices != nil {
		br = b.Devices.regs
	}
	if !reflect.DeepEqual(ar, br) {
		return false
	}
	switch {
	case a.FlowSize == nil && b.FlowSize == nil:
	case a.FlowSize == nil || b.FlowSize == nil:
		return false
	case !a.FlowSize.Equal(b.FlowSize):
		return false
	}
	switch {
	case a.Hours == nil && b.Hours == nil:
	case a.Hours == nil || b.Hours == nil:
		return false
	default:
		if !reflect.DeepEqual(a.Hours.byDevice, b.Hours.byDevice) {
			return false
		}
	}
	return true
}

func mergeAll(t *testing.T, parts ...*Partial) *Partial {
	t.Helper()
	out, err := MergePartials(parts)
	if err != nil {
		t.Fatalf("MergePartials: %v", err)
	}
	return out
}

// TestPartialMergeAssociative pins (a⊕b)⊕c == a⊕(b⊕c) bit-for-bit. The
// hour rows use integer-valued floats so even the float field is exact.
func TestPartialMergeAssociative(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := randPartial(seed*3+0, 400)
		b := randPartial(seed*3+1, 300)
		c := randPartial(seed*3+2, 500)

		left := mergeAll(t, mergeAll(t, a, b), c)
		right := mergeAll(t, a, mergeAll(t, b, c))
		if !samePartial(left, right) {
			t.Fatalf("seed %d: (a+b)+c != a+(b+c)", seed)
		}
	}
}

// TestPartialMergeCommutative pins a⊕b == b⊕a (float addition is
// commutative exactly; HLL register max and LogHist buckets trivially so).
func TestPartialMergeCommutative(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := randPartial(seed*2+0, 350)
		b := randPartial(seed*2+1, 450)
		if !samePartial(mergeAll(t, a, b), mergeAll(t, b, a)) {
			t.Fatalf("seed %d: a+b != b+a", seed)
		}
	}
}

// TestPartialMergeOfSplitsEqualsMonolithic feeds one event stream both
// into a single partial and into per-chunk partials merged in order; the
// results must be identical field by field, at several split widths.
func TestPartialMergeOfSplitsEqualsMonolithic(t *testing.T) {
	const events = 2000
	type ev struct {
		dev   uint64
		bytes int64
		hour  int
		hv    float64
	}
	rng := rand.New(rand.NewSource(42))
	stream := make([]ev, events)
	for i := range stream {
		stream[i] = ev{
			dev:   uint64(rng.Intn(300)),
			bytes: int64(rng.Intn(1 << 22)),
			hour:  rng.Intn(HoursPerWeek),
			hv:    float64(rng.Intn(5000)),
		}
	}
	feed := func(p *Partial, evs []ev) {
		for _, e := range evs {
			p.Observe(e.dev, e.bytes)
			p.Hours.Add(e.dev, e.hour, e.hv)
		}
	}
	mono, _ := NewPartial(12)
	mono.Hours = NewHourMatrix()
	feed(mono, stream)

	for _, chunk := range []int{1, 7, events} {
		var parts []*Partial
		for off := 0; off < events; off += chunk {
			end := off + chunk
			if end > events {
				end = events
			}
			p, _ := NewPartial(12)
			p.Hours = NewHourMatrix()
			feed(p, stream[off:end])
			parts = append(parts, p)
		}
		merged := mergeAll(t, parts...)
		if !samePartial(mono, merged) {
			t.Fatalf("chunk %d: merged splits != monolithic", chunk)
		}
		if got, want := merged.FlowSize.Quantile(0.5), mono.FlowSize.Quantile(0.5); got != want {
			t.Fatalf("chunk %d: median sketch %d != %d", chunk, got, want)
		}
	}
}

// TestPartialMergeLeavesInputsIntact: merging must never mutate an input
// (a sealed published HLL snapshot in particular).
func TestPartialMergeLeavesInputsIntact(t *testing.T) {
	a := randPartial(7, 300)
	b := randPartial(8, 300)
	b.Devices.Seal()
	aBefore, bBefore := clonePartial(a), clonePartial(b)
	out := mergeAll(t, a, b)
	if !samePartial(a, aBefore) || !samePartial(b, bBefore) {
		t.Fatal("MergePartials mutated an input")
	}
	if out.Devices.Sealed() {
		t.Fatal("merged Devices estimator is sealed; want unsealed working copy")
	}
	if out.Flows != a.Flows+b.Flows || out.Bytes != a.Bytes+b.Bytes {
		t.Fatal("merged counters wrong")
	}
}

// TestPartialMergeIdentity: the zero Partial is the merge identity.
func TestPartialMergeIdentity(t *testing.T) {
	a := randPartial(9, 250)
	out := mergeAll(t, &Partial{}, a, &Partial{}, nil)
	if !samePartial(out, a) {
		t.Fatal("zero partial is not the merge identity")
	}
}

func TestLogHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mono := NewLogHist()
	var parts []*LogHist
	cur := NewLogHist()
	for i := 0; i < 1000; i++ {
		v := int64(rng.Intn(1 << 30))
		if i%5 == 0 {
			v = 0 // exercise the <=0 bucket
		}
		mono.Observe(v)
		cur.Observe(v)
		if (i+1)%137 == 0 {
			parts = append(parts, cur)
			cur = NewLogHist()
		}
	}
	parts = append(parts, cur)
	merged := NewLogHist()
	for _, p := range parts {
		merged.Merge(p)
	}
	if !merged.Equal(mono) {
		t.Fatal("merged LogHist != monolithic")
	}
	if merged.N() != 1000 || merged.Sum() != mono.Sum() {
		t.Fatalf("merged N=%d Sum=%d, want N=1000 Sum=%d", merged.N(), merged.Sum(), mono.Sum())
	}
	if q50, q99 := merged.Quantile(0.5), merged.Quantile(0.99); q50 > q99 {
		t.Fatalf("quantiles not monotone: q50=%d q99=%d", q50, q99)
	}
}
