package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestReservoirDeterministicByOrder pins the Reservoir determinism
// contract: identical (seed, offer order) reproduce the sample exactly,
// and a permuted offer order is allowed to (and here does) change it —
// which is why consumers must offer in ascending-DeviceID order and why
// reservoirs are never merged across partials.
func TestReservoirDeterministicByOrder(t *testing.T) {
	stream := make([]int, 500)
	for i := range stream {
		stream[i] = i
	}
	sample := func(items []int) []int {
		r := NewReservoir[int](20, 99)
		for _, v := range items {
			r.Offer(v)
		}
		return r.Snapshot()
	}
	a, b := sample(stream), sample(stream)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and order produced different samples")
	}
	shuffled := append([]int(nil), stream...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if reflect.DeepEqual(a, sample(shuffled)) {
		t.Fatal("order-sensitivity sentinel: permuted stream reproduced the sample exactly (expected divergence)")
	}
}

// TestKSTwoSampleOrderIndependent pins that the KS test sorts internally:
// any permutation of either sample yields bit-identical D and P.
func TestKSTwoSampleOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 200)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 0.3
	}
	want := KSTwoSample(a, b)
	for trial := 0; trial < 5; trial++ {
		ap := append([]float64(nil), a...)
		bp := append([]float64(nil), b...)
		rng.Shuffle(len(ap), func(i, j int) { ap[i], ap[j] = ap[j], ap[i] })
		rng.Shuffle(len(bp), func(i, j int) { bp[i], bp[j] = bp[j], bp[i] })
		got := KSTwoSample(ap, bp)
		if got != want {
			t.Fatalf("trial %d: KS result changed under permutation: %+v != %+v", trial, got, want)
		}
	}
	aBefore := append([]float64(nil), a...)
	KSTwoSample(a, b)
	if !reflect.DeepEqual(a, aBefore) {
		t.Fatal("KSTwoSample mutated its input")
	}
}
