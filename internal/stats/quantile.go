// Package stats provides the statistical machinery the paper's analyses
// rest on: quantile summaries for box-and-whisker plots, means vs. medians
// (Figure 2's central observation), moving averages (Figure 8), hour-of-week
// traffic matrices (Figure 3), cardinality estimation for distinct-site
// counts (§4.1), and reservoir sampling for the manual-review accuracy
// experiment (§3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the box-and-whisker description used throughout the paper's
// figures: whiskers at the 1st and 95th percentiles, the quartile box, and
// the 99th percentile tail the text references for TikTok.
type Summary struct {
	N      int
	Min    float64
	P1     float64
	Q1     float64
	Median float64
	Q3     float64
	P95    float64
	P99    float64
	Max    float64
	Mean   float64
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of sorted using linear
// interpolation between order statistics (the "R-7" rule used by most
// plotting libraries). sorted must be in ascending order and non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes a Summary of values. The input slice is not modified.
// An empty input yields a zero-N summary with NaN statistics.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		nan := math.NaN()
		s.Min, s.P1, s.Q1, s.Median, s.Q3, s.P95, s.P99, s.Max, s.Mean =
			nan, nan, nan, nan, nan, nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P1 = Quantile(sorted, 0.01)
	s.Q1 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.50)
	s.Q3 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	s.Mean = sum / float64(len(sorted))
	return s
}

// Median returns the median of values (not necessarily sorted), or NaN for
// an empty input.
func Median(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return Quantile(sorted, 0.5)
}

// Mean returns the arithmetic mean, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p1=%.3g q1=%.3g med=%.3g q3=%.3g p95=%.3g p99=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.P1, s.Q1, s.Median, s.Q3, s.P95, s.P99, s.Max, s.Mean)
}
