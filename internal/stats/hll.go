package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// HyperLogLog estimates set cardinality in fixed memory. The pipeline uses
// it to count distinct sites visited per device across months (§4.1's "34%
// more distinct sites") without retaining per-device domain sets for tens
// of thousands of devices over four months.
//
// This is the classic Flajolet–Fushimi–Gandouet–Meunier estimator with the
// standard small-range (linear counting) correction.
type HyperLogLog struct {
	p    uint8 // precision: number of index bits
	regs []uint8
}

// NewHyperLogLog returns an estimator with 2^p registers. Precision must be
// in [4, 18]; p=14 gives a ~0.8% standard error in 16 KiB.
func NewHyperLogLog(p uint8) (*HyperLogLog, error) {
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("stats: HLL precision %d outside [4,18]", p)
	}
	return &HyperLogLog{p: p, regs: make([]uint8, 1<<p)}, nil
}

// fnv1a64 hashes data with the 64-bit FNV-1a function. Inlined rather than
// using hash/fnv to avoid a heap allocation per item.
func fnv1a64(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Add inserts an item.
func (h *HyperLogLog) Add(item []byte) {
	x := fnv1a64(item)
	// Mix: FNV has weak avalanche in the high bits; finalize with the
	// splitmix64 finisher so register indexing is unbiased.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31

	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure a terminating bit
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// AddString inserts a string item.
func (h *HyperLogLog) AddString(s string) {
	// Stack-allocate small copies to avoid []byte(s) escaping.
	var buf [128]byte
	if len(s) <= len(buf) {
		n := copy(buf[:], s)
		h.Add(buf[:n])
		return
	}
	h.Add([]byte(s))
}

// AddUint64 inserts an integer item.
func (h *HyperLogLog) AddUint64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Add(buf[:])
}

// Estimate returns the estimated cardinality.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.regs) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into h. Both must share the same precision.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if h.p != other.p {
		return fmt.Errorf("stats: merging HLL precision %d into %d", other.p, h.p)
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Reset clears the estimator.
func (h *HyperLogLog) Reset() {
	for i := range h.regs {
		h.regs[i] = 0
	}
}
