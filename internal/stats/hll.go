package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// HyperLogLog estimates set cardinality in fixed memory. The pipeline uses
// it to count distinct sites visited per device across months (§4.1's "34%
// more distinct sites") without retaining per-device domain sets for tens
// of thousands of devices over four months.
//
// This is the classic Flajolet–Fushimi–Gandouet–Meunier estimator with the
// standard small-range (linear counting) correction.
//
// A HyperLogLog published as part of a sealed epoch snapshot must be
// immutable: concurrent readers hold the same registers. Seal marks the
// estimator read-only; every mutating method refuses afterwards, and
// Merged provides the clone-on-merge path for combining sealed snapshots.
type HyperLogLog struct {
	p      uint8 // precision: number of index bits
	sealed bool
	regs   []uint8
}

// NewHyperLogLog returns an estimator with 2^p registers. Precision must be
// in [4, 18]; p=14 gives a ~0.8% standard error in 16 KiB.
func NewHyperLogLog(p uint8) (*HyperLogLog, error) {
	if p < 4 || p > 18 {
		return nil, fmt.Errorf("stats: HLL precision %d outside [4,18]", p)
	}
	return &HyperLogLog{p: p, regs: make([]uint8, 1<<p)}, nil
}

// fnv1a64 hashes data with the 64-bit FNV-1a function. Inlined rather than
// using hash/fnv to avoid a heap allocation per item.
func fnv1a64(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Add inserts an item. Add panics on a sealed estimator: a sealed
// HyperLogLog is part of a published snapshot and mutating it would
// corrupt what concurrent readers see.
func (h *HyperLogLog) Add(item []byte) {
	if h.sealed {
		panic("stats: Add on sealed HyperLogLog")
	}
	x := fnv1a64(item)
	// Mix: FNV has weak avalanche in the high bits; finalize with the
	// splitmix64 finisher so register indexing is unbiased.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31

	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure a terminating bit
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// AddString inserts a string item.
func (h *HyperLogLog) AddString(s string) {
	// Stack-allocate small copies to avoid []byte(s) escaping.
	var buf [128]byte
	if len(s) <= len(buf) {
		n := copy(buf[:], s)
		h.Add(buf[:n])
		return
	}
	h.Add([]byte(s))
}

// AddUint64 inserts an integer item.
func (h *HyperLogLog) AddUint64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Add(buf[:])
}

// Estimate returns the estimated cardinality.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.regs) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into h, mutating h's registers in place. Both must
// share the same precision. Merging into a sealed estimator is refused:
// the receiver's registers are shared with every reader of the published
// snapshot, so an in-place fold would corrupt their view. Use Merged to
// combine sealed snapshots.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if h.sealed {
		return fmt.Errorf("stats: Merge into sealed HyperLogLog (use Merged)")
	}
	if h.p != other.p {
		return fmt.Errorf("stats: merging HLL precision %d into %d", other.p, h.p)
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
	return nil
}

// Merged returns a new unsealed estimator holding the union of h and
// other without mutating either — the clone-on-merge path for sealed
// epoch snapshots. Both must share the same precision.
func (h *HyperLogLog) Merged(other *HyperLogLog) (*HyperLogLog, error) {
	if h.p != other.p {
		return nil, fmt.Errorf("stats: merging HLL precision %d into %d", other.p, h.p)
	}
	out := h.Clone()
	out.sealed = false
	if err := out.Merge(other); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy of h (registers included). The copy keeps the
// sealed flag, so cloning a sealed snapshot yields a sealed snapshot;
// unseal by cloning via Merged with an empty estimator is never needed —
// Merged already returns an unsealed copy.
func (h *HyperLogLog) Clone() *HyperLogLog {
	return &HyperLogLog{p: h.p, sealed: h.sealed, regs: append([]uint8(nil), h.regs...)}
}

// Seal marks the estimator immutable. After Seal, Add and Reset panic and
// Merge returns an error; Estimate, Clone, and Merged remain safe for
// concurrent readers. Seal is idempotent.
func (h *HyperLogLog) Seal() { h.sealed = true }

// Sealed reports whether the estimator has been sealed.
func (h *HyperLogLog) Sealed() bool { return h.sealed }

// Reset clears the estimator. Reset panics on a sealed estimator for the
// same reason Add does.
func (h *HyperLogLog) Reset() {
	if h.sealed {
		panic("stats: Reset on sealed HyperLogLog")
	}
	for i := range h.regs {
		h.regs[i] = 0
	}
}
