package stats

import (
	"math"
	"math/rand"
)

// MovingAverage returns the k-point trailing moving average of values:
// out[i] is the mean of values[max(0,i-k+1) .. i]. The paper's Figure 8
// smooths Switch gameplay traffic with a 3-day moving average. k must be
// positive; the input is not modified.
func MovingAverage(values []float64, k int) []float64 {
	if k <= 0 {
		k = 1
	}
	out := make([]float64, len(values))
	var window float64
	for i, v := range values {
		window += v
		if i >= k {
			window -= values[i-k]
		}
		n := k
		if i+1 < k {
			n = i + 1
		}
		out[i] = window / float64(n)
	}
	return out
}

// NormalizeByMin divides every element by the minimum positive element
// across all the given series, the normalization used by Figure 3 ("data is
// normalized by the minimum volume of traffic across all weeks"). It
// returns the normalized copies and the divisor. If no positive element
// exists, the series are returned unchanged with divisor 1.
func NormalizeByMin(series ...[]float64) ([][]float64, float64) {
	minPos := math.Inf(1)
	for _, s := range series {
		for _, v := range s {
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	out := make([][]float64, len(series))
	for i, s := range series {
		c := make([]float64, len(s))
		for j, v := range s {
			c[j] = v / minPos
		}
		out[i] = c
	}
	return out, minPos
}

// Reservoir maintains a uniform random sample of fixed capacity from a
// stream of items (Vitter's algorithm R). The paper's classifier-accuracy
// check "manually reviewed 100 random devices"; the reproduction samples
// devices the same way.
//
// Determinism contract (audited for the incremental-stats refactor): the
// sample is a pure function of (seed, offer order) — there is no hidden
// global or time-dependent state — but it IS order-sensitive, as any
// single-pass sampler must be. Reservoirs therefore stay single-shot and
// are never merged across partials: every consumer offers items from a
// finalized Dataset in ascending-DeviceID order, and the incremental path
// produces Datasets byte-identical to the monolithic pass, so report.txt
// accuracy samples match under a pinned key. TestReservoirDeterministicByOrder
// pins both halves of the contract.
type Reservoir[T any] struct {
	capacity int
	seen     int
	items    []T
	rng      *rand.Rand
}

// NewReservoir returns a reservoir holding up to capacity items, sampling
// decisions driven by the given seed.
func NewReservoir[T any](capacity int, seed int64) *Reservoir[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir[T]{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Offer presents one stream item to the sampler.
func (r *Reservoir[T]) Offer(item T) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.capacity {
		r.items[j] = item
	}
}

// Sample returns the current sample (aliasing internal storage). Callers
// that publish the sample beyond the reservoir's lifetime — or keep
// offering items afterwards — should use Snapshot instead: later Offers
// overwrite slots in place, so an aliased Sample would mutate under the
// holder.
func (r *Reservoir[T]) Sample() []T { return r.items }

// Snapshot returns a copy of the current sample that later Offers cannot
// mutate.
func (r *Reservoir[T]) Snapshot() []T {
	return append([]T(nil), r.items...)
}

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int { return r.seen }

// Welford accumulates running mean and variance in one pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance (NaN when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
