package stats

import "math/bits"

// logHistBuckets is one bucket per possible bit length of a non-negative
// int64 (bucket 0 holds values <= 0).
const logHistBuckets = 64

// LogHist is a log2-bucketed histogram of non-negative int64 observations
// (flow sizes, per-day byte counts). Bucket b holds values whose bit
// length is b, i.e. values in [2^(b-1), 2^b); values <= 0 land in bucket
// 0. Unlike the single-shot Reservoir, a LogHist is exactly mergeable:
// Merge is integer bucket addition, so it is associative and commutative
// bit-for-bit regardless of merge order — the property stats.Partial
// needs from its quantile sketch where per-day aggregates are combined.
type LogHist struct {
	counts [logHistBuckets]int64
	n      int64
	sum    int64
}

// NewLogHist returns an empty histogram.
func NewLogHist() *LogHist { return &LogHist{} }

// Observe records one value.
func (h *LogHist) Observe(v int64) {
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.counts[b]++
	h.n++
	if v > 0 {
		h.sum += v
	}
}

// N returns the number of observations.
func (h *LogHist) N() int64 { return h.n }

// Sum returns the exact sum of all positive observations.
func (h *LogHist) Sum() int64 { return h.sum }

// Merge folds other into h by bucket addition. Integer addition is
// associative and commutative, so any merge order yields identical state.
func (h *LogHist) Merge(other *LogHist) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Clone returns a deep copy of h.
func (h *LogHist) Clone() *LogHist {
	cp := *h
	return &cp
}

// Equal reports whether two histograms hold identical state.
func (h *LogHist) Equal(other *LogHist) bool {
	if other == nil {
		return h.n == 0
	}
	return *h == *other
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the bucket holding the ceil(q*n)-th smallest
// observation. The bound is exact to within the 2x bucket resolution and,
// because buckets merge exactly, identical however the histogram was
// assembled. An empty histogram yields 0.
func (h *LogHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen > rank {
			if b == 0 {
				return 0
			}
			if b >= 63 {
				return int64(^uint64(0) >> 1)
			}
			return int64(1) << b
		}
	}
	return 0
}
