package stats

import "sort"

// HoursPerWeek is the number of hour-of-week buckets (7×24).
const HoursPerWeek = 168

// HourMatrix accumulates per-device traffic volume into hour-of-week
// buckets for one week, then reduces each bucket to the median across
// devices — the quantity plotted in the paper's Figure 3.
type HourMatrix struct {
	byDevice map[uint64]*[HoursPerWeek]float64
}

// NewHourMatrix returns an empty matrix.
func NewHourMatrix() *HourMatrix {
	return &HourMatrix{byDevice: make(map[uint64]*[HoursPerWeek]float64)}
}

// Add accounts v (e.g. bytes) to the given device's hour-of-week bucket.
// Hours outside [0,168) are ignored.
func (m *HourMatrix) Add(device uint64, hour int, v float64) {
	if hour < 0 || hour >= HoursPerWeek {
		return
	}
	row := m.byDevice[device]
	if row == nil {
		row = new([HoursPerWeek]float64)
		m.byDevice[device] = row
	}
	row[hour] += v
}

// Devices returns the number of devices with any recorded traffic.
func (m *HourMatrix) Devices() int { return len(m.byDevice) }

// Clone returns a deep copy of the matrix: rows are copied, so mutating
// the clone (or the original) never reaches the other. Snapshot
// publication uses this so sealed epochs and the live accumulator don't
// alias the same rows.
func (m *HourMatrix) Clone() *HourMatrix {
	out := NewHourMatrix()
	for dev, row := range m.byDevice {
		cp := *row
		out.byDevice[dev] = &cp
	}
	return out
}

// Merge folds other's rows into m by per-bucket addition. The resulting
// per-device rows do not depend on merge order up to float rounding:
// float64 addition is commutative exactly but associative only
// approximately, so callers needing bit-for-bit reproducibility merge in
// a fixed order (the pipeline merges day partials in day order). Devices
// are folded in sorted order so a single Merge call is itself
// deterministic.
func (m *HourMatrix) Merge(other *HourMatrix) {
	if other == nil {
		return
	}
	devs := make([]uint64, 0, len(other.byDevice))
	//lintlock:ignore determinism keys are sorted before any row is folded
	for dev := range other.byDevice {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		src := other.byDevice[dev]
		row := m.byDevice[dev]
		if row == nil {
			cp := *src
			m.byDevice[dev] = &cp
			continue
		}
		for h, v := range src {
			row[h] += v
		}
	}
}

// Medians returns, for each hour of the week, the median per-device volume
// across all devices seen in this matrix (devices idle in an hour
// contribute zero for that hour). An empty matrix yields all zeros.
func (m *HourMatrix) Medians() [HoursPerWeek]float64 {
	var out [HoursPerWeek]float64
	if len(m.byDevice) == 0 {
		return out
	}
	col := make([]float64, 0, len(m.byDevice))
	for h := 0; h < HoursPerWeek; h++ {
		col = col[:0]
		//lintlock:ignore determinism Median sorts a copy of col, so map order never reaches output
		for _, row := range m.byDevice {
			col = append(col, row[h])
		}
		out[h] = Median(col)
	}
	return out
}

// Totals returns, for each hour of the week, the summed volume across
// devices.
func (m *HourMatrix) Totals() [HoursPerWeek]float64 {
	var out [HoursPerWeek]float64
	for _, row := range m.byDevice {
		for h, v := range row {
			out[h] += v
		}
	}
	return out
}
