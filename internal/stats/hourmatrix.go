package stats

// HoursPerWeek is the number of hour-of-week buckets (7×24).
const HoursPerWeek = 168

// HourMatrix accumulates per-device traffic volume into hour-of-week
// buckets for one week, then reduces each bucket to the median across
// devices — the quantity plotted in the paper's Figure 3.
type HourMatrix struct {
	byDevice map[uint64]*[HoursPerWeek]float64
}

// NewHourMatrix returns an empty matrix.
func NewHourMatrix() *HourMatrix {
	return &HourMatrix{byDevice: make(map[uint64]*[HoursPerWeek]float64)}
}

// Add accounts v (e.g. bytes) to the given device's hour-of-week bucket.
// Hours outside [0,168) are ignored.
func (m *HourMatrix) Add(device uint64, hour int, v float64) {
	if hour < 0 || hour >= HoursPerWeek {
		return
	}
	row := m.byDevice[device]
	if row == nil {
		row = new([HoursPerWeek]float64)
		m.byDevice[device] = row
	}
	row[hour] += v
}

// Devices returns the number of devices with any recorded traffic.
func (m *HourMatrix) Devices() int { return len(m.byDevice) }

// Clone returns a deep copy of the matrix: rows are copied, so mutating
// the clone (or the original) never reaches the other. Snapshot
// publication uses this so sealed epochs and the live accumulator don't
// alias the same rows.
func (m *HourMatrix) Clone() *HourMatrix {
	out := NewHourMatrix()
	for dev, row := range m.byDevice {
		cp := *row
		out.byDevice[dev] = &cp
	}
	return out
}

// Medians returns, for each hour of the week, the median per-device volume
// across all devices seen in this matrix (devices idle in an hour
// contribute zero for that hour). An empty matrix yields all zeros.
func (m *HourMatrix) Medians() [HoursPerWeek]float64 {
	var out [HoursPerWeek]float64
	if len(m.byDevice) == 0 {
		return out
	}
	col := make([]float64, 0, len(m.byDevice))
	for h := 0; h < HoursPerWeek; h++ {
		col = col[:0]
		//lintlock:ignore determinism Median sorts a copy of col, so map order never reaches output
		for _, row := range m.byDevice {
			col = append(col, row[h])
		}
		out[h] = Median(col)
	}
	return out
}

// Totals returns, for each hour of the week, the summed volume across
// devices.
func (m *HourMatrix) Totals() [HoursPerWeek]float64 {
	var out [HoursPerWeek]float64
	for _, row := range m.byDevice {
		for h, v := range row {
			out[h] += v
		}
	}
	return out
}
