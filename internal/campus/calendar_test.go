package campus

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNumDays(t *testing.T) {
	got := int(StudyEnd.Sub(StudyStart) / (24 * time.Hour))
	if got != NumDays {
		t.Fatalf("window spans %d days, NumDays = %d", got, NumDays)
	}
	if NumDays != 121 {
		t.Fatalf("NumDays = %d, want 121 (leap-year Feb..May)", NumDays)
	}
}

func TestKeyDateOrdering(t *testing.T) {
	order := []time.Time{
		StudyStart, StateOfEmergency, PandemicDeclared, StayAtHome,
		AnimalCrossingRelease, BreakStart, BreakEnd, StudyEnd,
	}
	for i := 1; i < len(order); i++ {
		if !order[i-1].Before(order[i]) {
			t.Fatalf("key dates out of order at index %d: %v !< %v", i, order[i-1], order[i])
		}
	}
}

func TestPhaseOf(t *testing.T) {
	cases := []struct {
		t    time.Time
		want Phase
	}{
		{StudyStart, PrePandemic},
		{StateOfEmergency.Add(-time.Second), PrePandemic},
		{StateOfEmergency, Emergency},
		{PandemicDeclared, PandemicDeparture},
		{StayAtHome, Lockdown},
		{BreakStart, AcademicBreak},
		{BreakEnd, OnlineTerm},
		{StudyEnd.Add(-time.Second), OnlineTerm},
		{StudyEnd, OutOfWindow},
		{StudyStart.Add(-time.Second), OutOfWindow},
	}
	for _, c := range cases {
		if got := PhaseOf(c.t); got != c.want {
			t.Errorf("PhaseOf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPhaseStringsDistinct(t *testing.T) {
	seen := map[string]Phase{}
	for p := PrePandemic; p <= OutOfWindow; p++ {
		s := p.String()
		if s == "" {
			t.Fatalf("phase %d has empty name", p)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("phases %v and %v share name %q", prev, p, s)
		}
		seen[s] = p
	}
}

func TestDayRoundTrip(t *testing.T) {
	for d := Day(0); d < NumDays; d++ {
		got, ok := DayOf(d.Time())
		if !ok || got != d {
			t.Fatalf("DayOf(%v.Time()) = %v, %v", d, got, ok)
		}
		// Any instant within the day maps back to the same day.
		got, ok = DayOf(d.Time().Add(23*time.Hour + 59*time.Minute))
		if !ok || got != d {
			t.Fatalf("DayOf(end of %v) = %v, %v", d, got, ok)
		}
	}
}

func TestDayOfOutOfWindow(t *testing.T) {
	if _, ok := DayOf(StudyStart.Add(-time.Nanosecond)); ok {
		t.Error("instant before window reported in-window")
	}
	if _, ok := DayOf(StudyEnd); ok {
		t.Error("StudyEnd reported in-window")
	}
}

func TestDayString(t *testing.T) {
	if got := Day(0).String(); got != "2020-02-01" {
		t.Errorf("day 0 = %q", got)
	}
	if got := Day(NumDays - 1).String(); got != "2020-05-31" {
		t.Errorf("last day = %q", got)
	}
	if got := Day(29).String(); got != "2020-03-01" {
		t.Errorf("day 29 = %q", got)
	}
}

func TestWeekend(t *testing.T) {
	// Feb 1 2020 was a Saturday.
	if !Day(0).IsWeekend() || Day(0).Weekday() != time.Saturday {
		t.Errorf("Feb 1 2020 should be Saturday, got %v", Day(0).Weekday())
	}
	if Day(2).IsWeekend() {
		t.Errorf("Feb 3 2020 (Monday) flagged weekend")
	}
}

func TestMonths(t *testing.T) {
	total := 0
	for m := February; m < NumMonths; m++ {
		total += DaysInMonth(m)
	}
	if total != NumDays {
		t.Fatalf("months sum to %d days, want %d", total, NumDays)
	}
	if FirstDay(February) != 0 {
		t.Errorf("FirstDay(February) = %d", FirstDay(February))
	}
	if FirstDay(March) != 29 {
		t.Errorf("FirstDay(March) = %d", FirstDay(March))
	}
	if FirstDay(May) != 29+31+30 {
		t.Errorf("FirstDay(May) = %d", FirstDay(May))
	}
	for d := Day(0); d < NumDays; d++ {
		m := MonthOfDay(d)
		if d < FirstDay(m) || int(d) >= int(FirstDay(m))+DaysInMonth(m) {
			t.Fatalf("day %v assigned month %v outside its range", d, m)
		}
	}
}

func TestMonthOf(t *testing.T) {
	if m, ok := MonthOf(time.Date(2020, time.April, 15, 12, 0, 0, 0, Timezone)); !ok || m != April {
		t.Errorf("MonthOf(Apr 15) = %v, %v", m, ok)
	}
	if _, ok := MonthOf(time.Date(2020, time.June, 1, 0, 0, 0, 0, Timezone)); ok {
		t.Error("June 1 reported in-window")
	}
}

func TestHourOfWeek(t *testing.T) {
	// Figure weeks are anchored on Thursdays; hour 0 of each week must be
	// Thursday midnight.
	for _, w := range FigureWeeks {
		if w.Weekday() != time.Thursday {
			t.Errorf("figure week %v does not start on Thursday", w)
		}
		if h := HourOfWeek(w); h != 0 {
			t.Errorf("HourOfWeek(%v) = %d, want 0", w, h)
		}
		if h := HourOfWeek(w.Add(7*24*time.Hour - time.Second)); h != HoursPerWeek-1 {
			t.Errorf("last hour of week %v = %d, want %d", w, h, HoursPerWeek-1)
		}
	}
}

func TestHourOfWeekProperty(t *testing.T) {
	// HourOfWeek is periodic with period one week and increments by one
	// per hour.
	f := func(offsetHours uint16) bool {
		base := FigureWeeks[0].Add(time.Duration(offsetHours) * time.Hour)
		h := HourOfWeek(base)
		if h != int(offsetHours)%HoursPerWeek {
			return false
		}
		return HourOfWeek(base.Add(7*24*time.Hour)) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventsChronological(t *testing.T) {
	ev := Events()
	if len(ev) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(ev); i++ {
		if !ev[i-1].Time.Before(ev[i].Time) {
			t.Errorf("events out of order: %q !< %q", ev[i-1].Label, ev[i].Label)
		}
	}
	for _, e := range ev {
		if e.Label == "" {
			t.Errorf("event at %v has empty label", e.Time)
		}
		if PhaseOf(e.Time) == OutOfWindow {
			t.Errorf("event %q outside study window", e.Label)
		}
	}
}
