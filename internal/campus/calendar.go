// Package campus defines the study calendar for the measurement window
// analyzed in "Locked-In during Lock-Down" (IMC '21): the four months from
// February 1, 2020 through May 31, 2020 at a large residential university,
// together with the externally imposed events that structure every analysis
// in the paper (state of emergency, WHO pandemic declaration, stay-at-home
// order, and the academic break bracketing the transition to online
// instruction).
//
// All other packages take their notion of "when" from this package so that
// the generator, the pipeline, and the experiments agree on phase
// boundaries, day indexing, and the local clock.
package campus

import (
	"fmt"
	"time"
)

// Timezone is the campus-local clock used throughout the study. The real
// campus observes US Pacific time; the simulation uses a fixed UTC-7 offset
// (PDT) so results do not depend on the host's zoneinfo database and the
// hour-of-week analyses are stable across machines.
var Timezone = time.FixedZone("PT", -7*3600)

// Key dates of the measurement window. All are midnight campus-local.
var (
	// StudyStart is the first instant of the measurement window.
	StudyStart = time.Date(2020, time.February, 1, 0, 0, 0, 0, Timezone)
	// StudyEnd is the first instant after the measurement window
	// (exclusive bound): midnight June 1, 2020.
	StudyEnd = time.Date(2020, time.June, 1, 0, 0, 0, 0, Timezone)

	// StateOfEmergency marks the regional state-of-emergency declaration
	// (March 4, 2020).
	StateOfEmergency = time.Date(2020, time.March, 4, 0, 0, 0, 0, Timezone)
	// PandemicDeclared marks the WHO pandemic declaration (March 11, 2020).
	PandemicDeclared = time.Date(2020, time.March, 11, 0, 0, 0, 0, Timezone)
	// StayAtHome marks the regional stay-at-home order (March 19, 2020).
	StayAtHome = time.Date(2020, time.March, 19, 0, 0, 0, 0, Timezone)
	// BreakStart marks the first day of the academic break (March 22, 2020).
	BreakStart = time.Date(2020, time.March, 22, 0, 0, 0, 0, Timezone)
	// BreakEnd marks the day classes resumed, online (March 30, 2020).
	BreakEnd = time.Date(2020, time.March, 30, 0, 0, 0, 0, Timezone)

	// AnimalCrossingRelease is the release date of Animal Crossing: New
	// Horizons (March 20, 2020), which the paper links to a surge in
	// Nintendo Switch gameplay traffic.
	AnimalCrossingRelease = time.Date(2020, time.March, 20, 0, 0, 0, 0, Timezone)
)

// NumDays is the number of calendar days in the study window (Feb 1 through
// May 31, 2020 — a leap year, so February has 29 days).
const NumDays = 29 + 31 + 30 + 31

// Phase identifies the behavioral regime a given instant falls in. Phases
// partition the study window; every instant in [StudyStart, StudyEnd) maps
// to exactly one phase.
type Phase int

const (
	// PrePandemic covers normal in-person instruction (Feb 1 – Mar 3).
	PrePandemic Phase = iota
	// Emergency covers the state-of-emergency period before the WHO
	// declaration (Mar 4 – Mar 10): rising concern, campus still open.
	Emergency
	// PandemicDeparture covers the WHO declaration through the eve of the
	// stay-at-home order (Mar 11 – Mar 18): the main departure wave.
	PandemicDeparture
	// Lockdown covers the stay-at-home order before break (Mar 19 – Mar 21).
	Lockdown
	// AcademicBreak covers spring break under lock-down (Mar 22 – Mar 29).
	AcademicBreak
	// OnlineTerm covers the online spring term (Mar 30 – May 31).
	OnlineTerm
	// OutOfWindow is returned for instants outside the study window.
	OutOfWindow
)

// String returns a short human-readable phase name.
func (p Phase) String() string {
	switch p {
	case PrePandemic:
		return "pre-pandemic"
	case Emergency:
		return "state-of-emergency"
	case PandemicDeparture:
		return "pandemic-departure"
	case Lockdown:
		return "lockdown"
	case AcademicBreak:
		return "academic-break"
	case OnlineTerm:
		return "online-term"
	default:
		return "out-of-window"
	}
}

// PhaseOf returns the phase containing t.
func PhaseOf(t time.Time) Phase {
	switch {
	case t.Before(StudyStart) || !t.Before(StudyEnd):
		return OutOfWindow
	case t.Before(StateOfEmergency):
		return PrePandemic
	case t.Before(PandemicDeclared):
		return Emergency
	case t.Before(StayAtHome):
		return PandemicDeparture
	case t.Before(BreakStart):
		return Lockdown
	case t.Before(BreakEnd):
		return AcademicBreak
	default:
		return OnlineTerm
	}
}

// Day is a zero-based day index into the study window: day 0 is
// February 1, 2020 and day NumDays-1 is May 31, 2020.
type Day int

// DayOf returns the day index containing t and whether t lies inside the
// study window.
func DayOf(t time.Time) (Day, bool) {
	if t.Before(StudyStart) || !t.Before(StudyEnd) {
		return 0, false
	}
	d := Day(t.In(Timezone).Sub(StudyStart) / (24 * time.Hour))
	return d, true
}

// Time returns midnight campus-local of day d.
func (d Day) Time() time.Time {
	return StudyStart.Add(time.Duration(d) * 24 * time.Hour)
}

// Date returns the calendar date of day d in the campus timezone.
func (d Day) Date() (year int, month time.Month, day int) {
	return d.Time().Date()
}

// String formats the day as YYYY-MM-DD.
func (d Day) String() string {
	y, m, dd := d.Date()
	return fmt.Sprintf("%04d-%02d-%02d", y, int(m), dd)
}

// Weekday returns the day-of-week of day d.
func (d Day) Weekday() time.Weekday {
	return d.Time().Weekday()
}

// IsWeekend reports whether day d falls on Saturday or Sunday.
func (d Day) IsWeekend() bool {
	w := d.Weekday()
	return w == time.Saturday || w == time.Sunday
}

// Phase returns the phase of day d (phases never change mid-day).
func (d Day) Phase() Phase {
	return PhaseOf(d.Time())
}

// Month is a zero-based month index: 0=February, 1=March, 2=April, 3=May.
type Month int

// Month names used in figure captions.
const (
	February Month = iota
	March
	April
	May
	NumMonths
)

// String returns the English month name.
func (m Month) String() string {
	switch m {
	case February:
		return "February"
	case March:
		return "March"
	case April:
		return "April"
	case May:
		return "May"
	default:
		return fmt.Sprintf("Month(%d)", int(m))
	}
}

// MonthOf returns the study month containing t and whether t lies inside
// the study window.
func MonthOf(t time.Time) (Month, bool) {
	if t.Before(StudyStart) || !t.Before(StudyEnd) {
		return 0, false
	}
	return Month(int(t.In(Timezone).Month()) - int(time.February)), true
}

// MonthOfDay returns the study month containing day d.
func MonthOfDay(d Day) Month {
	m, _ := MonthOf(d.Time().Add(time.Hour)) // nudge off midnight boundary
	return m
}

// DaysInMonth returns the number of calendar days in study month m (2020 is
// a leap year).
func DaysInMonth(m Month) int {
	switch m {
	case February:
		return 29
	case March:
		return 31
	case April:
		return 30
	case May:
		return 31
	default:
		return 0
	}
}

// FirstDay returns the day index of the first day of study month m.
func FirstDay(m Month) Day {
	d := Day(0)
	for i := February; i < m; i++ {
		d += Day(DaysInMonth(i))
	}
	return d
}

// HourOfWeek returns the hour-of-week index of t, following the paper's
// Figure 3 convention that weeks begin on Thursday: index 0 is Thursday
// 00:00–01:00 campus-local and index 167 is Wednesday 23:00–24:00.
func HourOfWeek(t time.Time) int {
	lt := t.In(Timezone)
	// time.Weekday: Sunday=0 ... Saturday=6. Rotate so Thursday=0.
	dow := (int(lt.Weekday()) - int(time.Thursday) + 7) % 7
	return dow*24 + lt.Hour()
}

// HoursPerWeek is the number of hour-of-week buckets.
const HoursPerWeek = 7 * 24

// FigureWeeks lists the Thursdays anchoring the four example weeks plotted
// in Figure 3 of the paper: the weeks of 2/20, 3/19, 4/9, and 5/14 2020.
// Each week spans [anchor, anchor+7d).
var FigureWeeks = []time.Time{
	time.Date(2020, time.February, 20, 0, 0, 0, 0, Timezone),
	time.Date(2020, time.March, 19, 0, 0, 0, 0, Timezone),
	time.Date(2020, time.April, 9, 0, 0, 0, 0, Timezone),
	time.Date(2020, time.May, 14, 0, 0, 0, 0, Timezone),
}

// Event pairs a study milestone with its label, for chart annotation.
type Event struct {
	Time  time.Time
	Label string
}

// Events returns the annotated milestones in chronological order, matching
// the vertical markers on the paper's time-series figures.
func Events() []Event {
	return []Event{
		{StateOfEmergency, "State of Emergency"},
		{PandemicDeclared, "WHO Declared Pandemic"},
		{StayAtHome, "Stay at Home Order"},
		{BreakStart, "Academic Break"},
		{BreakEnd, "Classes Resume Online"},
	}
}
