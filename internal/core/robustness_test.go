package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/appsig"
	"repro/internal/campus"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/universe"
)

func newBarePipeline(t *testing.T, opts Options) (*Pipeline, *universe.Registry) {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Key == nil {
		opts.Key = []byte("robustness-test-key-0123456789abcd")
	}
	p, err := NewPipeline(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, reg
}

var (
	testMAC  = packet.MustParseMAC("00:1b:21:11:22:33")
	clientIP = netip.MustParseAddr("10.7.7.7")
)

func leaseFor(start time.Time) dhcp.Lease {
	return dhcp.Lease{MAC: testMAC, Addr: clientIP, Start: start, End: start.Add(24 * time.Hour)}
}

func flowAt(t time.Time, server netip.Addr, bytes int64) flow.Record {
	return flow.Record{
		Start: t, Duration: time.Minute,
		OrigAddr: clientIP, OrigPort: 50000,
		RespAddr: server, RespPort: 443,
		Proto: flow.ProtoTCP, OrigBytes: bytes / 20, RespBytes: bytes,
		OrigPkts: 1, RespPkts: 1,
	}
}

func TestUnattributedFlowsCounted(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	server, _ := reg.ResolveIP("facebook.com", 1)
	// Flow before any lease exists: must be dropped and counted, not
	// attributed to a phantom device.
	p.Flow(flowAt(campus.StudyStart.Add(time.Hour), server, 1000))
	if p.Stats().FlowsUnattributed != 1 || p.Stats().FlowsProcessed != 0 {
		t.Errorf("stats = %+v", p.Stats())
	}
	// After the lease arrives, the same flow attributes.
	p.Lease(leaseFor(campus.StudyStart.Add(2 * time.Hour)))
	p.Flow(flowAt(campus.StudyStart.Add(3*time.Hour), server, 1000))
	if p.Stats().FlowsProcessed != 1 {
		t.Errorf("stats after lease = %+v", p.Stats())
	}
	ds := p.Finalize()
	if len(ds.Devices) != 1 {
		t.Fatalf("devices = %d", len(ds.Devices))
	}
}

func TestOutOfWindowFlowsCounted(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	server, _ := reg.ResolveIP("facebook.com", 1)
	p.Lease(dhcp.Lease{MAC: testMAC, Addr: clientIP,
		Start: campus.StudyStart.Add(-48 * time.Hour), End: campus.StudyEnd.Add(48 * time.Hour)})
	p.Flow(flowAt(campus.StudyStart.Add(-24*time.Hour), server, 1000))
	p.Flow(flowAt(campus.StudyEnd.Add(24*time.Hour), server, 1000))
	st := p.Stats()
	if st.FlowsOutOfWindow != 2 || st.FlowsProcessed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTapFilterAblation(t *testing.T) {
	server := func(reg *universe.Registry) netip.Addr {
		ip, _ := reg.ResolveIP("twitch.tv", 1) // tap-excluded network
		return ip
	}
	// Default: dropped.
	p, reg := newBarePipeline(t, Options{})
	p.Lease(leaseFor(campus.StudyStart))
	p.Flow(flowAt(campus.StudyStart.Add(time.Hour), server(reg), 5000))
	if st := p.Stats(); st.FlowsTapDropped != 1 || st.FlowsProcessed != 0 {
		t.Errorf("default stats = %+v", st)
	}
	// Ablation: processed.
	p2, reg2 := newBarePipeline(t, Options{DisableTapFilter: true})
	p2.Lease(leaseFor(campus.StudyStart))
	p2.Flow(flowAt(campus.StudyStart.Add(time.Hour), server(reg2), 5000))
	if st := p2.Stats(); st.FlowsTapDropped != 0 || st.FlowsProcessed != 1 {
		t.Errorf("ablation stats = %+v", st)
	}
}

func TestUnlabeledFlowsCounted(t *testing.T) {
	p, _ := newBarePipeline(t, Options{})
	p.Lease(leaseFor(campus.StudyStart))
	// A server address never resolved in any DNS log: flow still
	// processes (bytes count) but is flagged unlabeled.
	p.Flow(flowAt(campus.StudyStart.Add(time.Hour), netip.MustParseAddr("198.51.100.7"), 1234))
	st := p.Stats()
	if st.FlowsUnlabeled != 1 || st.FlowsProcessed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestZoomIPListCatchesUnlabeledFlows(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	p.Lease(leaseFor(campus.StudyStart))
	// A direct-IP Zoom media flow: inside the published ranges, never in
	// DNS. Must be accounted as Zoom.
	var zoomNet netip.Prefix
	for _, pi := range reg.Prefixes() {
		if pi.Owner == "zoom" {
			zoomNet = pi.Prefix
			break
		}
	}
	base := zoomNet.Addr().As4()
	media := netip.AddrFrom4([4]byte{base[0], base[1], 0, 99})
	apr8 := campus.FirstDay(campus.April).Time().Add(10 * time.Hour)
	p.Lease(leaseFor(apr8.Add(-time.Hour)))
	p.Flow(flowAt(apr8, media, 100<<20))
	ds := p.Finalize()
	if len(ds.Devices) != 1 {
		t.Fatal("no device")
	}
	day, _ := campus.DayOf(apr8)
	if ds.Devices[0].ZoomDaily[day] == 0 {
		t.Error("direct-IP zoom media flow not accounted as Zoom")
	}
}

func TestHTTPMetaWithoutLeaseIgnored(t *testing.T) {
	p, _ := newBarePipeline(t, Options{})
	p.HTTPMeta(httplog.Entry{
		Time: campus.StudyStart.Add(time.Hour), Client: clientIP,
		Host: "detectportal.firefox.com", UserAgent: "Mozilla/5.0 (iPhone...)",
	})
	ds := p.Finalize()
	if len(ds.Devices) != 0 {
		t.Error("UA metadata without a lease created a device")
	}
}

func TestSessionGapSensitivity(t *testing.T) {
	// The stitching-window ablation from DESIGN.md: the same flow stream
	// stitched with gap 0 vs a 10-minute gap must produce fewer-or-equal,
	// longer-or-equal sessions at the larger gap.
	run := func(gap time.Duration) (sessions int, total time.Duration) {
		p, reg := newBarePipeline(t, Options{SessionGap: gap})
		p.Lease(leaseFor(campus.StudyStart))
		fb, _ := reg.ResolveIP("facebook.com", 1)
		// Announce the domain so flows label.
		p.DNS(dnssim.Entry{Time: campus.StudyStart, Client: clientIP, Query: "facebook.com", Answer: fb, TTL: 5 * time.Minute})
		// Three bursts separated by 5-minute gaps.
		base := campus.StudyStart.Add(20 * time.Hour)
		for burst := 0; burst < 3; burst++ {
			p.Flow(flowAt(base.Add(time.Duration(burst)*6*time.Minute), fb, 1<<20))
		}
		ds := p.Finalize()
		for _, d := range ds.Devices {
			for m := campus.February; m < campus.NumMonths; m++ {
				sessions += d.Social[m][0].Sessions
				total += d.Social[m][0].Duration
			}
		}
		return sessions, total
	}
	strictN, strictDur := run(0)
	looseN, looseDur := run(10 * time.Minute)
	if strictN != 3 {
		t.Errorf("strict stitching sessions = %d, want 3", strictN)
	}
	if looseN != 1 {
		t.Errorf("loose stitching sessions = %d, want 1", looseN)
	}
	if looseDur <= strictDur {
		t.Errorf("loose duration %v not above strict %v", looseDur, strictDur)
	}
}

func TestDisorderedLeaseRenewalTolerated(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	server, _ := reg.ResolveIP("facebook.com", 1)
	// Same device renews: overlapping lease entries for the same
	// MAC+address coalesce.
	l1 := leaseFor(campus.StudyStart)
	p.Lease(l1)
	l2 := l1
	l2.Start = l1.Start.Add(12 * time.Hour)
	l2.End = l1.End.Add(12 * time.Hour)
	p.Lease(l2)
	p.Flow(flowAt(l1.Start.Add(30*time.Hour), server, 100))
	if p.Stats().FlowsProcessed != 1 {
		t.Errorf("renewed lease did not attribute: %+v", p.Stats())
	}
}

func TestPipelineImplementsTraceSink(t *testing.T) {
	var _ trace.Sink = (*Pipeline)(nil)
}

func TestSwitchMisdetectionGuard(t *testing.T) {
	// A laptop that downloads one game from the Nintendo CDN but browses
	// heavily must NOT be detected as a Switch (the ≥50% rule).
	p, reg := newBarePipeline(t, Options{})
	p.Lease(leaseFor(campus.StudyStart))
	nin, _ := reg.ResolveIP("atum.hac.lp1.d4c.nintendo.net", 1)
	ytb, _ := reg.ResolveIP("googlevideo.com", 1)
	p.DNS(dnssim.Entry{Time: campus.StudyStart, Client: clientIP, Query: "atum.hac.lp1.d4c.nintendo.net", Answer: nin, TTL: time.Minute})
	p.DNS(dnssim.Entry{Time: campus.StudyStart, Client: clientIP, Query: "googlevideo.com", Answer: ytb, TTL: time.Minute})
	p.Flow(flowAt(campus.StudyStart.Add(2*time.Hour), nin, 1<<30))
	p.Flow(flowAt(campus.StudyStart.Add(3*time.Hour), ytb, 3<<30))
	ds := p.Finalize()
	if ds.Devices[0].IsSwitch {
		t.Error("browsing laptop with one Nintendo download detected as Switch")
	}

	// And the converse: a device with majority Nintendo traffic is.
	p2, reg2 := newBarePipeline(t, Options{})
	p2.Lease(leaseFor(campus.StudyStart))
	nin2, _ := reg2.ResolveIP("nex.nintendo.net", 1)
	p2.DNS(dnssim.Entry{Time: campus.StudyStart, Client: clientIP, Query: "nex.nintendo.net", Answer: nin2, TTL: time.Minute})
	p2.Flow(flowAt(campus.StudyStart.Add(2*time.Hour), nin2, 1<<30))
	ds2 := p2.Finalize()
	if !ds2.Devices[0].IsSwitch {
		t.Error("nintendo-only device not detected as Switch")
	}
	_ = appsig.AppNintendo
}
