package core

import (
	"runtime"

	"repro/internal/campus"
	"repro/internal/flow"
	"repro/internal/httplog"
	"repro/internal/trace"
)

// The batched dispatch path splits each incoming event run into three
// phases so the per-event route work — the DHCP lease lookup, the EUI-64
// extraction, the tap/window cuts, the shard hash — runs on parallel
// decode/route workers while everything order-sensitive stays on the
// single sequencer goroutine (the dispatcher itself):
//
//	phase A (sequencer): walk the run in stream order; apply every
//	  broadcast (DNS entry, DHCP lease) to the shared epoch stores under
//	  the next monotonic sequence number, exactly as the per-event path
//	  does; stamp every routable event with the sequence number current
//	  at its stream position (its pin).
//	phase B (route workers, parallel): for every flow/HTTP event, resolve
//	  the client MAC against the shared lease store *pinned to the
//	  event's own sequence number* and decide its target shard (or drop
//	  class). The pinned lookup is what makes this safe: phase A already
//	  folded the whole run's leases into the store, but a flow's lookup
//	  sees only records with seq ≤ its pin — byte-identical to the
//	  single pipeline resolving it mid-stream. Workers touch only
//	  immutable or concurrent-read-safe state (the epoch stores, the
//	  registry, the campus calendar) and write disjoint decision slots.
//	phase C (sequencer): walk the run in stream order again, copying
//	  routed events into per-shard open batches (flushing full batches
//	  into the SPSC rings) and settling drop/dispatch counters. All
//	  mutation of dispatcher-owned state — open batches, pendDispatch,
//	  dispStats, obs — happens here, single-threaded.
//
// Exactness therefore never depends on worker scheduling: sequence
// numbers are assigned serially in phase A, shard batch order is
// materialized serially in phase C, and phase B computes pure functions
// of (event, pin).

// Negative routeDecision.shard values classify events that never reach a
// shard. Drop precedence must match Pipeline.Flow exactly — tap filter,
// then capture window, then attribution — so a flow failing several cuts
// lands in the same Stats counter under sharded and single ingest.
const (
	decDropTap    int32 = -1 // unroutable flow cut by the tap filter
	decDropWindow int32 = -2 // unroutable flow outside the capture window
	decDropUnattr int32 = -3 // unroutable flow with no DHCP binding
	decDropHTTP   int32 = -4 // HTTP entry with no resolvable client MAC
)

// routeDecision is one event's routing outcome. seq is written by the
// sequencer in phase A; shard by exactly one route worker in phase B; both
// are read by the sequencer in phase C. The phase barriers (job handoff
// and completion signals) order those accesses.
type routeDecision struct {
	seq   uint64
	shard int32
}

// decideFlow resolves one flow's target shard (or drop class) as of pin.
// Pure with respect to dispatcher state: safe from any route worker.
func (sp *ShardedPipeline) decideFlow(r *flow.Record, pin uint64) int32 {
	if mac, ok := sp.clientMACAt(r.OrigAddr, r.Start, pin); ok {
		return int32(macShard(mac, len(sp.shards)))
	}
	if !sp.opts.DisableTapFilter && sp.reg.TapExcluded(r.RespAddr) {
		return decDropTap
	}
	if _, ok := campus.DayOf(r.Start); !ok {
		return decDropWindow
	}
	return decDropUnattr
}

// decideHTTP resolves one HTTP entry's target shard (or decDropHTTP) as of
// pin. Pure with respect to dispatcher state: safe from any route worker.
func (sp *ShardedPipeline) decideHTTP(e *httplog.Entry, pin uint64) int32 {
	if mac, ok := sp.clientMACAt(e.Client, e.Time, pin); ok {
		return int32(macShard(mac, len(sp.shards)))
	}
	return decDropHTTP
}

// decideRange computes phase-B decisions for events[lo:hi). Broadcast
// events were fully handled in phase A and are skipped here.
func (sp *ShardedPipeline) decideRange(events []trace.Event, decs []routeDecision, lo, hi int) {
	for i := lo; i < hi; i++ {
		ev := &events[i]
		switch ev.Kind {
		case trace.EventFlow:
			decs[i].shard = sp.decideFlow(&ev.Flow, decs[i].seq)
		case trace.EventHTTP:
			decs[i].shard = sp.decideHTTP(&ev.HTTP, decs[i].seq)
		}
	}
}

// routeJob is one phase-B work slice handed to a route worker.
type routeJob struct {
	events []trace.Event
	decs   []routeDecision
	lo, hi int
}

// routePool runs phase B across persistent worker goroutines. The
// sequencer participates: with k total route lanes it hands k-1 chunks to
// workers and decides the first chunk itself, so the pool adds k-1
// goroutines, not k. A nil pool (or a short run) means the sequencer
// decides everything inline.
type routePool struct {
	sp   *ShardedPipeline
	jobs []chan routeJob
	done chan struct{}
}

// routeParallelMin is the run length below which phase B runs inline on
// the sequencer: the fixed cost of a parallel round (one channel send and
// one completion receive per worker) outweighs the route work of a short
// run.
const routeParallelMin = 128

// newRoutePool starts lanes-1 route workers (lanes ≥ 2).
func newRoutePool(sp *ShardedPipeline, lanes int) *routePool {
	p := &routePool{
		sp:   sp,
		jobs: make([]chan routeJob, lanes-1),
		done: make(chan struct{}, lanes-1),
	}
	for i := range p.jobs {
		ch := make(chan routeJob)
		p.jobs[i] = ch
		go func() {
			for j := range ch {
				sp.decideRange(j.events, j.decs, j.lo, j.hi)
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// run executes phase B over the whole run, splitting it into one
// contiguous chunk per lane. Returns only after every decision slot in
// [0, len(events)) is written.
func (p *routePool) run(events []trace.Event, decs []routeDecision) {
	n := len(events)
	lanes := len(p.jobs) + 1
	chunk := (n + lanes - 1) / lanes
	sent := 0
	for i, ch := range p.jobs {
		lo := (i + 1) * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ch <- routeJob{events: events, decs: decs, lo: lo, hi: hi}
		sent++
	}
	// The sequencer decides the first chunk on its own core while the
	// workers run theirs.
	first := chunk
	if first > n {
		first = n
	}
	p.sp.decideRange(events, decs, 0, first)
	for i := 0; i < sent; i++ {
		<-p.done
	}
}

// close stops the workers. Must not race run; Finalize calls it after the
// last EventBatch.
func (p *routePool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// routeLanes picks the phase-B parallelism: one lane per available
// processor, capped — route work is a minority share of an event's total
// cost, so a few lanes saturate the sequencer long before the shard
// workers run out of feed, and every extra lane competes with those
// workers for cores.
func routeLanes() int {
	lanes := runtime.GOMAXPROCS(0)
	if lanes > 4 {
		lanes = 4
	}
	return lanes
}
