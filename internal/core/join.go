package core

import (
	"net/netip"
	"time"

	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/packet"
)

// joinState is the DNS-label / DHCP-lease join state behind Pipeline's hot
// path. A single Pipeline owns private tables it mutates through its own
// DNS/Lease sink methods (localJoin); a shard of a ShardedPipeline holds a
// read-only, sequence-pinned view over the dispatcher-owned shared stores
// (snapshotJoin), so the join tables exist once per run instead of once
// per shard.
type joinState interface {
	// label resolves the domain a server address meant at time t.
	label(server netip.Addr, t time.Time) (string, bool)
	// leaseMAC resolves the device MAC bound to a client address at t.
	leaseMAC(addr netip.Addr, t time.Time) (packet.MAC, bool)
	// observeDNS / observeLease fold broadcast mutations in. Only the
	// write-owning side may call them: the single pipeline for localJoin,
	// nobody for snapshotJoin (the dispatcher writes the stores directly).
	observeDNS(e dnssim.Entry)
	observeLease(l dhcp.Lease)
}

// localJoin is the single-pipeline join: private labeler and lease index,
// mutated in stream order by the same goroutine that resolves flows.
type localJoin struct {
	labeler  *dnssim.Labeler
	leaseIdx leaseIndex
}

func newLocalJoin() *localJoin {
	return &localJoin{labeler: dnssim.NewLabeler(), leaseIdx: make(leaseIndex)}
}

func (j *localJoin) label(server netip.Addr, t time.Time) (string, bool) {
	return j.labeler.Label(server, t)
}

func (j *localJoin) leaseMAC(addr netip.Addr, t time.Time) (packet.MAC, bool) {
	return j.leaseIdx.lookup(addr, t)
}

func (j *localJoin) observeDNS(e dnssim.Entry) { j.labeler.Observe(e) }
func (j *localJoin) observeLease(l dhcp.Lease) { j.leaseIdx.observe(l) }

// snapshotJoin is the shard-side join: a read-only view over the
// dispatcher's shared epoch-versioned stores, pinned to the broadcast
// sequence number of the event being applied. The shard worker sets pin
// before each Flow/HTTPMeta call; one snapshotJoin belongs to exactly one
// worker goroutine, so the field needs no synchronization. Pinning makes
// every lookup see exactly the table state a single pipeline would have
// had when this event arrived in the stream — broadcasts enqueued after
// the event stay invisible even though the shared stores already hold
// them.
type snapshotJoin struct {
	labels *dnssim.LabelStore
	leases *dhcp.LeaseStore
	pin    uint64
}

func (j *snapshotJoin) label(server netip.Addr, t time.Time) (string, bool) {
	return j.labels.LabelAt(server, t, j.pin)
}

func (j *snapshotJoin) leaseMAC(addr netip.Addr, t time.Time) (packet.MAC, bool) {
	return j.leases.LookupAt(addr, t, j.pin)
}

func (j *snapshotJoin) observeDNS(dnssim.Entry) {
	panic("core: broadcast reached a shard pipeline; join tables are dispatcher-owned")
}

func (j *snapshotJoin) observeLease(dhcp.Lease) {
	panic("core: broadcast reached a shard pipeline; join tables are dispatcher-owned")
}
