package core

import (
	"testing"

	"repro/internal/campus"
	"repro/internal/devclass"
	"repro/internal/geo"
	"repro/internal/trace"
	"repro/internal/universe"
)

// runSmall drives a small-scale generated workload end to end.
func runSmall(t testing.TB, scale float64, opts Options) (*Dataset, *trace.Generator, *Pipeline) {
	t.Helper()
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = scale
	g, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Key == nil {
		opts.Key = []byte("integration-test-key-0123456789abcdef")
	}
	p, err := NewPipeline(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Run(p); err != nil {
		t.Fatal(err)
	}
	return p.Finalize(), g, p
}

func TestEndToEndSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window integration run")
	}
	ds, g, p := runSmall(t, 0.01, Options{})
	st := ds.Stats

	if st.FlowsProcessed == 0 || st.DNSEntries == 0 || st.Leases == 0 || st.HTTPEntries == 0 {
		t.Fatalf("pipeline saw nothing: %+v", st)
	}
	// The tap filter must have dropped traffic to excluded networks.
	if st.FlowsTapDropped == 0 {
		t.Error("no tap-excluded flows dropped; generator should emit some")
	}
	// Every flow should be attributable (generator leases before flows).
	if st.FlowsUnattributed > st.FlowsProcessed/100 {
		t.Errorf("%d unattributed flows of %d", st.FlowsUnattributed, st.FlowsProcessed)
	}
	if len(ds.Devices) == 0 {
		t.Fatal("no devices in dataset")
	}

	// Reconcile device census with generator ground truth: devices that
	// were present and produced traffic should appear.
	truth := g.Devices()
	found := 0
	for _, d := range truth {
		if ds.Device(p.DeviceID(d.MAC)) != nil {
			found++
		}
	}
	if float64(found) < 0.9*float64(len(truth)) {
		t.Errorf("only %d/%d ground-truth devices surfaced", found, len(truth))
	}

	// Post-shutdown population: nonzero, smaller than total, and matching
	// ground truth stayers approximately.
	post := ds.PostShutdownUsers()
	if len(post) == 0 || len(post) >= len(ds.Devices) {
		t.Fatalf("post-shutdown population = %d of %d", len(post), len(ds.Devices))
	}
	stayers := 0
	for _, d := range truth {
		if d.Stays() && d.ArriveDay == 0 {
			stayers++
		}
	}
	ratio := float64(len(post)) / float64(stayers)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("post-shutdown %d vs ground-truth stayers %d (ratio %.2f)", len(post), stayers, ratio)
	}

	// Classification sanity: every class present; unclassified exists.
	byType := map[devclass.Type]int{}
	for _, d := range ds.Devices {
		byType[d.Type]++
	}
	for _, ty := range devclass.Types {
		if byType[ty] == 0 {
			t.Errorf("no devices classified %v", ty)
		}
	}

	// Geo split: both populations present among post-shutdown users.
	geoCount := map[geo.Classification]int{}
	for _, d := range post {
		geoCount[d.Geo]++
	}
	if geoCount[geo.International] == 0 {
		t.Error("no international devices identified")
	}
	if geoCount[geo.Domestic] == 0 {
		t.Error("no domestic devices identified")
	}
	if geoCount[geo.International] >= geoCount[geo.Domestic] {
		t.Errorf("international (%d) should be the minority (domestic %d)",
			geoCount[geo.International], geoCount[geo.Domestic])
	}

	// Switch detection ≈ ground truth switches that produced traffic.
	truthSwitches := 0
	for _, d := range truth {
		if d.Kind == trace.KindSwitch {
			truthSwitches++
		}
	}
	detected := 0
	for _, d := range ds.Devices {
		if d.IsSwitch {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no switches detected")
	}
	if detected < truthSwitches*7/10 || detected > truthSwitches*13/10 {
		t.Errorf("detected %d switches, ground truth %d", detected, truthSwitches)
	}

	// Zoom: daily zoom bytes concentrated in the online term.
	var zoomPre, zoomPost float64
	breakEnd, _ := campus.DayOf(campus.BreakEnd)
	for _, d := range post {
		for day, v := range d.ZoomDaily {
			if campus.Day(day) < breakEnd {
				zoomPre += float64(v)
			} else {
				zoomPost += float64(v)
			}
		}
	}
	if zoomPost < 10*zoomPre {
		t.Errorf("zoom pre=%.0f post=%.0f; expected online-term dominance", zoomPre, zoomPost)
	}

	// Social sessions recorded for post-shutdown mobiles.
	anySocial := false
	for _, d := range post {
		for m := campus.February; m < campus.NumMonths; m++ {
			for a := 0; a < 3; a++ {
				if d.Social[m][a].Sessions > 0 {
					anySocial = true
				}
			}
		}
	}
	if !anySocial {
		t.Error("no social sessions recorded")
	}

	// Distinct sites grew Feb → Apr/May for post-shutdown users.
	var febSites, postSites, n float64
	for _, d := range post {
		if d.SitesFeb > 0 && d.SitesAprMay > 0 {
			febSites += float64(d.SitesFeb)
			postSites += float64(d.SitesAprMay)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no devices with sites in both periods")
	}
	if postSites <= febSites {
		t.Errorf("distinct sites did not grow: feb=%.0f post=%.0f", febSites, postSites)
	}
}

func TestVisitorFilterApplied(t *testing.T) {
	if testing.Short() {
		t.Skip("full-window integration run")
	}
	ds, g, p := runSmall(t, 0.01, Options{Key: []byte("another-32-byte-key-abcdefgh-0123")})
	// Ground-truth visitors (short spans) must not be Resident.
	leaky := 0
	visitors := 0
	for _, d := range g.Devices() {
		if int(d.DepartDay-d.ArriveDay) <= 8 {
			visitors++
			if dd := ds.Device(p.DeviceID(d.MAC)); dd != nil && dd.Resident {
				leaky++
			}
		}
	}
	if visitors == 0 {
		t.Skip("no visitors at this scale")
	}
	if leaky > 0 {
		t.Errorf("%d/%d visitors passed the 14-day filter", leaky, visitors)
	}
}

func TestFinalizeTwicePanics(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(reg, Options{Key: []byte("0123456789abcdef0123456789abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	p.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("second Finalize did not panic")
		}
	}()
	p.Finalize()
}

func TestPipelineDeterministicWithFixedKey(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	run := func() (int, int64) {
		ds, _, _ := runSmall(t, 0.005, Options{Key: []byte("fixed-key-fixed-key-fixed-key-00")})
		return len(ds.Devices), ds.Stats.BytesProcessed
	}
	n1, b1 := run()
	n2, b2 := run()
	if n1 != n2 || b1 != b2 {
		t.Errorf("nondeterministic: %d/%d devices, %d/%d bytes", n1, n2, b1, b2)
	}
}
