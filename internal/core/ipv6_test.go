package core

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/campus"
	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/universe"
)

func TestEUI64RoundTripProperty(t *testing.T) {
	f := func(raw [6]byte) bool {
		m := packet.MAC(raw)
		addr := m.EUI64Addr(universe.ResidenceNetV6)
		if !universe.ResidenceNetV6.Contains(addr) {
			return false
		}
		back, ok := packet.MACFromEUI64(addr)
		return ok && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACFromEUI64Rejections(t *testing.T) {
	// IPv4 address.
	if _, ok := packet.MACFromEUI64(clientIP); ok {
		t.Error("IPv4 address yielded a MAC")
	}
	// Privacy-extension style address (no ff:fe marker).
	m := packet.MustParseMAC("00:1b:21:01:02:03")
	addr := m.EUI64Addr(universe.ResidenceNetV6)
	b := addr.As16()
	b[11], b[12] = 0xab, 0xcd
	if _, ok := packet.MACFromEUI64(addrFrom16(b)); ok {
		t.Error("privacy-style IID yielded a MAC")
	}
}

func TestIPv6FlowAttributesViaEUI64(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	// No DHCP lease at all: the device's v6 flows must still attribute
	// via the embedded MAC.
	v6src := testMAC.EUI64Addr(universe.ResidenceNetV6)
	server, ok := reg.ResolveIPv6("facebook.com", 3)
	if !ok {
		t.Fatal("no AAAA for facebook.com")
	}
	rec := flow.Record{
		Start: campus.StudyStart.Add(time.Hour), Duration: time.Minute,
		OrigAddr: v6src, OrigPort: 50000,
		RespAddr: server, RespPort: 443,
		Proto: flow.ProtoTCP, OrigBytes: 100, RespBytes: 900,
		OrigPkts: 1, RespPkts: 1,
	}
	p.Flow(rec)
	if st := p.Stats(); st.FlowsProcessed != 1 || st.FlowsUnattributed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// And it merges with the same device's v4 traffic under one pseudonym.
	p.Lease(leaseFor(campus.StudyStart))
	v4server, _ := reg.ResolveIP("facebook.com", 3)
	rec4 := rec
	rec4.Start = campus.StudyStart.Add(2 * time.Hour)
	rec4.OrigAddr = clientIP
	rec4.RespAddr = v4server
	p.Flow(rec4)
	ds := p.Finalize()
	if len(ds.Devices) != 1 {
		t.Fatalf("v4+v6 traffic split across %d devices", len(ds.Devices))
	}
	if ds.Devices[0].Flows != 2 {
		t.Errorf("flows = %d, want 2", ds.Devices[0].Flows)
	}
}

func TestIPv6ServerGeolocates(t *testing.T) {
	p, reg := newBarePipeline(t, Options{})
	v6src := testMAC.EUI64Addr(universe.ResidenceNetV6)
	// February flows to a foreign v6 service: the midpoint classifier
	// must see them.
	bili, ok := reg.ResolveIPv6("hdslb.com", 1)
	if !ok {
		t.Fatal("no AAAA for hdslb.com")
	}
	p.Flow(flow.Record{
		Start: campus.StudyStart.Add(time.Hour), Duration: time.Minute,
		OrigAddr: v6src, OrigPort: 50001,
		RespAddr: bili, RespPort: 443,
		Proto: flow.ProtoTCP, OrigBytes: 10, RespBytes: 1 << 30,
		OrigPkts: 1, RespPkts: 1,
	})
	ds := p.Finalize()
	if len(ds.Devices) != 1 {
		t.Fatal("no device")
	}
	if got := ds.Devices[0].Geo.String(); got != "international" {
		t.Errorf("v6-only foreign traffic classified %q", got)
	}
}

func TestGeneratedWorkloadCarriesIPv6(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	ds, _, _ := runSmall(t, 0.004, Options{Key: []byte("ipv6-share-test-key-0123456789abcd")})
	// The pipeline must have processed flows and nothing v6 should have
	// been unattributed (EUI-64 extraction covers the generator's SLAAC
	// addresses).
	if ds.Stats.FlowsUnattributed > ds.Stats.FlowsProcessed/100 {
		t.Errorf("unattributed %d of %d", ds.Stats.FlowsUnattributed, ds.Stats.FlowsProcessed)
	}
}

func addrFrom16(b [16]byte) netip.Addr { return netip.AddrFrom16(b) }
