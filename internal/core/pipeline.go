// Package core is the measurement pipeline itself — the reproduction of the
// system described in §3 of the paper (DeKoven et al.'s passive monitoring
// infrastructure as used by Ukani et al.).
//
// The pipeline consumes the capture's artifact streams in time order:
//
//	flows      — Zeek-style conn records mirrored from the residence switch
//	DNS log    — campus resolver queries (for IP → domain labeling)
//	DHCP log   — lease bindings (for IP → device/MAC normalization)
//	HTTP log   — cleartext User-Agent metadata (for device classification)
//
// and applies, in one streaming pass: the tap's excluded-network filter,
// DHCP normalization, keyed pseudonymization (raw identifiers never leave
// this package), DNS labeling, application signature matching with session
// stitching, device classification evidence collection, February midpoint
// geolocation, and per-device/per-day/per-app aggregation. Finalize turns
// the accumulated state into an immutable Dataset that the experiments
// interrogate.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/anonymize"
	"repro/internal/appsig"
	"repro/internal/campus"
	"repro/internal/devclass"
	"repro/internal/dhcp"
	"repro/internal/dnssim"
	"repro/internal/flow"
	"repro/internal/geo"
	"repro/internal/httplog"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/universe"
)

// Options configures a Pipeline. Zero value fields take defaults.
type Options struct {
	// Key is the pseudonymization key; nil draws a random one (the
	// production configuration — results are unlinkable across runs).
	Key []byte
	// SessionGap is the stitcher's merge gap (default 0: strictly
	// overlapping flows, as in the paper).
	SessionGap time.Duration
	// IoTThreshold is the Saidi detection threshold (default 0.5).
	IoTThreshold float64
	// IncludeCDNsInMidpoint disables the §4.2 CDN exclusion (ablation).
	IncludeCDNsInMidpoint bool
	// DisableTapFilter processes flows to excluded networks instead of
	// dropping them (ablation).
	DisableTapFilter bool
	// Obs receives per-stage counters and sampled timings; nil disables
	// instrumentation entirely (zero-allocation fast path). A sharded
	// pipeline shares one Metrics across every shard — all counters are
	// atomic.
	Obs *obs.Metrics
}

// Stats counts what the pipeline saw and filtered.
type Stats struct {
	FlowsProcessed    int64
	FlowsTapDropped   int64
	FlowsUnattributed int64 // no DHCP binding for the client address
	FlowsUnlabeled    int64 // no DNS label for the server address
	FlowsOutOfWindow  int64
	DNSEntries        int64
	HTTPEntries       int64
	Leases            int64
	BytesProcessed    int64
}

// Pipeline is the streaming ingest engine. It implements trace.Sink, so a
// generator can drive it directly; the log-file readers in cmd/ drive it
// identically. Not safe for concurrent use.
type Pipeline struct {
	opts    Options
	reg     *universe.Registry
	geoDB   *geo.DB
	matcher *appsig.Matcher
	pseudo  *anonymize.Pseudonymizer

	// join is the DNS/DHCP join state: private tables for a single
	// pipeline, a sequence-pinned view over the dispatcher's shared
	// stores for a shard (see join.go).
	join      joinState
	presence  *anonymize.PresenceTracker
	stitcher  *appsig.Stitcher
	switchDet *appsig.SwitchDetector
	geoCls    *geo.Classifier
	// geoClsAblate runs the same midpoints with the CDN-exclusion setting
	// inverted, so the §4.2 ablation is available from every Dataset.
	geoClsAblate *geo.Classifier
	iotDet       *devclass.IoTDetector
	classifier   *devclass.Classifier
	sigDomains   map[string]bool // union of IoT signature domains
	domainBit    map[string]int  // registered domain -> bitmap index

	devices map[anonymize.DeviceID]*deviceState
	// idCache memoizes the keyed-HMAC pseudonym per MAC: the mapping is
	// deterministic under one key, and computing it per flow would put
	// SHA-256 on the hot path.
	idCache map[packet.MAC]anonymize.DeviceID
	weeks   [4]weekWindow

	// om is the observability sink (nil when disabled; see Options.Obs).
	om *obs.Metrics

	// Incremental day-seal state (see partial.go): dayAccum collects the
	// current day's mergeable summary, touched the devices mutated since
	// the last seal (a device is on the list iff its sealEpoch equals
	// curSeal), lastSealStats the cumulative Stats at the last seal.
	dayAccum      *stats.Partial
	touched       []anonymize.DeviceID
	curSeal       int
	lastSealStats Stats

	stats     Stats
	finalized bool
}

type weekWindow struct {
	start time.Time
	end   time.Time
}

// CategoryGroup is the coarse work/leisure taxonomy used by the
// category-share extension analysis.
type CategoryGroup int

// Category groups.
const (
	GroupWork   CategoryGroup = iota // education, conferencing, campus
	GroupVideo                       // video streaming
	GroupSocial                      // social media, messaging
	GroupGaming                      // gaming platforms and consoles
	GroupOther                       // web, news, music, infra, iot
	NumGroups
)

// String returns the group label.
func (g CategoryGroup) String() string {
	switch g {
	case GroupWork:
		return "work"
	case GroupVideo:
		return "video"
	case GroupSocial:
		return "social"
	case GroupGaming:
		return "gaming"
	default:
		return "other"
	}
}

// groupOfCategory maps a universe category to its group.
func groupOfCategory(c universe.Category) CategoryGroup {
	switch c {
	case universe.CatEducation, universe.CatConferencing, universe.CatCampus:
		return GroupWork
	case universe.CatVideo:
		return GroupVideo
	case universe.CatSocial, universe.CatMessaging:
		return GroupSocial
	case universe.CatGaming:
		return GroupGaming
	default:
		return GroupOther
	}
}

// deviceState is everything accumulated for one device.
type deviceState struct {
	mac         packet.MAC
	daily       []float32 // bytes per study day
	zoom        []float32
	gameplay    []float32 // nil until nintendo gameplay seen
	hourWeek    [4][]float32
	groupBytes  [campus.NumMonths][NumGroups]int64
	zoomHourly  [2][24]float32 // [weekday, weekend] × hour, online term
	sitesFeb    domainBitmap
	sitesAprMay domainBitmap
	uas         map[string]struct{}
	sigDomains  map[string]bool
	social      [campus.NumMonths][3]SocialMonth
	steam       [campus.NumMonths]SteamMonth
	flows       int64
	// sealEpoch marks the seal generation that last mutated this device;
	// equal to the pipeline's curSeal iff the device is on the touched
	// list for the day in progress.
	sealEpoch int
}

// SocialMonth is one device's monthly usage of one social platform.
type SocialMonth struct {
	Duration time.Duration
	Sessions int
}

// SteamMonth is one device's monthly Steam usage.
type SteamMonth struct {
	Bytes       int64
	Connections int
}

// domainBitmap tracks which registered domains a device visited.
type domainBitmap [6]uint64

func (b *domainBitmap) set(i int) {
	if i >= 0 && i < len(b)*64 {
		b[i/64] |= 1 << (uint(i) % 64)
	}
}

func (b *domainBitmap) count() int {
	n := 0
	for _, w := range b {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// NewPipeline builds a pipeline over the given universe registry (which
// provides the tap-exclusion table, the geolocation feed, and the Zoom IP
// list).
func NewPipeline(reg *universe.Registry, opts Options) (*Pipeline, error) {
	return newPipeline(reg, opts, nil)
}

// newPipeline builds a pipeline over the given join state; nil selects a
// private localJoin (the single-pipeline configuration). The sharded
// dispatcher passes each shard a snapshotJoin over its shared stores.
func newPipeline(reg *universe.Registry, opts Options, join joinState) (*Pipeline, error) {
	var pseudo *anonymize.Pseudonymizer
	var err error
	if opts.Key != nil {
		pseudo, err = anonymize.NewPseudonymizer(opts.Key)
	} else {
		pseudo, err = anonymize.NewRandomPseudonymizer()
	}
	if err != nil {
		return nil, err
	}
	var zoomNets []netip.Prefix
	for _, pi := range reg.Prefixes() {
		if pi.Owner == "zoom" {
			zoomNets = append(zoomNets, pi.Prefix)
		}
	}
	if len(zoomNets) == 0 {
		return nil, fmt.Errorf("core: registry missing zoom prefixes")
	}
	sigs := devclass.SignaturesFromRegistry(reg)
	iotDet := devclass.NewIoTDetector(opts.IoTThreshold, sigs)
	sigDomains := make(map[string]bool)
	for _, s := range sigs {
		for _, d := range s.Domains {
			sigDomains[d] = true
		}
	}
	domains := reg.Domains()
	sort.Strings(domains)
	domainBit := make(map[string]int, len(domains))
	for i, d := range domains {
		domainBit[d] = i
	}
	if len(domains) > len(domainBitmap{})*64 {
		return nil, fmt.Errorf("core: %d domains exceed bitmap capacity", len(domains))
	}

	if join == nil {
		join = newLocalJoin()
	}
	p := &Pipeline{
		opts:       opts,
		reg:        reg,
		geoDB:      geo.FromRegistry(reg),
		matcher:    appsig.NewMatcher(zoomNets),
		pseudo:     pseudo,
		join:       join,
		presence:   anonymize.NewPresenceTracker(),
		switchDet:  appsig.NewSwitchDetector(),
		iotDet:     iotDet,
		classifier: devclass.NewClassifier(iotDet),
		sigDomains: sigDomains,
		domainBit:  domainBit,
		devices:    make(map[anonymize.DeviceID]*deviceState),
		idCache:    make(map[packet.MAC]anonymize.DeviceID),
		om:         opts.Obs,
	}
	p.geoCls = geo.NewClassifier(p.geoDB)
	p.geoCls.IncludeCDNs = opts.IncludeCDNsInMidpoint
	p.geoClsAblate = geo.NewClassifier(p.geoDB)
	p.geoClsAblate.IncludeCDNs = !opts.IncludeCDNsInMidpoint
	p.stitcher = appsig.NewStitcher(opts.SessionGap, p.onSession)
	for i, anchor := range campus.FigureWeeks {
		p.weeks[i] = weekWindow{start: anchor, end: anchor.Add(7 * 24 * time.Hour)}
	}
	// Seal generations start at 1 so a freshly allocated deviceState
	// (sealEpoch 0) always registers as touched.
	p.curSeal = 1
	p.dayAccum = newDayAccum()
	return p, nil
}

// DeviceID exposes the pseudonym for a MAC — used on every flow internally
// and by validation harnesses that compare against generator ground truth.
func (p *Pipeline) DeviceID(m packet.MAC) anonymize.DeviceID {
	if id, ok := p.idCache[m]; ok {
		return id
	}
	id := p.pseudo.Device(m)
	p.idCache[m] = id
	return id
}

// device returns (allocating on first sight) the mutable state for a
// pseudonym. Every state mutation goes through here — the flow path, the
// HTTP path, and session accounting — so it doubles as the touched-device
// hook: the first access per seal generation records the device on the
// day's touched list, which is exactly the set a delta snapshot must
// re-render.
func (p *Pipeline) device(id anonymize.DeviceID) *deviceState {
	d := p.devices[id]
	if d == nil {
		d = &deviceState{
			daily: make([]float32, campus.NumDays),
			zoom:  make([]float32, campus.NumDays),
		}
		p.devices[id] = d
	}
	if d.sealEpoch != p.curSeal {
		d.sealEpoch = p.curSeal
		p.touched = append(p.touched, id)
	}
	return d
}

// leaseIndex is an append-only, time-aware IP→MAC index over lease
// bindings arriving in non-decreasing start order.
type leaseIndex map[netip.Addr][]dhcp.Lease

// observe folds one binding in, coalescing renewals of the same holder.
func (idx leaseIndex) observe(l dhcp.Lease) {
	spans := idx[l.Addr]
	if n := len(spans); n > 0 && spans[n-1].MAC == l.MAC && !l.Start.After(spans[n-1].End) {
		if l.End.After(spans[n-1].End) {
			spans[n-1].End = l.End
		}
		idx[l.Addr] = spans
		return
	}
	idx[l.Addr] = append(spans, l)
}

// lookup resolves a client address at a time. Spans arrive in start order
// and, for a healthy DHCP server, never nest (a renewal extends the same
// span; a different device only gets the address after expiry), so once a
// span ends before t no older span can contain it.
func (idx leaseIndex) lookup(addr netip.Addr, t time.Time) (packet.MAC, bool) {
	spans := idx[addr]
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Contains(t) {
			return spans[i].MAC, true
		}
		if t.After(spans[i].End) {
			break
		}
	}
	return packet.MAC{}, false
}

// Lease implements trace.Sink: index a DHCP binding. Bindings must arrive
// in non-decreasing start order.
func (p *Pipeline) Lease(l dhcp.Lease) {
	p.stats.Leases++
	p.om.Add(obs.StageIngest, 0)
	p.join.observeLease(l)
}

// lookupMAC resolves a client address at a time: DHCP leases for IPv4,
// EUI-64 extraction for SLAAC-configured IPv6 residence addresses (no
// DHCPv6 logs exist; the interface identifier carries the MAC directly).
func (p *Pipeline) lookupMAC(addr netip.Addr, t time.Time) (packet.MAC, bool) {
	if mac, ok := p.join.leaseMAC(addr, t); ok {
		return mac, true
	}
	if universe.ResidenceNetV6.Contains(addr) {
		return packet.MACFromEUI64(addr)
	}
	return packet.MAC{}, false
}

// DNS implements trace.Sink: feed the labeler.
func (p *Pipeline) DNS(e dnssim.Entry) {
	p.stats.DNSEntries++
	p.om.Add(obs.StageIngest, 0)
	p.join.observeDNS(e)
}

// HTTPMeta implements trace.Sink: collect User-Agent evidence.
func (p *Pipeline) HTTPMeta(e httplog.Entry) {
	p.stats.HTTPEntries++
	p.om.Add(obs.StageIngest, 0)
	mac, ok := p.lookupMAC(e.Client, e.Time)
	if !ok || e.UserAgent == "" {
		return
	}
	d := p.device(p.DeviceID(mac))
	d.mac = mac
	if d.uas == nil {
		d.uas = make(map[string]struct{}, 4)
	}
	if len(d.uas) < 8 {
		d.uas[e.UserAgent] = struct{}{}
	}
}

// Flow implements trace.Sink: the main ingest path.
//
// Observability (when Options.Obs is set) counts the flow at every stage
// and, for a sampled subset, laps a timer across the stage boundaries. The
// out-of-window drop is attributed to the tap-filter stage (both are
// capture-boundary cuts). With a nil Metrics every instrumentation call is
// an inlined nil-check no-op — the nil-receiver contract package obs
// documents and the obsnil analyzer enforces — so instrumentation calls
// are made bare, never wrapped in a redundant `if m != nil` guard.
func (p *Pipeline) Flow(r flow.Record) {
	m := p.om
	t := m.Now()
	m.Add(obs.StageIngest, r.TotalBytes())
	// The tap's excluded high-volume networks never reach the pipeline.
	if !p.opts.DisableTapFilter && p.reg.TapExcluded(r.RespAddr) {
		p.stats.FlowsTapDropped++
		m.Drop(obs.StageTapFilter)
		return
	}
	day, ok := campus.DayOf(r.Start)
	if !ok {
		p.stats.FlowsOutOfWindow++
		m.Drop(obs.StageTapFilter)
		return
	}
	m.Add(obs.StageTapFilter, 0)
	t = m.Lap(obs.StageTapFilter, t)
	mac, ok := p.lookupMAC(r.OrigAddr, r.Start)
	if !ok {
		p.stats.FlowsUnattributed++
		m.Drop(obs.StageDHCPNormalize)
		return
	}
	p.stats.FlowsProcessed++
	bytes := r.TotalBytes()
	p.stats.BytesProcessed += bytes

	id := p.DeviceID(mac)
	m.Add(obs.StageDHCPNormalize, 0)
	m.Add(obs.StageAggregate, bytes)
	t = m.Lap(obs.StageDHCPNormalize, t)
	p.presence.Observe(id, day)
	p.dayAccum.Observe(uint64(id), bytes)
	p.dayAccum.Hours.Add(uint64(id), campus.HourOfWeek(r.Start), float64(bytes))
	d := p.device(id)
	d.mac = mac
	d.flows++
	d.daily[day] += float32(bytes)

	// Hour-of-week accumulation for the Figure 3 weeks.
	for w := range campus.FigureWeeks {
		if !r.Start.Before(p.weeks[w].start) && r.Start.Before(p.weeks[w].end) {
			if d.hourWeek[w] == nil {
				d.hourWeek[w] = make([]float32, campus.HoursPerWeek)
			}
			d.hourWeek[w][campus.HourOfWeek(r.Start)] += float32(bytes)
		}
	}

	t = m.Lap(obs.StageAggregate, t)

	// Domain labeling via the DNS join.
	domain, labeled := p.join.label(r.RespAddr, r.Start)
	if !labeled {
		p.stats.FlowsUnlabeled++
		m.Drop(obs.StageDNSLabel)
	} else {
		m.Add(obs.StageDNSLabel, 0)
	}
	t = m.Lap(obs.StageDNSLabel, t)

	month, inMonth := campus.MonthOf(r.Start)

	// Distinct-site tracking (§4.1): February vs April+May.
	if bit, known := p.domainBit[domain]; known && labeled {
		switch {
		case month == campus.February:
			d.sitesFeb.set(bit)
		case month == campus.April || month == campus.May:
			d.sitesAprMay.set(bit)
		}
	}

	// February geolocation midpoint (§4.2), plus its ablation twin.
	if month == campus.February {
		p.geoCls.AddFlow(uint64(id), r.RespAddr, bytes)
		p.geoClsAblate.AddFlow(uint64(id), r.RespAddr, bytes)
	}

	// IoT signature evidence.
	if labeled && p.sigDomains[domain] {
		if d.sigDomains == nil {
			d.sigDomains = make(map[string]bool, 4)
		}
		d.sigDomains[domain] = true
	}

	// Switch detection sees every flow (it needs the total-bytes
	// denominator).
	p.switchDet.AddFlow(uint64(id), domain, bytes)
	t = m.Lap(obs.StageAggregate, t)

	// Application accounting.
	app, matched := p.matcher.App(domain, r.RespAddr)
	if matched {
		m.Add(obs.StageAppsigMatch, bytes)
	} else {
		m.Drop(obs.StageAppsigMatch)
	}
	t = m.Lap(obs.StageAppsigMatch, t)

	// Work/leisure category accounting (extension analysis). Zoom media
	// flows connect by direct IP outside the domain-mapped space, so the
	// app match overrides the registry's category.
	if inMonth {
		group := GroupOther
		if app == appsig.AppZoom {
			group = GroupWork
		} else if info, ok := p.reg.LookupAddr(r.RespAddr); ok {
			group = groupOfCategory(info.Service.Category)
		}
		d.groupBytes[month][group] += bytes
	}

	if !matched {
		m.Lap(obs.StageAggregate, t)
		return
	}
	switch app {
	case appsig.AppZoom:
		d.zoom[day] += float32(bytes)
		if campus.PhaseOf(r.Start) == campus.OnlineTerm {
			idx := 0
			if day.IsWeekend() {
				idx = 1
			}
			d.zoomHourly[idx][r.Start.In(campus.Timezone).Hour()] += float32(bytes)
		}
	case appsig.AppFacebook, appsig.AppInstagram, appsig.AppTikTok:
		m.Add(obs.StageSessionStitch, bytes)
		ts := m.Now()
		p.stitcher.Add(uint64(id), app, domain, r.Start, r.Duration, bytes)
		m.Lap(obs.StageSessionStitch, ts)
	case appsig.AppSteam:
		if inMonth {
			d.steam[month].Bytes += bytes
			d.steam[month].Connections++
		}
	case appsig.AppNintendo:
		if appsig.ClassifyNintendo(domain) == appsig.NintendoGameplayTraffic {
			if d.gameplay == nil {
				d.gameplay = make([]float32, campus.NumDays)
			}
			d.gameplay[day] += float32(bytes)
		}
	}
	m.Lap(obs.StageAggregate, t)
}

// onSession receives stitched sessions and accounts monthly durations.
func (p *Pipeline) onSession(s appsig.Session) {
	month, idx, ok := sessionCell(s)
	if !ok {
		return
	}
	d := p.device(anonymize.DeviceID(s.Device))
	d.social[month][idx].Duration += s.Duration()
	d.social[month][idx].Sessions++
}

// sessionCell resolves the (month, social-app column) a stitched session
// accounts to; ok is false for sessions outside the study months or apps
// not tracked by Figure 6. Shared by final accounting (onSession) and the
// snapshot overlay of still-open sessions, so both attribute identically.
func sessionCell(s appsig.Session) (campus.Month, int, bool) {
	month, ok := campus.MonthOf(s.Start)
	if !ok {
		return 0, 0, false
	}
	idx := socialIndex(s.App)
	if idx < 0 {
		return 0, 0, false
	}
	return month, idx, true
}

// socialIndex maps an app name to its Figure 6 column.
func socialIndex(app string) int {
	switch app {
	case appsig.AppFacebook:
		return 0
	case appsig.AppInstagram:
		return 1
	case appsig.AppTikTok:
		return 2
	default:
		return -1
	}
}

// Stats returns ingest counters.
func (p *Pipeline) Stats() Stats { return p.stats }
