package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/universe"
)

// obsFixtureKey keeps instrumented runs comparable across pipelines.
var obsFixtureKey = []byte("obs-counter-accuracy-key-0123456789")

func stageByName(t *testing.T, s obs.Snapshot, name string) obs.StageSnapshot {
	t.Helper()
	for _, st := range s.Stages {
		if st.Stage == name {
			return st
		}
	}
	t.Fatalf("snapshot has no stage %q (stages: %+v)", name, s.Stages)
	return obs.StageSnapshot{}
}

// TestPipelineCounterAccuracy checks that the obs layer's per-stage
// counters exactly mirror the pipeline's own Stats over a real generated
// workload.
func TestPipelineCounterAccuracy(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.01
	gen, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	pipe, err := NewPipeline(reg, Options{Key: obsFixtureKey, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.RunDays(pipe, 0, 21); err != nil {
		t.Fatal(err)
	}
	ds := pipe.Finalize()
	st := ds.Stats
	snap := m.Snapshot()

	flowsSeen := st.FlowsProcessed + st.FlowsTapDropped + st.FlowsOutOfWindow + st.FlowsUnattributed
	wantEvents := flowsSeen + st.DNSEntries + st.HTTPEntries + st.Leases
	if snap.Events != wantEvents {
		t.Errorf("ingest events = %d, want %d (flows %d + dns %d + http %d + leases %d)",
			snap.Events, wantEvents, flowsSeen, st.DNSEntries, st.HTTPEntries, st.Leases)
	}
	tap := stageByName(t, snap, "tap_filter")
	if tap.Drops != st.FlowsTapDropped+st.FlowsOutOfWindow {
		t.Errorf("tap drops = %d, want %d", tap.Drops, st.FlowsTapDropped+st.FlowsOutOfWindow)
	}
	if tap.Events != flowsSeen-tap.Drops {
		t.Errorf("tap accepts = %d, want %d", tap.Events, flowsSeen-tap.Drops)
	}
	dhcpS := stageByName(t, snap, "dhcp_normalize")
	if dhcpS.Events != st.FlowsProcessed || dhcpS.Drops != st.FlowsUnattributed {
		t.Errorf("dhcp stage = %d/%d, want %d/%d",
			dhcpS.Events, dhcpS.Drops, st.FlowsProcessed, st.FlowsUnattributed)
	}
	dns := stageByName(t, snap, "dns_label")
	if dns.Drops != st.FlowsUnlabeled {
		t.Errorf("dns drops = %d, want %d", dns.Drops, st.FlowsUnlabeled)
	}
	if dns.Events != st.FlowsProcessed-st.FlowsUnlabeled {
		t.Errorf("dns labels = %d, want %d", dns.Events, st.FlowsProcessed-st.FlowsUnlabeled)
	}
	agg := stageByName(t, snap, "aggregate")
	if agg.Events != st.FlowsProcessed || agg.Bytes != st.BytesProcessed {
		t.Errorf("aggregate = %d ev / %d B, want %d / %d",
			agg.Events, agg.Bytes, st.FlowsProcessed, st.BytesProcessed)
	}
	app := stageByName(t, snap, "appsig_match")
	if app.Events+app.Drops != st.FlowsProcessed {
		t.Errorf("appsig matched %d + unmatched %d != processed %d",
			app.Events, app.Drops, st.FlowsProcessed)
	}
	if app.Events == 0 {
		t.Error("no appsig matches at all — fixture too small?")
	}
	if len(snap.Shards) != 0 {
		t.Errorf("single pipeline should have no shard snapshots, got %d", len(snap.Shards))
	}
}

// TestShardedCounterAccuracy is the satellite's race-detector target: four
// concurrent shards share one Metrics while a polling goroutine snapshots
// it, and the final counters must reconcile with the merged Stats.
func TestShardedCounterAccuracy(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Scale = 0.01
	gen, err := trace.New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	sp, err := NewShardedPipeline(reg, Options{Key: obsFixtureKey, Obs: m}, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent snapshotting while the shards ingest (what Progress and
	// the debug endpoint do in production).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := m.Snapshot()
				if len(s.Shards) != 4 {
					t.Errorf("mid-run snapshot shards = %d, want 4", len(s.Shards))
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	if err := gen.RunDays(sp, 0, 21); err != nil {
		t.Fatal(err)
	}
	ds := sp.Finalize()
	close(stop)
	wg.Wait()

	st := ds.Stats
	snap := m.Snapshot()

	// DNS entries and leases are applied exactly once, at the dispatcher's
	// shared stores — no per-shard amplification — so the ingest counter
	// must equal a single pipeline's: every event counted once.
	flowsSeen := st.FlowsProcessed + st.FlowsTapDropped + st.FlowsOutOfWindow + st.FlowsUnattributed
	wantEvents := flowsSeen + st.DNSEntries + st.Leases + st.HTTPEntries
	if snap.Events != wantEvents {
		t.Errorf("ingest events = %d, want %d", snap.Events, wantEvents)
	}
	// Epoch accounting: the dispatcher sealed at least one snapshot epoch,
	// the shards pinned batches against it, and the snapshot-size gauge
	// reflects the shared tables' retained bytes. Publishes are
	// bookkeeping, not events — they must not have inflated the ingest
	// counter above (the equality already proves they didn't).
	if snap.EpochsPublished == 0 {
		t.Error("no snapshot epochs published by a sharded run")
	}
	if snap.EpochPins == 0 {
		t.Error("no shard batches pinned to a snapshot epoch")
	}
	if snap.SnapshotBytes == 0 {
		t.Error("snapshot-size gauge never set")
	}
	dhcpS := stageByName(t, snap, "dhcp_normalize")
	if dhcpS.Events != st.FlowsProcessed || dhcpS.Drops != st.FlowsUnattributed {
		t.Errorf("dhcp stage = %d/%d, want %d/%d",
			dhcpS.Events, dhcpS.Drops, st.FlowsProcessed, st.FlowsUnattributed)
	}
	agg := stageByName(t, snap, "aggregate")
	if agg.Events != st.FlowsProcessed || agg.Bytes != st.BytesProcessed {
		t.Errorf("aggregate = %d ev / %d B, want %d / %d",
			agg.Events, agg.Bytes, st.FlowsProcessed, st.BytesProcessed)
	}

	// Every attributed flow was dispatched to exactly one shard.
	if len(snap.Shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(snap.Shards))
	}
	var dispatched int64
	for _, sh := range snap.Shards {
		dispatched += sh.Dispatched
	}
	if dispatched != flowsSeen-st.FlowsUnattributed {
		t.Errorf("dispatched sum = %d, want %d", dispatched, flowsSeen-st.FlowsUnattributed)
	}
	if snap.Imbalance < 1.0 {
		t.Errorf("imbalance = %.3f, want ≥ 1.0", snap.Imbalance)
	}
	// Drained pipeline: every queue must be empty.
	for i, d := range sp.QueueDepths() {
		if d != 0 {
			t.Errorf("shard %d queue depth = %d after Finalize", i, d)
		}
	}
}

// TestObsDoesNotChangeResults: the same workload with and without
// instrumentation must produce identical datasets (counters only observe).
func TestObsDoesNotChangeResults(t *testing.T) {
	reg, err := universe.New()
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *obs.Metrics) *Dataset {
		cfg := trace.DefaultConfig()
		cfg.Scale = 0.005
		gen, err := trace.New(cfg, reg)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := NewPipeline(reg, Options{Key: obsFixtureKey, Obs: m})
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.RunDays(pipe, 0, 28); err != nil {
			t.Fatal(err)
		}
		return pipe.Finalize()
	}
	plain := run(nil)
	instr := run(obs.NewMetrics())
	if plain.Stats != instr.Stats {
		t.Errorf("stats diverge: %+v vs %+v", plain.Stats, instr.Stats)
	}
	if len(plain.Devices) != len(instr.Devices) {
		t.Fatalf("device counts diverge: %d vs %d", len(plain.Devices), len(instr.Devices))
	}
	for i := range plain.Devices {
		a, b := plain.Devices[i], instr.Devices[i]
		if a.ID != b.ID || a.Type != b.Type || a.Flows != b.Flows || a.TotalBytes() != b.TotalBytes() {
			t.Errorf("device %d diverges: %v/%v/%d vs %v/%v/%d",
				i, a.ID, a.Type, a.Flows, b.ID, b.Type, b.Flows)
		}
	}
}
