package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/anonymize"
	"repro/internal/campus"
	"repro/internal/devclass"
	"repro/internal/geo"
)

// DatasetCodecVersion is the dataset.bin payload format version. It enters
// every stage-cache key, so bumping it (any wire-format change) cleanly
// invalidates cached datasets; a stale payload that slips past the key is
// still rejected by the header check in DecodeDataset.
const DatasetCodecVersion = 1

// datasetMagic / truthMagic head the two payload formats.
var (
	datasetMagic = [4]byte{'L', 'K', 'D', 'S'}
	truthMagic   = [4]byte{'L', 'K', 'T', 'R'}
)

// The encoding is columnar: after a self-describing header (magic,
// version, the campus dimensions the arrays are sized by, the device
// count) and the run Stats, each DeviceData field is written as one column
// across all devices, and the whole payload ends in a sha256 trailer.
// Columns compress well because neighboring devices look alike
// (delta-coded sorted IDs, shared label strings, runs of zero counters),
// and exact byte round-tripping is guaranteed by encoding floats as raw
// IEEE bit patterns and keeping the nil-vs-empty distinction for every
// nilable slice. Encode(Decode(b)) is byte-identical to b, and
// Decode(Encode(ds)) is semantically identical to ds — the property the
// warm/cold parity tests pin.

// enc is a little append-only buffer with varint helpers.
type enc struct {
	b []byte
}

func (e *enc) uvarint(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v byte)       { e.b = append(e.b, v) }
func (e *enc) f32(v float32)     { e.b = binary.LittleEndian.AppendUint32(e.b, math.Float32bits(v)) }
func (e *enc) f64(v float64)     { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) string(s string)   { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) f32slice(s []float32) {
	// Nil-able slice: 0 = nil, n+1 = length n. Several accumulator fields
	// use nil as "never seen", which the figures distinguish from
	// all-zero, so the codec must too.
	if s == nil {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(len(s)) + 1)
	for _, v := range s {
		e.f32(v)
	}
}

// dec is the matching cursor with error latching: after the first
// malformed read every subsequent read fails fast. scope names the payload
// kind in error messages ("dataset" when empty — the original format; the
// checkpoint codec sets its own).
type dec struct {
	b     []byte
	off   int
	err   error
	scope string
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		scope := d.scope
		if scope == "" {
			scope = "dataset"
		}
		d.err = fmt.Errorf("core: decode "+scope+": "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("truncated at offset %d (want %d more bytes)", d.off, n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() byte {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) f32() float32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(s))
}

func (d *dec) f64() float64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(s))
}

func (d *dec) string() string {
	n := d.uvarint()
	s := d.take(int(n))
	if s == nil {
		return ""
	}
	return string(s)
}

func (d *dec) f32slice(maxLen int) []float32 {
	n := d.uvarint()
	if n == 0 {
		return nil
	}
	ln := int(n - 1)
	if ln > maxLen {
		d.fail("f32 slice length %d exceeds bound %d", ln, maxLen)
		return nil
	}
	out := make([]float32, ln)
	for i := range out {
		out[i] = d.f32()
	}
	return out
}

// EncodeDataset serializes a finalized Dataset (devices are already
// sorted by ID — Finalize/Snapshot guarantee it, which makes the encoding
// canonical: one dataset, one byte sequence).
func EncodeDataset(ds *Dataset) []byte {
	e := &enc{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, datasetMagic[:]...)
	e.uvarint(DatasetCodecVersion)
	// Dimensions the fixed-size arrays are declared with: a binary written
	// by a build with different campus constants fails the header check
	// instead of misparsing columns.
	e.uvarint(campus.NumDays)
	e.uvarint(uint64(campus.NumMonths))
	e.uvarint(uint64(NumGroups))
	e.uvarint(campus.HoursPerWeek)
	e.uvarint(uint64(len(ds.Devices)))

	st := &ds.Stats
	for _, v := range []int64{
		st.FlowsProcessed, st.FlowsTapDropped, st.FlowsUnattributed,
		st.FlowsUnlabeled, st.FlowsOutOfWindow, st.DNSEntries,
		st.HTTPEntries, st.Leases, st.BytesProcessed,
	} {
		e.varint(v)
	}

	devs := ds.Devices
	// Column 1: IDs, delta-coded (sorted ascending).
	var prev uint64
	for _, d := range devs {
		e.uvarint(uint64(d.ID) - prev)
		prev = uint64(d.ID)
	}
	// Classification columns.
	for _, d := range devs {
		e.uvarint(uint64(d.Type))
	}
	for _, d := range devs {
		e.string(d.ClassifiedBy)
	}
	for _, d := range devs {
		e.uvarint(uint64(d.Geo))
	}
	for _, d := range devs {
		e.uvarint(uint64(d.GeoCDNAblation))
	}
	for _, d := range devs {
		e.f64(d.IoTScore)
	}
	for _, d := range devs {
		e.string(d.IoTPlatform)
	}
	for _, d := range devs {
		e.uvarint(uint64(d.UAType))
	}
	for _, d := range devs {
		e.uvarint(uint64(d.OUIHint))
	}
	// Boolean flags packed into one byte per device.
	for _, d := range devs {
		var f byte
		if d.Resident {
			f |= 1
		}
		if d.PostShutdown {
			f |= 2
		}
		if d.IsSwitch {
			f |= 4
		}
		e.byte(f)
	}
	// Time-series columns.
	for _, d := range devs {
		e.f32slice(d.Daily)
	}
	for _, d := range devs {
		e.f32slice(d.ZoomDaily)
	}
	for _, d := range devs {
		e.f32slice(d.GameplayDaily)
	}
	numWeeks := len((&DeviceData{}).HourWeek)
	for w := 0; w < numWeeks; w++ {
		for _, d := range devs {
			e.f32slice(d.HourWeek[w])
		}
	}
	for _, d := range devs {
		e.uvarint(uint64(d.SitesFeb))
	}
	for _, d := range devs {
		e.uvarint(uint64(d.SitesAprMay))
	}
	// Monthly aggregate columns.
	for _, d := range devs {
		for m := range d.Social {
			for a := range d.Social[m] {
				e.varint(int64(d.Social[m][a].Duration))
				e.uvarint(uint64(d.Social[m][a].Sessions))
			}
		}
	}
	for _, d := range devs {
		for m := range d.Steam {
			e.varint(d.Steam[m].Bytes)
			e.uvarint(uint64(d.Steam[m].Connections))
		}
	}
	for _, d := range devs {
		for m := range d.GroupBytes {
			for g := range d.GroupBytes[m] {
				e.varint(d.GroupBytes[m][g])
			}
		}
	}
	// ZoomHourly: presence byte (most devices never touch Zoom), then the
	// 48 raw values for those that do.
	for _, d := range devs {
		present := byte(0)
		for k := range d.ZoomHourly {
			for h := range d.ZoomHourly[k] {
				if d.ZoomHourly[k][h] != 0 {
					present = 1
				}
			}
		}
		e.byte(present)
		if present == 1 {
			for k := range d.ZoomHourly {
				for h := range d.ZoomHourly[k] {
					e.f32(d.ZoomHourly[k][h])
				}
			}
		}
	}
	for _, d := range devs {
		e.varint(d.Flows)
	}

	sum := sha256.Sum256(e.b)
	e.b = append(e.b, sum[:]...)
	return e.b
}

// DecodeDataset parses an EncodeDataset payload, verifying the sha256
// trailer, the header version and the campus dimensions before trusting a
// single column. Any mismatch returns an error — the stage cache treats it
// as a verify failure and recomputes.
func DecodeDataset(b []byte) (*Dataset, error) {
	if len(b) < len(datasetMagic)+sha256.Size {
		return nil, fmt.Errorf("core: decode dataset: payload too short (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("core: decode dataset: checksum mismatch")
	}
	d := &dec{b: body}
	if string(d.take(4)) != string(datasetMagic[:]) {
		return nil, fmt.Errorf("core: decode dataset: bad magic")
	}
	if v := d.uvarint(); v != DatasetCodecVersion {
		return nil, fmt.Errorf("core: decode dataset: codec version %d, want %d", v, DatasetCodecVersion)
	}
	for _, dim := range []struct {
		name string
		want uint64
	}{
		{"num_days", campus.NumDays},
		{"num_months", uint64(campus.NumMonths)},
		{"num_groups", uint64(NumGroups)},
		{"hours_per_week", campus.HoursPerWeek},
	} {
		if got := d.uvarint(); d.err == nil && got != dim.want {
			return nil, fmt.Errorf("core: decode dataset: dimension %s=%d, want %d", dim.name, got, dim.want)
		}
	}
	n := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > len(body) {
		return nil, fmt.Errorf("core: decode dataset: implausible device count %d", n)
	}

	ds := &Dataset{byID: make(map[anonymize.DeviceID]*DeviceData, n)}
	for _, p := range []*int64{
		&ds.Stats.FlowsProcessed, &ds.Stats.FlowsTapDropped, &ds.Stats.FlowsUnattributed,
		&ds.Stats.FlowsUnlabeled, &ds.Stats.FlowsOutOfWindow, &ds.Stats.DNSEntries,
		&ds.Stats.HTTPEntries, &ds.Stats.Leases, &ds.Stats.BytesProcessed,
	} {
		*p = d.varint()
	}

	devs := make([]*DeviceData, n)
	for i := range devs {
		devs[i] = &DeviceData{}
	}
	var prev uint64
	for _, dd := range devs {
		prev += d.uvarint()
		dd.ID = anonymize.DeviceID(prev)
	}
	for _, dd := range devs {
		dd.Type = devclass.Type(d.uvarint())
	}
	for _, dd := range devs {
		dd.ClassifiedBy = d.string()
	}
	for _, dd := range devs {
		dd.Geo = geo.Classification(d.uvarint())
	}
	for _, dd := range devs {
		dd.GeoCDNAblation = geo.Classification(d.uvarint())
	}
	for _, dd := range devs {
		dd.IoTScore = d.f64()
	}
	for _, dd := range devs {
		dd.IoTPlatform = d.string()
	}
	for _, dd := range devs {
		dd.UAType = devclass.Type(d.uvarint())
	}
	for _, dd := range devs {
		dd.OUIHint = devclass.Type(d.uvarint())
	}
	for _, dd := range devs {
		f := d.byte()
		dd.Resident = f&1 != 0
		dd.PostShutdown = f&2 != 0
		dd.IsSwitch = f&4 != 0
	}
	for _, dd := range devs {
		dd.Daily = d.f32slice(campus.NumDays)
	}
	for _, dd := range devs {
		dd.ZoomDaily = d.f32slice(campus.NumDays)
	}
	for _, dd := range devs {
		dd.GameplayDaily = d.f32slice(campus.NumDays)
	}
	numWeeks := len((&DeviceData{}).HourWeek)
	for w := 0; w < numWeeks; w++ {
		for _, dd := range devs {
			dd.HourWeek[w] = d.f32slice(campus.HoursPerWeek)
		}
	}
	for _, dd := range devs {
		dd.SitesFeb = int(d.uvarint())
	}
	for _, dd := range devs {
		dd.SitesAprMay = int(d.uvarint())
	}
	for _, dd := range devs {
		for m := range dd.Social {
			for a := range dd.Social[m] {
				dd.Social[m][a].Duration = time.Duration(d.varint())
				dd.Social[m][a].Sessions = int(d.uvarint())
			}
		}
	}
	for _, dd := range devs {
		for m := range dd.Steam {
			dd.Steam[m].Bytes = d.varint()
			dd.Steam[m].Connections = int(d.uvarint())
		}
	}
	for _, dd := range devs {
		for m := range dd.GroupBytes {
			for g := range dd.GroupBytes[m] {
				dd.GroupBytes[m][g] = d.varint()
			}
		}
	}
	for _, dd := range devs {
		if d.byte() == 1 {
			for k := range dd.ZoomHourly {
				for h := range dd.ZoomHourly[k] {
					dd.ZoomHourly[k][h] = d.f32()
				}
			}
		}
	}
	for _, dd := range devs {
		dd.Flows = d.varint()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("core: decode dataset: %d trailing bytes", len(body)-d.off)
	}
	for i, dd := range devs {
		if i > 0 && devs[i-1].ID >= dd.ID {
			return nil, fmt.Errorf("core: decode dataset: device IDs not strictly ascending")
		}
		ds.byID[dd.ID] = dd
	}
	ds.Devices = devs
	return ds, nil
}

// EncodeTruth serializes a generator ground-truth map (device pseudonym →
// true device type) canonically: sorted by ID, delta-coded.
func EncodeTruth(truth map[anonymize.DeviceID]devclass.Type) []byte {
	ids := make([]uint64, 0, len(truth))
	for id := range truth {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e := &enc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, truthMagic[:]...)
	e.uvarint(DatasetCodecVersion)
	e.uvarint(uint64(len(ids)))
	var prev uint64
	for _, id := range ids {
		e.uvarint(id - prev)
		prev = id
		e.uvarint(uint64(truth[anonymize.DeviceID(id)]))
	}
	sum := sha256.Sum256(e.b)
	e.b = append(e.b, sum[:]...)
	return e.b
}

// DecodeTruth parses an EncodeTruth payload.
func DecodeTruth(b []byte) (map[anonymize.DeviceID]devclass.Type, error) {
	if len(b) < len(truthMagic)+sha256.Size {
		return nil, fmt.Errorf("core: decode truth: payload too short (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("core: decode truth: checksum mismatch")
	}
	d := &dec{b: body}
	if string(d.take(4)) != string(truthMagic[:]) {
		return nil, fmt.Errorf("core: decode truth: bad magic")
	}
	if v := d.uvarint(); v != DatasetCodecVersion {
		return nil, fmt.Errorf("core: decode truth: codec version %d, want %d", v, DatasetCodecVersion)
	}
	n := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > len(body) {
		return nil, fmt.Errorf("core: decode truth: implausible entry count %d", n)
	}
	truth := make(map[anonymize.DeviceID]devclass.Type, n)
	var prev uint64
	for i := 0; i < n; i++ {
		prev += d.uvarint()
		truth[anonymize.DeviceID(prev)] = devclass.Type(d.uvarint())
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("core: decode truth: %d trailing bytes", len(body)-d.off)
	}
	return truth, nil
}
